//! Area, power and energy estimation for SPADE (§6.E, §7.G, Figure 14).
//!
//! The paper estimates area and power with CACTI 7 for the SRAM structures
//! (L1D, BBF, victim cache, pipeline CAMs/RAMs/registers) at 32 nm, the
//! Galal–Horowitz numbers for the single-precision SIMD FP unit, a 20 %
//! uplift for remaining logic (validated against the miniSPADE synthesis,
//! which measured < 5 %), technology scaling to the host's 10 nm node, and
//! DRAMsim3 for DRAM power. This crate encodes the same table-driven
//! methodology: per-access energies and per-structure areas with
//! node-scaling factors, plus a power-breakdown calculator that consumes a
//! [`RunReport`].
//!
//! # Example
//!
//! ```
//! use spade_energy::{AreaModel, EnergyModel};
//!
//! let area = AreaModel::spade_10nm();
//! // The paper reports 24.64 mm² for 224 PEs at 10 nm (§7.G).
//! let total = area.total_mm2(224);
//! assert!((total - 24.64).abs() / 24.64 < 0.15);
//!
//! let energy = EnergyModel::spade_10nm();
//! // …and 20.3 W of maximum dynamic PE power.
//! let w = energy.pe_group_max_dynamic_w(224);
//! assert!((w - 20.3).abs() / 20.3 < 0.15);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use spade_core::RunReport;
use spade_sim::LevelKind;

/// Technology-node scaling, after Stillmaker & Baas (ref.\[66\] of the paper): area and power
/// factors relative to 32 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Feature size in nanometres.
    pub nm: u32,
    /// Area multiplier relative to 32 nm.
    pub area_factor: f64,
    /// Dynamic-power multiplier relative to 32 nm (iso-frequency).
    pub power_factor: f64,
}

impl TechNode {
    /// 65 nm (the miniSPADE tape-out node).
    pub fn n65() -> Self {
        TechNode {
            nm: 65,
            area_factor: 4.1,
            power_factor: 2.5,
        }
    }

    /// 32 nm (the CACTI estimation node).
    pub fn n32() -> Self {
        TechNode {
            nm: 32,
            area_factor: 1.0,
            power_factor: 1.0,
        }
    }

    /// 10 nm (the Ice Lake host node the paper scales to).
    pub fn n10() -> Self {
        TechNode {
            nm: 10,
            area_factor: 0.21,
            power_factor: 0.42,
        }
    }
}

/// Per-PE area contributions in mm² at 32 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// 32 KiB L1 data cache.
    pub l1_mm2: f64,
    /// Bypass buffer (32 × 64 B entries).
    pub bbf_mm2: f64,
    /// 16 KiB victim cache.
    pub victim_mm2: f64,
    /// Pipeline memory structures: VRF (64 × 64 B), VR-tag CAM, queues,
    /// reservation stations.
    pub pipeline_sram_mm2: f64,
    /// Single-precision 16-lane SIMD FMA unit.
    pub simd_mm2: f64,
    /// Uplift for multiplexers, FSMs and remaining logic (the paper
    /// conservatively uses 20 %).
    pub logic_overhead: f64,
    /// Node the totals are reported at.
    pub node: TechNode,
}

impl AreaModel {
    /// The SPADE PE at 10 nm, calibrated to the paper's 24.64 mm² total
    /// for 224 PEs.
    pub fn spade_10nm() -> Self {
        AreaModel {
            l1_mm2: 0.200,
            bbf_mm2: 0.018,
            victim_mm2: 0.105,
            pipeline_sram_mm2: 0.090,
            simd_mm2: 0.020,
            logic_overhead: 0.20,
            node: TechNode::n10(),
        }
    }

    /// Area of one PE (with its L1, BBF and victim cache) at the model's
    /// node, in mm².
    pub fn per_pe_mm2(&self) -> f64 {
        let raw =
            self.l1_mm2 + self.bbf_mm2 + self.victim_mm2 + self.pipeline_sram_mm2 + self.simd_mm2;
        raw * (1.0 + self.logic_overhead) * self.node.area_factor
    }

    /// Total accelerator area for `num_pes` PEs, in mm².
    pub fn total_mm2(&self, num_pes: usize) -> f64 {
        self.per_pe_mm2() * num_pes as f64
    }

    /// The accelerator's share of a host die of `host_mm2` (the paper
    /// compares against a 1000 mm² dual-socket Ice Lake: 2.5 %).
    pub fn fraction_of_host(&self, num_pes: usize, host_mm2: f64) -> f64 {
        self.total_mm2(num_pes) / host_mm2
    }
}

/// Per-access energies (nanojoules) and static powers (watts) for the
/// power breakdown of Figure 14.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per L1 access.
    pub l1_nj: f64,
    /// Energy per BBF / victim-cache access.
    pub bbf_nj: f64,
    /// Energy per L2 access.
    pub l2_nj: f64,
    /// Energy per LLC access.
    pub llc_nj: f64,
    /// Energy per DRAM line access (row + I/O).
    pub dram_nj: f64,
    /// Energy per vOp (16-lane FMA + VRF + pipeline control).
    pub vop_nj: f64,
    /// Static power per PE (pipeline + L1 + BBF + VC leakage + clock), W.
    pub pe_static_w: f64,
    /// Static power of the L2 caches (total), W.
    pub l2_static_w: f64,
    /// Static power of the LLC (total), W.
    pub llc_static_w: f64,
    /// DRAM background power, W.
    pub dram_static_w: f64,
}

impl EnergyModel {
    /// The SPADE system at 10 nm, calibrated so that 224 PEs at maximum
    /// pipeline activity dissipate ≈ 20.3 W (§7.G) and the SPADE-mode
    /// breakdown matches Figure 14 (PE group ≈ 14 %, DRAM > 50 %).
    pub fn spade_10nm() -> Self {
        EnergyModel {
            l1_nj: 0.020,
            bbf_nj: 0.012,
            l2_nj: 0.35,
            llc_nj: 1.6,
            dram_nj: 18.0,
            vop_nj: 0.055,
            pe_static_w: 0.016,
            l2_static_w: 6.0,
            llc_static_w: 7.5,
            dram_static_w: 12.0,
        }
    }

    /// Maximum dynamic power of the PE group (pipelines + L1 + BBF + VC)
    /// when every PE issues one vOp and one L1 access per cycle at
    /// 0.8 GHz.
    pub fn pe_group_max_dynamic_w(&self, num_pes: usize) -> f64 {
        let per_pe_nj_per_cycle = self.vop_nj + 2.0 * self.l1_nj + self.bbf_nj;
        // W = nJ/cycle × GHz.
        num_pes as f64 * (per_pe_nj_per_cycle * 0.8 + self.pe_static_w)
    }

    /// Power breakdown of one simulated run (the Figure 14 categories).
    pub fn power_breakdown(&self, report: &RunReport, num_pes: usize) -> PowerBreakdown {
        let secs = report.time_ns / 1e9;
        if secs <= 0.0 {
            return PowerBreakdown::default();
        }
        let l1 = report.mem.level(LevelKind::L1);
        let bbf = report.mem.level(LevelKind::Bbf);
        let l2 = report.mem.level(LevelKind::L2);
        let llc = report.mem.level(LevelKind::Llc);
        let dram = report.mem.level(LevelKind::Dram);

        let pe_dyn = (report.total_vops as f64 * self.vop_nj
            + l1.accesses as f64 * self.l1_nj
            + bbf.accesses as f64 * self.bbf_nj)
            / 1e9
            / secs;
        PowerBreakdown {
            pe_group_w: pe_dyn + num_pes as f64 * self.pe_static_w,
            l2_w: l2.accesses as f64 * self.l2_nj / 1e9 / secs + self.l2_static_w,
            llc_w: llc.accesses as f64 * self.llc_nj / 1e9 / secs + self.llc_static_w,
            dram_w: dram.accesses as f64 * self.dram_nj / 1e9 / secs + self.dram_static_w,
        }
    }
}

/// The Figure 14 power categories, in watts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    /// SPADE PEs with their L1s, BBFs and victim caches.
    pub pe_group_w: f64,
    /// The L2 caches.
    pub l2_w: f64,
    /// The last-level cache.
    pub llc_w: f64,
    /// Main memory.
    pub dram_w: f64,
}

impl PowerBreakdown {
    /// Total power.
    pub fn total_w(&self) -> f64 {
        self.pe_group_w + self.l2_w + self.llc_w + self.dram_w
    }

    /// Each category as a fraction of the total, in Figure 14 order
    /// (PE group, L2, LLC, DRAM).
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total_w();
        if t <= 0.0 {
            return [0.0; 4];
        }
        [
            self.pe_group_w / t,
            self.l2_w / t,
            self.llc_w / t,
            self.dram_w / t,
        ]
    }
}

/// Sanity model of the miniSPADE prototype (§6.D): 4 in-order PEs at
/// 65 nm, 200 MHz, measured at 30 mW and 1.75 mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiniSpade;

impl MiniSpade {
    /// Die area in mm² (1.75 mm × 1.00 mm).
    pub const DIE_MM2: f64 = 1.75;
    /// Measured power at 200 MHz, in watts.
    pub const POWER_W: f64 = 0.030;

    /// Rough cross-check: scaling a simplified 4-PE SPADE from the 10 nm
    /// model back to 65 nm should land within a small factor of the die's
    /// SRAM-dominated area.
    pub fn area_consistency_ratio(area: &AreaModel) -> f64 {
        // miniSPADE has no victim cache and a simplified pipeline; compare
        // its die area against 4 × (L1 + BBF + pipeline) at 65 nm.
        let per_pe_32 = area.l1_mm2 * 0.5 + area.bbf_mm2 + area.pipeline_sram_mm2 * 0.5;
        let mini_est = 4.0 * per_pe_32 * TechNode::n65().area_factor;
        mini_est / Self::DIE_MM2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_matches_paper_total() {
        let a = AreaModel::spade_10nm();
        let total = a.total_mm2(224);
        assert!(
            (total - 24.64).abs() / 24.64 < 0.15,
            "total area {total} vs paper 24.64"
        );
        // 2.5 % of a 1000 mm² host.
        let frac = a.fraction_of_host(224, 1000.0);
        assert!(frac > 0.02 && frac < 0.03, "host fraction {frac}");
    }

    #[test]
    fn pe_power_matches_paper() {
        let e = EnergyModel::spade_10nm();
        let w = e.pe_group_max_dynamic_w(224);
        assert!((w - 20.3).abs() / 20.3 < 0.15, "PE power {w} vs paper 20.3");
        // 4.3 % of the 470 W host TDP.
        let frac = w / 470.0;
        assert!(frac > 0.03 && frac < 0.06, "TDP fraction {frac}");
    }

    #[test]
    fn node_scaling_shrinks_area_and_power() {
        assert!(TechNode::n10().area_factor < TechNode::n32().area_factor);
        assert!(TechNode::n32().area_factor < TechNode::n65().area_factor);
        assert!(TechNode::n10().power_factor < 1.0);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let b = PowerBreakdown {
            pe_group_w: 10.0,
            l2_w: 5.0,
            llc_w: 5.0,
            dram_w: 30.0,
        };
        let f = b.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((b.total_w() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_safe() {
        assert_eq!(PowerBreakdown::default().fractions(), [0.0; 4]);
    }

    #[test]
    fn minispade_order_of_magnitude() {
        let r = MiniSpade::area_consistency_ratio(&AreaModel::spade_10nm());
        assert!(r > 0.2 && r < 5.0, "miniSPADE consistency ratio {r}");
    }
}
