//! Seeded robustness fuzzing for the MatrixMarket reader: every input —
//! truncated, bit-flipped, spliced, or raw noise — must come back as
//! `Ok` or a typed `MatrixError`, never a panic or an abort. The corpus
//! is generated from the in-tree `Rng64`, so failures reproduce exactly.

use std::io::Cursor;

use spade_matrix::mm::{read_matrix_market, write_matrix_market};
use spade_matrix::rng::Rng64;
use spade_matrix::{Coo, MatrixError};

/// A well-formed seed document to mutate.
fn seed_doc(rng: &mut Rng64) -> Vec<u8> {
    let n = rng.gen_range(1..20usize);
    let mut triplets = Vec::new();
    for _ in 0..rng.gen_range(0..40usize) {
        triplets.push((
            rng.gen_range(0..n) as u32,
            rng.gen_range(0..n) as u32,
            rng.gen_range(1..1000u32) as f32 * 0.125,
        ));
    }
    triplets.sort_by_key(|t| (t.0, t.1));
    triplets.dedup_by_key(|t| (t.0, t.1));
    let coo = Coo::from_triplets(n, n, &triplets).unwrap();
    let mut buf = Vec::new();
    write_matrix_market(&coo, &mut buf).unwrap();
    buf
}

/// The property under test: parsing never panics, and a failure is the
/// typed `Parse` error (construction errors are also acceptable — the
/// mutation may have produced out-of-range coordinates).
fn parse_never_panics(input: &[u8]) {
    match read_matrix_market(Cursor::new(input.to_vec())) {
        Ok(_) => {}
        Err(MatrixError::Parse { .. }) => {}
        Err(other) => {
            // Any other typed error (e.g. out-of-range coordinate) is a
            // legitimate reject; the point is it is an Err, not a panic.
            let _ = other.to_string();
        }
    }
}

#[test]
fn truncated_documents_never_panic() {
    let mut rng = Rng64::seed_from_u64(0xA11CE);
    for _ in 0..50 {
        let doc = seed_doc(&mut rng);
        for _ in 0..10 {
            let cut = rng.gen_range(0..doc.len() + 1);
            parse_never_panics(&doc[..cut]);
        }
    }
}

#[test]
fn byte_mutations_never_panic() {
    let mut rng = Rng64::seed_from_u64(0xB0B);
    for _ in 0..50 {
        let doc = seed_doc(&mut rng);
        for _ in 0..20 {
            let mut m = doc.clone();
            // Flip, overwrite or duplicate a few random bytes. Invalid
            // UTF-8 is fair game: it must surface as a Parse error via the
            // line reader, not a panic.
            for _ in 0..rng.gen_range(1..8usize) {
                let i = rng.gen_range(0..m.len());
                match rng.gen_range(0..3u32) {
                    0 => m[i] ^= 1 << rng.gen_range(0..8u32),
                    1 => m[i] = rng.next_u64() as u8,
                    _ => {
                        let b = m[i];
                        m.insert(i, b);
                    }
                }
            }
            parse_never_panics(&m);
        }
    }
}

#[test]
fn spliced_lines_never_panic() {
    let mut rng = Rng64::seed_from_u64(0xCAFE);
    let fragments = [
        "%%MatrixMarket matrix coordinate real general",
        "%%MatrixMarket matrix coordinate pattern symmetric",
        "% comment",
        "",
        "3 3 2",
        "0 0 0",
        "1 1",
        "1 1 1.0",
        "999999999 999999999 1e300",
        "-1 -1 -1",
        "18446744073709551615 2 1",
        "nan nan nan",
        "3 3 18446744073709551615",
    ];
    for _ in 0..300 {
        let mut doc = String::new();
        for _ in 0..rng.gen_range(0..8usize) {
            doc.push_str(fragments[rng.gen_range(0..fragments.len())]);
            doc.push('\n');
        }
        parse_never_panics(doc.as_bytes());
    }
}

#[test]
fn raw_noise_never_panics() {
    let mut rng = Rng64::seed_from_u64(0xD00D);
    for _ in 0..200 {
        let len = rng.gen_range(0..512usize);
        let noise: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        parse_never_panics(&noise);
    }
}

#[test]
fn valid_documents_still_roundtrip_after_hardening() {
    let mut rng = Rng64::seed_from_u64(7);
    for _ in 0..20 {
        let doc = seed_doc(&mut rng);
        let parsed = read_matrix_market(Cursor::new(doc.clone())).unwrap();
        let mut rewritten = Vec::new();
        write_matrix_market(&parsed, &mut rewritten).unwrap();
        assert_eq!(doc, rewritten);
    }
}
