//! Property tests of the matrix substrate: format round trips, generator
//! invariants and MatrixMarket I/O.

use proptest::prelude::*;
use spade_matrix::generators::{self, Benchmark, Scale};
use spade_matrix::{mm, Coo, Csr, DenseMatrix, TiledCoo, TilingConfig};

fn arb_coo() -> impl Strategy<Value = Coo> {
    (2usize..50, 2usize..50).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec((0..rows as u32, 0..cols as u32, -5.0f32..5.0), 0..150)
            .prop_map(move |t| Coo::from_triplets(rows, cols, &t).expect("in range"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn csr_roundtrip(a in arb_coo()) {
        prop_assert_eq!(a.to_csr().to_coo(), a);
    }

    #[test]
    fn csr_row_ptr_is_monotone(a in arb_coo()) {
        let csr = Csr::from_coo(&a);
        for w in csr.row_ptr().windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(*csr.row_ptr().last().unwrap(), a.nnz());
    }

    #[test]
    fn matrix_market_roundtrip(a in arb_coo()) {
        let mut buf = Vec::new();
        mm::write_matrix_market(&a, &mut buf).unwrap();
        let b = mm::read_matrix_market(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(a.num_rows(), b.num_rows());
        prop_assert_eq!(a.nnz(), b.nnz());
        for ((r1, c1, v1), (r2, c2, v2)) in a.iter().zip(b.iter()) {
            prop_assert_eq!((r1, c1), (r2, c2));
            prop_assert!((v1 - v2).abs() <= v1.abs() * 1e-5 + 1e-6);
        }
    }

    #[test]
    fn tiled_out_offsets_are_line_aligned(a in arb_coo(), rp in 1usize..20, cp in 1usize..20) {
        let tiled = TiledCoo::new(&a, TilingConfig::new(rp, cp).unwrap()).unwrap();
        for t in tiled.tiles() {
            prop_assert_eq!(t.sparse_out_start % 16, 0);
            prop_assert!(t.nnz > 0, "empty tiles must not be materialized");
        }
    }

    #[test]
    fn dense_matrix_rows_are_line_aligned(rows in 1usize..20, cols in 1usize..100) {
        let m = DenseMatrix::zeros(rows, cols);
        prop_assert_eq!(m.row_stride() % 16, 0);
        prop_assert!(m.row_stride() >= cols);
        prop_assert!(m.row_stride() < cols + 16);
    }

    #[test]
    fn rmat_stays_in_bounds(scale_bits in 3u32..8, edges in 1usize..500) {
        let n = 1usize << scale_bits;
        let g = generators::rmat(n, edges, [0.57, 0.19, 0.19], 42);
        prop_assert_eq!(g.num_rows(), n);
        for (r, c, _) in g.iter() {
            prop_assert!((r as usize) < n && (c as usize) < n);
            prop_assert!(r != c, "self-loops must be dropped");
        }
    }

    #[test]
    fn chung_lu_is_symmetric(n in 16usize..200, m in 1usize..400) {
        let g = generators::chung_lu(n, m, 2.2, 7);
        let set: std::collections::HashSet<(u32, u32)> =
            g.iter().map(|(r, c, _)| (r, c)).collect();
        for &(r, c) in &set {
            prop_assert!(set.contains(&(c, r)));
        }
    }
}

#[test]
fn every_benchmark_has_no_duplicates_and_graphs_have_no_self_loops() {
    for b in Benchmark::ALL {
        let g = b.generate(Scale::Tiny);
        let mut seen = std::collections::HashSet::new();
        for (r, c, _) in g.iter() {
            // Graph adjacency matrices are hollow; the FEM matrix (SER)
            // deliberately has a full diagonal.
            if b != Benchmark::Ser {
                assert_ne!(r, c, "{}: self loop", b.short_name());
            }
            assert!(seen.insert((r, c)), "{}: duplicate ({r},{c})", b.short_name());
        }
    }
}

#[test]
fn mycielskian_is_triangle_free() {
    let g = generators::mycielskian(4);
    let adj: std::collections::HashSet<(u32, u32)> = g.iter().map(|(r, c, _)| (r, c)).collect();
    let nodes = g.num_rows() as u32;
    for a in 0..nodes {
        for b in (a + 1)..nodes {
            if !adj.contains(&(a, b)) {
                continue;
            }
            for c in (b + 1)..nodes {
                assert!(
                    !(adj.contains(&(b, c)) && adj.contains(&(a, c))),
                    "triangle {a}-{b}-{c}: the Mycielski construction must stay triangle-free"
                );
            }
        }
    }
}
