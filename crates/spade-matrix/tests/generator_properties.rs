//! Randomized tests of the matrix substrate: format round trips,
//! generator invariants and MatrixMarket I/O, driven by the crate's own
//! deterministic [`Rng64`] stream.

use spade_matrix::generators::{self, Benchmark, Scale};
use spade_matrix::rng::Rng64;
use spade_matrix::{mm, Coo, Csr, DenseMatrix, TiledCoo, TilingConfig};

fn random_coo(rng: &mut Rng64) -> Coo {
    let rows = rng.gen_range(2usize..50);
    let cols = rng.gen_range(2usize..50);
    let nnz = rng.gen_range(0usize..150);
    let triplets: Vec<(u32, u32, f32)> = (0..nnz)
        .map(|_| {
            (
                rng.gen_range(0..rows as u32),
                rng.gen_range(0..cols as u32),
                (rng.gen_f64() * 10.0 - 5.0) as f32,
            )
        })
        .collect();
    Coo::from_triplets(rows, cols, &triplets).expect("in range")
}

#[test]
fn csr_roundtrip() {
    let mut rng = Rng64::seed_from_u64(0xc5);
    for _ in 0..96 {
        let a = random_coo(&mut rng);
        assert_eq!(a.to_csr().to_coo(), a);
    }
}

#[test]
fn csr_row_ptr_is_monotone() {
    let mut rng = Rng64::seed_from_u64(0xc6);
    for _ in 0..96 {
        let a = random_coo(&mut rng);
        let csr = Csr::from_coo(&a);
        for w in csr.row_ptr().windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*csr.row_ptr().last().unwrap(), a.nnz());
    }
}

#[test]
fn matrix_market_roundtrip() {
    let mut rng = Rng64::seed_from_u64(0x33);
    for _ in 0..96 {
        let a = random_coo(&mut rng);
        let mut buf = Vec::new();
        mm::write_matrix_market(&a, &mut buf).unwrap();
        let b = mm::read_matrix_market(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(a.num_rows(), b.num_rows());
        assert_eq!(a.nnz(), b.nnz());
        for ((r1, c1, v1), (r2, c2, v2)) in a.iter().zip(b.iter()) {
            assert_eq!((r1, c1), (r2, c2));
            assert!((v1 - v2).abs() <= v1.abs() * 1e-5 + 1e-6);
        }
    }
}

#[test]
fn tiled_out_offsets_are_line_aligned() {
    let mut rng = Rng64::seed_from_u64(0x71);
    for _ in 0..96 {
        let a = random_coo(&mut rng);
        let rp = rng.gen_range(1usize..20);
        let cp = rng.gen_range(1usize..20);
        let tiled = TiledCoo::new(&a, TilingConfig::new(rp, cp).unwrap()).unwrap();
        for t in tiled.tiles() {
            assert_eq!(t.sparse_out_start % 16, 0);
            assert!(t.nnz > 0, "empty tiles must not be materialized");
        }
    }
}

#[test]
fn dense_matrix_rows_are_line_aligned() {
    let mut rng = Rng64::seed_from_u64(0xde);
    for _ in 0..96 {
        let rows = rng.gen_range(1usize..20);
        let cols = rng.gen_range(1usize..100);
        let m = DenseMatrix::zeros(rows, cols);
        assert_eq!(m.row_stride() % 16, 0);
        assert!(m.row_stride() >= cols);
        assert!(m.row_stride() < cols + 16);
    }
}

#[test]
fn rmat_stays_in_bounds() {
    let mut rng = Rng64::seed_from_u64(0x42);
    for _ in 0..32 {
        let scale_bits = rng.gen_range(3..8u32);
        let edges = rng.gen_range(1usize..500);
        let n = 1usize << scale_bits;
        let g = generators::rmat(n, edges, [0.57, 0.19, 0.19], 42);
        assert_eq!(g.num_rows(), n);
        for (r, c, _) in g.iter() {
            assert!((r as usize) < n && (c as usize) < n);
            assert!(r != c, "self-loops must be dropped");
        }
    }
}

#[test]
fn chung_lu_is_symmetric() {
    let mut rng = Rng64::seed_from_u64(0xc1);
    for _ in 0..32 {
        let n = rng.gen_range(16usize..200);
        let m = rng.gen_range(1usize..400);
        let g = generators::chung_lu(n, m, 2.2, 7);
        let set: std::collections::HashSet<(u32, u32)> = g.iter().map(|(r, c, _)| (r, c)).collect();
        for &(r, c) in &set {
            assert!(set.contains(&(c, r)));
        }
    }
}

#[test]
fn every_benchmark_has_no_duplicates_and_graphs_have_no_self_loops() {
    for b in Benchmark::ALL {
        let g = b.generate(Scale::Tiny);
        let mut seen = std::collections::HashSet::new();
        for (r, c, _) in g.iter() {
            // Graph adjacency matrices are hollow; the FEM matrix (SER)
            // deliberately has a full diagonal.
            if b != Benchmark::Ser {
                assert_ne!(r, c, "{}: self loop", b.short_name());
            }
            assert!(
                seen.insert((r, c)),
                "{}: duplicate ({r},{c})",
                b.short_name()
            );
        }
    }
}

#[test]
fn mycielskian_is_triangle_free() {
    let g = generators::mycielskian(4);
    let adj: std::collections::HashSet<(u32, u32)> = g.iter().map(|(r, c, _)| (r, c)).collect();
    let nodes = g.num_rows() as u32;
    for a in 0..nodes {
        for b in (a + 1)..nodes {
            if !adj.contains(&(a, b)) {
                continue;
            }
            for c in (b + 1)..nodes {
                assert!(
                    !(adj.contains(&(b, c)) && adj.contains(&(a, c))),
                    "triangle {a}-{b}-{c}: the Mycielski construction must stay triangle-free"
                );
            }
        }
    }
}
