use std::error::Error;
use std::fmt;

/// Errors produced when constructing or converting sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatrixError {
    /// A non-zero coordinate lies outside the declared matrix dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: u32,
        /// Column index of the offending entry.
        col: u32,
        /// Declared number of rows.
        num_rows: usize,
        /// Declared number of columns.
        num_cols: usize,
    },
    /// The coordinate arrays of a COO matrix have mismatched lengths.
    LengthMismatch {
        /// Length of the row-index array.
        r_ids: usize,
        /// Length of the column-index array.
        c_ids: usize,
        /// Length of the values array.
        vals: usize,
    },
    /// A tiling parameter (row/column panel size) was zero.
    InvalidTiling {
        /// Explanation of the invalid parameter.
        reason: String,
    },
    /// A matrix dimension exceeds the `u32` index space used for non-zeros.
    DimensionTooLarge {
        /// The offending dimension.
        dim: usize,
    },
    /// A file could not be parsed as a MatrixMarket matrix.
    Parse {
        /// 1-based line number of the first offending line.
        line: usize,
        /// Explanation of the parse failure.
        reason: String,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::IndexOutOfBounds {
                row,
                col,
                num_rows,
                num_cols,
            } => write!(
                f,
                "non-zero at ({row}, {col}) is outside a {num_rows}x{num_cols} matrix"
            ),
            MatrixError::LengthMismatch { r_ids, c_ids, vals } => write!(
                f,
                "coordinate array lengths differ: r_ids={r_ids}, c_ids={c_ids}, vals={vals}"
            ),
            MatrixError::InvalidTiling { reason } => {
                write!(f, "invalid tiling parameters: {reason}")
            }
            MatrixError::DimensionTooLarge { dim } => {
                write!(f, "matrix dimension {dim} exceeds the u32 index space")
            }
            MatrixError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<MatrixError> = vec![
            MatrixError::IndexOutOfBounds {
                row: 5,
                col: 6,
                num_rows: 4,
                num_cols: 4,
            },
            MatrixError::LengthMismatch {
                r_ids: 1,
                c_ids: 2,
                vals: 3,
            },
            MatrixError::InvalidTiling {
                reason: "row panel size is zero".into(),
            },
            MatrixError::DimensionTooLarge { dim: usize::MAX },
            MatrixError::Parse {
                line: 3,
                reason: "bad header".into(),
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MatrixError>();
    }
}
