//! Synthetic stand-ins for the ten SuiteSparse graphs of Table 2.
//!
//! The SPADE evaluation uses ten large graphs from the SuiteSparse matrix
//! collection. Those downloads are unavailable in this environment, so this
//! module generates synthetic matrices from the same *structural classes* —
//! road networks, planar meshes, power-law social networks, clustered
//! citation graphs, Kronecker/RMAT graphs, Mycielskian fractals, 3-D
//! stencils and FEM block matrices. The class determines the reuse
//! behaviour that SPADE's flexibility knobs respond to (locality, degree
//! skew, working-set size), which is what the evaluation measures; see
//! DESIGN.md for the substitution rationale.
//!
//! Node counts are scaled down ~50–100× from Table 2 (average degrees are
//! preserved) so that the whole suite simulates in minutes. Use
//! [`Scale::Large`] for closer-to-paper sizes.
//!
//! # Example
//!
//! ```
//! use spade_matrix::generators::{Benchmark, Scale};
//!
//! let kro = Benchmark::Kro.generate(Scale::Tiny);
//! assert!(kro.nnz() > 0);
//! assert_eq!(kro.num_rows(), kro.num_cols());
//! ```

use crate::analysis::RestructuringUtility;
use crate::rng::Rng64;
use crate::Coo;

/// Size preset for the generated benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~1/16 of [`Scale::Default`]; for unit tests.
    Tiny,
    /// ~1/4 of [`Scale::Default`]; for quick experiments.
    Small,
    /// The standard evaluation size (10⁴–10⁵ rows per graph).
    Default,
    /// 4× [`Scale::Default`]; closer to the paper's sizes.
    Large,
}

impl Scale {
    /// Linear node-count multiplier relative to [`Scale::Default`].
    pub fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 1.0 / 16.0,
            Scale::Small => 0.25,
            Scale::Default => 1.0,
            Scale::Large => 4.0,
        }
    }
}

/// One of the ten evaluation graphs of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// `asia_osm` — road graph, low RU.
    Asi,
    /// `com-LiveJournal` — social network, medium RU.
    Liv,
    /// `com-Orkut` — social network, high RU.
    Ork,
    /// `coPapersCiteseer` — citation graph, medium RU.
    Pap,
    /// `delaunay_n24` — geometry mesh, low RU.
    Del,
    /// `kron_g500-logn20` — synthetic Kronecker graph, high RU.
    Kro,
    /// `mycielskian17` — mathematics (fractal), high RU.
    Myc,
    /// `packing-500x100x100-b050` — numerical simulation stencil, low RU.
    Pac,
    /// `road_usa` — highway graph, low RU.
    Roa,
    /// `Serena` — environmental-science FEM matrix, medium RU.
    Ser,
}

impl Benchmark {
    /// All ten benchmarks in the paper's (alphabetical) presentation order.
    pub const ALL: [Benchmark; 10] = [
        Benchmark::Asi,
        Benchmark::Liv,
        Benchmark::Ork,
        Benchmark::Pap,
        Benchmark::Del,
        Benchmark::Kro,
        Benchmark::Myc,
        Benchmark::Pac,
        Benchmark::Roa,
        Benchmark::Ser,
    ];

    /// The three-letter short name used throughout the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            Benchmark::Asi => "ASI",
            Benchmark::Liv => "LIV",
            Benchmark::Ork => "ORK",
            Benchmark::Pap => "PAP",
            Benchmark::Del => "DEL",
            Benchmark::Kro => "KRO",
            Benchmark::Myc => "MYC",
            Benchmark::Pac => "PAC",
            Benchmark::Roa => "ROA",
            Benchmark::Ser => "SER",
        }
    }

    /// The full SuiteSparse matrix name this benchmark stands in for.
    pub fn full_name(self) -> &'static str {
        match self {
            Benchmark::Asi => "asia_osm",
            Benchmark::Liv => "com-LiveJournal",
            Benchmark::Ork => "com-Orkut",
            Benchmark::Pap => "coPapersCiteseer",
            Benchmark::Del => "delaunay_n24",
            Benchmark::Kro => "kron_g500-logn20",
            Benchmark::Myc => "mycielskian17",
            Benchmark::Pac => "packing-500x100x100-b050",
            Benchmark::Roa => "road_usa",
            Benchmark::Ser => "Serena",
        }
    }

    /// The application domain listed in Table 2.
    pub fn domain(self) -> &'static str {
        match self {
            Benchmark::Asi => "Road graph",
            Benchmark::Liv | Benchmark::Ork => "Social network",
            Benchmark::Pap => "Citation graph",
            Benchmark::Del => "Geometry problem",
            Benchmark::Kro => "Synthetic graph",
            Benchmark::Myc => "Mathematics (fractals)",
            Benchmark::Pac => "Numerical simulations",
            Benchmark::Roa => "Highway graph",
            Benchmark::Ser => "Environmental science",
        }
    }

    /// The Restructuring Utility class assigned in Table 2.
    pub fn expected_ru(self) -> RestructuringUtility {
        match self {
            Benchmark::Asi | Benchmark::Del | Benchmark::Pac | Benchmark::Roa => {
                RestructuringUtility::Low
            }
            Benchmark::Liv | Benchmark::Pap | Benchmark::Ser => RestructuringUtility::Medium,
            Benchmark::Ork | Benchmark::Kro | Benchmark::Myc => RestructuringUtility::High,
        }
    }

    /// Generates the synthetic stand-in at the given scale.
    ///
    /// Generation is deterministic: the same benchmark and scale always
    /// produce the same matrix.
    pub fn generate(self, scale: Scale) -> Coo {
        let f = scale.factor();
        let n = |base: usize| ((base as f64 * f) as usize).max(64);
        match self {
            // Road graphs: degree ≈ 2.1–2.4, extreme diameter, no hubs.
            Benchmark::Asi => road_graph(n(150_000), 0.05, 0x5ADE_0001),
            Benchmark::Roa => road_graph(n(250_000), 0.20, 0x5ADE_0009),
            // Social networks: power-law degrees (Chung–Lu).
            Benchmark::Liv => chung_lu(n(24_000), (205_000.0 * f) as usize, 2.3, 0x5ADE_0002),
            Benchmark::Ork => chung_lu(n(8_000), (300_000.0 * f) as usize, 2.1, 0x5ADE_0003),
            // Citation graph: community cliques + sparse cross links.
            Benchmark::Pap => citation_graph(n(6_000), 40, 0.5, 0x5ADE_0004),
            // Planar mesh, degree 6.
            Benchmark::Del => {
                let side = ((65_000.0 * f).sqrt() as usize).max(8);
                mesh2d(side, side)
            }
            // RMAT/Kronecker.
            Benchmark::Kro => rmat(
                (n(16_000)).next_power_of_two(),
                (260_000.0 * f) as usize,
                [0.57, 0.19, 0.19],
                0x5ADE_0006,
            ),
            // Mycielskian: iterate the real construction until the node
            // budget is reached; very few rows, very high degree.
            Benchmark::Myc => mycielskian_for_budget(n(1_536)),
            // 3-D stencil; the 500x100x100 aspect ratio of the original,
            // scaled to ~30k cells.
            Benchmark::Pac => {
                let side = ((6_000.0 * f).cbrt() as usize).max(4);
                stencil3d(5 * side, side, side)
            }
            // FEM with 3x3 DOF blocks.
            Benchmark::Ser => fem_blocks(n(10_500) / 3, 3, 14, 0x5ADE_000A),
        }
    }
}

/// Deterministic per-edge value in `[0.5, 1.5)`, derived from the edge
/// coordinates so that values do not depend on generation order.
fn edge_value(r: u32, c: u32) -> f32 {
    let mut h = (r as u64) << 32 | c as u64;
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    0.5 + (h % 1_000_000) as f32 / 1_000_000.0
}

/// Builds a symmetric adjacency matrix from undirected edge pairs,
/// deduplicating positions and dropping self-loops.
fn symmetric_from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Coo {
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for (u, v) in edges {
        if u == v || u as usize >= n || v as usize >= n {
            continue;
        }
        pairs.push((u, v));
        pairs.push((v, u));
    }
    pairs.sort_unstable();
    pairs.dedup();
    let triplets: Vec<(u32, u32, f32)> = pairs
        .into_iter()
        .map(|(r, c)| (r, c, edge_value(r, c)))
        .collect();
    Coo::from_triplets(n, n, &triplets).expect("generator edges are in range")
}

/// Road-network generator: nodes on a long 2-D lattice connected mostly to
/// lattice neighbours, with a fraction `highway` of longer-range shortcuts.
/// Average degree lands near 2.2 like `asia_osm` / `road_usa`.
pub fn road_graph(n: usize, highway: f64, seed: u64) -> Coo {
    let mut rng = Rng64::seed_from_u64(seed);
    // A thin strip: road networks are nearly one-dimensional at scale.
    let width = (n as f64).sqrt().max(2.0) as usize / 2 + 2;
    let mut edges = Vec::with_capacity(n * 2);
    for u in 0..n as u32 {
        // Chain neighbour: keeps the graph path-like (degree 2 backbone).
        if (u as usize + 1) < n && rng.gen_bool(0.95) {
            edges.push((u, u + 1));
        }
        // Occasional lattice rung one row over.
        if (u as usize + width) < n && rng.gen_bool(0.12) {
            edges.push((u, u + width as u32));
        }
        // Rare highway shortcut.
        if rng.gen_bool(highway * 0.1) {
            let v = rng.gen_range(0..n as u32);
            edges.push((u, v));
        }
    }
    symmetric_from_edges(n, edges)
}

/// Planar-mesh generator: a `w × h` grid with right, down and down-right
/// connections, giving degree ≈ 6 like a Delaunay triangulation.
pub fn mesh2d(w: usize, h: usize) -> Coo {
    let n = w * h;
    let idx = |x: usize, y: usize| (y * w + x) as u32;
    let mut edges = Vec::with_capacity(n * 3);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((idx(x, y), idx(x, y + 1)));
            }
            if x + 1 < w && y + 1 < h {
                edges.push((idx(x, y), idx(x + 1, y + 1)));
            }
        }
    }
    symmetric_from_edges(n, edges)
}

/// Chung–Lu power-law generator: endpoint `i` is drawn with probability
/// proportional to `(i+1)^(-1/(alpha-1))`, producing a degree distribution
/// with exponent ≈ `alpha` like social networks.
pub fn chung_lu(n: usize, num_edges: usize, alpha: f64, seed: u64) -> Coo {
    let mut rng = Rng64::seed_from_u64(seed);
    let beta = 1.0 / (alpha - 1.0);
    let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-beta)).collect();
    let mut cum: Vec<f64> = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cum.push(acc);
    }
    let total = acc;
    let sample = |rng: &mut Rng64| -> u32 {
        let x = rng.gen_f64() * total;
        cum.partition_point(|&c| c < x).min(n - 1) as u32
    };
    // Hubs are the low node ids; permute deterministically so the hot rows
    // are scattered across the index space like a real crawl ordering.
    let perm: Vec<u32> = {
        let mut p: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            p.swap(i, rng.gen_range(0..=i));
        }
        p
    };
    let edges = (0..num_edges)
        .map(|_| {
            let u = perm[sample(&mut rng) as usize];
            let v = perm[sample(&mut rng) as usize];
            (u, v)
        })
        .collect::<Vec<_>>();
    symmetric_from_edges(n, edges)
}

/// Citation-graph generator: communities of `community` nodes forming
/// near-cliques, plus a `cross` fraction of inter-community edges. Produces
/// the block-clustered structure of co-authorship/citation graphs.
pub fn citation_graph(n: usize, community: usize, cross: f64, seed: u64) -> Coo {
    let mut rng = Rng64::seed_from_u64(seed);
    let community = community.max(2);
    let mut edges = Vec::new();
    let num_comm = n.div_ceil(community);
    for comm in 0..num_comm {
        let start = comm * community;
        let end = ((comm + 1) * community).min(n);
        let size = end - start;
        // Near-clique: each pair is connected with high probability.
        for a in 0..size {
            for b in (a + 1)..size {
                if rng.gen_bool(0.85) {
                    edges.push(((start + a) as u32, (start + b) as u32));
                }
            }
        }
        // Cross links to random other communities.
        let num_cross = (size as f64 * cross) as usize;
        for _ in 0..num_cross {
            let u = rng.gen_range(start..end) as u32;
            let v = rng.gen_range(0..n) as u32;
            edges.push((u, v));
        }
    }
    symmetric_from_edges(n, edges)
}

/// RMAT (recursive matrix) generator, the Graph500 Kronecker kernel.
///
/// `probs = [a, b, c]` with the fourth quadrant probability `1 - a - b - c`.
/// `n` must be a power of two.
///
/// # Panics
///
/// Panics if `n` is not a power of two or the probabilities exceed 1.
pub fn rmat(n: usize, num_edges: usize, probs: [f64; 3], seed: u64) -> Coo {
    assert!(n.is_power_of_two(), "RMAT requires a power-of-two size");
    let [a, b, c] = probs;
    assert!(a + b + c <= 1.0, "quadrant probabilities exceed 1");
    let levels = n.trailing_zeros();
    let mut rng = Rng64::seed_from_u64(seed);
    let edges = (0..num_edges)
        .map(|_| {
            let (mut r, mut cc) = (0u32, 0u32);
            for _ in 0..levels {
                r <<= 1;
                cc <<= 1;
                let x = rng.gen_f64();
                if x < a {
                    // top-left
                } else if x < a + b {
                    cc |= 1;
                } else if x < a + b + c {
                    r |= 1;
                } else {
                    r |= 1;
                    cc |= 1;
                }
            }
            (r, cc)
        })
        .collect::<Vec<_>>();
    symmetric_from_edges(n, edges)
}

/// The Mycielski construction applied `iters` times starting from `K2`.
///
/// Each iteration maps a graph with `n` vertices and `m` edges to one with
/// `2n + 1` vertices and `3m + n` edges, increasing the chromatic number
/// without creating triangles. `mycielskian17` of Table 2 is this
/// construction; it yields very few rows with very high average degree.
pub fn mycielskian(iters: u32) -> Coo {
    // Start from K2: vertices {0, 1}, edge (0, 1).
    let mut n: usize = 2;
    let mut edges: Vec<(u32, u32)> = vec![(0, 1)];
    for _ in 0..iters {
        let mut next = Vec::with_capacity(edges.len() * 3 + n);
        // Original edges.
        next.extend(edges.iter().copied());
        // For each edge (u, v): shadow edges (u, v') and (u', v) where
        // x' = x + n.
        for &(u, v) in &edges {
            next.push((u, v + n as u32));
            next.push((u + n as u32, v));
        }
        // Apex vertex w = 2n connects to every shadow vertex.
        let w = (2 * n) as u32;
        for x in 0..n as u32 {
            next.push((x + n as u32, w));
        }
        edges = next;
        n = 2 * n + 1;
    }
    symmetric_from_edges(n, edges)
}

/// Runs [`mycielskian`] until the vertex count reaches `budget`.
pub fn mycielskian_for_budget(budget: usize) -> Coo {
    let mut iters = 0;
    let mut n = 2usize;
    while 2 * n < budget {
        n = 2 * n + 1;
        iters += 1;
    }
    mycielskian(iters)
}

/// 3-D stencil generator: an `x × y × z` grid where each cell connects to
/// its 18-neighbourhood (faces + edges), like particle-packing matrices.
pub fn stencil3d(x: usize, y: usize, z: usize) -> Coo {
    let n = x * y * z;
    let idx = |i: usize, j: usize, k: usize| (k * x * y + j * x + i) as u32;
    let mut edges = Vec::new();
    // Offsets covering half of the 18-neighbourhood (the symmetric closure
    // adds the other half).
    let offsets: [(isize, isize, isize); 9] = [
        (1, 0, 0),
        (0, 1, 0),
        (0, 0, 1),
        (1, 1, 0),
        (1, -1, 0),
        (1, 0, 1),
        (1, 0, -1),
        (0, 1, 1),
        (0, 1, -1),
    ];
    for k in 0..z {
        for j in 0..y {
            for i in 0..x {
                for &(di, dj, dk) in &offsets {
                    let (ni, nj, nk) = (i as isize + di, j as isize + dj, k as isize + dk);
                    if ni >= 0
                        && nj >= 0
                        && nk >= 0
                        && (ni as usize) < x
                        && (nj as usize) < y
                        && (nk as usize) < z
                    {
                        edges.push((idx(i, j, k), idx(ni as usize, nj as usize, nk as usize)));
                    }
                }
            }
        }
    }
    symmetric_from_edges(n, edges)
}

/// FEM block-matrix generator: `nodes` mesh points with `dof` degrees of
/// freedom each; every mesh point couples to ~`neighbors` nearby points and
/// each coupling is a dense `dof × dof` block, like the `Serena` reservoir
/// matrix.
pub fn fem_blocks(nodes: usize, dof: usize, neighbors: usize, seed: u64) -> Coo {
    let mut rng = Rng64::seed_from_u64(seed);
    let n = nodes * dof;
    let mut edges = Vec::new();
    for u in 0..nodes {
        // Couple to `neighbors` points in a local window, mimicking a 3-D
        // mesh ordering where neighbours have nearby indices.
        let window = (neighbors * 4).max(8);
        for _ in 0..neighbors.div_ceil(2) {
            let lo = u.saturating_sub(window);
            let hi = (u + window).min(nodes - 1);
            let v = rng.gen_range(lo..=hi);
            if v == u {
                continue;
            }
            // Dense dof × dof block for the coupling (both directions come
            // from the symmetric closure).
            for a in 0..dof {
                for b in 0..dof {
                    edges.push(((u * dof + a) as u32, (v * dof + b) as u32));
                }
            }
        }
        // Diagonal block.
        for a in 0..dof {
            for b in (a + 1)..dof {
                edges.push(((u * dof + a) as u32, (u * dof + b) as u32));
            }
        }
    }
    let mut coo = symmetric_from_edges(n, edges);
    // Add the diagonal itself (FEM matrices have full diagonals).
    let mut triplets: Vec<(u32, u32, f32)> = coo.iter().collect();
    for i in 0..n as u32 {
        triplets.push((i, i, edge_value(i, i)));
    }
    coo = Coo::from_triplets(n, n, &triplets).expect("diagonal entries are in range");
    coo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_symmetric(coo: &Coo) -> bool {
        let set: std::collections::HashSet<(u32, u32)> =
            coo.iter().map(|(r, c, _)| (r, c)).collect();
        set.iter().all(|&(r, c)| set.contains(&(c, r)))
    }

    #[test]
    fn all_benchmarks_generate_nonempty_square_matrices() {
        for b in Benchmark::ALL {
            let m = b.generate(Scale::Tiny);
            assert!(m.nnz() > 0, "{} is empty", b.short_name());
            assert_eq!(m.num_rows(), m.num_cols(), "{}", b.short_name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Benchmark::Kro.generate(Scale::Tiny);
        let b = Benchmark::Kro.generate(Scale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn road_graph_has_low_degree() {
        let g = road_graph(5_000, 0.05, 42);
        let avg = g.nnz() as f64 / g.num_rows() as f64;
        assert!(avg > 1.2 && avg < 4.0, "road degree {avg}");
        assert!(is_symmetric(&g));
    }

    #[test]
    fn mesh2d_has_degree_near_six() {
        let g = mesh2d(50, 50);
        let avg = g.nnz() as f64 / g.num_rows() as f64;
        assert!(avg > 4.5 && avg < 6.5, "mesh degree {avg}");
        assert!(is_symmetric(&g));
    }

    #[test]
    fn chung_lu_has_skewed_degrees() {
        let g = chung_lu(2_000, 20_000, 2.1, 7);
        let mut deg = vec![0usize; g.num_rows()];
        for (r, _, _) in g.iter() {
            deg[r as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let avg = g.nnz() as f64 / g.num_rows() as f64;
        assert!(max as f64 > avg * 8.0, "expected hubs: max={max} avg={avg}");
    }

    #[test]
    fn rmat_requires_power_of_two() {
        let g = rmat(1024, 5_000, [0.57, 0.19, 0.19], 3);
        assert!(g.num_rows() == 1024);
        assert!(is_symmetric(&g));
    }

    #[test]
    #[should_panic]
    fn rmat_rejects_non_power_of_two() {
        let _ = rmat(1000, 10, [0.57, 0.19, 0.19], 3);
    }

    #[test]
    fn mycielskian_sizes_follow_recurrence() {
        // n_0 = 2, n_{k+1} = 2 n_k + 1, m_{k+1} = 3 m_k + n_k.
        let g = mycielskian(3);
        assert_eq!(g.num_rows(), 23);
        // m: 1 -> 5 -> 15... m1 = 3*1+2 = 5, m2 = 3*5+5 = 20, m3 = 3*20+11 = 71.
        assert_eq!(g.nnz(), 2 * 71);
        assert!(is_symmetric(&g));
    }

    #[test]
    fn mycielskian_budget_respects_bound() {
        let g = mycielskian_for_budget(1_000);
        assert!(g.num_rows() <= 1_000);
        assert!(g.num_rows() > 250);
    }

    #[test]
    fn stencil3d_degree_near_eighteen() {
        let g = stencil3d(10, 10, 10);
        let avg = g.nnz() as f64 / g.num_rows() as f64;
        assert!(avg > 12.0 && avg <= 18.0, "stencil degree {avg}");
    }

    #[test]
    fn fem_blocks_have_full_diagonal() {
        let g = fem_blocks(100, 3, 8, 11);
        let diag: usize = g.iter().filter(|&(r, c, _)| r == c).count();
        assert_eq!(diag, 300);
    }

    #[test]
    fn myc_has_few_rows_and_high_degree() {
        let m = Benchmark::Myc.generate(Scale::Default);
        let avg = m.nnz() as f64 / m.num_rows() as f64;
        let ork = Benchmark::Ork.generate(Scale::Default);
        let ork_avg = ork.nnz() as f64 / ork.num_rows() as f64;
        assert!(m.num_rows() < ork.num_rows());
        assert!(avg > ork_avg, "MYC degree {avg} vs ORK {ork_avg}");
    }

    #[test]
    fn scale_ordering_is_monotone() {
        let tiny = Benchmark::Del.generate(Scale::Tiny);
        let small = Benchmark::Del.generate(Scale::Small);
        assert!(small.nnz() > tiny.nnz());
    }

    #[test]
    fn table2_metadata_is_complete() {
        for b in Benchmark::ALL {
            assert!(!b.short_name().is_empty());
            assert!(!b.full_name().is_empty());
            assert!(!b.domain().is_empty());
        }
    }

    #[test]
    fn edge_values_are_in_range() {
        let g = Benchmark::Pap.generate(Scale::Tiny);
        for (_, _, v) in g.iter() {
            assert!((0.5..1.5).contains(&v));
        }
    }
}
