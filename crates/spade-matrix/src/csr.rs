use crate::Coo;

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// The CPU and GPU baselines use CSR for high performance (§6.C: "In our
/// baselines, we use the CSR format"), while SPADE itself consumes the
/// (tiled) COO format.
///
/// # Example
///
/// ```
/// use spade_matrix::{Coo, Csr};
///
/// # fn main() -> Result<(), spade_matrix::MatrixError> {
/// let coo = Coo::from_triplets(3, 3, &[(0, 1, 2.0), (2, 0, 1.0)])?;
/// let csr = coo.to_csr();
/// assert_eq!(csr.row_nnz(0), 1);
/// assert_eq!(csr.row_nnz(1), 0);
/// assert_eq!(csr.to_coo(), coo);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    num_rows: usize,
    num_cols: usize,
    row_ptr: Vec<usize>,
    c_ids: Vec<u32>,
    vals: Vec<f32>,
}

impl Csr {
    /// Converts a COO matrix to CSR.
    pub fn from_coo(coo: &Coo) -> Self {
        let mut row_ptr = vec![0usize; coo.num_rows() + 1];
        for &r in coo.r_ids() {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 1..row_ptr.len() {
            row_ptr[i] += row_ptr[i - 1];
        }
        // COO is already row-major sorted, so the column/value arrays can be
        // reused verbatim.
        Csr {
            num_rows: coo.num_rows(),
            num_cols: coo.num_cols(),
            row_ptr,
            c_ids: coo.c_ids().to_vec(),
            vals: coo.vals().to_vec(),
        }
    }

    /// Converts back to COO format.
    pub fn to_coo(&self) -> Coo {
        let mut r_ids = Vec::with_capacity(self.nnz());
        for r in 0..self.num_rows {
            for _ in self.row_ptr[r]..self.row_ptr[r + 1] {
                r_ids.push(r as u32);
            }
        }
        Coo::from_sorted_arrays(
            self.num_rows,
            self.num_cols,
            r_ids,
            self.c_ids.clone(),
            self.vals.clone(),
        )
        .expect("a valid CSR always converts to a valid COO")
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The row-pointer array (`num_rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, row by row.
    pub fn c_ids(&self) -> &[u32] {
        &self.c_ids
    }

    /// Non-zero values, row by row.
    pub fn vals(&self) -> &[f32] {
        &self.vals
    }

    /// Number of non-zeros in `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_rows`.
    pub fn row_nnz(&self, row: usize) -> usize {
        self.row_ptr[row + 1] - self.row_ptr[row]
    }

    /// The column indices and values of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_rows`.
    pub fn row_entries(&self, row: usize) -> (&[u32], &[f32]) {
        let range = self.row_ptr[row]..self.row_ptr[row + 1];
        (&self.c_ids[range.clone()], &self.vals[range])
    }

    /// Bytes occupied by the CSR arrays.
    pub fn size_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.c_ids.len() * std::mem::size_of::<u32>()
            + self.vals.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use crate::Coo;

    fn sample() -> Coo {
        Coo::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 3, 2.0),
                (2, 1, 3.0),
                (3, 0, 4.0),
                (3, 3, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_through_csr() {
        let coo = sample();
        assert_eq!(coo.to_csr().to_coo(), coo);
    }

    #[test]
    fn row_ptr_is_monotone_and_complete() {
        let csr = sample().to_csr();
        assert_eq!(csr.row_ptr(), &[0, 2, 2, 3, 5]);
        assert_eq!(csr.nnz(), 5);
    }

    #[test]
    fn row_entries_match() {
        let csr = sample().to_csr();
        let (cols, vals) = csr.row_entries(3);
        assert_eq!(cols, &[0, 3]);
        assert_eq!(vals, &[4.0, 5.0]);
        assert_eq!(csr.row_nnz(1), 0);
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let coo = Coo::from_triplets(3, 5, &[]).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.to_coo(), coo);
    }

    #[test]
    fn size_bytes_positive_for_nonempty() {
        let csr = sample().to_csr();
        assert!(csr.size_bytes() > 0);
    }
}
