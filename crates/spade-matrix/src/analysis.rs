//! Sparse-matrix structure analysis.
//!
//! The SPADE evaluation groups matrices by *Restructuring Utility* (RU):
//! whether a matrix benefits from tiling, scheduling barriers and cache
//! bypassing (§6.B). RU depends on the reuse structure of the matrix, which
//! this module quantifies with cheap, purely structural statistics.

use crate::Coo;

/// How much a matrix benefits from SPADE's flexibility knobs (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RestructuringUtility {
    /// Rarely benefits: little reuse to exploit (road graphs, meshes).
    Low,
    /// Benefits in some settings (one kernel, or only large K).
    Medium,
    /// Consistently benefits (power-law and dense-row matrices).
    High,
}

impl std::fmt::Display for RestructuringUtility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestructuringUtility::Low => write!(f, "Low"),
            RestructuringUtility::Medium => write!(f, "Medium"),
            RestructuringUtility::High => write!(f, "High"),
        }
    }
}

/// Structural statistics of a sparse matrix (the Table 2 columns plus the
/// locality measures the RU classifier uses).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of rows.
    pub num_rows: usize,
    /// Number of columns.
    pub num_cols: usize,
    /// Number of non-zeros.
    pub nnz: usize,
    /// `nnz / (rows · cols)`.
    pub density: f64,
    /// Mean non-zeros per row.
    pub avg_degree: f64,
    /// Largest row population.
    pub max_degree: usize,
    /// Ratio of max to mean degree — skew indicator (hubs ⇒ reuse).
    pub degree_skew: f64,
    /// Mean |row − col| over non-zeros, normalized by the matrix dimension.
    /// Near-diagonal matrices (roads, meshes, stencils) score low.
    pub normalized_bandwidth: f64,
    /// Fraction of non-zeros whose column index repeats within a window of
    /// 256 consecutive rows — a proxy for cMatrix reuse inside a tile.
    pub local_column_reuse: f64,
}

impl MatrixStats {
    /// Computes statistics for `matrix`.
    pub fn compute(matrix: &Coo) -> Self {
        let num_rows = matrix.num_rows();
        let num_cols = matrix.num_cols();
        let nnz = matrix.nnz();
        let mut degree = vec![0usize; num_rows];
        let mut band_sum = 0f64;
        for (r, c, _) in matrix.iter() {
            degree[r as usize] += 1;
            band_sum += (r as f64 - c as f64).abs();
        }
        let max_degree = degree.iter().copied().max().unwrap_or(0);
        let avg_degree = if num_rows == 0 {
            0.0
        } else {
            nnz as f64 / num_rows as f64
        };
        let dim = num_rows.max(num_cols).max(1) as f64;
        let normalized_bandwidth = if nnz == 0 {
            0.0
        } else {
            band_sum / nnz as f64 / dim
        };

        // Column reuse within 256-row windows: walk the (row-major) entries
        // and count columns already seen in the current window.
        let window = 256usize;
        let mut seen: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        let mut window_start = 0u32;
        let mut reused = 0usize;
        for (r, c, _) in matrix.iter() {
            if r >= window_start + window as u32 {
                seen.clear();
                window_start = (r / window as u32) * window as u32;
            }
            let count = seen.entry(c).or_insert(0);
            if *count > 0 {
                reused += 1;
            }
            *count += 1;
        }
        let local_column_reuse = if nnz == 0 {
            0.0
        } else {
            reused as f64 / nnz as f64
        };

        MatrixStats {
            num_rows,
            num_cols,
            nnz,
            density: matrix.density(),
            avg_degree,
            max_degree,
            degree_skew: if avg_degree > 0.0 {
                max_degree as f64 / avg_degree
            } else {
                0.0
            },
            normalized_bandwidth,
            local_column_reuse,
        }
    }

    /// Classifies the matrix's Restructuring Utility from its structure.
    ///
    /// High RU needs exploitable reuse: either heavy degree skew with
    /// substantial average degree (power-law hubs) or high local column
    /// reuse (dense rows). Low RU matrices are near-diagonal with low
    /// degree — their reuse is already captured without restructuring.
    pub fn classify_ru(&self) -> RestructuringUtility {
        let hublike = self.degree_skew > 50.0 && self.avg_degree > 8.0;
        let dense_rows = self.avg_degree > 60.0;
        let local = self.normalized_bandwidth < 0.05 && self.avg_degree < 30.0;
        if dense_rows || (hublike && self.local_column_reuse > 0.3) {
            RestructuringUtility::High
        } else if local || self.avg_degree < 4.0 {
            RestructuringUtility::Low
        } else {
            RestructuringUtility::Medium
        }
    }
}

/// Per-row degree histogram with logarithmic buckets; used by the workload
/// reports to show degree skew.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// `buckets[i]` counts rows with degree in `[2^i, 2^(i+1))`; bucket 0
    /// also counts degree-0 rows.
    pub buckets: Vec<usize>,
}

impl DegreeHistogram {
    /// Computes the histogram for `matrix`.
    pub fn compute(matrix: &Coo) -> Self {
        let mut degree = vec![0usize; matrix.num_rows()];
        for &r in matrix.r_ids() {
            degree[r as usize] += 1;
        }
        let mut buckets = Vec::new();
        for d in degree {
            let b = if d <= 1 {
                0
            } else {
                (usize::BITS - d.leading_zeros()) as usize - 1
            };
            if buckets.len() <= b {
                buckets.resize(b + 1, 0);
            }
            buckets[b] += 1;
        }
        DegreeHistogram { buckets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{Benchmark, Scale};
    use crate::Coo;

    #[test]
    fn stats_of_diagonal_matrix() {
        let a = Coo::from_triplets(4, 4, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (3, 3, 1.0)])
            .unwrap();
        let s = MatrixStats::compute(&a);
        assert_eq!(s.nnz, 4);
        assert_eq!(s.avg_degree, 1.0);
        assert_eq!(s.max_degree, 1);
        assert_eq!(s.normalized_bandwidth, 0.0);
        assert_eq!(s.local_column_reuse, 0.0);
    }

    #[test]
    fn stats_of_empty_matrix_do_not_divide_by_zero() {
        let a = Coo::from_triplets(3, 3, &[]).unwrap();
        let s = MatrixStats::compute(&a);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.degree_skew, 0.0);
    }

    #[test]
    fn column_reuse_detects_repeated_columns() {
        // All nnz in the same column within one window.
        let a = Coo::from_triplets(4, 4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 2, 1.0)]).unwrap();
        let s = MatrixStats::compute(&a);
        assert!(s.local_column_reuse > 0.5);
    }

    #[test]
    fn road_class_is_low_ru() {
        let m = Benchmark::Roa.generate(Scale::Tiny);
        let s = MatrixStats::compute(&m);
        assert_eq!(s.classify_ru(), RestructuringUtility::Low);
    }

    #[test]
    fn myc_class_is_high_ru() {
        // Classification needs enough structure; use the Default scale
        // (MYC stays small — ~1.5k rows — so this is still fast).
        let m = Benchmark::Myc.generate(Scale::Default);
        let s = MatrixStats::compute(&m);
        assert_eq!(s.classify_ru(), RestructuringUtility::High);
    }

    #[test]
    fn suite_classification_matches_table2() {
        // At the Default scale, the structural classifier reproduces the
        // Table 2 RU column for the whole suite.
        for b in Benchmark::ALL {
            let m = b.generate(Scale::Default);
            let s = MatrixStats::compute(&m);
            assert_eq!(
                s.classify_ru(),
                b.expected_ru(),
                "{} misclassified: {:?}",
                b.short_name(),
                s
            );
        }
    }

    #[test]
    fn histogram_counts_all_rows() {
        let m = Benchmark::Kro.generate(Scale::Tiny);
        let h = DegreeHistogram::compute(&m);
        assert_eq!(h.buckets.iter().sum::<usize>(), m.num_rows());
    }

    #[test]
    fn ru_display_matches_table2_names() {
        assert_eq!(RestructuringUtility::Low.to_string(), "Low");
        assert_eq!(RestructuringUtility::Medium.to_string(), "Medium");
        assert_eq!(RestructuringUtility::High.to_string(), "High");
    }

    #[test]
    fn ru_ordering_low_to_high() {
        assert!(RestructuringUtility::Low < RestructuringUtility::Medium);
        assert!(RestructuringUtility::Medium < RestructuringUtility::High);
    }
}
