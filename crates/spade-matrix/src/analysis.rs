//! Sparse-matrix structure analysis.
//!
//! The SPADE evaluation groups matrices by *Restructuring Utility* (RU):
//! whether a matrix benefits from tiling, scheduling barriers and cache
//! bypassing (§6.B). RU depends on the reuse structure of the matrix, which
//! this module quantifies with cheap, purely structural statistics.

use crate::Coo;

/// How much a matrix benefits from SPADE's flexibility knobs (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RestructuringUtility {
    /// Rarely benefits: little reuse to exploit (road graphs, meshes).
    Low,
    /// Benefits in some settings (one kernel, or only large K).
    Medium,
    /// Consistently benefits (power-law and dense-row matrices).
    High,
}

impl std::fmt::Display for RestructuringUtility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestructuringUtility::Low => write!(f, "Low"),
            RestructuringUtility::Medium => write!(f, "Medium"),
            RestructuringUtility::High => write!(f, "High"),
        }
    }
}

/// Structural statistics of a sparse matrix (the Table 2 columns plus the
/// locality measures the RU classifier uses).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of rows.
    pub num_rows: usize,
    /// Number of columns.
    pub num_cols: usize,
    /// Number of non-zeros.
    pub nnz: usize,
    /// `nnz / (rows · cols)`.
    pub density: f64,
    /// Mean non-zeros per row.
    pub avg_degree: f64,
    /// Largest row population.
    pub max_degree: usize,
    /// Ratio of max to mean degree — skew indicator (hubs ⇒ reuse).
    pub degree_skew: f64,
    /// Mean |row − col| over non-zeros, normalized by the matrix dimension.
    /// Near-diagonal matrices (roads, meshes, stencils) score low.
    pub normalized_bandwidth: f64,
    /// Fraction of non-zeros whose column index repeats within a window of
    /// 256 consecutive rows — a proxy for cMatrix reuse inside a tile.
    pub local_column_reuse: f64,
}

impl MatrixStats {
    /// Computes statistics for `matrix`.
    pub fn compute(matrix: &Coo) -> Self {
        let num_rows = matrix.num_rows();
        let num_cols = matrix.num_cols();
        let nnz = matrix.nnz();
        let mut degree = vec![0usize; num_rows];
        let mut band_sum = 0f64;
        for (r, c, _) in matrix.iter() {
            degree[r as usize] += 1;
            band_sum += (r as f64 - c as f64).abs();
        }
        let max_degree = degree.iter().copied().max().unwrap_or(0);
        let avg_degree = if num_rows == 0 {
            0.0
        } else {
            nnz as f64 / num_rows as f64
        };
        let dim = num_rows.max(num_cols).max(1) as f64;
        let normalized_bandwidth = if nnz == 0 {
            0.0
        } else {
            band_sum / nnz as f64 / dim
        };

        // Column reuse within 256-row windows: walk the (row-major) entries
        // and count columns already seen in the current window.
        let window = 256usize;
        let mut seen: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        let mut window_start = 0u32;
        let mut reused = 0usize;
        for (r, c, _) in matrix.iter() {
            if r >= window_start + window as u32 {
                seen.clear();
                window_start = (r / window as u32) * window as u32;
            }
            let count = seen.entry(c).or_insert(0);
            if *count > 0 {
                reused += 1;
            }
            *count += 1;
        }
        let local_column_reuse = if nnz == 0 {
            0.0
        } else {
            reused as f64 / nnz as f64
        };

        MatrixStats {
            num_rows,
            num_cols,
            nnz,
            density: matrix.density(),
            avg_degree,
            max_degree,
            degree_skew: if avg_degree > 0.0 {
                max_degree as f64 / avg_degree
            } else {
                0.0
            },
            normalized_bandwidth,
            local_column_reuse,
        }
    }

    /// Classifies the matrix's Restructuring Utility from its structure.
    ///
    /// High RU needs exploitable reuse: either heavy degree skew with
    /// substantial average degree (power-law hubs) or high local column
    /// reuse (dense rows). Low RU matrices are near-diagonal with low
    /// degree — their reuse is already captured without restructuring.
    pub fn classify_ru(&self) -> RestructuringUtility {
        let hublike = self.degree_skew > 50.0 && self.avg_degree > 8.0;
        let dense_rows = self.avg_degree > 60.0;
        let local = self.normalized_bandwidth < 0.05 && self.avg_degree < 30.0;
        if dense_rows || (hublike && self.local_column_reuse > 0.3) {
            RestructuringUtility::High
        } else if local || self.avg_degree < 4.0 {
            RestructuringUtility::Low
        } else {
            RestructuringUtility::Medium
        }
    }
}

/// Version of the [`MatrixFeatures`] vector layout. Bump whenever the
/// set, order or semantics of the features change; trained cost models
/// record the version they were fitted against and refuse to score
/// vectors from a different layout.
pub const FEATURE_VECTOR_VERSION: u32 = 1;

/// Row-panel height used for the nnz-per-panel histogram summary inside
/// [`MatrixFeatures`]. Fixed so the features are comparable across
/// matrices and stable across versions.
pub const FEATURE_PANEL_ROWS: usize = 64;

/// Names of the features in [`MatrixFeatures::as_vec`] order. The length
/// and order are part of [`FEATURE_VECTOR_VERSION`].
pub const FEATURE_NAMES: [&str; 14] = [
    "nnz",
    "num_rows",
    "num_cols",
    "density",
    "avg_degree",
    "degree_skew",
    "degree_cov",
    "max_degree",
    "ru_class",
    "normalized_bandwidth",
    "local_column_reuse",
    "panel_nnz_mean",
    "panel_nnz_cov",
    "panel_nnz_max_ratio",
];

/// A fixed, versioned structural feature vector for cost modelling.
///
/// This is the "inspector" view of a matrix reduced to a handful of
/// numbers: the [`MatrixStats`] columns plus a degree coefficient of
/// variation and a summary of the nnz-per-row-panel distribution (how
/// evenly work spreads across [`FEATURE_PANEL_ROWS`]-row panels). All
/// values are raw (untransformed) — consumers that want log scaling
/// apply it themselves so the stored vector stays interpretable.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixFeatures {
    /// Number of non-zeros.
    pub nnz: f64,
    /// Number of rows.
    pub num_rows: f64,
    /// Number of columns.
    pub num_cols: f64,
    /// `nnz / (rows · cols)`.
    pub density: f64,
    /// Mean non-zeros per row.
    pub avg_degree: f64,
    /// Max-over-mean degree ratio.
    pub degree_skew: f64,
    /// Coefficient of variation of the row degrees (stddev / mean).
    pub degree_cov: f64,
    /// Largest row population.
    pub max_degree: f64,
    /// Restructuring-utility class as a number: Low=0, Medium=1, High=2.
    pub ru_class: f64,
    /// Mean |row − col| over non-zeros, normalized by the dimension.
    pub normalized_bandwidth: f64,
    /// Fraction of non-zeros whose column repeats within a 256-row window.
    pub local_column_reuse: f64,
    /// Mean nnz per [`FEATURE_PANEL_ROWS`]-row panel.
    pub panel_nnz_mean: f64,
    /// Coefficient of variation of nnz across row panels.
    pub panel_nnz_cov: f64,
    /// Max-over-mean nnz ratio across row panels (load-imbalance proxy).
    pub panel_nnz_max_ratio: f64,
}

impl MatrixFeatures {
    /// Computes the feature vector for `matrix`.
    pub fn compute(matrix: &Coo) -> Self {
        let stats = MatrixStats::compute(matrix);
        Self::from_stats(matrix, &stats)
    }

    /// Computes the feature vector reusing already-computed `stats`.
    pub fn from_stats(matrix: &Coo, stats: &MatrixStats) -> Self {
        let num_rows = matrix.num_rows();
        let mut degree = vec![0usize; num_rows];
        let num_panels = num_rows.div_ceil(FEATURE_PANEL_ROWS).max(1);
        let mut panel_nnz = vec![0usize; num_panels];
        for &r in matrix.r_ids() {
            degree[r as usize] += 1;
            panel_nnz[r as usize / FEATURE_PANEL_ROWS] += 1;
        }
        let degree_cov = coefficient_of_variation(&degree);
        let panel_mean = if num_panels == 0 {
            0.0
        } else {
            stats.nnz as f64 / num_panels as f64
        };
        let panel_max = panel_nnz.iter().copied().max().unwrap_or(0) as f64;
        MatrixFeatures {
            nnz: stats.nnz as f64,
            num_rows: stats.num_rows as f64,
            num_cols: stats.num_cols as f64,
            density: stats.density,
            avg_degree: stats.avg_degree,
            degree_skew: stats.degree_skew,
            degree_cov,
            max_degree: stats.max_degree as f64,
            ru_class: match stats.classify_ru() {
                RestructuringUtility::Low => 0.0,
                RestructuringUtility::Medium => 1.0,
                RestructuringUtility::High => 2.0,
            },
            normalized_bandwidth: stats.normalized_bandwidth,
            local_column_reuse: stats.local_column_reuse,
            panel_nnz_mean: panel_mean,
            panel_nnz_cov: coefficient_of_variation(&panel_nnz),
            panel_nnz_max_ratio: if panel_mean > 0.0 {
                panel_max / panel_mean
            } else {
                0.0
            },
        }
    }

    /// The features as a vector in [`FEATURE_NAMES`] order.
    pub fn as_vec(&self) -> Vec<f64> {
        vec![
            self.nnz,
            self.num_rows,
            self.num_cols,
            self.density,
            self.avg_degree,
            self.degree_skew,
            self.degree_cov,
            self.max_degree,
            self.ru_class,
            self.normalized_bandwidth,
            self.local_column_reuse,
            self.panel_nnz_mean,
            self.panel_nnz_cov,
            self.panel_nnz_max_ratio,
        ]
    }

    /// `(name, value)` pairs in [`FEATURE_NAMES`] order — the
    /// serialization-agnostic form (spade-matrix has no JSON dependency;
    /// callers map the pairs into whatever codec they use).
    pub fn to_pairs(&self) -> Vec<(&'static str, f64)> {
        FEATURE_NAMES.into_iter().zip(self.as_vec()).collect()
    }

    /// Rebuilds a feature vector from values in [`FEATURE_NAMES`] order.
    /// Returns `None` when the length does not match the current layout.
    pub fn from_vec(values: &[f64]) -> Option<Self> {
        if values.len() != FEATURE_NAMES.len() {
            return None;
        }
        Some(MatrixFeatures {
            nnz: values[0],
            num_rows: values[1],
            num_cols: values[2],
            density: values[3],
            avg_degree: values[4],
            degree_skew: values[5],
            degree_cov: values[6],
            max_degree: values[7],
            ru_class: values[8],
            normalized_bandwidth: values[9],
            local_column_reuse: values[10],
            panel_nnz_mean: values[11],
            panel_nnz_cov: values[12],
            panel_nnz_max_ratio: values[13],
        })
    }
}

fn coefficient_of_variation(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let n = counts.len() as f64;
    let mean = counts.iter().copied().sum::<usize>() as f64 / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// Per-row degree histogram with logarithmic buckets; used by the workload
/// reports to show degree skew.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// `buckets[i]` counts rows with degree in `[2^i, 2^(i+1))`; bucket 0
    /// also counts degree-0 rows.
    pub buckets: Vec<usize>,
}

impl DegreeHistogram {
    /// Computes the histogram for `matrix`.
    pub fn compute(matrix: &Coo) -> Self {
        let mut degree = vec![0usize; matrix.num_rows()];
        for &r in matrix.r_ids() {
            degree[r as usize] += 1;
        }
        let mut buckets = Vec::new();
        for d in degree {
            let b = if d <= 1 {
                0
            } else {
                (usize::BITS - d.leading_zeros()) as usize - 1
            };
            if buckets.len() <= b {
                buckets.resize(b + 1, 0);
            }
            buckets[b] += 1;
        }
        DegreeHistogram { buckets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{Benchmark, Scale};
    use crate::Coo;

    #[test]
    fn stats_of_diagonal_matrix() {
        let a = Coo::from_triplets(4, 4, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (3, 3, 1.0)])
            .unwrap();
        let s = MatrixStats::compute(&a);
        assert_eq!(s.nnz, 4);
        assert_eq!(s.avg_degree, 1.0);
        assert_eq!(s.max_degree, 1);
        assert_eq!(s.normalized_bandwidth, 0.0);
        assert_eq!(s.local_column_reuse, 0.0);
    }

    #[test]
    fn stats_of_empty_matrix_do_not_divide_by_zero() {
        let a = Coo::from_triplets(3, 3, &[]).unwrap();
        let s = MatrixStats::compute(&a);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.degree_skew, 0.0);
    }

    #[test]
    fn column_reuse_detects_repeated_columns() {
        // All nnz in the same column within one window.
        let a = Coo::from_triplets(4, 4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 2, 1.0)]).unwrap();
        let s = MatrixStats::compute(&a);
        assert!(s.local_column_reuse > 0.5);
    }

    #[test]
    fn road_class_is_low_ru() {
        let m = Benchmark::Roa.generate(Scale::Tiny);
        let s = MatrixStats::compute(&m);
        assert_eq!(s.classify_ru(), RestructuringUtility::Low);
    }

    #[test]
    fn myc_class_is_high_ru() {
        // Classification needs enough structure; use the Default scale
        // (MYC stays small — ~1.5k rows — so this is still fast).
        let m = Benchmark::Myc.generate(Scale::Default);
        let s = MatrixStats::compute(&m);
        assert_eq!(s.classify_ru(), RestructuringUtility::High);
    }

    #[test]
    fn suite_classification_matches_table2() {
        // At the Default scale, the structural classifier reproduces the
        // Table 2 RU column for the whole suite.
        for b in Benchmark::ALL {
            let m = b.generate(Scale::Default);
            let s = MatrixStats::compute(&m);
            assert_eq!(
                s.classify_ru(),
                b.expected_ru(),
                "{} misclassified: {:?}",
                b.short_name(),
                s
            );
        }
    }

    #[test]
    fn histogram_counts_all_rows() {
        let m = Benchmark::Kro.generate(Scale::Tiny);
        let h = DegreeHistogram::compute(&m);
        assert_eq!(h.buckets.iter().sum::<usize>(), m.num_rows());
    }

    #[test]
    fn ru_display_matches_table2_names() {
        assert_eq!(RestructuringUtility::Low.to_string(), "Low");
        assert_eq!(RestructuringUtility::Medium.to_string(), "Medium");
        assert_eq!(RestructuringUtility::High.to_string(), "High");
    }

    #[test]
    fn ru_ordering_low_to_high() {
        assert!(RestructuringUtility::Low < RestructuringUtility::Medium);
        assert!(RestructuringUtility::Medium < RestructuringUtility::High);
    }

    #[test]
    fn feature_vector_matches_names_and_roundtrips() {
        let m = Benchmark::Kro.generate(Scale::Tiny);
        let f = MatrixFeatures::compute(&m);
        let v = f.as_vec();
        assert_eq!(v.len(), FEATURE_NAMES.len());
        assert_eq!(f.to_pairs().len(), FEATURE_NAMES.len());
        assert_eq!(MatrixFeatures::from_vec(&v), Some(f.clone()));
        assert_eq!(MatrixFeatures::from_vec(&v[..3]), None);
        assert!(v.iter().all(|x| x.is_finite()));
        assert_eq!(f.nnz, m.nnz() as f64);
        assert_eq!(f.num_rows, m.num_rows() as f64);
    }

    #[test]
    fn feature_vector_of_empty_matrix_is_finite() {
        let a = Coo::from_triplets(3, 3, &[]).unwrap();
        let f = MatrixFeatures::compute(&a);
        assert!(f.as_vec().iter().all(|x| x.is_finite()));
        assert_eq!(f.panel_nnz_mean, 0.0);
        assert_eq!(f.panel_nnz_max_ratio, 0.0);
    }

    #[test]
    fn panel_imbalance_shows_in_max_ratio() {
        // All nnz in one 64-row panel of a 256-row matrix: the max panel
        // carries 4x the mean.
        let trips: Vec<(u32, u32, f32)> = (0..32).map(|i| (i % 8, i % 16, 1.0)).collect();
        let a = Coo::from_triplets(256, 16, &trips).unwrap();
        let f = MatrixFeatures::compute(&a);
        assert!(f.panel_nnz_max_ratio > 3.0, "{}", f.panel_nnz_max_ratio);
        assert!(f.panel_nnz_cov > 1.0, "{}", f.panel_nnz_cov);
    }

    #[test]
    fn ru_class_feature_tracks_classifier() {
        let roa = MatrixFeatures::compute(&Benchmark::Roa.generate(Scale::Tiny));
        assert_eq!(roa.ru_class, 0.0);
        let myc = MatrixFeatures::compute(&Benchmark::Myc.generate(Scale::Default));
        assert_eq!(myc.ru_class, 2.0);
    }
}
