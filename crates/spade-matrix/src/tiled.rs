use crate::{Coo, MatrixError, FLOATS_PER_LINE};

/// Tiling parameters for the sparse input matrix (Figure 4a of the paper).
///
/// A *row panel* spans `row_panel_size` consecutive rows; a *column panel*
/// spans `col_panel_size` consecutive columns; a *tile* is their
/// intersection. SPADE imposes no upper or lower bound on tile sizes
/// (§4.2) — a column panel as wide as the whole matrix reproduces the
/// untiled row-panel execution of SPADE Base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TilingConfig {
    /// Rows per row panel.
    pub row_panel_size: usize,
    /// Columns per column panel.
    pub col_panel_size: usize,
}

impl TilingConfig {
    /// Creates a tiling configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidTiling`] if either panel size is zero.
    pub fn new(row_panel_size: usize, col_panel_size: usize) -> Result<Self, MatrixError> {
        if row_panel_size == 0 {
            return Err(MatrixError::InvalidTiling {
                reason: "row panel size is zero".into(),
            });
        }
        if col_panel_size == 0 {
            return Err(MatrixError::InvalidTiling {
                reason: "column panel size is zero".into(),
            });
        }
        Ok(TilingConfig {
            row_panel_size,
            col_panel_size,
        })
    }

    /// The SPADE Base configuration for a matrix with `num_cols` columns:
    /// row panels of 256 rows and a single column panel spanning the whole
    /// matrix (§7.A).
    pub fn base(num_cols: usize) -> Self {
        TilingConfig {
            row_panel_size: 256,
            col_panel_size: num_cols.max(1),
        }
    }
}

/// Metadata describing one tile of a [`TiledCoo`] — the per-tile entries of
/// the Appendix A tiling metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileInfo {
    /// Offset of the tile's first non-zero in the reordered `r_ids` /
    /// `c_ids` / `vals` arrays (`sparse_in_start_offset`).
    pub sparse_in_start: usize,
    /// Number of non-zeros in the tile (`tile_NNZ_num`).
    pub nnz: usize,
    /// Offset of the tile's first output value in the padded output values
    /// array (`sparse_out_start_offset`). Always cache-line aligned so that
    /// SDDMM output tiles can be written through the bypass buffer (§4.3).
    pub sparse_out_start: usize,
    /// Index of the row panel this tile belongs to (`tile_row_panel_id`).
    pub row_panel: usize,
    /// Index of the column panel this tile belongs to.
    pub col_panel: usize,
}

/// The tiled COO representation of Appendix A.
///
/// The `r_ids`, `c_ids` and `vals` arrays of the source matrix are
/// reordered so that each tile's entries are consolidated, and per-tile
/// metadata records where each tile starts, how many non-zeros it holds,
/// where its SDDMM output begins (cache-line aligned), and which row panel
/// it belongs to (needed because all tiles of a row panel must execute on
/// the same PE to avoid SpMM data races, §4.3).
///
/// Empty tiles are not materialized.
///
/// # Example
///
/// ```
/// use spade_matrix::{Coo, TiledCoo, TilingConfig};
///
/// # fn main() -> Result<(), spade_matrix::MatrixError> {
/// let a = Coo::from_triplets(4, 4, &[(0, 1, 1.0), (0, 3, 2.0), (3, 0, 3.0)])?;
/// let tiled = TiledCoo::new(&a, TilingConfig::new(2, 2)?)?;
/// assert_eq!(tiled.tiles().len(), 3); // three non-empty 2x2 tiles
/// assert_eq!(tiled.to_coo(), a);      // tiling is lossless
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TiledCoo {
    num_rows: usize,
    num_cols: usize,
    config: TilingConfig,
    num_row_panels: usize,
    num_col_panels: usize,
    r_ids: Vec<u32>,
    c_ids: Vec<u32>,
    vals: Vec<f32>,
    tiles: Vec<TileInfo>,
    /// Total length of the SDDMM output values array including alignment
    /// padding between tiles.
    out_len_padded: usize,
}

impl TiledCoo {
    /// Tiles `source` according to `config`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidTiling`] when a panel size is zero.
    pub fn new(source: &Coo, config: TilingConfig) -> Result<Self, MatrixError> {
        // Re-validate so that a hand-constructed config cannot bypass the check.
        let config = TilingConfig::new(config.row_panel_size, config.col_panel_size)?;
        let num_rows = source.num_rows();
        let num_cols = source.num_cols();
        let num_row_panels = num_rows.div_ceil(config.row_panel_size).max(1);
        let num_col_panels = num_cols.div_ceil(config.col_panel_size).max(1);

        // Bucket-sort non-zeros by (row_panel, col_panel); the source is
        // already row-major within the matrix, which keeps entries row-major
        // within each tile.
        let tile_of = |r: u32, c: u32| -> usize {
            let rp = r as usize / config.row_panel_size;
            let cp = c as usize / config.col_panel_size;
            rp * num_col_panels + cp
        };
        let mut counts = vec![0usize; num_row_panels * num_col_panels];
        for i in 0..source.nnz() {
            counts[tile_of(source.r_ids()[i], source.c_ids()[i])] += 1;
        }
        let mut starts = vec![0usize; counts.len()];
        let mut acc = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            starts[i] = acc;
            acc += c;
        }
        let nnz = source.nnz();
        let mut r_ids = vec![0u32; nnz];
        let mut c_ids = vec![0u32; nnz];
        let mut vals = vec![0f32; nnz];
        let mut cursor = starts.clone();
        for i in 0..nnz {
            let (r, c, v) = (source.r_ids()[i], source.c_ids()[i], source.vals()[i]);
            let t = tile_of(r, c);
            let pos = cursor[t];
            cursor[t] += 1;
            r_ids[pos] = r;
            c_ids[pos] = c;
            vals[pos] = v;
        }

        // Materialize non-empty tiles in row-panel-major order, assigning
        // cache-line-aligned output offsets.
        let mut tiles = Vec::new();
        let mut out_cursor = 0usize;
        for rp in 0..num_row_panels {
            for cp in 0..num_col_panels {
                let t = rp * num_col_panels + cp;
                if counts[t] == 0 {
                    continue;
                }
                tiles.push(TileInfo {
                    sparse_in_start: starts[t],
                    nnz: counts[t],
                    sparse_out_start: out_cursor,
                    row_panel: rp,
                    col_panel: cp,
                });
                out_cursor += counts[t].div_ceil(FLOATS_PER_LINE) * FLOATS_PER_LINE;
            }
        }

        Ok(TiledCoo {
            num_rows,
            num_cols,
            config,
            num_row_panels,
            num_col_panels,
            r_ids,
            c_ids,
            vals,
            tiles,
            out_len_padded: out_cursor,
        })
    }

    /// Number of rows of the source matrix.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns of the source matrix.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The tiling configuration used.
    pub fn config(&self) -> TilingConfig {
        self.config
    }

    /// Number of row panels.
    pub fn num_row_panels(&self) -> usize {
        self.num_row_panels
    }

    /// Number of column panels.
    pub fn num_col_panels(&self) -> usize {
        self.num_col_panels
    }

    /// The reordered row-index array.
    pub fn r_ids(&self) -> &[u32] {
        &self.r_ids
    }

    /// The reordered column-index array.
    pub fn c_ids(&self) -> &[u32] {
        &self.c_ids
    }

    /// The reordered values array.
    pub fn vals(&self) -> &[f32] {
        &self.vals
    }

    /// Non-empty tiles in row-panel-major order.
    pub fn tiles(&self) -> &[TileInfo] {
        &self.tiles
    }

    /// Length of the SDDMM output values array, including the padding that
    /// aligns every tile's output to a cache line.
    pub fn out_len_padded(&self) -> usize {
        self.out_len_padded
    }

    /// The `(r_id, c_id, val)` entries of one tile.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn tile_entries(&self, tile: usize) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        let info = self.tiles[tile];
        (info.sparse_in_start..info.sparse_in_start + info.nnz)
            .map(move |i| (self.r_ids[i], self.c_ids[i], self.vals[i]))
    }

    /// Reconstructs the source COO matrix (tiling is lossless).
    pub fn to_coo(&self) -> Coo {
        let triplets: Vec<(u32, u32, f32)> = (0..self.nnz())
            .map(|i| (self.r_ids[i], self.c_ids[i], self.vals[i]))
            .collect();
        Coo::from_triplets(self.num_rows, self.num_cols, &triplets)
            .expect("a tiled matrix always reconstructs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        // The 4x4 example of Appendix A (Figure 15), values a..g.
        Coo::from_triplets(
            4,
            4,
            &[
                (0, 2, 1.0), // a
                (0, 3, 2.0), // b
                (1, 1, 3.0), // c
                (1, 3, 4.0), // d
                (2, 1, 5.0), // e
                (2, 2, 6.0), // f
                (3, 0, 7.0), // g
            ],
        )
        .unwrap()
    }

    #[test]
    fn appendix_a_example_layout() {
        let tiled = TiledCoo::new(&sample(), TilingConfig::new(2, 2).unwrap()).unwrap();
        assert_eq!(tiled.num_row_panels(), 2);
        assert_eq!(tiled.num_col_panels(), 2);
        // Figure 15(b): tile starts 0, 1, 4, 6 and nnz counts 1, 3, 2, 1.
        let starts: Vec<usize> = tiled.tiles().iter().map(|t| t.sparse_in_start).collect();
        let nnzs: Vec<usize> = tiled.tiles().iter().map(|t| t.nnz).collect();
        assert_eq!(starts, vec![0, 1, 4, 6]);
        assert_eq!(nnzs, vec![1, 3, 2, 1]);
        // tile_row_panel_id: first two tiles in panel 0, last two in panel 1.
        let panels: Vec<usize> = tiled.tiles().iter().map(|t| t.row_panel).collect();
        assert_eq!(panels, vec![0, 0, 1, 1]);
        // Reordered vals: tile (0,0) holds c; tile (0,1) holds a,b,d; tile
        // (1,0) holds e,g... wait, e is at (2,1) -> row panel 1, col panel 0.
        assert_eq!(tiled.vals(), &[3.0, 1.0, 2.0, 4.0, 5.0, 7.0, 6.0]);
    }

    #[test]
    fn output_offsets_are_line_aligned() {
        let tiled = TiledCoo::new(&sample(), TilingConfig::new(2, 2).unwrap()).unwrap();
        for t in tiled.tiles() {
            assert_eq!(t.sparse_out_start % FLOATS_PER_LINE, 0);
        }
        assert_eq!(tiled.out_len_padded(), 4 * FLOATS_PER_LINE);
    }

    #[test]
    fn roundtrip_reconstructs_source() {
        let src = sample();
        for (rp, cp) in [(1, 1), (2, 3), (4, 4), (100, 100)] {
            let tiled = TiledCoo::new(&src, TilingConfig::new(rp, cp).unwrap()).unwrap();
            assert_eq!(tiled.to_coo(), src, "rp={rp} cp={cp}");
        }
    }

    #[test]
    fn zero_panel_size_is_rejected() {
        assert!(TilingConfig::new(0, 4).is_err());
        assert!(TilingConfig::new(4, 0).is_err());
    }

    #[test]
    fn empty_tiles_are_skipped() {
        let a = Coo::from_triplets(8, 8, &[(0, 0, 1.0), (7, 7, 2.0)]).unwrap();
        let tiled = TiledCoo::new(&a, TilingConfig::new(2, 2).unwrap()).unwrap();
        assert_eq!(tiled.tiles().len(), 2);
    }

    #[test]
    fn base_config_spans_all_columns() {
        let cfg = TilingConfig::base(1000);
        assert_eq!(cfg.row_panel_size, 256);
        assert_eq!(cfg.col_panel_size, 1000);
        let a = Coo::from_triplets(600, 1000, &[(0, 999, 1.0), (599, 0, 2.0)]).unwrap();
        let tiled = TiledCoo::new(&a, cfg).unwrap();
        assert_eq!(tiled.num_col_panels(), 1);
        assert_eq!(tiled.num_row_panels(), 3);
    }

    #[test]
    fn empty_matrix_tiles_to_nothing() {
        let a = Coo::from_triplets(4, 4, &[]).unwrap();
        let tiled = TiledCoo::new(&a, TilingConfig::new(2, 2).unwrap()).unwrap();
        assert!(tiled.tiles().is_empty());
        assert_eq!(tiled.out_len_padded(), 0);
        assert_eq!(tiled.to_coo(), a);
    }

    #[test]
    fn tile_entries_are_row_major_within_tile() {
        let tiled = TiledCoo::new(&sample(), TilingConfig::new(4, 4).unwrap()).unwrap();
        assert_eq!(tiled.tiles().len(), 1);
        let rows: Vec<u32> = tiled.tile_entries(0).map(|(r, _, _)| r).collect();
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        assert_eq!(rows, sorted);
    }

    #[test]
    fn panel_sizes_larger_than_matrix_give_single_tile() {
        let tiled = TiledCoo::new(&sample(), TilingConfig::new(1000, 1000).unwrap()).unwrap();
        assert_eq!(tiled.tiles().len(), 1);
        assert_eq!(tiled.tiles()[0].nnz, 7);
    }
}
