//! Input-aware matrix reordering.
//!
//! The paper's related work (§8.E) lists locality-enhancing reordering as
//! an orthogonal, composable technique for SpMM/SDDMM performance. This
//! module provides the two standard orderings — degree sorting (hubs
//! first, which concentrates the hot cMatrix rows) and a lightweight
//! reverse Cuthill–McKee (which narrows the bandwidth of mesh-like
//! matrices) — plus the permutation plumbing to apply them to square
//! matrices symmetrically.

use crate::{Coo, MatrixError};

/// A permutation of the row/column index space: `perm[old] = new`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<u32>,
}

impl Permutation {
    /// Builds a permutation from a `perm[old] = new` mapping.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::Parse`] if `forward` is not a bijection on
    /// `0..n`.
    pub fn new(forward: Vec<u32>) -> Result<Self, MatrixError> {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &t in &forward {
            if t as usize >= n || seen[t as usize] {
                return Err(MatrixError::Parse {
                    line: t as usize,
                    reason: "not a permutation".into(),
                });
            }
            seen[t as usize] = true;
        }
        Ok(Permutation { forward })
    }

    /// The identity on `0..n`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            forward: (0..n as u32).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Where `old` maps to.
    #[inline]
    pub fn apply(&self, old: u32) -> u32 {
        self.forward[old as usize]
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.forward.len()];
        for (old, &new) in self.forward.iter().enumerate() {
            inv[new as usize] = old as u32;
        }
        Permutation { forward: inv }
    }

    /// Applies the permutation symmetrically to a square matrix:
    /// `B[p(r), p(c)] = A[r, c]`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square with dimension `len()`.
    pub fn permute_symmetric(&self, a: &Coo) -> Coo {
        assert_eq!(
            a.num_rows(),
            a.num_cols(),
            "symmetric permutation needs a square matrix"
        );
        assert_eq!(a.num_rows(), self.len(), "permutation size mismatch");
        let triplets: Vec<(u32, u32, f32)> = a
            .iter()
            .map(|(r, c, v)| (self.apply(r), self.apply(c), v))
            .collect();
        Coo::from_triplets(a.num_rows(), a.num_cols(), &triplets)
            .expect("a bijection keeps indices in range")
    }
}

/// Orders rows by descending degree: hubs get the lowest indices, which
/// clusters the hottest cMatrix rows into the fewest cache lines and
/// tiles. A stable sort keeps ties in their original relative order, so
/// the result is deterministic.
pub fn degree_order(a: &Coo) -> Permutation {
    let n = a.num_rows();
    let mut degree = vec![0u32; n];
    for &r in a.r_ids() {
        degree[r as usize] += 1;
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(degree[v as usize]));
    // order[rank] = old; we need perm[old] = rank.
    let mut forward = vec![0u32; n];
    for (rank, &old) in order.iter().enumerate() {
        forward[old as usize] = rank as u32;
    }
    Permutation { forward }
}

/// Reverse Cuthill–McKee: a breadth-first ordering from a low-degree
/// peripheral vertex, reversed. Narrows the bandwidth of mesh/road-like
/// matrices, improving the spatial locality of SpMM accesses.
///
/// Works on the symmetrized structure; disconnected components are each
/// ordered from their own lowest-degree seed.
pub fn reverse_cuthill_mckee(a: &Coo) -> Permutation {
    let n = a.num_rows().max(a.num_cols());
    // Build symmetric adjacency.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (r, c, _) in a.iter() {
        if r != c {
            adj[r as usize].push(c);
            adj[c as usize].push(r);
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    let degree = |v: usize| adj[v].len();

    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    // Seeds in ascending degree, so each component starts peripheral.
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_by_key(|&v| degree(v as usize));

    let mut queue = std::collections::VecDeque::new();
    for seed in seeds {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut next: Vec<u32> = adj[v as usize]
                .iter()
                .copied()
                .filter(|&u| !visited[u as usize])
                .collect();
            next.sort_by_key(|&u| degree(u as usize));
            for u in next {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    let mut forward = vec![0u32; n];
    for (rank, &old) in order.iter().enumerate() {
        forward[old as usize] = rank as u32;
    }
    Permutation { forward }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::MatrixStats;
    use crate::generators;

    #[test]
    fn permutation_validates_bijection() {
        assert!(Permutation::new(vec![0, 2, 1]).is_ok());
        assert!(Permutation::new(vec![0, 0, 1]).is_err());
        assert!(Permutation::new(vec![0, 3, 1]).is_err());
    }

    #[test]
    fn identity_is_a_no_op() {
        let a = generators::mesh2d(6, 6);
        let p = Permutation::identity(a.num_rows());
        assert_eq!(p.permute_symmetric(&a), a);
    }

    #[test]
    fn inverse_roundtrips() {
        let a = generators::rmat(64, 200, [0.57, 0.19, 0.19], 5);
        let p = degree_order(&a);
        let back = p.inverse().permute_symmetric(&p.permute_symmetric(&a));
        assert_eq!(back, a);
    }

    #[test]
    fn permutation_preserves_structure_counts() {
        let a = generators::chung_lu(200, 800, 2.2, 3);
        let p = degree_order(&a);
        let b = p.permute_symmetric(&a);
        assert_eq!(b.nnz(), a.nnz());
        // Value multiset is preserved.
        let mut va: Vec<u32> = a.vals().iter().map(|v| v.to_bits()).collect();
        let mut vb: Vec<u32> = b.vals().iter().map(|v| v.to_bits()).collect();
        va.sort_unstable();
        vb.sort_unstable();
        assert_eq!(va, vb);
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let a = generators::chung_lu(300, 2_000, 2.1, 9);
        let p = degree_order(&a);
        let b = p.permute_symmetric(&a);
        let mut deg = vec![0usize; b.num_rows()];
        for &r in b.r_ids() {
            deg[r as usize] += 1;
        }
        // The first decile must contain more nnz than the last.
        let n = b.num_rows();
        let head: usize = deg[..n / 10].iter().sum();
        let tail: usize = deg[n - n / 10..].iter().sum();
        assert!(head > tail * 3, "head {head} vs tail {tail}");
    }

    #[test]
    fn rcm_narrows_mesh_bandwidth_after_scrambling() {
        // Scramble a mesh, then RCM must substantially restore locality.
        let mesh = generators::mesh2d(20, 20);
        let scramble = {
            // A deterministic "random" permutation.
            let n = mesh.num_rows() as u32;
            let mut f: Vec<u32> = (0..n).map(|i| (i * 181 + 97) % n).collect();
            f.sort_unstable();
            f.dedup();
            assert_eq!(f.len(), n as usize, "181 must be coprime with n");
            Permutation::new((0..n).map(|i| (i * 181 + 97) % n).collect()).unwrap()
        };
        let scrambled = scramble.permute_symmetric(&mesh);
        let rcm = reverse_cuthill_mckee(&scrambled);
        let restored = rcm.permute_symmetric(&scrambled);
        let bw_scrambled = MatrixStats::compute(&scrambled).normalized_bandwidth;
        let bw_restored = MatrixStats::compute(&restored).normalized_bandwidth;
        assert!(
            bw_restored * 3.0 < bw_scrambled,
            "RCM bandwidth {bw_restored} vs scrambled {bw_scrambled}"
        );
    }

    #[test]
    fn rcm_handles_disconnected_graphs_and_isolated_vertices() {
        let a = Coo::from_triplets(
            10,
            10,
            &[(0, 1, 1.0), (1, 0, 1.0), (5, 6, 1.0), (6, 5, 1.0)],
        )
        .unwrap();
        let p = reverse_cuthill_mckee(&a);
        assert_eq!(p.len(), 10);
        let b = p.permute_symmetric(&a);
        assert_eq!(b.nnz(), 4);
    }
}
