//! Scalar gold-standard SpMM and SDDMM kernels (Figure 1 semantics).
//!
//! Every simulated machine in this workspace — SPADE, the CPU model, the
//! GPU model, Sextans — validates its functional output against these
//! kernels, keeping the timing models honest.

use crate::{Coo, DenseMatrix};

/// Sparse matrix × dense matrix: `D = A × B`.
///
/// For every non-zero `a = A[r, c]`, accumulates `a · B[c, :]` into
/// `D[r, :]` (Figure 1, top).
///
/// # Panics
///
/// Panics if `B` has fewer rows than `A` has columns.
pub fn spmm(a: &Coo, b: &DenseMatrix) -> DenseMatrix {
    assert!(
        b.num_rows() >= a.num_cols(),
        "B must have at least as many rows as A has columns ({} < {})",
        b.num_rows(),
        a.num_cols()
    );
    let k = b.num_cols();
    let mut d = DenseMatrix::zeros(a.num_rows(), k);
    for (r, c, v) in a.iter() {
        let src = b.row(c as usize);
        let dst = d.row_mut(r as usize);
        for (out, inp) in dst.iter_mut().zip(src) {
            *out += v * inp;
        }
    }
    d
}

/// Sampled dense-dense matrix multiplication: `vals(D) = vals(A) ∘ (B × Cᵀ)`.
///
/// For every non-zero `a = A[r, c]`, computes
/// `a · ⟨B[r, :], Cᵀ[c, :]⟩` and stores it in the position of `D`
/// corresponding to the non-zero (Figure 1, bottom). The returned vector is
/// ordered like `a.vals()`.
///
/// `c_t` is the transposed dense matrix `Cᵀ`, stored row-major with one row
/// per *column* of `A`.
///
/// # Panics
///
/// Panics if `B` has fewer rows than `A`, if `Cᵀ` has fewer rows than `A`
/// has columns, or if `B` and `Cᵀ` disagree on `K`.
pub fn sddmm(a: &Coo, b: &DenseMatrix, c_t: &DenseMatrix) -> Vec<f32> {
    assert!(
        b.num_rows() >= a.num_rows(),
        "B must have a row per row of A"
    );
    assert!(
        c_t.num_rows() >= a.num_cols(),
        "Cᵀ must have a row per column of A"
    );
    assert_eq!(
        b.num_cols(),
        c_t.num_cols(),
        "B and Cᵀ must share the dense row size K"
    );
    a.iter()
        .map(|(r, c, v)| {
            let br = b.row(r as usize);
            let cr = c_t.row(c as usize);
            let dot: f32 = br.iter().zip(cr).map(|(x, y)| x * y).sum();
            v * dot
        })
        .collect()
}

/// Compares two value vectors with a relative-plus-absolute tolerance.
///
/// Returns the index and values of the first mismatch, or `None` when every
/// pair is within `tol · max(1, |a|, |b|)`. Out-of-order floating-point
/// accumulation (SPADE executes vOps out of order, §5.1) makes bit-exact
/// comparison inappropriate.
pub fn first_mismatch(xs: &[f32], ys: &[f32], tol: f32) -> Option<(usize, f32, f32)> {
    if xs.len() != ys.len() {
        return Some((xs.len().min(ys.len()), f32::NAN, f32::NAN));
    }
    xs.iter().zip(ys).enumerate().find_map(|(i, (&x, &y))| {
        let scale = 1f32.max(x.abs()).max(y.abs());
        if (x - y).abs() > tol * scale {
            Some((i, x, y))
        } else {
            None
        }
    })
}

/// Compares two dense matrices with [`first_mismatch`] semantics.
pub fn dense_close(a: &DenseMatrix, b: &DenseMatrix, tol: f32) -> bool {
    if a.num_rows() != b.num_rows() || a.num_cols() != b.num_cols() {
        return false;
    }
    (0..a.num_rows()).all(|r| first_mismatch(a.row(r), b.row(r), tol).is_none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    #[test]
    fn spmm_identity_reproduces_matrix() {
        let a = Coo::from_triplets(3, 3, &[(0, 1, 2.0), (2, 0, -1.0)]).unwrap();
        let b = DenseMatrix::identity(3, 3);
        let d = spmm(&a, &b);
        assert_eq!(d.get(0, 1), 2.0);
        assert_eq!(d.get(2, 0), -1.0);
        assert_eq!(d.get(1, 1), 0.0);
    }

    #[test]
    fn spmm_accumulates_multiple_nnz_per_row() {
        // Row 0 has nnz at columns 0 and 1; B rows are all-ones.
        let a = Coo::from_triplets(1, 2, &[(0, 0, 2.0), (0, 1, 3.0)]).unwrap();
        let b = DenseMatrix::from_fn(2, 4, |_, _| 1.0);
        let d = spmm(&a, &b);
        for c in 0..4 {
            assert_eq!(d.get(0, c), 5.0);
        }
    }

    #[test]
    fn sddmm_computes_scaled_inner_products() {
        let a = Coo::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 0.5)]).unwrap();
        let b = DenseMatrix::from_fn(2, 3, |r, c| (r + c) as f32); // B[0]=[0,1,2], B[1]=[1,2,3]
        let c_t = DenseMatrix::from_fn(2, 3, |r, _| r as f32 + 1.0); // rows [1,1,1],[2,2,2]
        let vals = sddmm(&a, &b, &c_t);
        // nnz (0,1): 2.0 * <B[0], Ct[1]> = 2 * (0+2+4) = 12
        // nnz (1,0): 0.5 * <B[1], Ct[0]> = 0.5 * (1+2+3) = 3
        assert_eq!(vals, vec![12.0, 3.0]);
    }

    #[test]
    fn sddmm_preserves_nnz_order() {
        let a = Coo::from_triplets(3, 3, &[(2, 2, 1.0), (0, 0, 1.0)]).unwrap();
        let b = DenseMatrix::from_fn(3, 2, |r, _| r as f32);
        let c_t = DenseMatrix::from_fn(3, 2, |_, _| 1.0);
        let vals = sddmm(&a, &b, &c_t);
        assert_eq!(vals.len(), 2);
        // First value corresponds to nnz (0,0) in row-major order.
        assert_eq!(vals[0], 0.0);
        assert_eq!(vals[1], 4.0);
    }

    #[test]
    fn first_mismatch_tolerates_small_error() {
        assert!(first_mismatch(&[1.0, 2.0], &[1.0 + 1e-7, 2.0], 1e-5).is_none());
        let m = first_mismatch(&[1.0, 2.0], &[1.0, 2.1], 1e-5);
        assert_eq!(m.map(|(i, _, _)| i), Some(1));
    }

    #[test]
    fn first_mismatch_rejects_length_mismatch() {
        assert!(first_mismatch(&[1.0], &[1.0, 2.0], 1e-5).is_some());
    }

    #[test]
    fn dense_close_tolerates_roundoff() {
        let a = DenseMatrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let mut b = a.clone();
        b.set(1, 1, b.get(1, 1) + 1e-7);
        assert!(dense_close(&a, &b, 1e-5));
        b.set(0, 0, 5.0);
        assert!(!dense_close(&a, &b, 1e-5));
    }

    #[test]
    #[should_panic]
    fn spmm_rejects_undersized_b() {
        let a = Coo::from_triplets(2, 4, &[(0, 3, 1.0)]).unwrap();
        let b = DenseMatrix::zeros(2, 4);
        let _ = spmm(&a, &b);
    }
}
