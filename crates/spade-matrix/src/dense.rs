use crate::CACHE_LINE_BYTES;

/// Number of `f32` elements in one cache line.
pub const FLOATS_PER_LINE: usize = CACHE_LINE_BYTES / std::mem::size_of::<f32>();

/// A dense, row-major `f32` matrix whose rows are padded to a cache-line
/// boundary.
///
/// SPADE requires the dense-matrix row size `K` to be a multiple of the
/// cache line size so that rows start at cache-line boundaries (§4.3). This
/// type enforces the invariant structurally: the logical column count may be
/// anything, but the stride between consecutive rows is always rounded up to
/// a multiple of [`FLOATS_PER_LINE`], and the padding elements are zero.
///
/// # Example
///
/// ```
/// use spade_matrix::{DenseMatrix, FLOATS_PER_LINE};
///
/// let mut m = DenseMatrix::zeros(4, 20);
/// m.set(2, 19, 1.5);
/// assert_eq!(m.get(2, 19), 1.5);
/// // 20 columns are stored with a 32-element stride (two cache lines).
/// assert_eq!(m.row_stride(), 2 * FLOATS_PER_LINE);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    num_rows: usize,
    num_cols: usize,
    row_stride: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a matrix of zeros with `num_rows` rows and `num_cols` logical
    /// columns.
    pub fn zeros(num_rows: usize, num_cols: usize) -> Self {
        let row_stride = num_cols.div_ceil(FLOATS_PER_LINE).max(1) * FLOATS_PER_LINE;
        DenseMatrix {
            num_rows,
            num_cols,
            row_stride,
            data: vec![0.0; num_rows * row_stride],
        }
    }

    /// Creates an identity-like matrix: ones on the main diagonal.
    ///
    /// Useful in tests: `A × I` reproduces the sparse matrix densely.
    pub fn identity(num_rows: usize, num_cols: usize) -> Self {
        let mut m = Self::zeros(num_rows, num_cols);
        for i in 0..num_rows.min(num_cols) {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a generator function `f(row, col)`.
    pub fn from_fn(
        num_rows: usize,
        num_cols: usize,
        mut f: impl FnMut(usize, usize) -> f32,
    ) -> Self {
        let mut m = Self::zeros(num_rows, num_cols);
        for r in 0..num_rows {
            for c in 0..num_cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of logical columns (the dense row size `K` of the paper).
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Padded elements between consecutive row starts; always a multiple of
    /// [`FLOATS_PER_LINE`].
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// Number of cache lines occupied by one row.
    pub fn lines_per_row(&self) -> usize {
        self.row_stride / FLOATS_PER_LINE
    }

    /// Total size of the backing storage in bytes, padding included.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Element at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.num_rows && col < self.num_cols);
        self.data[row * self.row_stride + col]
    }

    /// Sets the element at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.num_rows && col < self.num_cols);
        self.data[row * self.row_stride + col] = value;
    }

    /// The logical elements of one row (padding excluded).
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        let start = row * self.row_stride;
        &self.data[start..start + self.num_cols]
    }

    /// Mutable view of the logical elements of one row (padding excluded).
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        let start = row * self.row_stride;
        &mut self.data[start..start + self.num_cols]
    }

    /// The full backing storage, padding included.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the full backing storage, padding included. Rows
    /// are laid out contiguously with [`DenseMatrix::row_stride`] elements
    /// between row starts — useful for partitioning the matrix across
    /// threads.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Maximum absolute element-wise difference against `other`.
    ///
    /// Returns `None` when the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Option<f32> {
        if self.num_rows != other.num_rows || self.num_cols != other.num_cols {
            return None;
        }
        let mut max = 0f32;
        for r in 0..self.num_rows {
            for (a, b) in self.row(r).iter().zip(other.row(r)) {
                max = max.max((a - b).abs());
            }
        }
        Some(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_matrix_has_padded_stride() {
        let m = DenseMatrix::zeros(3, 17);
        assert_eq!(m.row_stride(), 32);
        assert_eq!(m.lines_per_row(), 2);
        assert_eq!(m.size_bytes(), 3 * 32 * 4);
    }

    #[test]
    fn exact_multiple_is_not_overpadded() {
        let m = DenseMatrix::zeros(2, 32);
        assert_eq!(m.row_stride(), 32);
    }

    #[test]
    fn zero_columns_still_occupies_one_line() {
        let m = DenseMatrix::zeros(2, 0);
        assert_eq!(m.row_stride(), FLOATS_PER_LINE);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(4, 5);
        m.set(3, 4, 2.25);
        assert_eq!(m.get(3, 4), 2.25);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn identity_diagonal() {
        let m = DenseMatrix::identity(3, 5);
        for r in 0..3 {
            for c in 0..5 {
                assert_eq!(m.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn row_views_expose_logical_columns_only() {
        let mut m = DenseMatrix::zeros(2, 5);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(m.row(1).len(), 5);
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(3, 2);
        assert_eq!(a.max_abs_diff(&b), None);
    }

    #[test]
    fn max_abs_diff_finds_largest_delta() {
        let mut a = DenseMatrix::zeros(2, 2);
        let mut b = DenseMatrix::zeros(2, 2);
        a.set(0, 0, 1.0);
        b.set(0, 0, 1.5);
        a.set(1, 1, -2.0);
        b.set(1, 1, 0.0);
        assert_eq!(a.max_abs_diff(&b), Some(2.0));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        let m = DenseMatrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn from_fn_fills_all_elements() {
        let m = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(m.get(2, 3), 11.0);
        assert_eq!(m.get(0, 0), 0.0);
    }
}
