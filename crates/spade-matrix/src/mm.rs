//! MatrixMarket coordinate-format I/O.
//!
//! Lets users run the SPADE model on real SuiteSparse matrices (the paper's
//! inputs) when they have the `.mtx` files available, instead of the
//! synthetic stand-ins from [`crate::generators`].

use std::io::{BufRead, Write};

use crate::{Coo, MatrixError};

/// Reads a matrix in MatrixMarket coordinate format.
///
/// Supports `real`, `integer` and `pattern` fields and the `general` and
/// `symmetric` symmetries. Pattern entries are assigned value `1.0`;
/// symmetric entries are mirrored.
///
/// # Errors
///
/// Returns [`MatrixError::Parse`] for malformed input, plus the usual
/// construction errors for out-of-range coordinates.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<Coo, MatrixError> {
    let mut lines = reader.lines().enumerate();

    let (first_no, first) = lines.next().ok_or(MatrixError::Parse {
        line: 1,
        reason: "empty input".into(),
    })?;
    let first = first.map_err(|e| io_parse(first_no + 1, &e))?;
    let header: Vec<String> = first.split_whitespace().map(str::to_lowercase).collect();
    if header.len() < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
        return Err(MatrixError::Parse {
            line: 1,
            reason: "missing %%MatrixMarket matrix header".into(),
        });
    }
    if header[2] != "coordinate" {
        return Err(MatrixError::Parse {
            line: 1,
            reason: format!(
                "unsupported format '{}', only coordinate is supported",
                header[2]
            ),
        });
    }
    let field = header[3].as_str();
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(MatrixError::Parse {
            line: 1,
            reason: format!("unsupported field type '{field}'"),
        });
    }
    let symmetric = header.get(4).map(String::as_str) == Some("symmetric");

    // Skip comments, read the size line.
    let mut size_line = None;
    let mut size_line_no = 0usize;
    for (no, line) in &mut lines {
        let line = line.map_err(|e| io_parse(no + 1, &e))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(trimmed.to_string());
        size_line_no = no + 1;
        break;
    }
    let size_line = size_line.ok_or(MatrixError::Parse {
        line: 0,
        reason: "missing size line".into(),
    })?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| MatrixError::Parse {
            line: size_line_no,
            reason: format!("bad size line: {e}"),
        })?;
    if dims.len() != 3 {
        return Err(MatrixError::Parse {
            line: size_line_no,
            reason: "size line must have rows, cols, nnz".into(),
        });
    }
    let (num_rows, num_cols, nnz) = (dims[0], dims[1], dims[2]);

    // The declared nnz is untrusted input: cap the pre-allocation so a
    // bogus huge count cannot abort on an overflowing/failing allocation.
    // The vector still grows to the real entry count as lines arrive.
    let mut triplets: Vec<(u32, u32, f32)> = Vec::with_capacity(nnz.min(1 << 20));
    let mut entries = 0usize;
    for (no, line) in &mut lines {
        let line = line.map_err(|e| io_parse(no + 1, &e))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        entries += 1;
        if entries > nnz {
            return Err(MatrixError::Parse {
                line: no + 1,
                reason: format!("more entries than the declared {nnz}"),
            });
        }
        let mut tok = trimmed.split_whitespace();
        let r: u32 = parse_tok(&mut tok, no + 1)?;
        let c: u32 = parse_tok(&mut tok, no + 1)?;
        let v: f32 = if field == "pattern" {
            1.0
        } else {
            tok.next()
                .ok_or(MatrixError::Parse {
                    line: no + 1,
                    reason: "missing value".into(),
                })?
                .parse()
                .map_err(|e| MatrixError::Parse {
                    line: no + 1,
                    reason: format!("bad value: {e}"),
                })?
        };
        if r == 0 || c == 0 {
            return Err(MatrixError::Parse {
                line: no + 1,
                reason: "MatrixMarket indices are 1-based".into(),
            });
        }
        triplets.push((r - 1, c - 1, v));
        if symmetric && r != c {
            triplets.push((c - 1, r - 1, v));
        }
    }
    if entries != nnz {
        return Err(MatrixError::Parse {
            line: 0,
            reason: format!("truncated input: {entries} entries, size line declared {nnz}"),
        });
    }
    Coo::from_triplets(num_rows, num_cols, &triplets)
}

fn parse_tok<'a>(tok: &mut impl Iterator<Item = &'a str>, line: usize) -> Result<u32, MatrixError> {
    tok.next()
        .ok_or(MatrixError::Parse {
            line,
            reason: "missing coordinate".into(),
        })?
        .parse()
        .map_err(|e| MatrixError::Parse {
            line,
            reason: format!("bad coordinate: {e}"),
        })
}

fn io_parse(line: usize, e: &dyn std::fmt::Display) -> MatrixError {
    MatrixError::Parse {
        line,
        reason: format!("i/o error: {e}"),
    }
}

/// Writes `matrix` in MatrixMarket `coordinate real general` format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_matrix_market<W: Write>(matrix: &Coo, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(
        writer,
        "{} {} {}",
        matrix.num_rows(),
        matrix.num_cols(),
        matrix.nnz()
    )?;
    for (r, c, v) in matrix.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_through_matrix_market() {
        let a = Coo::from_triplets(3, 4, &[(0, 1, 2.5), (2, 3, -1.0)]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(Cursor::new(buf)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reads_pattern_matrices_as_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let m = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(m.vals(), &[1.0, 1.0]);
    }

    #[test]
    fn mirrors_symmetric_matrices() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 1.0\n";
        let m = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(m.nnz(), 3); // (1,0), (0,1), (2,2)
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n% a comment\n\n2 2 1\n% another\n1 2 3.0\n";
        let m = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.vals(), &[3.0]);
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 3.0\n";
        assert!(matches!(
            read_matrix_market(Cursor::new(text)),
            Err(MatrixError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_missing_header() {
        let text = "2 2 1\n1 1 3.0\n";
        assert!(read_matrix_market(Cursor::new(text)).is_err());
    }

    #[test]
    fn rejects_array_format() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n1.0\n";
        assert!(read_matrix_market(Cursor::new(text)).is_err());
    }

    #[test]
    fn rejects_bad_size_line() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2\n";
        assert!(read_matrix_market(Cursor::new(text)).is_err());
    }

    #[test]
    fn rejects_truncated_entry_list() {
        let text = "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 1 1.0\n2 2 2.0\n";
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, MatrixError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn rejects_excess_entries() {
        let text = "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 1.0\n2 2 2.0\n";
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, MatrixError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("more entries"));
    }

    #[test]
    fn huge_declared_nnz_does_not_allocate_up_front() {
        // A size line can declare any count; the reader must fail with a
        // parse error when the entries are missing, not abort allocating.
        let text = format!(
            "%%MatrixMarket matrix coordinate real general\n2 2 {}\n1 1 1.0\n",
            usize::MAX
        );
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, MatrixError::Parse { .. }), "{err}");
    }
}
