//! Sparse-matrix substrate for the SPADE accelerator reproduction.
//!
//! SPADE (ISCA 2023) accelerates two kernels:
//!
//! * **SpMM** — `D = A × B` where `A` is sparse and `B`, `D` are dense with
//!   `K` columns. For every non-zero `a = A[r, c]`, row `c` of `B` is scaled
//!   by `a` and accumulated into row `r` of `D`.
//! * **SDDMM** — `D = A ∘ (B × Cᵀ)` where `A` and `D` are sparse with the
//!   same non-zero structure and `B`, `C` are dense. For every non-zero
//!   `a = A[r, c]`, the inner product of row `r` of `B` and row `c` of `Cᵀ`
//!   is scaled by `a` and stored at the corresponding position of `D`.
//!
//! This crate provides everything the accelerator model and the baselines
//! need to run those kernels:
//!
//! * [`Coo`] and [`Csr`] sparse formats with conversions,
//! * [`DenseMatrix`] with cache-line-aligned rows (a SPADE data-layout
//!   requirement, §4.3 of the paper),
//! * [`TiledCoo`], the tiled representation of Appendix A with its
//!   `sparse_in_start_offset` / `tile_NNZ_num` / `sparse_out_start_offset` /
//!   `tile_row_panel_id` metadata,
//! * synthetic [`generators`] standing in for the ten SuiteSparse graphs of
//!   Table 2,
//! * structure [`analysis`] (degree statistics, locality, Restructuring
//!   Utility classification), and
//! * scalar [`reference`] kernels used as the correctness oracle by every
//!   simulated machine.
//!
//! [`reference`]: mod@crate::reference
//!
//! # Example
//!
//! ```
//! use spade_matrix::{Coo, DenseMatrix, reference};
//!
//! # fn main() -> Result<(), spade_matrix::MatrixError> {
//! // A 3x3 sparse matrix with 3 non-zeros.
//! let a = Coo::from_triplets(3, 3, &[(0, 1, 2.0), (1, 0, 1.0), (2, 2, 4.0)])?;
//! let b = DenseMatrix::identity(3, 16);
//! let d = reference::spmm(&a, &b);
//! assert_eq!(d.get(0, 1), 2.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod coo;
mod csr;
mod dense;
mod error;
pub mod generators;
pub mod mm;
pub mod reference;
pub mod reorder;
pub mod rng;
mod tiled;

pub use coo::Coo;
pub use csr::Csr;
pub use dense::{DenseMatrix, FLOATS_PER_LINE};
pub use error::MatrixError;
pub use tiled::{TileInfo, TiledCoo, TilingConfig};

/// Bytes per cache line. SPADE's vector length equals one cache line
/// (Table 1: 64 B vector registers), and all dense rows are padded to this
/// boundary (§4.3 data-layout requirements).
pub const CACHE_LINE_BYTES: usize = 64;
