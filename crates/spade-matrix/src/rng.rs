//! A small, dependency-free deterministic PRNG for the synthetic graph
//! generators and the randomized test suites.
//!
//! The generators only need a reproducible stream with decent statistical
//! quality — cryptographic strength is irrelevant — so this is SplitMix64
//! (Steele et al., "Fast splittable pseudorandom number generators"), the
//! same mixer `rand` uses to seed its small RNGs. Every stream is fully
//! determined by the `u64` seed, on every platform and build.
//!
//! # Example
//!
//! ```
//! use spade_matrix::rng::Rng64;
//!
//! let mut a = Rng64::seed_from_u64(7);
//! let mut b = Rng64::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.gen_range(0usize..10) < 10);
//! ```

use std::ops::{Range, RangeInclusive};

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }

    /// A uniform index in `[0, n)` (unbiased via rejection).
    pub fn bounded(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range on an empty range");
        // Rejection sampling on the top bits: the bias of a plain modulo
        // would be invisible here, but rejection is just as cheap.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % n;
            }
        }
    }
}

/// Range types [`Rng64::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Out;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng64) -> Self::Out;
}

impl SampleRange for Range<usize> {
    type Out = usize;
    fn sample(self, rng: &mut Rng64) -> usize {
        assert!(self.start < self.end, "gen_range on an empty range");
        self.start + rng.bounded((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Out = usize;
    fn sample(self, rng: &mut Rng64) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on an empty range");
        lo + rng.bounded((hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange for Range<u32> {
    type Out = u32;
    fn sample(self, rng: &mut Rng64) -> u32 {
        assert!(self.start < self.end, "gen_range on an empty range");
        self.start + rng.bounded((self.end - self.start) as u64) as u32
    }
}

impl SampleRange for Range<u64> {
    type Out = u64;
    fn sample(self, rng: &mut Rng64) -> u64 {
        assert!(self.start < self.end, "gen_range on an empty range");
        self.start + rng.bounded(self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng64::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(r.gen_range(3usize..17) >= 3);
            assert!(r.gen_range(3usize..17) < 17);
            assert!(r.gen_range(5usize..=5) == 5);
            assert!(r.gen_range(0u32..7) < 7);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng64::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}");
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = Rng64::seed_from_u64(6);
        let mut counts = [0usize; 8];
        for _ in 0..8_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((800..1_200).contains(&c), "bucket count {c}");
        }
    }
}
