use crate::{Csr, MatrixError};

/// A sparse matrix in coordinate (COO) format.
///
/// This is the format SPADE consumes (§4.2, Appendix A): three parallel
/// arrays `r_ids`, `c_ids`, `vals`. Entries are kept sorted in row-major
/// order and duplicates are combined on construction, so a `Coo` always
/// represents a well-defined matrix.
///
/// # Example
///
/// ```
/// use spade_matrix::Coo;
///
/// # fn main() -> Result<(), spade_matrix::MatrixError> {
/// let a = Coo::from_triplets(2, 3, &[(1, 2, 0.5), (0, 0, 1.0), (1, 2, 0.5)])?;
/// assert_eq!(a.nnz(), 2); // the duplicate (1,2) entries were combined
/// assert_eq!(a.vals()[1], 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    num_rows: usize,
    num_cols: usize,
    r_ids: Vec<u32>,
    c_ids: Vec<u32>,
    vals: Vec<f32>,
}

impl Coo {
    /// Builds a COO matrix from `(row, col, value)` triplets.
    ///
    /// Triplets may be in any order; they are sorted row-major and
    /// duplicate coordinates are summed. Explicit zeros are kept (they are
    /// still non-zero *positions* for SDDMM sampling purposes).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] if any coordinate exceeds
    /// the declared shape, and [`MatrixError::DimensionTooLarge`] if a
    /// dimension does not fit the `u32` index space.
    pub fn from_triplets(
        num_rows: usize,
        num_cols: usize,
        triplets: &[(u32, u32, f32)],
    ) -> Result<Self, MatrixError> {
        Self::check_dims(num_rows, num_cols)?;
        let mut sorted: Vec<(u32, u32, f32)> = triplets.to_vec();
        for &(r, c, _) in &sorted {
            if r as usize >= num_rows || c as usize >= num_cols {
                return Err(MatrixError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    num_rows,
                    num_cols,
                });
            }
        }
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut r_ids = Vec::with_capacity(sorted.len());
        let mut c_ids = Vec::with_capacity(sorted.len());
        let mut vals: Vec<f32> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            if r_ids.last() == Some(&r) && c_ids.last() == Some(&c) {
                *vals.last_mut().expect("vals tracks r_ids") += v;
            } else {
                r_ids.push(r);
                c_ids.push(c);
                vals.push(v);
            }
        }
        Ok(Coo {
            num_rows,
            num_cols,
            r_ids,
            c_ids,
            vals,
        })
    }

    /// Builds a COO matrix from pre-sorted, duplicate-free parallel arrays.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::LengthMismatch`] if the arrays differ in
    /// length, [`MatrixError::IndexOutOfBounds`] for out-of-range
    /// coordinates, and [`MatrixError::Parse`] if the arrays are not sorted
    /// row-major or contain duplicates.
    pub fn from_sorted_arrays(
        num_rows: usize,
        num_cols: usize,
        r_ids: Vec<u32>,
        c_ids: Vec<u32>,
        vals: Vec<f32>,
    ) -> Result<Self, MatrixError> {
        Self::check_dims(num_rows, num_cols)?;
        if r_ids.len() != c_ids.len() || c_ids.len() != vals.len() {
            return Err(MatrixError::LengthMismatch {
                r_ids: r_ids.len(),
                c_ids: c_ids.len(),
                vals: vals.len(),
            });
        }
        for i in 0..r_ids.len() {
            let (r, c) = (r_ids[i], c_ids[i]);
            if r as usize >= num_rows || c as usize >= num_cols {
                return Err(MatrixError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    num_rows,
                    num_cols,
                });
            }
            if i > 0 && (r_ids[i - 1], c_ids[i - 1]) >= (r, c) {
                return Err(MatrixError::Parse {
                    line: i,
                    reason: "coordinates are not strictly sorted row-major".into(),
                });
            }
        }
        Ok(Coo {
            num_rows,
            num_cols,
            r_ids,
            c_ids,
            vals,
        })
    }

    fn check_dims(num_rows: usize, num_cols: usize) -> Result<(), MatrixError> {
        for dim in [num_rows, num_cols] {
            if dim > u32::MAX as usize {
                return Err(MatrixError::DimensionTooLarge { dim });
            }
        }
        Ok(())
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored non-zero positions.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Density of the matrix: `nnz / (rows × cols)`.
    pub fn density(&self) -> f64 {
        if self.num_rows == 0 || self.num_cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.num_rows as f64 * self.num_cols as f64)
    }

    /// Row indices of the non-zeros, sorted row-major.
    pub fn r_ids(&self) -> &[u32] {
        &self.r_ids
    }

    /// Column indices of the non-zeros.
    pub fn c_ids(&self) -> &[u32] {
        &self.c_ids
    }

    /// Values of the non-zeros.
    pub fn vals(&self) -> &[f32] {
        &self.vals
    }

    /// Iterates over `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.nnz()).map(move |i| (self.r_ids[i], self.c_ids[i], self.vals[i]))
    }

    /// Converts to CSR format.
    pub fn to_csr(&self) -> Csr {
        Csr::from_coo(self)
    }

    /// Returns a copy with every value replaced by `f(row, col, value)`.
    ///
    /// The non-zero structure is preserved; useful for re-randomizing the
    /// values of a generated graph.
    pub fn map_values(&self, mut f: impl FnMut(u32, u32, f32) -> f32) -> Coo {
        let mut out = self.clone();
        for i in 0..out.vals.len() {
            out.vals[i] = f(out.r_ids[i], out.c_ids[i], out.vals[i]);
        }
        out
    }

    /// Bytes occupied by the three COO arrays (`u32` ids + `f32` values).
    pub fn size_bytes(&self) -> usize {
        self.nnz() * (2 * std::mem::size_of::<u32>() + std::mem::size_of::<f32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_are_sorted_and_deduplicated() {
        let a = Coo::from_triplets(3, 3, &[(2, 0, 1.0), (0, 1, 2.0), (2, 0, 3.0)]).unwrap();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.r_ids(), &[0, 2]);
        assert_eq!(a.c_ids(), &[1, 0]);
        assert_eq!(a.vals(), &[2.0, 4.0]);
    }

    #[test]
    fn out_of_bounds_triplet_is_rejected() {
        let err = Coo::from_triplets(2, 2, &[(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, MatrixError::IndexOutOfBounds { row: 2, .. }));
    }

    #[test]
    fn sorted_arrays_reject_unsorted_input() {
        let err =
            Coo::from_sorted_arrays(2, 2, vec![1, 0], vec![0, 0], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, MatrixError::Parse { .. }));
    }

    #[test]
    fn sorted_arrays_reject_duplicates() {
        let err =
            Coo::from_sorted_arrays(2, 2, vec![0, 0], vec![1, 1], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, MatrixError::Parse { .. }));
    }

    #[test]
    fn sorted_arrays_reject_length_mismatch() {
        let err = Coo::from_sorted_arrays(2, 2, vec![0], vec![0, 1], vec![1.0]).unwrap_err();
        assert!(matches!(err, MatrixError::LengthMismatch { .. }));
    }

    #[test]
    fn empty_matrix_is_fine() {
        let a = Coo::from_triplets(4, 4, &[]).unwrap();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.density(), 0.0);
    }

    #[test]
    fn density_of_full_row() {
        let a = Coo::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        assert_eq!(a.density(), 0.5);
    }

    #[test]
    fn iter_yields_row_major_order() {
        let a = Coo::from_triplets(3, 3, &[(1, 2, 1.0), (0, 0, 2.0), (1, 0, 3.0)]).unwrap();
        let order: Vec<(u32, u32)> = a.iter().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(order, vec![(0, 0), (1, 0), (1, 2)]);
    }

    #[test]
    fn map_values_preserves_structure() {
        let a = Coo::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        let b = a.map_values(|_, _, v| v * 10.0);
        assert_eq!(b.r_ids(), a.r_ids());
        assert_eq!(b.vals(), &[10.0, 20.0]);
    }

    #[test]
    fn size_bytes_counts_all_arrays() {
        let a = Coo::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        assert_eq!(a.size_bytes(), 2 * 12);
    }

    #[test]
    fn explicit_zero_positions_are_kept() {
        let a = Coo::from_triplets(2, 2, &[(0, 1, 0.0)]).unwrap();
        assert_eq!(a.nnz(), 1);
    }
}
