//! Prints Table 2-style structural statistics for the generated suite.

fn main() {
    use spade_matrix::analysis::MatrixStats;
    use spade_matrix::generators::{Benchmark, Scale};
    for b in Benchmark::ALL {
        let m = b.generate(Scale::Default);
        let s = MatrixStats::compute(&m);
        println!("{}: rows={} nnz={} avg_deg={:.1} skew={:.1} bw={:.4} reuse={:.3} -> {:?} (expect {:?})",
            b.short_name(), s.num_rows, s.nnz, s.avg_degree, s.degree_skew,
            s.normalized_bandwidth, s.local_column_reuse, s.classify_ru(), b.expected_ru());
    }
}
