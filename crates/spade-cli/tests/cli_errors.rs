//! Drives the real `spade-cli` binary: every user-input error path must
//! exit nonzero with a message on stderr, and must never reach the user as
//! a panic. A healthy invocation must exit zero.

use std::process::{Command, Output};

fn spade_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_spade-cli"))
        .args(args)
        .output()
        .expect("failed to spawn spade-cli")
}

/// Asserts the invocation failed cleanly: nonzero exit, an `error:` line
/// on stderr, and no panic trace anywhere.
fn assert_clean_failure(args: &[&str]) {
    let out = spade_cli(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "expected failure for {args:?}, got exit 0\nstdout: {stdout}"
    );
    assert!(
        stderr.contains("error:"),
        "no error message for {args:?}\nstderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stdout.contains("panicked"),
        "panic leaked to the user for {args:?}\nstderr: {stderr}"
    );
}

#[test]
fn no_subcommand_fails_cleanly() {
    assert_clean_failure(&[]);
}

#[test]
fn unknown_subcommand_fails_cleanly() {
    assert_clean_failure(&["frobnicate"]);
}

#[test]
fn unknown_benchmark_fails_cleanly() {
    assert_clean_failure(&["run", "--benchmark", "nope", "--pes", "4"]);
}

#[test]
fn missing_flag_value_fails_cleanly() {
    assert_clean_failure(&["run", "--benchmark"]);
}

#[test]
fn unparseable_numbers_fail_cleanly() {
    assert_clean_failure(&["run", "--benchmark", "myc", "--pes", "abc"]);
    assert_clean_failure(&["run", "--benchmark", "myc", "--pes", "4", "--k", "-1"]);
}

#[test]
fn zero_panel_sizes_fail_cleanly() {
    assert_clean_failure(&["run", "--benchmark", "myc", "--pes", "4", "--rp", "0"]);
    assert_clean_failure(&["run", "--benchmark", "myc", "--pes", "4", "--cp", "0"]);
}

#[test]
fn invalid_k_fails_cleanly() {
    // K must fill whole cache lines.
    assert_clean_failure(&["run", "--benchmark", "myc", "--pes", "4", "--k", "7"]);
}

#[test]
fn missing_matrix_file_fails_cleanly() {
    assert_clean_failure(&["mm", "--file", "/nonexistent/matrix.mtx", "--pes", "4"]);
}

#[test]
fn malformed_matrix_file_fails_cleanly() {
    let path = std::env::temp_dir().join("spade_cli_malformed.mtx");
    std::fs::write(
        &path,
        "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1\n",
    )
    .unwrap();
    assert_clean_failure(&["mm", "--file", path.to_str().unwrap(), "--pes", "4"]);
    let _ = std::fs::remove_file(path);
}

#[test]
fn healthy_run_exits_zero() {
    let out = spade_cli(&["run", "--benchmark", "myc", "--pes", "4", "--k", "16"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cycles"), "stdout: {stdout}");
}
