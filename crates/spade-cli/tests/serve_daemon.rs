//! Process-level daemon tests: a real `spade-cli serve` child process,
//! killed with real signals. The in-process suite
//! (`spade-bench/tests/service_robustness.rs`) covers protocol
//! behaviour; this one covers what only a process boundary can show —
//! SIGKILL mid-write with a restart over the same cache directory, and
//! SIGTERM draining to a zero exit code.
#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use spade_bench::service::ServiceClient;
use spade_sim::JsonValue;

const RUN_MYC: &str = r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"scale":"tiny"}"#;

/// A daemon child process plus the address parsed from its banner line.
struct Daemon {
    child: Child,
    addr: SocketAddr,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    /// Starts `spade-cli serve` on an OS-assigned port over `cache_dir`
    /// and waits for the banner line announcing the actual address.
    fn start(cache_dir: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_spade-cli"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--read-timeout-ms",
                "50",
                "--cache-dir",
            ])
            .arg(cache_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn spade-cli serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("read banner");
        let doc = JsonValue::parse(banner.trim())
            .unwrap_or_else(|e| panic!("bad banner {banner:?}: {e}"));
        let addr: SocketAddr = doc
            .get("serving")
            .and_then(JsonValue::as_str)
            .expect("banner has serving address")
            .parse()
            .expect("banner address parses");
        assert_eq!(doc.get("protocol").and_then(JsonValue::as_u64), Some(4));
        Daemon {
            child,
            addr,
            stdout,
        }
    }

    fn client(&self) -> ServiceClient {
        // The listener is up before the banner prints, so this connects
        // on the first try.
        ServiceClient::connect(&self.addr).expect("connect to daemon")
    }

    /// Sends `signum` to the child (std has no cross-signal API).
    fn signal(&self, signum: &str) {
        let status = Command::new("kill")
            .args([signum, &self.child.id().to_string()])
            .status()
            .expect("run kill");
        assert!(status.success(), "kill {signum} failed");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spade_daemon_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn parse(response: &str) -> JsonValue {
    JsonValue::parse(response).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

/// SIGKILL leaves no chance to clean up; the torn state a crash can
/// leave behind (a stray `.partial`, a truncated entry) is injected
/// explicitly so the recovery path is exercised deterministically. The
/// restarted daemon must quarantine the damage, recompute, and serve
/// bytes identical to the pre-crash result.
#[test]
fn sigkill_mid_write_then_restart_serves_identical_bytes() {
    let dir = temp_dir("kill9");
    let fresh_result;
    let key;
    {
        let daemon = Daemon::start(&dir);
        let mut client = daemon.client();
        let cold = parse(&client.request_line(RUN_MYC).expect("cold run"));
        assert_eq!(cold.get("cached").and_then(JsonValue::as_bool), Some(false));
        fresh_result = cold.get("result").expect("result").render();
        key = cold
            .get("key")
            .and_then(JsonValue::as_str)
            .expect("cache key")
            .to_string();

        // Put a second request in flight and SIGKILL while it may be
        // anywhere in its lifecycle — admission, simulation, or store.
        let addr = daemon.addr;
        let in_flight = std::thread::spawn(move || {
            let mut c = ServiceClient::connect(&addr).expect("connect");
            // The reply may never come; that is the point.
            let _ =
                c.request_line(r#"{"cmd":"run","benchmark":"kro","k":16,"pes":4,"no_cache":true}"#);
        });
        std::thread::sleep(Duration::from_millis(30));
        daemon.signal("-KILL");
        in_flight.join().expect("in-flight client thread");
        // No summary line on SIGKILL — death was immediate.
    }

    // Deterministic torn-write injection on top of whatever the kill
    // left: a garbage partial (crashed writer) and a truncated entry
    // (interrupted rename target — the worst case the checksum footer
    // exists to catch).
    let entry = dir.join(format!("{key}.entry"));
    let good_bytes = std::fs::read(&entry).expect("entry file exists");
    std::fs::write(dir.join(format!("{key}.999.0.partial")), b"torn garbage").unwrap();
    std::fs::write(&entry, &good_bytes[..good_bytes.len() / 2]).unwrap();

    {
        let daemon = Daemon::start(&dir);
        let mut client = daemon.client();
        // The stray partial was swept on open.
        assert!(
            !dir.join(format!("{key}.999.0.partial")).exists(),
            "partial files must be swept at startup"
        );
        // The truncated entry fails its checksum: quarantined, missed,
        // recomputed — and the recomputed bytes match the original run.
        let recovered = parse(&client.request_line(RUN_MYC).expect("recovered run"));
        assert_eq!(
            recovered.get("cached").and_then(JsonValue::as_bool),
            Some(false),
            "corrupt entry must not be served"
        );
        assert_eq!(
            recovered.get("result").expect("result").render(),
            fresh_result
        );
        assert!(dir.join("quarantine").exists(), "damage goes to quarantine");
        // And the slot is clean again: the next probe is a hit with the
        // same bytes.
        let warm = parse(&client.request_line(RUN_MYC).expect("warm run"));
        assert_eq!(warm.get("cached").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(warm.get("result").expect("result").render(), fresh_result);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The stale-index bugfix, at the process level: the index used to be
/// flushed only in the drain path, so SIGKILL — which never drains —
/// left it permanently stale and every cold `query` rescanned entry
/// payloads. Now each store flushes the index while the queue is idle,
/// so a SIGKILL'd daemon leaves `index.json` current and the restart
/// catalogs from it directly.
#[test]
fn sigkill_after_stores_leaves_a_fresh_index() {
    let dir = temp_dir("kill9_index");
    let mut keys = Vec::new();
    {
        let daemon = Daemon::start(&dir);
        let mut client = daemon.client();
        for req in [
            RUN_MYC,
            r#"{"cmd":"run","benchmark":"kro","k":16,"pes":4,"scale":"tiny"}"#,
        ] {
            let doc = parse(&client.request_line(req).expect("run"));
            assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
            keys.push(
                doc.get("key")
                    .and_then(JsonValue::as_str)
                    .expect("key")
                    .to_string(),
            );
        }
        daemon.signal("-KILL");
        // Dropped here: no drain, no summary — death was immediate.
    }

    let index = std::fs::read_to_string(dir.join("index.json"))
        .expect("index.json must exist after SIGKILL");
    let index = parse(&index);
    assert_eq!(index.get("entries").and_then(JsonValue::as_u64), Some(2));
    let listed: Vec<&str> = index
        .get("dataset")
        .and_then(JsonValue::as_array)
        .expect("dataset rows")
        .iter()
        .filter_map(|e| e.get("key").and_then(JsonValue::as_str))
        .collect();
    for key in &keys {
        assert!(
            listed.contains(&key.as_str()),
            "store {key} missing from the post-SIGKILL index {listed:?}"
        );
    }

    // The restart catalogs both entries straight from the fresh index.
    let daemon = Daemon::start(&dir);
    let mut client = daemon.client();
    let rows = parse(&client.request_line(r#"{"cmd":"query"}"#).expect("query"));
    assert_eq!(
        rows.get("result")
            .and_then(|r| r.get("matched"))
            .and_then(JsonValue::as_u64),
        Some(2)
    );
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGTERM is the supervisor's stop button: the daemon drains, flushes
/// the cache index, prints its lifetime summary, and exits 0.
#[test]
fn sigterm_drains_flushes_and_exits_zero() {
    let dir = temp_dir("sigterm");
    let mut daemon = Daemon::start(&dir);
    let mut client = daemon.client();
    let run = parse(&client.request_line(RUN_MYC).expect("run"));
    assert_eq!(run.get("ok").and_then(JsonValue::as_bool), Some(true));

    daemon.signal("-TERM");
    let status = daemon.child.wait().expect("wait for daemon");
    assert!(status.success(), "SIGTERM must exit 0, got {status}");

    // The summary line made it out before exit.
    let mut summary = String::new();
    daemon.stdout.read_line(&mut summary).expect("read summary");
    let doc = parse(summary.trim());
    assert_eq!(doc.get("served_ok").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(
        doc.get("cache")
            .and_then(|c| c.get("stores"))
            .and_then(JsonValue::as_u64),
        Some(1)
    );
    // The index was flushed during the drain.
    let index = std::fs::read_to_string(dir.join("index.json")).expect("index.json");
    let index = parse(&index);
    assert_eq!(index.get("entries").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(
        index
            .get("stats")
            .and_then(|s| s.get("stores"))
            .and_then(JsonValue::as_u64),
        Some(1)
    );
    // The machine-readable summary embeds the final metrics snapshot,
    // with the run counted.
    let snap = spade_bench::metrics::MetricsSnapshot::from_json(
        doc.get("metrics").expect("summary has metrics"),
    )
    .expect("summary metrics decode");
    assert_eq!(
        snap.counter("spade_requests_total", &[("cmd", "run"), ("outcome", "ok")]),
        Some(1)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs the built `spade-cli` with `args`, returning success + stdout.
fn cli(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_spade-cli"))
        .args(args)
        .output()
        .expect("run spade-cli");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// The typed `client` subcommands, end to end against a live daemon:
/// run (json and text), status, a Prometheus scrape, a dataset query,
/// and a wire-served trace byte-compared against the locally produced
/// file.
#[test]
fn client_subcommands_drive_the_daemon_end_to_end() {
    let dir = temp_dir("client");
    let mut daemon = Daemon::start(&dir);
    let addr = daemon.addr.to_string();

    let (ok, out) = cli(&[
        "client",
        "run",
        "--addr",
        &addr,
        "--benchmark",
        "myc",
        "--k",
        "16",
        "--pes",
        "4",
        "--scale",
        "tiny",
        "--format",
        "json",
    ]);
    assert!(ok, "client run failed: {out}");
    let doc = parse(out.trim());
    assert_eq!(doc.get("cached").and_then(JsonValue::as_bool), Some(false));
    let key = doc
        .get("key")
        .and_then(JsonValue::as_str)
        .expect("run key")
        .to_string();

    let (ok, out) = cli(&[
        "client",
        "run",
        "--addr",
        &addr,
        "--benchmark",
        "myc",
        "--k",
        "16",
        "--pes",
        "4",
        "--scale",
        "tiny",
    ]);
    assert!(ok, "client run (text) failed: {out}");
    assert!(out.contains("cycles") && out.contains("cached"), "{out}");

    let (ok, out) = cli(&["client", "status", "--addr", &addr]);
    assert!(ok, "client status failed: {out}");
    assert!(out.contains("served") && out.contains("cache"), "{out}");

    let (ok, out) = cli(&["client", "metrics", "--addr", &addr, "--prom"]);
    assert!(ok, "client metrics failed: {out}");
    assert!(
        out.contains("spade_requests_total{cmd=\"run\",outcome=\"ok\"} 2"),
        "scrape missing run counter:\n{out}"
    );
    assert!(out.contains("spade_cache_hits_total 1"), "{out}");

    let (ok, out) = cli(&[
        "client", "query", "--addr", &addr, "--kind", "run", "--format", "json",
    ]);
    assert!(ok, "client query failed: {out}");
    let entries = parse(out.trim());
    let entries = entries
        .get("result")
        .and_then(|r| r.get("entries"))
        .and_then(JsonValue::as_array)
        .expect("query entries");
    assert_eq!(entries.len(), 1);
    assert_eq!(
        entries[0].get("key").and_then(JsonValue::as_str),
        Some(key.as_str())
    );

    // Wire-served trace vs the locally written file: byte-identical.
    let remote = dir.join("remote.trace.json");
    let local = dir.join("local.trace.json");
    let (ok, out) = cli(&[
        "client",
        "trace",
        "--addr",
        &addr,
        "--benchmark",
        "myc",
        "--k",
        "16",
        "--pes",
        "4",
        "--scale",
        "tiny",
        "--window",
        "64",
        "--out",
        remote.to_str().unwrap(),
    ]);
    assert!(ok, "client trace failed: {out}");
    let (ok, out) = cli(&[
        "trace",
        "myc",
        "--scale",
        "tiny",
        "--k",
        "16",
        "--pes",
        "4",
        "--window",
        "64",
        "--out",
        local.to_str().unwrap(),
    ]);
    assert!(ok, "local trace failed: {out}");
    let remote_bytes = std::fs::read(&remote).expect("remote trace file");
    let local_bytes = std::fs::read(&local).expect("local trace file");
    assert!(
        remote_bytes == local_bytes,
        "wire-served trace differs from the local file"
    );

    // A batch sweep through the typed client: the myc job is already
    // cached from the runs above, the kro job simulates fresh — one
    // request, per-job outcomes.
    let (ok, out) = cli(&[
        "client",
        "batch",
        "--addr",
        &addr,
        "--benchmarks",
        "myc,kro",
        "--k",
        "16",
        "--pes",
        "4",
        "--scale",
        "tiny",
        "--format",
        "json",
    ]);
    assert!(ok, "client batch failed: {out}");
    let doc = parse(out.trim());
    let result = doc.get("result").expect("batch result");
    assert_eq!(result.get("total").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(result.get("succeeded").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(result.get("cached").and_then(JsonValue::as_u64), Some(1));
    let jobs = result
        .get("jobs")
        .and_then(JsonValue::as_array)
        .expect("batch jobs");
    assert_eq!(
        jobs[0].get("cached").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(
        jobs[1].get("cached").and_then(JsonValue::as_bool),
        Some(false)
    );

    // Server-side aggregation: best-plans is the per-benchmark fold.
    let (ok, out) = cli(&["client", "best-plans", "--addr", &addr]);
    assert!(ok, "client best-plans failed: {out}");
    let lower = out.to_lowercase();
    assert!(
        lower.contains("group_by benchmark") && lower.contains("myc") && lower.contains("kro"),
        "best-plans output incomplete:\n{out}"
    );
    let (ok, out) = cli(&[
        "client",
        "agg",
        "--addr",
        &addr,
        "--group-by",
        "pes",
        "--format",
        "json",
    ]);
    assert!(ok, "client agg failed: {out}");
    let doc = parse(out.trim());
    assert_eq!(
        doc.get("result")
            .and_then(|r| r.get("groups_matched"))
            .and_then(JsonValue::as_u64),
        Some(1),
        "every seeded entry ran at 4 PEs"
    );

    let (ok, out) = cli(&["client", "shutdown", "--addr", &addr]);
    assert!(ok, "client shutdown failed: {out}");
    let status = daemon.child.wait().expect("wait for daemon");
    assert!(status.success(), "drain after client shutdown must exit 0");
    let _ = std::fs::remove_dir_all(&dir);
}
