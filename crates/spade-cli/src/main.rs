//! `spade-cli` — command-line driver for the SPADE simulation workspace.
//!
//! ```text
//! spade-cli info  [--scale tiny|small|default|large]
//! spade-cli run   --benchmark kro [--kernel spmm|sddmm] [--k 32] [--pes 56]
//!                 [--rp N] [--cp N|all] [--rmatrix cache|bypass|victim]
//!                 [--barriers] [--json]
//! spade-cli advise --benchmark kro [--k 32] [--pes 56]
//! spade-cli search --benchmark kro [--k 32] [--pes 56] [--full]
//! spade-cli mm    --file matrix.mtx [--k 32] [--pes 56] [--json]
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
