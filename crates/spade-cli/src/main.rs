//! `spade-cli` — command-line driver for the SPADE simulation workspace.
//!
//! ```text
//! spade-cli info  [--scale tiny|small|default|large]
//! spade-cli run   --benchmark kro [--kernel spmm|sddmm] [--k 32] [--pes 56]
//!                 [--rp N] [--cp N|all] [--rmatrix cache|bypass|victim]
//!                 [--barriers] [--format json|text] [--telemetry 256]
//! spade-cli trace kro [--kernel spmm|sddmm] [--k 32] [--pes 56]
//!                 [--window 256] [--out kro.trace.json]
//! spade-cli advise --benchmark kro [--k 32] [--pes 56]
//! spade-cli search --benchmark kro [--k 32] [--pes 56] [--full]
//!                 [--format json|text] [--telemetry 256]
//! spade-cli mm    --file matrix.mtx [--k 32] [--pes 56] [--format json|text]
//! spade-cli bench-perf [--scale tiny|small|default|large] [--k 32] [--pes 56]
//!                 [--out BENCH_sim.json]
//! ```

mod args;
mod commands;

use std::process::ExitCode;

/// Whether a panic payload is `println!` failing on a closed stdout
/// (e.g. `spade-cli info | head`): the reader went away, which is not an
/// error worth a backtrace.
fn is_broken_pipe(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<String>()
        .is_some_and(|s| s.contains("Broken pipe"))
}

fn main() -> ExitCode {
    // Keep the default hook for real panics but stay quiet on broken
    // pipes; the catch below turns those into the conventional exit code.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !is_broken_pipe(info.payload()) {
            default_hook(info);
        }
    }));
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match std::panic::catch_unwind(|| commands::dispatch(&argv)) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        // An empty message means the subcommand already reported the
        // failure (e.g. `client` printing the daemon's error reply);
        // dumping the usage text over it would only bury the answer.
        Ok(Err(e)) if e.is_empty() => ExitCode::FAILURE,
        Ok(Err(e)) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
        Err(payload) if is_broken_pipe(payload.as_ref()) => {
            // 128 + SIGPIPE, what a signal death would report.
            ExitCode::from(141)
        }
        Err(payload) => std::panic::resume_unwind(payload),
    }
}
