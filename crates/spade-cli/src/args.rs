//! Minimal hand-rolled flag parsing (the workspace deliberately uses only
//! the pre-approved dependency set, which has no argument parser).

use std::collections::HashMap;

/// Parsed `--flag value` / `--switch` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `argv` (after the subcommand). `switches` lists flags that
    /// take no value.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown syntax or a flag missing its value.
    pub fn parse(argv: &[String], switches: &[&str]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument '{arg}'"));
            };
            if switches.contains(&name) {
                out.switches.push(name.to_string());
                i += 1;
            } else {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                out.values.insert(name.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(out)
    }

    /// The value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Whether switch `--name` was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Parses `--name` as `T`, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{v}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let a = Args::parse(&argv(&["--k", "32", "--json", "--pes", "56"]), &["json"]).unwrap();
        assert_eq!(a.get("k"), Some("32"));
        assert!(a.has("json"));
        assert_eq!(a.get_parsed("pes", 0usize).unwrap(), 56);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv(&["--k"]), &[]).is_err());
    }

    #[test]
    fn positional_arguments_are_rejected() {
        assert!(Args::parse(&argv(&["kro"]), &[]).is_err());
    }

    #[test]
    fn defaults_apply_when_flag_absent() {
        let a = Args::parse(&argv(&[]), &[]).unwrap();
        assert_eq!(a.get_parsed("k", 32usize).unwrap(), 32);
    }

    #[test]
    fn bad_parse_is_an_error() {
        let a = Args::parse(&argv(&["--k", "abc"]), &[]).unwrap();
        assert!(a.get_parsed("k", 0usize).is_err());
    }
}
