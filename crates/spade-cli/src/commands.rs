//! Subcommand implementations.

use std::fs::File;
use std::io::BufReader;

use serde::Serialize;
use spade_core::{
    advisor, run_sddmm_checked, run_spmm_checked, BarrierPolicy, CMatrixPolicy, ExecutionPlan,
    PlanSearchSpace, Primitive, RMatrixPolicy, RunReport, SpadeSystem, SystemConfig,
};
use spade_matrix::analysis::MatrixStats;
use spade_matrix::generators::{Benchmark, Scale};
use spade_matrix::{mm, Coo, DenseMatrix};

use crate::args::Args;

/// Top-level usage text.
pub const USAGE: &str = "usage:
  spade-cli info   [--scale tiny|small|default|large]
  spade-cli run    --benchmark <name> [--kernel spmm|sddmm] [--k 32]
                   [--pes 56] [--scale tiny|small|default|large]
                   [--rp N] [--cp N|all] [--rmatrix cache|bypass|victim]
                   [--barriers] [--json]
  spade-cli advise --benchmark <name> [--k 32] [--pes 56] [--scale ...]
  spade-cli search --benchmark <name> [--k 32] [--pes 56] [--scale ...] [--full]
  spade-cli mm     --file <matrix.mtx> [--k 32] [--pes 56] [--json]

benchmarks: asi liv ork pap del kro myc pac roa ser";

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags or
/// failed runs.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "info" => info(rest),
        "run" => run(rest),
        "advise" => advise_cmd(rest),
        "search" => search(rest),
        "mm" => run_mm(rest),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn parse_scale(args: &Args) -> Result<Scale, String> {
    match args.get("scale").unwrap_or("tiny") {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "default" => Ok(Scale::Default),
        "large" => Ok(Scale::Large),
        other => Err(format!("--scale: unknown scale '{other}'")),
    }
}

fn parse_benchmark(args: &Args) -> Result<Benchmark, String> {
    let name = args
        .get("benchmark")
        .ok_or("--benchmark is required")?
        .to_lowercase();
    Benchmark::ALL
        .into_iter()
        .find(|b| b.short_name().eq_ignore_ascii_case(&name))
        .ok_or(format!("unknown benchmark '{name}'"))
}

fn parse_system(args: &Args) -> Result<SystemConfig, String> {
    let pes: usize = args.get_parsed("pes", 56)?;
    if pes == 0 || pes % 4 != 0 {
        return Err("--pes must be a positive multiple of 4".into());
    }
    Ok(SystemConfig::scaled(pes))
}

fn info(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let scale = parse_scale(&args)?;
    println!(
        "{:<6} {:<24} {:>8} {:>9} {:>8} {:>7}  RU",
        "name", "domain", "rows", "nnz", "avg-deg", "density"
    );
    for b in Benchmark::ALL {
        let m = b.generate(scale);
        let s = MatrixStats::compute(&m);
        println!(
            "{:<6} {:<24} {:>8} {:>9} {:>8.1} {:>7.0e}  {}",
            b.short_name(),
            b.domain(),
            s.num_rows,
            s.nnz,
            s.avg_degree,
            s.density,
            s.classify_ru()
        );
    }
    Ok(())
}

fn parse_plan(args: &Args, a: &Coo) -> Result<ExecutionPlan, String> {
    let mut plan = ExecutionPlan::spmm_base(a).map_err(|e| e.to_string())?;
    if let Some(rp) = args.get("rp") {
        plan.tiling.row_panel_size = rp.parse().map_err(|_| "--rp: bad number")?;
    }
    if let Some(cp) = args.get("cp") {
        plan.tiling.col_panel_size = if cp == "all" {
            a.num_cols().max(1)
        } else {
            cp.parse().map_err(|_| "--cp: bad number")?
        };
    }
    plan.r_policy = match args.get("rmatrix").unwrap_or("cache") {
        "cache" => RMatrixPolicy::Cache,
        "bypass" => RMatrixPolicy::Bypass,
        "victim" => RMatrixPolicy::BypassVictim,
        other => return Err(format!("--rmatrix: unknown policy '{other}'")),
    };
    plan.c_policy = CMatrixPolicy::Cache;
    if args.has("barriers") {
        plan.barriers = BarrierPolicy::per_column_panel();
    }
    Ok(plan)
}

#[derive(Serialize)]
struct RunSummary<'a> {
    benchmark: &'a str,
    kernel: String,
    k: usize,
    pes: usize,
    plan: &'a ExecutionPlan,
    report: &'a RunReport,
}

fn execute(
    system_config: &SystemConfig,
    a: &Coo,
    k: usize,
    kernel: Primitive,
    plan: &ExecutionPlan,
) -> RunReport {
    let b = DenseMatrix::from_fn(a.num_rows().max(a.num_cols()), k, |r, c| {
        ((r * 31 + c * 7) % 23) as f32 * 0.0625 - 0.5
    });
    let mut sys = SpadeSystem::new(system_config.clone());
    match kernel {
        Primitive::Spmm => run_spmm_checked(&mut sys, a, &b, plan).report,
        Primitive::Sddmm => {
            let c_t = DenseMatrix::from_fn(a.num_cols(), k, |r, c| {
                ((r * 13 + c * 11) % 19) as f32 * 0.0625 - 0.4
            });
            run_sddmm_checked(&mut sys, a, &b, &c_t, plan).report
        }
    }
}

fn print_report(report: &RunReport, json: bool, ctx: RunSummary<'_>) -> Result<(), String> {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&ctx).map_err(|e| e.to_string())?
        );
    } else {
        println!("cycles            : {}", report.cycles);
        println!("time              : {:.1} µs", report.time_ns / 1e3);
        println!("vOps              : {}", report.total_vops);
        println!("DRAM accesses     : {}", report.dram_accesses);
        println!("LLC accesses      : {}", report.llc_accesses);
        println!("requests/cycle    : {:.2}", report.requests_per_cycle);
        println!("DRAM bandwidth    : {:.1} GB/s", report.achieved_gbps);
        println!(
            "termination cost  : {:.2}%",
            report.termination_fraction() * 100.0
        );
    }
    Ok(())
}

fn parse_kernel(args: &Args) -> Result<Primitive, String> {
    match args.get("kernel").unwrap_or("spmm") {
        "spmm" => Ok(Primitive::Spmm),
        "sddmm" => Ok(Primitive::Sddmm),
        other => Err(format!("--kernel: unknown kernel '{other}'")),
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["json", "barriers"])?;
    let bench = parse_benchmark(&args)?;
    let scale = parse_scale(&args)?;
    let k: usize = args.get_parsed("k", 32)?;
    let kernel = parse_kernel(&args)?;
    let system_config = parse_system(&args)?;
    let a = bench.generate(scale);
    let plan = parse_plan(&args, &a)?;
    let report = execute(&system_config, &a, k, kernel, &plan);
    print_report(
        &report,
        args.has("json"),
        RunSummary {
            benchmark: bench.short_name(),
            kernel: kernel.to_string(),
            k,
            pes: system_config.num_pes,
            plan: &plan,
            report: &report,
        },
    )
}

fn advise_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let bench = parse_benchmark(&args)?;
    let scale = parse_scale(&args)?;
    let k: usize = args.get_parsed("k", 32)?;
    let system_config = parse_system(&args)?;
    let a = bench.generate(scale);
    let stats = MatrixStats::compute(&a);
    let plan = advisor::advise(&a, k, &system_config).map_err(|e| e.to_string())?;
    println!(
        "{}: {} rows, {} nnz, RU={}",
        bench.short_name(),
        a.num_rows(),
        a.nnz(),
        stats.classify_ru()
    );
    println!(
        "advised: RP={} CP={} rMatrix={:?} cMatrix={:?} barriers={}",
        plan.tiling.row_panel_size,
        plan.tiling.col_panel_size,
        plan.r_policy,
        plan.c_policy,
        plan.barriers.is_enabled()
    );
    Ok(())
}

fn search(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["full"])?;
    let bench = parse_benchmark(&args)?;
    let scale = parse_scale(&args)?;
    let k: usize = args.get_parsed("k", 32)?;
    let system_config = parse_system(&args)?;
    let a = bench.generate(scale);
    let space = if args.has("full") {
        PlanSearchSpace::table3(k)
    } else {
        PlanSearchSpace::quick(k)
    };
    let mut results: Vec<(ExecutionPlan, u64)> = Vec::new();
    for plan in space.enumerate(&a) {
        let report = execute(&system_config, &a, k, Primitive::Spmm, &plan);
        results.push((plan, report.cycles));
    }
    results.sort_by_key(|&(_, c)| c);
    println!("{} plans searched; best first:", results.len());
    for (plan, cycles) in results.iter().take(5) {
        println!(
            "  {:>10} cycles  RP={:<6} CP={:<8} {:?} barriers={}",
            cycles,
            plan.tiling.row_panel_size,
            plan.tiling.col_panel_size,
            plan.r_policy,
            plan.barriers.is_enabled()
        );
    }
    Ok(())
}

fn run_mm(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["json"])?;
    let path = args.get("file").ok_or("--file is required")?;
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let a = mm::read_matrix_market(BufReader::new(file)).map_err(|e| e.to_string())?;
    let k: usize = args.get_parsed("k", 32)?;
    let system_config = parse_system(&args)?;
    let plan = advisor::advise(&a, k, &system_config).map_err(|e| e.to_string())?;
    let report = execute(&system_config, &a, k, Primitive::Spmm, &plan);
    print_report(
        &report,
        args.has("json"),
        RunSummary {
            benchmark: path,
            kernel: Primitive::Spmm.to_string(),
            k,
            pes: system_config.num_pes,
            plan: &plan,
            report: &report,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn info_runs() {
        dispatch(&argv(&["info"])).unwrap();
    }

    #[test]
    fn run_executes_a_tiny_benchmark() {
        dispatch(&argv(&[
            "run",
            "--benchmark",
            "myc",
            "--k",
            "16",
            "--pes",
            "4",
        ]))
        .unwrap();
    }

    #[test]
    fn run_with_json_and_knobs() {
        dispatch(&argv(&[
            "run",
            "--benchmark",
            "kro",
            "--pes",
            "4",
            "--rp",
            "4",
            "--cp",
            "all",
            "--rmatrix",
            "victim",
            "--json",
        ]))
        .unwrap();
    }

    #[test]
    fn advise_runs() {
        dispatch(&argv(&["advise", "--benchmark", "roa", "--pes", "8"])).unwrap();
    }

    #[test]
    fn bad_pes_is_rejected() {
        assert!(dispatch(&argv(&["run", "--benchmark", "kro", "--pes", "3"])).is_err());
    }

    #[test]
    fn mm_roundtrip_via_tempfile() {
        let a = Coo::from_triplets(32, 32, &[(0, 1, 1.0), (5, 7, 2.0), (31, 0, 3.0)]).unwrap();
        let path = std::env::temp_dir().join("spade_cli_test.mtx");
        let mut buf = Vec::new();
        mm::write_matrix_market(&a, &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        dispatch(&argv(&[
            "mm",
            "--file",
            path.to_str().unwrap(),
            "--k",
            "16",
            "--pes",
            "4",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(path);
    }
}
