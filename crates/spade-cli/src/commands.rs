//! Subcommand implementations.

use std::fs::File;
use std::io::BufReader;
use std::sync::Arc;
use std::time::Instant;

use spade_bench::model::{CostModel, TrainingRow};
use spade_bench::parallel::{self, Job, JobOutput, ParallelRunner};
use spade_bench::service;
use spade_bench::suite::Workload;
use spade_core::advisor::PlanRanker;
use spade_core::{
    advisor, BarrierPolicy, CMatrixPolicy, ExecutionPlan, JsonValue, PlanSearchSpace, Primitive,
    RMatrixPolicy, RunReport, SystemConfig, TelemetrySeries,
};
use spade_matrix::analysis::{MatrixFeatures, MatrixStats};
use spade_matrix::generators::{Benchmark, Scale};
use spade_matrix::{mm, Coo};
use spade_sim::Cycle;

use crate::args::Args;

/// Top-level usage text.
pub const USAGE: &str = "usage:
  spade-cli info   [--scale tiny|small|default|large]
  spade-cli run    --benchmark <name> [--kernel spmm|sddmm] [--k 32]
                   [--pes 56] [--scale tiny|small|default|large]
                   [--rp N] [--cp N|all] [--rmatrix cache|bypass|victim]
                   [--barriers] [--format json|text] [--telemetry <window>]
                   [--shards N] [--deadline-cycles N]
  spade-cli trace  <name> [--kernel spmm|sddmm] [--k 32] [--pes 56]
                   [--scale ...] [--window 256] [--out <file.trace.json>]
                   [--shards N]
  spade-cli advise --benchmark <name> [--k 32] [--pes 56] [--scale ...]
                   [--fast|--exact] [--model FILE] [--top-n 5] [--exhaustive]
                   [--format json|text]
  spade-cli search --benchmark <name> [--k 32] [--pes 56] [--scale ...] [--full]
                   [--format json|text] [--telemetry <window>] [--shards N]
                   [--deadline-cycles N]
  spade-cli mm     --file <matrix.mtx> [--k 32] [--pes 56] [--format json|text]
  spade-cli serve  [--addr 127.0.0.1:7700] [--cache-dir DIR] [--workers N]
                   [--queue 32] [--max-connections 32] [--deadline-cycles N]
                   [--read-timeout-ms 500] [--log-json] [--model FILE]
  spade-cli client --addr <host:port> --request '<json>'
  spade-cli client ping|status|metrics|shutdown --addr <host:port>
                   [--format json|text] [--prom (metrics only)]
  spade-cli client run|search|trace --addr <host:port> --benchmark <name>
                   [job flags as above] [--no-cache] [--format json|text]
                   [--window 256 --out <file.trace.json> (trace only)]
  spade-cli client query --addr <host:port> [--benchmark <name>]
                   [--kernel spmm|sddmm] [--kind run|search|trace] [--k N]
                   [--pes N] [--min-cycles N] [--max-cycles N] [--limit N]
                   [--format json|text]
  spade-cli client batch --addr <host:port> --benchmarks a,b,c
                   [--kernels spmm,sddmm] [--k 32,128] [--pes 56,112]
                   [--rp N] [--cp N|all] [--rmatrix cache|bypass|victim]
                   [--barriers] [--scale ...] [--deadline-cycles N]
                   [--no-cache] [--format json|text]
  spade-cli client agg --addr <host:port> --group-by benchmark|kernel|pes
                   [query filters as above] [--format json|text]
  spade-cli client best-plans --addr <host:port> [query filters as above]
                   [--format json|text]
  spade-cli bench-perf [--scale tiny|small|default|large] [--k 32] [--pes 56]
                   [--mem-ops 200000] [--gate-speedup X] [--gate-mem-speedup X]
                   [--shards 4] [--gate-shard-speedup X] [--out BENCH_sim.json]
  spade-cli client advise --addr <host:port> --benchmark <name> [--k 32]
                   [--pes 56] [--scale ...] [--format json|text]
  spade-cli dataset export --cache-dir DIR [--out FILE]
  spade-cli model train --dataset FILE [--scale tiny|small|default|large]
                   [--out spade.model] [--report FILE]
  spade-cli bench-advise [--scale ...] [--k 32] [--pes 56]
                   [--out BENCH_sim.json] [--model-out FILE] [--report-out FILE]
                   [--gate-advise-speedup X] [--gate-advise-quality X]

benchmarks: asi liv ork pap del kro myc pac roa ser";

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags or
/// failed runs.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "info" => info(rest),
        "run" => run(rest),
        "trace" => trace_cmd(rest),
        "advise" => advise_cmd(rest),
        "search" => search(rest),
        "mm" => run_mm(rest),
        "serve" => serve(rest),
        "client" => client(rest),
        "bench-perf" => bench_perf(rest),
        "bench-advise" => bench_advise(rest),
        "dataset" => dataset(rest),
        "model" => model_cmd(rest),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn parse_scale(args: &Args) -> Result<Scale, String> {
    match args.get("scale").unwrap_or("tiny") {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "default" => Ok(Scale::Default),
        "large" => Ok(Scale::Large),
        other => Err(format!("--scale: unknown scale '{other}'")),
    }
}

fn lookup_benchmark(name: &str) -> Result<Benchmark, String> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.short_name().eq_ignore_ascii_case(name))
        .ok_or(format!("unknown benchmark '{name}'"))
}

fn parse_benchmark(args: &Args) -> Result<Benchmark, String> {
    lookup_benchmark(args.get("benchmark").ok_or("--benchmark is required")?)
}

/// Whether machine-readable output was requested: `--format json|text`,
/// with the legacy `--json` switch as an alias for `--format json`.
fn parse_format(args: &Args) -> Result<bool, String> {
    match args.get("format") {
        None => Ok(args.has("json")),
        Some("json") => Ok(true),
        Some("text") => Ok(false),
        Some(other) => Err(format!("--format: unknown format '{other}' (json|text)")),
    }
}

/// Parses `--telemetry <window>`, rejecting the zero window the simulator
/// would refuse anyway.
fn parse_telemetry(args: &Args) -> Result<Option<Cycle>, String> {
    match args.get("telemetry") {
        None => Ok(None),
        Some(v) => {
            let w: Cycle = v
                .parse()
                .map_err(|_| format!("--telemetry: cannot parse '{v}'"))?;
            if w == 0 {
                return Err("--telemetry: window must be at least one cycle".into());
            }
            Ok(Some(w))
        }
    }
}

/// Parses `--shards <n>`: how many host shards to split the simulation
/// across. `None` inherits `SPADE_SIM_SHARDS` (default 1); results are
/// bit-identical at every shard count.
fn parse_shards(args: &Args) -> Result<Option<usize>, String> {
    match args.get("shards") {
        None => Ok(None),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| format!("--shards: cannot parse '{v}'"))?;
            if n == 0 {
                return Err("--shards: need at least one shard".into());
            }
            Ok(Some(n))
        }
    }
}

/// Parses `--deadline-cycles <n>`: a hard ceiling on simulated cycles,
/// riding the watchdog's `max_cycles` — a run past the deadline fails
/// with a structured error instead of running forever.
fn parse_deadline(args: &Args) -> Result<Option<Cycle>, String> {
    match args.get("deadline-cycles") {
        None => Ok(None),
        Some(v) => {
            let d: Cycle = v
                .parse()
                .map_err(|_| format!("--deadline-cycles: cannot parse '{v}'"))?;
            if d == 0 {
                return Err("--deadline-cycles: need at least one cycle".into());
            }
            Ok(Some(d))
        }
    }
}

fn parse_system(args: &Args) -> Result<SystemConfig, String> {
    let pes: usize = args.get_parsed("pes", 56)?;
    if pes == 0 || !pes.is_multiple_of(4) {
        return Err("--pes must be a positive multiple of 4".into());
    }
    Ok(SystemConfig::scaled(pes))
}

fn info(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let scale = parse_scale(&args)?;
    println!(
        "{:<6} {:<24} {:>8} {:>9} {:>8} {:>7}  RU",
        "name", "domain", "rows", "nnz", "avg-deg", "density"
    );
    for b in Benchmark::ALL {
        let m = b.generate(scale);
        let s = MatrixStats::compute(&m);
        println!(
            "{:<6} {:<24} {:>8} {:>9} {:>8.1} {:>7.0e}  {}",
            b.short_name(),
            b.domain(),
            s.num_rows,
            s.nnz,
            s.avg_degree,
            s.density,
            s.classify_ru()
        );
    }
    Ok(())
}

fn parse_plan(args: &Args, a: &Coo) -> Result<ExecutionPlan, String> {
    let mut plan = ExecutionPlan::spmm_base(a).map_err(|e| e.to_string())?;
    let mut rp = plan.tiling.row_panel_size;
    let mut cp = plan.tiling.col_panel_size;
    if let Some(v) = args.get("rp") {
        rp = v.parse().map_err(|_| "--rp: bad number")?;
    }
    if let Some(v) = args.get("cp") {
        cp = if v == "all" {
            a.num_cols().max(1)
        } else {
            v.parse().map_err(|_| "--cp: bad number")?
        };
    }
    // Re-validate through the constructor so a zero panel size is a flag
    // error here, not a failure inside the simulator.
    plan.tiling = spade_matrix::TilingConfig::new(rp, cp).map_err(|e| e.to_string())?;
    plan.r_policy = match args.get("rmatrix").unwrap_or("cache") {
        "cache" => RMatrixPolicy::Cache,
        "bypass" => RMatrixPolicy::Bypass,
        "victim" => RMatrixPolicy::BypassVictim,
        other => return Err(format!("--rmatrix: unknown policy '{other}'")),
    };
    plan.c_policy = CMatrixPolicy::Cache;
    if args.has("barriers") {
        plan.barriers = BarrierPolicy::per_column_panel();
    }
    Ok(plan)
}

struct RunSummary<'a> {
    benchmark: &'a str,
    kernel: String,
    k: usize,
    pes: usize,
    plan: &'a ExecutionPlan,
    report: &'a RunReport,
    telemetry: Option<&'a TelemetrySeries>,
}

/// An execution plan as a JSON object.
fn plan_json(p: &ExecutionPlan) -> JsonValue {
    JsonValue::object([
        ("row_panel_size", p.tiling.row_panel_size.into()),
        ("col_panel_size", p.tiling.col_panel_size.into()),
        ("r_policy", format!("{:?}", p.r_policy).into()),
        ("c_policy", format!("{:?}", p.c_policy).into()),
        ("barriers", p.barriers.is_enabled().into()),
    ])
}

impl RunSummary<'_> {
    /// The run as one JSON document (hand-rolled writer — the workspace is
    /// dependency-free): context, plan, the full report, and the telemetry
    /// series when sampling was on.
    fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("benchmark", JsonValue::from(self.benchmark)),
            ("kernel", self.kernel.as_str().into()),
            ("k", self.k.into()),
            ("pes", self.pes.into()),
            ("plan", plan_json(self.plan)),
            ("report", self.report.to_json()),
            (
                "sim_cycles_per_host_sec",
                self.report.sim_cycles_per_host_sec().into(),
            ),
        ];
        if let Some(series) = self.telemetry {
            fields.push(("telemetry", series.to_json()));
        }
        JsonValue::object(fields)
    }
}

/// Runs one validated simulation with optional observability, routing
/// through the bench workload so the gold kernel is computed once and the
/// run checks against the shared cached result.
#[allow(clippy::too_many_arguments)]
fn execute_observed(
    system_config: &SystemConfig,
    a: &Coo,
    name: &str,
    k: usize,
    kernel: Primitive,
    plan: &ExecutionPlan,
    telemetry: Option<Cycle>,
    trace: bool,
    shards: Option<usize>,
    deadline: Option<Cycle>,
) -> Result<JobOutput, String> {
    let w = Workload::from_matrix(name.to_string(), a.clone(), k);
    Job::new(
        &Arc::new(w),
        &Arc::new(system_config.clone()),
        kernel,
        *plan,
    )
    .with_telemetry(telemetry)
    .with_trace(trace)
    .with_shards(shards)
    .with_deadline_cycles(deadline)
    .try_execute_full()
    .map_err(|e| e.to_string())
}

fn execute(
    system_config: &SystemConfig,
    a: &Coo,
    name: &str,
    k: usize,
    kernel: Primitive,
    plan: &ExecutionPlan,
) -> Result<RunReport, String> {
    execute_observed(
        system_config,
        a,
        name,
        k,
        kernel,
        plan,
        None,
        false,
        None,
        None,
    )
    .map(|o| o.report)
}

fn print_report(report: &RunReport, json: bool, ctx: RunSummary<'_>) -> Result<(), String> {
    if json {
        println!("{}", ctx.to_json().render());
    } else {
        println!("cycles            : {}", report.cycles);
        println!("time              : {:.1} µs", report.time_ns / 1e3);
        println!("vOps              : {}", report.total_vops);
        println!("DRAM accesses     : {}", report.dram_accesses);
        println!("LLC accesses      : {}", report.llc_accesses);
        println!("requests/cycle    : {:.2}", report.requests_per_cycle);
        println!("DRAM bandwidth    : {:.1} GB/s", report.achieved_gbps);
        println!(
            "termination cost  : {:.2}%",
            report.termination_fraction() * 100.0
        );
        println!(
            "host wall clock   : {:.1} ms ({:.1} Mcycle/s simulated)",
            report.host_wall_ns / 1e6,
            report.sim_cycles_per_host_sec() / 1e6
        );
        if let Some(series) = ctx.telemetry {
            println!(
                "telemetry         : {} windows × {} cycles, mean {:.2} req/cycle, peak {:.2}",
                series.samples.len(),
                series.window,
                series.mean_requests_per_cycle(),
                series.peak_requests_per_cycle()
            );
        }
    }
    Ok(())
}

/// Parses `--k`, rejecting values the simulator cannot run (K must fill
/// whole cache lines) before any simulation work starts.
fn parse_k(args: &Args) -> Result<usize, String> {
    let k: usize = args.get_parsed("k", 32)?;
    let line = spade_matrix::FLOATS_PER_LINE;
    if k == 0 || !k.is_multiple_of(line) {
        return Err(format!(
            "--k: {k} is not a multiple of the cache line ({line} floats)"
        ));
    }
    Ok(k)
}

fn parse_kernel(args: &Args) -> Result<Primitive, String> {
    match args.get("kernel").unwrap_or("spmm") {
        "spmm" => Ok(Primitive::Spmm),
        "sddmm" => Ok(Primitive::Sddmm),
        other => Err(format!("--kernel: unknown kernel '{other}'")),
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["json", "barriers"])?;
    let bench = parse_benchmark(&args)?;
    let scale = parse_scale(&args)?;
    let k = parse_k(&args)?;
    let kernel = parse_kernel(&args)?;
    let json = parse_format(&args)?;
    let telemetry = parse_telemetry(&args)?;
    let shards = parse_shards(&args)?;
    let deadline = parse_deadline(&args)?;
    let system_config = parse_system(&args)?;
    let a = bench.generate(scale);
    let plan = parse_plan(&args, &a)?;
    let output = execute_observed(
        &system_config,
        &a,
        bench.short_name(),
        k,
        kernel,
        &plan,
        telemetry,
        false,
        shards,
        deadline,
    )?;
    print_report(
        &output.report,
        json,
        RunSummary {
            benchmark: bench.short_name(),
            kernel: kernel.to_string(),
            k,
            pes: system_config.num_pes,
            plan: &plan,
            report: &output.report,
            telemetry: output.telemetry.as_ref(),
        },
    )
}

/// `spade-cli trace <benchmark>`: run one workload with event tracing on
/// and write a Chrome `trace_event` JSON file, viewable at
/// `ui.perfetto.dev` or `chrome://tracing`. Telemetry counter tracks
/// (requests/cycle, DRAM GB/s, in-flight reads, active PEs) ride along on
/// a dedicated lane unless `--window 0` turns sampling off.
fn trace_cmd(argv: &[String]) -> Result<(), String> {
    // The benchmark may be positional (`spade-cli trace myc`) or a
    // `--benchmark` flag like the other subcommands.
    let (positional, rest) = match argv.first() {
        Some(first) if !first.starts_with("--") => (Some(first.as_str()), &argv[1..]),
        _ => (None, argv),
    };
    let args = Args::parse(rest, &[])?;
    let bench = match positional {
        Some(name) => lookup_benchmark(name)?,
        None => parse_benchmark(&args)?,
    };
    let scale = parse_scale(&args)?;
    let k = parse_k(&args)?;
    let kernel = parse_kernel(&args)?;
    let system_config = parse_system(&args)?;
    let shards = parse_shards(&args)?;
    let window: Cycle = args.get_parsed("window", 256)?;
    let telemetry = (window > 0).then_some(window);
    let a = bench.generate(scale);
    let plan = parse_plan(&args, &a)?;
    let output = execute_observed(
        &system_config,
        &a,
        bench.short_name(),
        k,
        kernel,
        &plan,
        telemetry,
        true,
        shards,
        None,
    )?;
    // The shared builder keeps local traces byte-identical to the
    // daemon's wire-served `trace` responses.
    let (chrome, events) = service::trace_document(&output, system_config.num_pes)?;
    let out_path = match args.get("out") {
        Some(p) => p.to_string(),
        None => format!(
            "{}-{}.trace.json",
            bench.short_name(),
            kernel.to_string().to_lowercase()
        ),
    };
    std::fs::write(&out_path, &chrome).map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "wrote {out_path}: {events} events over {} cycles (load in ui.perfetto.dev)",
        output.report.cycles
    );
    Ok(())
}

/// Loads the `--model` file when given. A file that fails to load or
/// validate degrades to `None` with a stderr warning, mirroring the
/// daemon: a broken model costs advice quality, never availability.
fn load_model_flag(args: &Args) -> Option<CostModel> {
    let path = args.get("model")?;
    match CostModel::load(std::path::Path::new(path)) {
        Ok(m) => Some(m),
        Err(e) => {
            eprintln!("warning: cost model {path} unusable ({e}); falling back to the heuristic");
            None
        }
    }
}

/// `spade-cli advise`: three-tier plan selection. The default (`--fast`)
/// path never simulates — a trained `--model` (when it loads and is
/// confident) ranks the candidate plans in microseconds, the structural
/// heuristic answers otherwise. `--exact` is the demoted verification
/// path: candidates are *simulated* (model-pruned to `--top-n` unless
/// `--exhaustive`) and the measured optimum is reported as the
/// `exhaustive` tier.
fn advise_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["fast", "exact", "exhaustive", "json"])?;
    if args.has("fast") && args.has("exact") {
        return Err("--fast and --exact are mutually exclusive".into());
    }
    let bench = parse_benchmark(&args)?;
    let scale = parse_scale(&args)?;
    let k = parse_k(&args)?;
    let json = parse_format(&args)?;
    let system_config = parse_system(&args)?;
    let top_n: usize = args.get_parsed("top-n", spade_bench::runner::PRUNE_TOP_N)?;
    let a = bench.generate(scale);
    let stats = MatrixStats::compute(&a);
    let model = load_model_flag(&args);
    let started = Instant::now();
    let (plan, source, predicted, measured) = if args.has("exact") {
        let w = Workload::from_matrix(bench.short_name().to_string(), a.clone(), k);
        let ranker = if args.has("exhaustive") {
            None
        } else {
            model.as_ref().map(|m| m as &dyn PlanRanker)
        };
        let (plan, report) = spade_bench::runner::find_opt_pruned(
            &system_config,
            &w,
            Primitive::Spmm,
            true,
            ranker,
            top_n,
        );
        (plan, "exhaustive", None, Some(report.cycles))
    } else {
        let ranker = model.as_ref().map(|m| m as &dyn PlanRanker);
        let advice =
            advisor::advise_tiered(&a, k, &system_config, ranker).map_err(|e| e.to_string())?;
        (
            advice.plan,
            advice.source.as_str(),
            advice.predicted_cycles,
            None,
        )
    };
    let latency_us = started.elapsed().as_secs_f64() * 1e6;
    if json {
        let features = MatrixFeatures::from_stats(&a, &stats);
        let mut fields = vec![
            ("benchmark", JsonValue::from(bench.short_name())),
            ("scale", format!("{scale:?}").to_lowercase().into()),
            ("k", k.into()),
            ("pes", system_config.num_pes.into()),
            ("source", source.into()),
            ("latency_us", latency_us.into()),
            ("plan", plan_json(&plan)),
            (
                "features",
                JsonValue::object(features.to_pairs().into_iter().map(|(n, v)| (n, v.into()))),
            ),
        ];
        if let Some(p) = predicted {
            fields.push(("predicted_cycles", p.into()));
        }
        if let Some(c) = measured {
            fields.push(("measured_cycles", c.into()));
        }
        println!("{}", JsonValue::object(fields).render());
        return Ok(());
    }
    println!(
        "{}: {} rows, {} nnz, RU={}",
        bench.short_name(),
        a.num_rows(),
        a.nnz(),
        stats.classify_ru()
    );
    println!(
        "advised: RP={} CP={} rMatrix={:?} cMatrix={:?} barriers={}",
        plan.tiling.row_panel_size,
        plan.tiling.col_panel_size,
        plan.r_policy,
        plan.c_policy,
        plan.barriers.is_enabled()
    );
    let note = match (predicted, measured) {
        (Some(p), _) => format!(", predicted {p:.0} cycles"),
        (_, Some(c)) => format!(", measured {c} cycles"),
        _ => String::new(),
    };
    println!("source: {source} ({latency_us:.0} \u{3bc}s{note})");
    Ok(())
}

fn search(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["full", "json"])?;
    let bench = parse_benchmark(&args)?;
    let scale = parse_scale(&args)?;
    let k = parse_k(&args)?;
    let json = parse_format(&args)?;
    let telemetry = parse_telemetry(&args)?;
    let shards = parse_shards(&args)?;
    let deadline = parse_deadline(&args)?;
    let system_config = parse_system(&args)?;
    let a = bench.generate(scale);
    let space = if args.has("full") {
        PlanSearchSpace::table3(k)
    } else {
        PlanSearchSpace::quick(k)
    };
    // Fan the candidate sweep across host cores (SPADE_THREADS overrides).
    let workload = Arc::new(Workload::from_matrix(
        bench.short_name().to_string(),
        a.clone(),
        k,
    ));
    let pes = system_config.num_pes;
    let config = Arc::new(system_config);
    let plans = space.enumerate(&a);
    let jobs: Vec<Job> = plans
        .iter()
        .map(|&plan| {
            Job::new(&workload, &config, Primitive::Spmm, plan)
                .with_telemetry(telemetry)
                .with_shards(shards)
                .with_deadline_cycles(deadline)
        })
        .collect();
    let start = Instant::now();
    // One failing candidate should cost its own slot, not the sweep.
    let outcomes = ParallelRunner::from_env().run_outputs(&jobs);
    let reports: Vec<RunReport> = outcomes
        .iter()
        .flatten()
        .map(|o| o.report.clone())
        .collect();
    if !json {
        println!(
            "{}",
            parallel::throughput_summary(&reports, start.elapsed())
        );
    }
    let mut failures = 0usize;
    let mut results: Vec<(ExecutionPlan, JobOutput)> = Vec::with_capacity(plans.len());
    for (plan, outcome) in plans.into_iter().zip(&outcomes) {
        match outcome {
            Ok(o) => results.push((plan, o.clone())),
            Err(e) => {
                failures += 1;
                eprintln!("warning: candidate plan failed: {e}");
            }
        }
    }
    if results.is_empty() {
        return Err(format!("all {failures} candidate plans failed"));
    }
    results.sort_by_key(|(_, o)| o.report.cycles);
    if json {
        let candidates: Vec<JsonValue> = results
            .iter()
            .map(|(plan, o)| {
                let mut fields = vec![
                    ("plan", plan_json(plan)),
                    ("cycles", o.report.cycles.into()),
                    ("dram_accesses", o.report.dram_accesses.into()),
                    ("requests_per_cycle", o.report.requests_per_cycle.into()),
                ];
                if let Some(series) = &o.telemetry {
                    fields.push(("telemetry", series.to_json()));
                }
                JsonValue::object(fields)
            })
            .collect();
        let doc = JsonValue::object([
            ("benchmark", bench.short_name().into()),
            ("k", k.into()),
            ("pes", pes.into()),
            ("failures", failures.into()),
            ("candidates", JsonValue::Array(candidates)),
        ]);
        println!("{}", doc.render());
        return Ok(());
    }
    println!("{} plans searched; best first:", results.len());
    for (plan, output) in results.iter().take(5) {
        let telemetry_note = match &output.telemetry {
            Some(series) => format!("  peak {:.2} req/cyc", series.peak_requests_per_cycle()),
            None => String::new(),
        };
        println!(
            "  {:>10} cycles  RP={:<6} CP={:<8} {:?} barriers={}{}",
            output.report.cycles,
            plan.tiling.row_panel_size,
            plan.tiling.col_panel_size,
            plan.r_policy,
            plan.barriers.is_enabled(),
            telemetry_note
        );
    }
    Ok(())
}

fn run_mm(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["json"])?;
    let path = args.get("file").ok_or("--file is required")?;
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let a = mm::read_matrix_market(BufReader::new(file)).map_err(|e| e.to_string())?;
    let k = parse_k(&args)?;
    let system_config = parse_system(&args)?;
    let plan = advisor::advise(&a, k, &system_config).map_err(|e| e.to_string())?;
    let report = execute(&system_config, &a, path, k, Primitive::Spmm, &plan)?;
    print_report(
        &report,
        parse_format(&args)?,
        RunSummary {
            benchmark: path,
            kernel: Primitive::Spmm.to_string(),
            k,
            pes: system_config.num_pes,
            plan: &plan,
            report: &report,
            telemetry: None,
        },
    )
}

/// `spade-cli serve`: the always-on experiment daemon — newline-delimited
/// JSON over TCP, a bounded admission queue with back-pressure, and a
/// crash-safe persistent result cache (see `spade_bench::service`).
/// SIGTERM/ctrl-c (or an in-band `shutdown` request) drains in-flight
/// jobs, flushes the cache index and exits 0.
fn serve(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["log-json"])?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7700").to_string();
    let mut config = service::ServiceConfig::default();
    config.workers = args.get_parsed("workers", config.workers)?;
    config.queue_capacity = args.get_parsed("queue", config.queue_capacity)?;
    config.max_connections = args.get_parsed("max-connections", config.max_connections)?;
    if let Some(d) = parse_deadline(&args)? {
        config.default_deadline_cycles = Some(d);
    }
    let timeout_ms: u64 =
        args.get_parsed("read-timeout-ms", config.read_timeout.as_millis() as u64)?;
    config.read_timeout = std::time::Duration::from_millis(timeout_ms.max(1));
    config.cache_dir = args.get("cache-dir").map(std::path::PathBuf::from);
    // `--model` arms the advise request's model tier; a file that fails
    // to load logs a warning at bind and the heuristic answers instead.
    config.model_path = args.get("model").map(std::path::PathBuf::from);
    // `--log-json` turns the request log spans on explicitly; the
    // SPADE_LOG=json environment default (already in `config`) stays
    // effective either way.
    if args.has("log-json") {
        config.log_json = true;
    }
    service::install_termination_handler();
    let svc = service::Service::bind(&addr, config).map_err(|e| format!("{addr}: bind: {e}"))?;
    let local = svc.local_addr().map_err(|e| e.to_string())?;
    // One machine-parseable banner line: scripts read the actual port
    // (meaningful with --addr 127.0.0.1:0) before sending requests.
    println!(
        "{}",
        JsonValue::object([
            ("serving", local.to_string().into()),
            ("pid", u64::from(std::process::id()).into()),
            ("protocol", service::PROTOCOL_VERSION.into()),
        ])
        .render()
    );
    // stdout is block-buffered when piped; a supervising script must see
    // the banner before the first request, not at exit.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    let summary = svc.run().map_err(|e| e.to_string())?;
    println!("{}", summary.to_json().render());
    Ok(())
}

/// `spade-cli client`: talk to a running daemon — the scripting
/// primitive for smoke tests, cache-warm sweeps and operations.
///
/// Two modes share one wire protocol: raw (`--request '<json>'` sends
/// the line verbatim) and typed subcommands (`ping`, `status`,
/// `metrics`, `query`, `batch`, `agg`, `best-plans`, `run`, `search`,
/// `trace`, `shutdown`) that build the request from flags. Every subcommand honours `--format
/// json|text`: `json` prints the daemon's response line untouched,
/// `text` a human rendering. A protocol-level failure prints the raw
/// response and exits non-zero either way.
fn client(argv: &[String]) -> Result<(), String> {
    let (sub, rest) = match argv.first() {
        Some(first) if !first.starts_with("--") => (Some(first.as_str()), &argv[1..]),
        _ => (None, argv),
    };
    match sub {
        None => client_raw(rest),
        Some("ping") => client_simple(rest, "ping"),
        Some("shutdown") => client_simple(rest, "shutdown"),
        Some("status") => client_status(rest),
        Some("metrics") => client_metrics(rest),
        Some("query") => client_query(rest),
        Some("batch") => client_batch(rest),
        Some("agg") => client_agg(rest, None),
        Some("best-plans") => client_agg(rest, Some("benchmark")),
        Some("run") => client_job(rest, "run"),
        Some("search") => client_job(rest, "search"),
        Some("trace") => client_trace(rest),
        Some("advise") => client_advise(rest),
        Some(other) => Err(format!("client: unknown subcommand '{other}'")),
    }
}

/// Parses `--addr` and connects, with a response-frame limit.
fn client_connect(
    args: &Args,
    max_frame: usize,
) -> Result<(std::net::SocketAddr, service::ServiceClient), String> {
    let addr = args.get("addr").ok_or("--addr is required")?;
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| format!("--addr: cannot parse '{addr}'"))?;
    let client = service::ServiceClient::connect_with_max_frame(&addr, max_frame)
        .map_err(|e| format!("{addr}: connect: {e}"))?;
    Ok((addr, client))
}

/// Sends one request and returns `(raw line, parsed doc)`. A
/// `"ok":false` reply is printed raw and converted into the silent
/// error (empty message) that makes `main` exit non-zero without the
/// usage dump — scripts branch on the exit code, the line is the
/// report.
fn client_roundtrip(
    client: &mut service::ServiceClient,
    addr: &std::net::SocketAddr,
    request: &str,
) -> Result<(String, JsonValue), String> {
    let response = client
        .request_line(request)
        .map_err(|e| format!("{addr}: {e}"))?;
    match JsonValue::parse(&response) {
        Ok(doc) if doc.get("ok").and_then(JsonValue::as_bool) == Some(false) => {
            println!("{response}");
            Err(String::new())
        }
        Ok(doc) => Ok((response, doc)),
        Err(e) => Err(format!("{addr}: unparseable response ({e}): {response}")),
    }
}

/// A `u64` response field, defaulting to 0 — display only, never logic.
fn ju(doc: &JsonValue, key: &str) -> u64 {
    doc.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn parse_flag_u64(name: &str, v: &str) -> Result<u64, String> {
    v.parse()
        .map_err(|_| format!("--{name}: cannot parse '{v}'"))
}

/// Raw mode: `--request '<json>'`. The request is one JSON document on
/// a newline-delimited wire, so embedded newlines (a multi-line shell
/// string) are folded to spaces — insignificant between JSON tokens,
/// fatal to the framing.
fn client_raw(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let request = args
        .get("request")
        .ok_or("--request is required")?
        .replace(['\n', '\r'], " ");
    let (addr, mut client) = client_connect(&args, spade_sim::json::MAX_FRAME_BYTES)?;
    let (response, _doc) = client_roundtrip(&mut client, &addr, &request)?;
    println!("{response}");
    Ok(())
}

/// `client ping` / `client shutdown`: one command word, no payload.
fn client_simple(argv: &[String], cmd: &str) -> Result<(), String> {
    let args = Args::parse(argv, &["json"])?;
    let json = parse_format(&args)?;
    let (addr, mut client) = client_connect(&args, spade_sim::json::MAX_FRAME_BYTES)?;
    let request = JsonValue::object([("cmd", cmd.into())]).render();
    let (response, doc) = client_roundtrip(&mut client, &addr, &request)?;
    if json {
        println!("{response}");
    } else if cmd == "ping" {
        println!("{addr}: ok (protocol {})", ju(&doc, "protocol"));
    } else {
        println!("{addr}: draining");
    }
    Ok(())
}

/// `client status`: the daemon's live state as a human table (or the
/// raw response with `--format json`).
fn client_status(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["json"])?;
    let json = parse_format(&args)?;
    let (addr, mut client) = client_connect(&args, spade_sim::json::MAX_FRAME_BYTES)?;
    let request = JsonValue::object([("cmd", "status".into())]).render();
    let (response, doc) = client_roundtrip(&mut client, &addr, &request)?;
    if json {
        println!("{response}");
        return Ok(());
    }
    println!(
        "daemon {addr}  protocol {}  uptime {} ms{}",
        ju(&doc, "protocol"),
        ju(&doc, "uptime_ms"),
        if doc.get("shutting_down").and_then(JsonValue::as_bool) == Some(true) {
            "  (draining)"
        } else {
            ""
        }
    );
    println!(
        "queue      {}/{} waiting, {} in flight on {} workers",
        ju(&doc, "queue_depth"),
        ju(&doc, "queue_capacity"),
        ju(&doc, "in_flight"),
        ju(&doc, "workers")
    );
    println!(
        "served     ok {}  err {}  overloaded {}  bad-frames {}  connections {}",
        ju(&doc, "served_ok"),
        ju(&doc, "served_err"),
        ju(&doc, "rejected_overload"),
        ju(&doc, "bad_frames"),
        ju(&doc, "connections")
    );
    match doc.get("cache") {
        None | Some(JsonValue::Null) => println!("cache      none"),
        Some(c) => println!(
            "cache      {} entries  hits {}  misses {}  stores {}  quarantined {}",
            ju(c, "entries"),
            ju(c, "hits"),
            ju(c, "misses"),
            ju(c, "stores"),
            ju(c, "quarantined")
        ),
    }
    Ok(())
}

/// `client metrics`: scrape the daemon's registry. `--prom` prints the
/// Prometheus text exposition (rendered client-side from the JSON
/// snapshot — no HTTP endpoint anywhere), `--format json` the raw
/// response, text a compact value listing.
fn client_metrics(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["json", "prom"])?;
    let json = parse_format(&args)?;
    let prom = args.has("prom");
    let (addr, mut client) = client_connect(&args, spade_sim::json::MAX_FRAME_BYTES)?;
    let request = JsonValue::object([("cmd", "metrics".into())]).render();
    let (response, doc) = client_roundtrip(&mut client, &addr, &request)?;
    if json {
        println!("{response}");
        return Ok(());
    }
    let result = doc.get("result").ok_or("metrics response has no result")?;
    let snapshot = spade_bench::metrics::MetricsSnapshot::from_json(result)?;
    if prom {
        print!("{}", snapshot.to_prometheus());
        return Ok(());
    }
    for s in &snapshot.samples {
        let labels = if s.labels.is_empty() {
            String::new()
        } else {
            format!(
                "{{{}}}",
                s.labels
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        match &s.value {
            spade_bench::metrics::SampleValue::Counter(v) => println!("{}{labels} {v}", s.name),
            spade_bench::metrics::SampleValue::Gauge(v) => println!("{}{labels} {v}", s.name),
            spade_bench::metrics::SampleValue::Histogram { sum, counts, .. } => println!(
                "{}{labels} count={} sum={sum}",
                s.name,
                counts.iter().sum::<u64>()
            ),
        }
    }
    Ok(())
}

/// `client query`: filter the daemon's cache dataset. Every filter flag
/// is optional; matches come back sorted by (benchmark, kernel,
/// cycles), so the first row per benchmark is its best plan.
fn client_query(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["json"])?;
    let json = parse_format(&args)?;
    let mut fields: Vec<(&str, JsonValue)> = vec![("cmd", "query".into())];
    for key in ["benchmark", "kernel", "kind"] {
        if let Some(v) = args.get(key) {
            fields.push((key, v.into()));
        }
    }
    for (flag, key) in [
        ("k", "k"),
        ("pes", "pes"),
        ("min-cycles", "min_cycles"),
        ("max-cycles", "max_cycles"),
        ("limit", "limit"),
    ] {
        if let Some(v) = args.get(flag) {
            fields.push((key, parse_flag_u64(flag, v)?.into()));
        }
    }
    let (addr, mut client) = client_connect(&args, spade_sim::json::MAX_FRAME_BYTES)?;
    let (response, doc) =
        client_roundtrip(&mut client, &addr, &JsonValue::object(fields).render())?;
    if json {
        println!("{response}");
        return Ok(());
    }
    let result = doc.get("result").ok_or("query response has no result")?;
    println!(
        "matched {} of {} cached entries (showing {})",
        ju(result, "matched"),
        ju(result, "total"),
        ju(result, "returned")
    );
    let entries = result
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or("query response has no entries")?;
    if entries.is_empty() {
        return Ok(());
    }
    println!(
        "{:<7} {:<6} {:<6} {:>5} {:>5} {:>12} {:>10}  {:<18} key",
        "kind", "bench", "kernel", "k", "pes", "cycles", "dram", "plan"
    );
    for e in entries {
        let plan = match e.get("plan") {
            None | Some(JsonValue::Null) => "-".to_string(),
            Some(p) => format!(
                "rp={} cp={}{}",
                ju(p, "row_panel_size"),
                ju(p, "col_panel_size"),
                if p.get("barriers").and_then(JsonValue::as_bool) == Some(true) {
                    " b"
                } else {
                    ""
                }
            ),
        };
        println!(
            "{:<7} {:<6} {:<6} {:>5} {:>5} {:>12} {:>10}  {:<18} {}",
            e.get("kind").and_then(JsonValue::as_str).unwrap_or("?"),
            e.get("benchmark")
                .and_then(JsonValue::as_str)
                .unwrap_or("?"),
            e.get("kernel").and_then(JsonValue::as_str).unwrap_or("?"),
            ju(e, "k"),
            ju(e, "pes"),
            ju(e, "cycles"),
            ju(e, "dram_accesses"),
            plan,
            e.get("key").and_then(JsonValue::as_str).unwrap_or("?")
        );
    }
    Ok(())
}

/// Splits a comma-separated flag value into non-empty items.
fn comma_list(name: &str, v: &str) -> Result<Vec<String>, String> {
    let items: Vec<String> = v
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if items.is_empty() {
        return Err(format!("--{name}: expected a comma-separated list"));
    }
    Ok(items)
}

/// Same, with every item parsed as a number.
fn comma_list_u64(name: &str, v: &str) -> Result<Vec<JsonValue>, String> {
    comma_list(name, v)?
        .iter()
        .map(|item| parse_flag_u64(name, item).map(JsonValue::from))
        .collect()
}

/// `client batch`: one request, a whole sweep. The comma-list flags
/// form the server-side cross product (benchmarks × kernels × k × pes);
/// the singular plan/scale/cache flags apply to every job. The daemon
/// fans the jobs out through its admission queue and replies once, with
/// per-job payloads in job order.
fn client_batch(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["json", "barriers", "no-cache"])?;
    let json = parse_format(&args)?;
    let mut sweep: Vec<(&str, JsonValue)> = Vec::new();
    let benchmarks = comma_list(
        "benchmarks",
        args.get("benchmarks").ok_or("--benchmarks is required")?,
    )?;
    sweep.push((
        "benchmarks",
        JsonValue::Array(benchmarks.iter().map(|b| b.as_str().into()).collect()),
    ));
    if let Some(v) = args.get("kernels") {
        sweep.push((
            "kernels",
            JsonValue::Array(
                comma_list("kernels", v)?
                    .iter()
                    .map(|k| k.as_str().into())
                    .collect(),
            ),
        ));
    }
    for (flag, key) in [("k", "k"), ("pes", "pes")] {
        if let Some(v) = args.get(flag) {
            sweep.push((key, JsonValue::Array(comma_list_u64(flag, v)?)));
        }
    }
    let mut plan: Vec<(&str, JsonValue)> = Vec::new();
    if let Some(v) = args.get("rp") {
        plan.push(("rp", parse_flag_u64("rp", v)?.into()));
    }
    if let Some(v) = args.get("cp") {
        if v == "all" {
            plan.push(("cp", "all".into()));
        } else {
            plan.push(("cp", parse_flag_u64("cp", v)?.into()));
        }
    }
    if let Some(v) = args.get("rmatrix") {
        plan.push(("rmatrix", v.into()));
    }
    if args.has("barriers") {
        plan.push(("barriers", true.into()));
    }
    if !plan.is_empty() {
        sweep.push(("plans", JsonValue::Array(vec![JsonValue::object(plan)])));
    }
    let mut fields: Vec<(&str, JsonValue)> =
        vec![("cmd", "batch".into()), ("sweep", JsonValue::object(sweep))];
    if let Some(v) = args.get("scale") {
        fields.push(("scale", v.into()));
    }
    if let Some(v) = args.get("deadline-cycles") {
        fields.push((
            "deadline_cycles",
            parse_flag_u64("deadline-cycles", v)?.into(),
        ));
    }
    if args.has("no-cache") {
        fields.push(("no_cache", true.into()));
    }
    let (addr, mut client) = client_connect(&args, spade_sim::json::MAX_FRAME_BYTES)?;
    let (response, doc) =
        client_roundtrip(&mut client, &addr, &JsonValue::object(fields).render())?;
    if json {
        println!("{response}");
        return Ok(());
    }
    let result = doc.get("result").ok_or("batch response has no result")?;
    println!(
        "batch: {} jobs — {} ok ({} cached), {} failed, {} rejected",
        ju(result, "total"),
        ju(result, "succeeded"),
        ju(result, "cached"),
        ju(result, "failed"),
        ju(result, "rejected")
    );
    let jobs = result
        .get("jobs")
        .and_then(JsonValue::as_array)
        .ok_or("batch response has no jobs")?;
    for job in jobs {
        let index = ju(job, "index");
        if job.get("ok").and_then(JsonValue::as_bool) == Some(true) {
            let r = job.get("result").ok_or("batch job has no result")?;
            let report = r.get("report").ok_or("batch job has no report")?;
            let cached = if job.get("cached").and_then(JsonValue::as_bool) == Some(true) {
                " (cached)"
            } else {
                ""
            };
            println!(
                "  [{index}] {} {} k={} pes={}: {} cycles, {} DRAM accesses{cached}",
                r.get("benchmark")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?"),
                r.get("kernel").and_then(JsonValue::as_str).unwrap_or("?"),
                ju(r, "k"),
                ju(r, "pes"),
                ju(report, "cycles"),
                ju(report, "dram_accesses")
            );
        } else {
            let error = job.get("error");
            println!(
                "  [{index}] error {}: {}",
                error
                    .and_then(|e| e.get("kind"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?"),
                error
                    .and_then(|e| e.get("message"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?")
            );
        }
    }
    // Any failed or rejected job makes the whole invocation non-zero,
    // after the per-job report above — scripts branch on the exit code.
    if ju(result, "failed") + ju(result, "rejected") > 0 {
        return Err(String::new());
    }
    Ok(())
}

/// `client agg` / `client best-plans`: server-side aggregation over the
/// cache dataset. `agg` requires `--group-by benchmark|kernel|pes`;
/// `best-plans` is the preset `--group-by benchmark --kind run`, the
/// best-plan-per-matrix fold EXPERIMENTS.md used to script client-side.
fn client_agg(argv: &[String], preset_group_by: Option<&str>) -> Result<(), String> {
    let args = Args::parse(argv, &["json"])?;
    let json = parse_format(&args)?;
    let group_by = match (args.get("group-by"), preset_group_by) {
        (Some(v), _) => v,
        (None, Some(preset)) => preset,
        (None, None) => return Err("--group-by is required (benchmark|kernel|pes)".into()),
    };
    let mut fields: Vec<(&str, JsonValue)> =
        vec![("cmd", "query".into()), ("group_by", group_by.into())];
    for key in ["benchmark", "kernel", "kind"] {
        if let Some(v) = args.get(key) {
            fields.push((key, v.into()));
        }
    }
    if preset_group_by.is_some() && args.get("kind").is_none() {
        fields.push(("kind", "run".into()));
    }
    for (flag, key) in [
        ("k", "k"),
        ("pes", "pes"),
        ("min-cycles", "min_cycles"),
        ("max-cycles", "max_cycles"),
        ("limit", "limit"),
    ] {
        if let Some(v) = args.get(flag) {
            fields.push((key, parse_flag_u64(flag, v)?.into()));
        }
    }
    let (addr, mut client) = client_connect(&args, spade_sim::json::MAX_FRAME_BYTES)?;
    let (response, doc) =
        client_roundtrip(&mut client, &addr, &JsonValue::object(fields).render())?;
    if json {
        println!("{response}");
        return Ok(());
    }
    let result = doc.get("result").ok_or("agg response has no result")?;
    println!(
        "group_by {}: {} groups over {} matched of {} cached entries",
        result
            .get("group_by")
            .and_then(JsonValue::as_str)
            .unwrap_or("?"),
        ju(result, "returned"),
        ju(result, "matched"),
        ju(result, "total")
    );
    let groups = result
        .get("groups")
        .and_then(JsonValue::as_array)
        .ok_or("agg response has no groups")?;
    if groups.is_empty() {
        return Ok(());
    }
    println!(
        "{:<10} {:>5} {:>12} {:>12} {:>14}  {:<18} best key",
        "group", "n", "min", "max", "mean", "best plan"
    );
    for g in groups {
        let best = g.get("best");
        let plan = match best.and_then(|b| b.get("plan")) {
            None | Some(JsonValue::Null) => "-".to_string(),
            Some(p) => format!(
                "rp={} cp={}{}",
                ju(p, "row_panel_size"),
                ju(p, "col_panel_size"),
                if p.get("barriers").and_then(JsonValue::as_bool) == Some(true) {
                    " b"
                } else {
                    ""
                }
            ),
        };
        let mean = g
            .get("mean_cycles")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        println!(
            "{:<10} {:>5} {:>12} {:>12} {:>14.1}  {:<18} {}",
            g.get("group").and_then(JsonValue::as_str).unwrap_or("?"),
            ju(g, "count"),
            ju(g, "min_cycles"),
            ju(g, "max_cycles"),
            mean,
            plan,
            best.and_then(|b| b.get("key"))
                .and_then(JsonValue::as_str)
                .unwrap_or("?")
        );
    }
    Ok(())
}

/// The wire fields shared by `client run|search|trace`, built from the
/// same flags the local subcommands take. Validation happens
/// server-side; the client only insists that numbers parse.
fn wire_job_fields(args: &Args, cmd: &str) -> Result<Vec<(&'static str, JsonValue)>, String> {
    let mut fields: Vec<(&'static str, JsonValue)> = Vec::new();
    fields.push((
        "benchmark",
        args.get("benchmark")
            .ok_or("--benchmark is required")?
            .into(),
    ));
    if let Some(v) = args.get("scale") {
        fields.push(("scale", v.into()));
    }
    if let Some(v) = args.get("kernel") {
        fields.push(("kernel", v.into()));
    }
    for (flag, key) in [("k", "k"), ("pes", "pes"), ("rp", "rp")] {
        if let Some(v) = args.get(flag) {
            fields.push((key, parse_flag_u64(flag, v)?.into()));
        }
    }
    if let Some(v) = args.get("cp") {
        if v == "all" {
            fields.push(("cp", "all".into()));
        } else {
            fields.push(("cp", parse_flag_u64("cp", v)?.into()));
        }
    }
    if let Some(v) = args.get("rmatrix") {
        fields.push(("rmatrix", v.into()));
    }
    if args.has("barriers") {
        fields.push(("barriers", true.into()));
    }
    if let Some(v) = args.get("deadline-cycles") {
        fields.push((
            "deadline_cycles",
            parse_flag_u64("deadline-cycles", v)?.into(),
        ));
    }
    if args.has("no-cache") {
        fields.push(("no_cache", true.into()));
    }
    if cmd == "search" && args.has("full") {
        fields.push(("full", true.into()));
    }
    Ok(fields)
}

/// `client run` / `client search`: submit one job to the daemon.
fn client_job(argv: &[String], cmd: &'static str) -> Result<(), String> {
    let args = Args::parse(argv, &["json", "barriers", "no-cache", "full"])?;
    let json = parse_format(&args)?;
    let mut fields: Vec<(&str, JsonValue)> = vec![("cmd", cmd.into())];
    fields.extend(wire_job_fields(&args, cmd)?);
    let (addr, mut client) = client_connect(&args, spade_sim::json::MAX_FRAME_BYTES)?;
    let (response, doc) =
        client_roundtrip(&mut client, &addr, &JsonValue::object(fields).render())?;
    if json {
        println!("{response}");
        return Ok(());
    }
    let result = doc.get("result").ok_or("response has no result")?;
    let cached = if doc.get("cached").and_then(JsonValue::as_bool) == Some(true) {
        "cached"
    } else {
        "fresh"
    };
    let key = doc.get("key").and_then(JsonValue::as_str).unwrap_or("-");
    if cmd == "run" {
        let report = result.get("report").ok_or("result has no report")?;
        println!(
            "{} {} k={} pes={}: {} cycles, {} DRAM accesses ({cached}, key {key})",
            result
                .get("benchmark")
                .and_then(JsonValue::as_str)
                .unwrap_or("?"),
            result
                .get("kernel")
                .and_then(JsonValue::as_str)
                .unwrap_or("?"),
            ju(result, "k"),
            ju(result, "pes"),
            ju(report, "cycles"),
            ju(report, "dram_accesses")
        );
    } else {
        let candidates = result
            .get("candidates")
            .and_then(JsonValue::as_array)
            .ok_or("result has no candidates")?;
        println!(
            "{} k={} pes={}: {} plans, {} failures ({cached}, key {key}); best first:",
            result
                .get("benchmark")
                .and_then(JsonValue::as_str)
                .unwrap_or("?"),
            ju(result, "k"),
            ju(result, "pes"),
            candidates.len(),
            ju(result, "failures")
        );
        for c in candidates.iter().take(5) {
            let plan = c.get("plan");
            println!(
                "  {:>10} cycles  RP={:<6} CP={:<8} barriers={}",
                ju(c, "cycles"),
                plan.map_or(0, |p| ju(p, "row_panel_size")),
                plan.map_or(0, |p| ju(p, "col_panel_size")),
                plan.and_then(|p| p.get("barriers"))
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false)
            );
        }
    }
    Ok(())
}

/// `client advise`: millisecond plan selection from the daemon. Advise
/// is answered on the connection thread, so it works even when every
/// simulation worker is busy.
fn client_advise(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["json"])?;
    let json = parse_format(&args)?;
    let mut fields: Vec<(&str, JsonValue)> = vec![("cmd", "advise".into())];
    fields.push((
        "benchmark",
        args.get("benchmark")
            .ok_or("--benchmark is required")?
            .into(),
    ));
    if let Some(v) = args.get("scale") {
        fields.push(("scale", v.into()));
    }
    for flag in ["k", "pes"] {
        if let Some(v) = args.get(flag) {
            fields.push((flag, parse_flag_u64(flag, v)?.into()));
        }
    }
    let (addr, mut client) = client_connect(&args, spade_sim::json::MAX_FRAME_BYTES)?;
    let (response, doc) =
        client_roundtrip(&mut client, &addr, &JsonValue::object(fields).render())?;
    if json {
        println!("{response}");
        return Ok(());
    }
    let result = doc.get("result").ok_or("response has no result")?;
    let plan = result.get("plan").ok_or("result has no plan")?;
    println!(
        "{} k={} pes={}: RP={} CP={} rMatrix={} barriers={} ({} tier, {} \u{3bc}s)",
        result
            .get("benchmark")
            .and_then(JsonValue::as_str)
            .unwrap_or("?"),
        ju(result, "k"),
        ju(result, "pes"),
        ju(plan, "row_panel_size"),
        ju(plan, "col_panel_size"),
        plan.get("r_policy")
            .and_then(JsonValue::as_str)
            .unwrap_or("?"),
        plan.get("barriers")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false),
        result
            .get("source")
            .and_then(JsonValue::as_str)
            .unwrap_or("?"),
        ju(result, "latency_us"),
    );
    Ok(())
}

/// `client trace`: run (or cache-serve) a traced job on the daemon and
/// write the Chrome-trace JSON locally — byte-identical to what
/// `spade-cli trace` produces for the same job. Trace responses are one
/// long line, so the read limit is raised well past the default.
fn client_trace(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["json", "barriers", "no-cache"])?;
    let json = parse_format(&args)?;
    let mut fields: Vec<(&str, JsonValue)> = vec![("cmd", "trace".into())];
    fields.extend(wire_job_fields(&args, "trace")?);
    if let Some(v) = args.get("window") {
        fields.push(("window", parse_flag_u64("window", v)?.into()));
    }
    let (addr, mut client) = client_connect(&args, 256 << 20)?;
    let (response, doc) =
        client_roundtrip(&mut client, &addr, &JsonValue::object(fields).render())?;
    if json {
        println!("{response}");
        return Ok(());
    }
    let result = doc.get("result").ok_or("trace response has no result")?;
    let trace = result.get("trace").ok_or("trace response has no trace")?;
    let out_path = match args.get("out") {
        Some(p) => p.to_string(),
        None => format!(
            "{}-{}.trace.json",
            result
                .get("benchmark")
                .and_then(JsonValue::as_str)
                .unwrap_or("remote"),
            result
                .get("kernel")
                .and_then(JsonValue::as_str)
                .unwrap_or("spmm")
                .to_lowercase()
        ),
    };
    // Re-rendering the parsed value reproduces the daemon's exact bytes:
    // the codec's render∘parse fixpoint is pinned by the json fuzz suite.
    std::fs::write(&out_path, trace.render()).map_err(|e| format!("{out_path}: {e}"))?;
    let report = result.get("report");
    let cached = if doc.get("cached").and_then(JsonValue::as_bool) == Some(true) {
        "cached"
    } else {
        "fresh"
    };
    println!(
        "wrote {out_path}: {} events over {} cycles ({cached}, load in ui.perfetto.dev)",
        ju(result, "events"),
        report.map_or(0, |r| ju(r, "cycles"))
    );
    Ok(())
}

/// `bench-perf`: measures simulator host throughput under the event-driven
/// scheduler and the naive tick-loop oracle across the Figure 9 suite, plus
/// the memory-hierarchy microbenchmark (fast path on vs forced off), then
/// writes the machine-readable summary (default `BENCH_sim.json`). The run
/// doubles as an equivalence check: it fails if the two drivers disagree on
/// any simulated metric, if the memory fast path diverges from the slow
/// path on any completion cycle or statistic, or if the sharded driver's
/// report differs from the sequential one at any shard count.
/// `--gate-speedup`, `--gate-mem-speedup` and `--gate-shard-speedup` turn
/// the run into a regression gate: the command fails (after writing the
/// summary) when the respective figure falls below the given floor. The
/// shard gate downgrades to a warning on hosts with fewer cores than the
/// largest shard count — a 2-vCPU CI runner cannot demonstrate 4-shard
/// scaling, and that is not a simulator regression.
fn bench_perf(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let scale = parse_scale(&args)?;
    let k = parse_k(&args)?;
    let pes: usize = args.get_parsed("pes", 56)?;
    if pes == 0 || !pes.is_multiple_of(4) {
        return Err("--pes must be a positive multiple of 4".into());
    }
    let mem_ops: u64 = args.get_parsed("mem-ops", 200_000)?;
    let gate_speedup: f64 = args.get_parsed("gate-speedup", 0.0)?;
    let gate_mem_speedup: f64 = args.get_parsed("gate-mem-speedup", 0.0)?;
    let gate_shard_speedup: f64 = args.get_parsed("gate-shard-speedup", 0.0)?;
    let max_shards: usize = match parse_shards(&args)? {
        Some(n) => n,
        None => *spade_bench::perf::SHARD_COUNTS.last().unwrap(),
    };
    // Powers of two up to --shards, always ending at --shards itself:
    // `--shards 4` (the default) sweeps 1, 2, 4; `--shards 1` runs the
    // 1-shard row only (the sweep still pins sharded==sequential there).
    let mut shard_counts = vec![1usize];
    while *shard_counts.last().unwrap() * 2 < max_shards {
        shard_counts.push(shard_counts.last().unwrap() * 2);
    }
    if max_shards > 1 {
        shard_counts.push(max_shards);
    }
    let out = args.get("out").unwrap_or("BENCH_sim.json").to_string();
    let runner = ParallelRunner::from_env();
    let host_start = Instant::now();
    let summary =
        spade_bench::perf::run_suite_perf(scale, k, pes, mem_ops, &shard_counts, &runner)?;
    println!(
        "{:<6} {:<6} {:>12} {:>14} {:>14} {:>8}",
        "name", "kernel", "cycles", "event cyc/s", "naive cyc/s", "speedup"
    );
    for r in &summary.rows {
        println!(
            "{:<6} {:<6} {:>12} {:>14.3e} {:>14.3e} {:>7.2}x",
            r.workload,
            r.primitive.to_string().to_lowercase(),
            r.cycles,
            r.event_cps,
            r.naive_cps,
            r.speedup()
        );
    }
    println!(
        "geomean: event {:.3e} cyc/s, naive {:.3e} cyc/s, speedup {:.2}x ({} threads, {:.1}s host)",
        summary.geomean_event_cps(),
        summary.geomean_naive_cps(),
        summary.geomean_speedup(),
        summary.threads,
        host_start.elapsed().as_secs_f64()
    );
    if !summary.mem_rows.is_empty() {
        println!(
            "{:<8} {:>10} {:>14} {:>14} {:>8} {:>10} {:>10}",
            "pattern", "accesses", "fast acc/s", "slow acc/s", "speedup", "line-hit", "page-hit"
        );
        for r in &summary.mem_rows {
            println!(
                "{:<8} {:>10} {:>14.3e} {:>14.3e} {:>7.2}x {:>9.1}% {:>9.1}%",
                r.pattern,
                r.accesses,
                r.fast_aps,
                r.slow_aps,
                r.speedup(),
                100.0 * r.line_filter_rate,
                100.0 * r.page_reuse_rate
            );
        }
        println!(
            "mem geomean: fast {:.3e} acc/s, slow {:.3e} acc/s, speedup {:.2}x",
            summary.geomean_mem_fast_aps(),
            summary.geomean_mem_slow_aps(),
            summary.geomean_mem_speedup()
        );
    }
    if !summary.shard_rows.is_empty() {
        let base = summary.shard_baseline_cps();
        println!(
            "{:<7} {:>12} {:>14} {:>8}",
            "shards", "cycles", "sim cyc/s", "speedup"
        );
        for r in &summary.shard_rows {
            println!(
                "{:<7} {:>12} {:>14.3e} {:>7.2}x",
                r.shards,
                r.cycles,
                r.cps,
                r.speedup_over(base)
            );
        }
        println!(
            "shard scaling: {:.2}x at {} shards ({} host cores)",
            summary.max_shard_speedup(),
            summary
                .shard_rows
                .iter()
                .map(|r| r.shards)
                .max()
                .unwrap_or(1),
            summary.host_cores
        );
    }
    std::fs::write(&out, summary.to_json().render()).map_err(|e| format!("{out}: {e}"))?;
    println!("wrote {out}");
    if gate_speedup > 0.0 && summary.geomean_speedup() < gate_speedup {
        return Err(format!(
            "gate failed: geomean event-driver speedup {:.3}x is below the \
             required {gate_speedup:.2}x",
            summary.geomean_speedup()
        ));
    }
    if gate_mem_speedup > 0.0 {
        if summary.mem_rows.is_empty() {
            return Err("gate failed: --gate-mem-speedup set but the memory \
                 microbench was disabled (--mem-ops 0)"
                .into());
        }
        if summary.geomean_mem_speedup() < gate_mem_speedup {
            return Err(format!(
                "gate failed: geomean memory fast-path speedup {:.3}x is below \
                 the required {gate_mem_speedup:.2}x",
                summary.geomean_mem_speedup()
            ));
        }
    }
    if gate_shard_speedup > 0.0 {
        if summary.shard_rows.len() < 2 {
            return Err("gate failed: --gate-shard-speedup set but the shard \
                 bench never scaled past one shard (--shards 1)"
                .into());
        }
        let achieved = summary.max_shard_speedup();
        let swept = summary
            .shard_rows
            .iter()
            .map(|r| r.shards)
            .max()
            .unwrap_or(1) as usize;
        if achieved < gate_shard_speedup {
            // A host with fewer cores than shards cannot run the shards in
            // parallel, so a missed target there says nothing about the
            // simulator. Equivalence was still pinned above.
            if summary.host_cores < swept {
                println!(
                    "warning: shard speedup {achieved:.2}x is below the \
                     {gate_shard_speedup:.2}x gate, but only {} host cores \
                     are available for {swept} shards — gate downgraded to \
                     this warning",
                    summary.host_cores
                );
            } else {
                return Err(format!(
                    "gate failed: shard speedup {achieved:.3}x at {swept} \
                     shards is below the required {gate_shard_speedup:.2}x \
                     ({} host cores)",
                    summary.host_cores
                ));
            }
        }
    }
    Ok(())
}

/// `spade-cli dataset`: operations over the daemon's result-cache
/// catalog as a dataset.
fn dataset(argv: &[String]) -> Result<(), String> {
    match argv.first().map(String::as_str) {
        Some("export") => dataset_export(&argv[1..]),
        Some(other) => Err(format!("dataset: unknown subcommand '{other}' (export)")),
        None => Err("dataset: expected 'export' subcommand".into()),
    }
}

/// `dataset export`: the cache catalog as one JSON document, the input
/// to `model train`. Rebuilds from entry payloads when `index.json` is
/// stale and skips (with a counted warning) entries that fail their
/// checksum — a damaged cache degrades the dataset, never the export.
fn dataset_export(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let dir = args.get("cache-dir").ok_or("--cache-dir is required")?;
    let doc =
        service::export_dataset(std::path::Path::new(dir)).map_err(|e| format!("{dir}: {e}"))?;
    let rendered = doc.render();
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "wrote {path}: {} entries ({} quarantined skipped)",
                doc.get("total").and_then(JsonValue::as_u64).unwrap_or(0),
                doc.get("skipped_quarantined")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0)
            );
        }
        None => println!("{rendered}"),
    }
    Ok(())
}

/// `spade-cli model`: fit and inspect plan-selection cost models.
fn model_cmd(argv: &[String]) -> Result<(), String> {
    match argv.first().map(String::as_str) {
        Some("train") => model_train(&argv[1..]),
        Some(other) => Err(format!("model: unknown subcommand '{other}' (train)")),
        None => Err("model: expected 'train' subcommand".into()),
    }
}

/// Recovers an [`RMatrixPolicy`] from the `r_policy` string the plan
/// JSON carries (the enum's `Debug` rendering).
fn policy_from_name(name: &str) -> Option<RMatrixPolicy> {
    match name {
        "Cache" => Some(RMatrixPolicy::Cache),
        "Bypass" => Some(RMatrixPolicy::Bypass),
        "BypassVictim" => Some(RMatrixPolicy::BypassVictim),
        _ => None,
    }
}

/// `model train`: fit a cost model from an exported dataset. Matrix
/// features are recomputed by regenerating each benchmark at `--scale`
/// (cache entries don't carry the matrix), so train against a dataset
/// swept at that same scale. Unusable entries (foreign benchmarks,
/// missing plans, sddmm rows) are skipped with a count, not an error.
fn model_train(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let dataset_path = args.get("dataset").ok_or("--dataset is required")?;
    let scale = parse_scale(&args)?;
    let out = args.get("out").unwrap_or("spade.model");
    let text = std::fs::read_to_string(dataset_path).map_err(|e| format!("{dataset_path}: {e}"))?;
    let doc = JsonValue::parse(&text).map_err(|e| format!("{dataset_path}: {e}"))?;
    let entries = doc
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or("dataset has no \"entries\" array")?;
    let mut features: std::collections::BTreeMap<String, Vec<f64>> =
        std::collections::BTreeMap::new();
    let mut rows: Vec<TrainingRow> = Vec::new();
    let mut skipped = 0usize;
    for entry in entries {
        let usable = (|| {
            let name = entry.get("benchmark")?.as_str()?;
            if entry.get("kernel")?.as_str()? != "spmm" {
                return None;
            }
            let bench = lookup_benchmark(name).ok()?;
            let plan = entry.get("plan")?;
            let feats = features
                .entry(name.to_string())
                .or_insert_with(|| MatrixFeatures::compute(&bench.generate(scale)).as_vec())
                .clone();
            Some(TrainingRow {
                benchmark: name.to_string(),
                features: feats,
                row_panel: plan.get("row_panel_size")?.as_usize()?,
                col_panel: plan.get("col_panel_size")?.as_usize()?,
                r_policy: policy_from_name(plan.get("r_policy")?.as_str()?)?,
                barriers: plan.get("barriers")?.as_bool()?,
                k: entry.get("k")?.as_usize()?,
                pes: entry.get("pes")?.as_usize()?,
                cycles: entry.get("cycles")?.as_u64()?,
            })
        })();
        match usable {
            Some(row) => rows.push(row),
            None => skipped += 1,
        }
    }
    if skipped > 0 {
        eprintln!("warning: {skipped} dataset entries were not usable as training rows");
    }
    let model = CostModel::fit(&rows)?;
    println!(
        "fitted on {} rows ({} held out): holdout MARE {:.3}{}",
        model.accuracy.train_rows,
        model.accuracy.holdout_rows,
        model.accuracy.holdout_mare,
        if model.confident() {
            ""
        } else {
            " — NOT confident; advise will use the heuristic"
        }
    );
    for (bench, n, mare) in &model.accuracy.per_benchmark {
        println!("  {bench:<6} {n:>5} rows  MARE {mare:.3}");
    }
    model.save(std::path::Path::new(out))?;
    println!("wrote {out}");
    if let Some(report) = args.get("report") {
        std::fs::write(report, model.accuracy.to_json().render())
            .map_err(|e| format!("{report}: {e}"))?;
        println!("wrote {report}");
    }
    Ok(())
}

/// Merges `section` under `key` into the JSON document at `path`,
/// preserving every other key — `bench-perf` and `bench-advise` write
/// the same summary file from different CI legs. A missing or
/// unparseable file starts a fresh document.
fn merge_bench_section(path: &str, key: &str, section: JsonValue) -> String {
    let mut fields: Vec<(String, JsonValue)> = match std::fs::read_to_string(path)
        .ok()
        .and_then(|t| JsonValue::parse(&t).ok())
    {
        Some(JsonValue::Object(fields)) => fields,
        _ => Vec::new(),
    };
    match fields.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = section,
        None => fields.push((key.to_string(), section)),
    }
    JsonValue::Object(fields).render()
}

/// `bench-advise`: measures plan-selection latency and quality across
/// the Figure 9 suite — the timed quick `find_opt` sweep per benchmark
/// versus the tiered advise scored by a leave-one-benchmark-out model —
/// and merges the `bench_advise` section into the bench summary JSON.
/// `--model-out`/`--report-out` save the full-sweep model and its
/// accuracy report as artifacts; `--gate-advise-speedup` (floor on the
/// advise speedup geomean) and `--gate-advise-quality` (ceiling on the
/// selected-plan cycles / Opt cycles geomean) turn the run into a
/// regression gate, failing after the summary is written.
fn bench_advise(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let scale = parse_scale(&args)?;
    let k = parse_k(&args)?;
    let pes: usize = args.get_parsed("pes", 56)?;
    if pes == 0 || !pes.is_multiple_of(4) {
        return Err("--pes must be a positive multiple of 4".into());
    }
    let gate_speedup: f64 = args.get_parsed("gate-advise-speedup", 0.0)?;
    let gate_quality: f64 = args.get_parsed("gate-advise-quality", 0.0)?;
    let out = args.get("out").unwrap_or("BENCH_sim.json").to_string();
    let runner = ParallelRunner::from_env();
    let bench = spade_bench::perf::run_advise_bench(scale, k, pes, &runner)?;
    println!(
        "{:<6} {:>12} {:>12} {:>7} {:>10} {:>11} {:>12} {:>9}",
        "name",
        "opt cyc",
        "advised cyc",
        "quality",
        "source",
        "advise \u{3bc}s",
        "find-opt \u{3bc}s",
        "speedup"
    );
    for r in &bench.rows {
        println!(
            "{:<6} {:>12} {:>12} {:>7.3} {:>10} {:>11.1} {:>12.0} {:>8.0}x",
            r.workload,
            r.opt_cycles,
            r.advised_cycles,
            r.quality(),
            r.source,
            r.advise_us,
            r.find_opt_us,
            r.speedup()
        );
    }
    println!(
        "advise geomean: quality {:.3}, speedup {:.0}x; model holdout MARE {:.3}",
        bench.geomean_quality(),
        bench.geomean_speedup(),
        bench.model.accuracy.holdout_mare
    );
    let merged = merge_bench_section(&out, "bench_advise", bench.to_json());
    std::fs::write(&out, merged).map_err(|e| format!("{out}: {e}"))?;
    println!("wrote {out}");
    if let Some(path) = args.get("model-out") {
        bench.model.save(std::path::Path::new(path))?;
        println!("wrote {path}");
    }
    if let Some(path) = args.get("report-out") {
        std::fs::write(path, bench.model.accuracy.to_json().render())
            .map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    if gate_quality > 0.0 && bench.geomean_quality() > gate_quality {
        return Err(format!(
            "gate failed: advised-plan quality geomean {:.3} exceeds the \
             allowed {gate_quality:.2}\u{d7} of exhaustive Opt",
            bench.geomean_quality()
        ));
    }
    if gate_speedup > 0.0 && bench.geomean_speedup() < gate_speedup {
        return Err(format!(
            "gate failed: advise speedup geomean {:.1}x is below the \
             required {gate_speedup:.0}x",
            bench.geomean_speedup()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn info_runs() {
        dispatch(&argv(&["info"])).unwrap();
    }

    #[test]
    fn run_executes_a_tiny_benchmark() {
        dispatch(&argv(&[
            "run",
            "--benchmark",
            "myc",
            "--k",
            "16",
            "--pes",
            "4",
        ]))
        .unwrap();
    }

    #[test]
    fn run_with_json_and_knobs() {
        dispatch(&argv(&[
            "run",
            "--benchmark",
            "kro",
            "--pes",
            "4",
            "--rp",
            "4",
            "--cp",
            "all",
            "--rmatrix",
            "victim",
            "--json",
        ]))
        .unwrap();
    }

    #[test]
    fn advise_runs() {
        dispatch(&argv(&["advise", "--benchmark", "roa", "--pes", "8"])).unwrap();
    }

    #[test]
    fn bad_pes_is_rejected() {
        assert!(dispatch(&argv(&["run", "--benchmark", "kro", "--pes", "3"])).is_err());
    }

    #[test]
    fn run_with_format_json_and_telemetry() {
        dispatch(&argv(&[
            "run",
            "--benchmark",
            "myc",
            "--k",
            "16",
            "--pes",
            "4",
            "--format",
            "json",
            "--telemetry",
            "128",
        ]))
        .unwrap();
    }

    #[test]
    fn bad_format_and_zero_telemetry_are_rejected() {
        assert!(dispatch(&argv(&["run", "--benchmark", "myc", "--format", "xml"])).is_err());
        assert!(dispatch(&argv(&["run", "--benchmark", "myc", "--telemetry", "0"])).is_err());
    }

    #[test]
    fn trace_writes_a_valid_chrome_trace() {
        let path = std::env::temp_dir().join("spade_cli_trace_test.trace.json");
        dispatch(&argv(&[
            "trace",
            "myc",
            "--k",
            "16",
            "--pes",
            "4",
            "--window",
            "256",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(spade_sim::json::validate(&text), Ok(()));
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"cat\":\"tile\""));
        assert!(text.contains("\"ph\":\"C\""), "telemetry counter tracks");
        // No wall-clock values: the trace is deterministic byte for byte.
        assert!(!text.contains("host_wall"));
    }

    #[test]
    fn bench_perf_writes_a_valid_summary() {
        let path = std::env::temp_dir().join("spade_cli_bench_perf_test.json");
        dispatch(&argv(&[
            "bench-perf",
            "--scale",
            "tiny",
            "--k",
            "16",
            "--pes",
            "4",
            "--shards",
            "2",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(spade_sim::json::validate(&text), Ok(()));
        assert!(text.contains("\"geomean_speedup\""));
        assert!(text.contains("\"kernel\":\"sddmm\""));
        assert!(text.contains("\"sim_shard\""));
        assert!(text.contains("\"max_shard_speedup\""));
    }

    #[test]
    fn run_with_explicit_shards() {
        dispatch(&argv(&[
            "run",
            "--benchmark",
            "myc",
            "--k",
            "16",
            "--pes",
            "8",
            "--shards",
            "2",
        ]))
        .unwrap();
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert!(dispatch(&argv(&["run", "--benchmark", "myc", "--shards", "0",])).is_err());
    }

    #[test]
    fn mm_roundtrip_via_tempfile() {
        let a = Coo::from_triplets(32, 32, &[(0, 1, 1.0), (5, 7, 2.0), (31, 0, 3.0)]).unwrap();
        let path = std::env::temp_dir().join("spade_cli_test.mtx");
        let mut buf = Vec::new();
        mm::write_matrix_market(&a, &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        dispatch(&argv(&[
            "mm",
            "--file",
            path.to_str().unwrap(),
            "--k",
            "16",
            "--pes",
            "4",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn advise_fast_and_exact_run() {
        dispatch(&argv(&[
            "advise",
            "--benchmark",
            "myc",
            "--k",
            "16",
            "--pes",
            "4",
            "--format",
            "json",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "advise",
            "--benchmark",
            "myc",
            "--k",
            "16",
            "--pes",
            "4",
            "--exact",
            "--exhaustive",
        ]))
        .unwrap();
        let err = dispatch(&argv(&[
            "advise",
            "--benchmark",
            "myc",
            "--fast",
            "--exact",
        ]))
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    /// The full offline loop: a swept cache (with a stale index and one
    /// corrupt entry) → `dataset export` → `model train` → `advise
    /// --model`. Pins the satellite contract: a stale `index.json` is
    /// rebuilt from entry payloads and quarantined entries are skipped
    /// with a count, never a failure.
    #[test]
    fn dataset_export_model_train_advise_roundtrip() {
        use spade_bench::cache::ResultCache;
        let dir = std::env::temp_dir().join(format!("spade_cli_dataset_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let mut i = 0usize;
        for bench in ["MYC", "KRO"] {
            for k in [16u64, 32, 48] {
                for rp in [64u64, 256, 1024] {
                    for cp in [512u64, 4096] {
                        for rpol in ["Cache", "BypassVictim"] {
                            let payload = format!(
                                "{{\"benchmark\":\"{bench}\",\"kernel\":\"spmm\",\"k\":{k},\
                                 \"pes\":4,\"plan\":{{\"row_panel_size\":{rp},\
                                 \"col_panel_size\":{cp},\"r_policy\":\"{rpol}\",\
                                 \"c_policy\":\"Cache\",\"barriers\":false}},\
                                 \"report\":{{\"cycles\":{},\"dram_accesses\":7}}}}",
                                rp * 1000 + k
                            );
                            cache.put(&format!("e{i:03x}"), payload.as_bytes()).unwrap();
                            i += 1;
                        }
                    }
                }
            }
        }
        // Stale index: garbage forces the rebuild-from-payloads path.
        std::fs::write(dir.join("index.json"), "not json at all").unwrap();
        // One damaged entry: must be quarantined and skipped, not fatal.
        let victim = dir.join("e000.entry");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&victim, &bytes).unwrap();

        let ds = dir.join("dataset.json");
        dispatch(&argv(&[
            "dataset",
            "export",
            "--cache-dir",
            dir.to_str().unwrap(),
            "--out",
            ds.to_str().unwrap(),
        ]))
        .unwrap();
        let doc = JsonValue::parse(&std::fs::read_to_string(&ds).unwrap()).unwrap();
        assert_eq!(doc.get("total").and_then(JsonValue::as_u64), Some(71));
        assert_eq!(
            doc.get("skipped_quarantined").and_then(JsonValue::as_u64),
            Some(1)
        );

        let model_path = dir.join("spade.model");
        let report_path = dir.join("accuracy.json");
        dispatch(&argv(&[
            "model",
            "train",
            "--dataset",
            ds.to_str().unwrap(),
            "--scale",
            "tiny",
            "--out",
            model_path.to_str().unwrap(),
            "--report",
            report_path.to_str().unwrap(),
        ]))
        .unwrap();
        let report = JsonValue::parse(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
        assert!(report
            .get("holdout_mare")
            .and_then(JsonValue::as_f64)
            .is_some());

        dispatch(&argv(&[
            "advise",
            "--benchmark",
            "myc",
            "--k",
            "16",
            "--pes",
            "4",
            "--model",
            model_path.to_str().unwrap(),
            "--format",
            "json",
        ]))
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn client_batch_requires_benchmarks() {
        let err = dispatch(&argv(&["client", "batch", "--addr", "127.0.0.1:1"])).unwrap_err();
        assert!(err.contains("--benchmarks"), "{err}");
    }

    #[test]
    fn client_batch_rejects_bad_lists() {
        // A list of separators is empty once trimmed.
        let err = dispatch(&argv(&[
            "client",
            "batch",
            "--addr",
            "127.0.0.1:1",
            "--benchmarks",
            ", ,",
        ]))
        .unwrap_err();
        assert!(err.contains("comma-separated"), "{err}");
        let err = dispatch(&argv(&[
            "client",
            "batch",
            "--addr",
            "127.0.0.1:1",
            "--benchmarks",
            "myc",
            "--k",
            "16,oops",
        ]))
        .unwrap_err();
        assert!(err.contains("--k: cannot parse 'oops'"), "{err}");
    }

    #[test]
    fn client_agg_requires_group_by() {
        let err = dispatch(&argv(&["client", "agg", "--addr", "127.0.0.1:1"])).unwrap_err();
        assert!(err.contains("--group-by"), "{err}");
    }

    #[test]
    fn comma_lists_parse_and_trim() {
        assert_eq!(
            comma_list("benchmarks", "myc, kro ,pap").unwrap(),
            vec!["myc".to_string(), "kro".to_string(), "pap".to_string()]
        );
        assert_eq!(comma_list_u64("k", "16,32").unwrap().len(), 2);
    }
}
