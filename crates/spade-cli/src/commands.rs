//! Subcommand implementations.

use std::fs::File;
use std::io::BufReader;
use std::sync::Arc;
use std::time::Instant;

use spade_bench::parallel::{self, Job, ParallelRunner};
use spade_bench::suite::Workload;
use spade_core::{
    advisor, BarrierPolicy, CMatrixPolicy, ExecutionPlan, PlanSearchSpace, Primitive,
    RMatrixPolicy, RunReport, SystemConfig,
};
use spade_matrix::analysis::MatrixStats;
use spade_matrix::generators::{Benchmark, Scale};
use spade_matrix::{mm, Coo};

use crate::args::Args;

/// Top-level usage text.
pub const USAGE: &str = "usage:
  spade-cli info   [--scale tiny|small|default|large]
  spade-cli run    --benchmark <name> [--kernel spmm|sddmm] [--k 32]
                   [--pes 56] [--scale tiny|small|default|large]
                   [--rp N] [--cp N|all] [--rmatrix cache|bypass|victim]
                   [--barriers] [--json]
  spade-cli advise --benchmark <name> [--k 32] [--pes 56] [--scale ...]
  spade-cli search --benchmark <name> [--k 32] [--pes 56] [--scale ...] [--full]
  spade-cli mm     --file <matrix.mtx> [--k 32] [--pes 56] [--json]

benchmarks: asi liv ork pap del kro myc pac roa ser";

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags or
/// failed runs.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "info" => info(rest),
        "run" => run(rest),
        "advise" => advise_cmd(rest),
        "search" => search(rest),
        "mm" => run_mm(rest),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn parse_scale(args: &Args) -> Result<Scale, String> {
    match args.get("scale").unwrap_or("tiny") {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "default" => Ok(Scale::Default),
        "large" => Ok(Scale::Large),
        other => Err(format!("--scale: unknown scale '{other}'")),
    }
}

fn parse_benchmark(args: &Args) -> Result<Benchmark, String> {
    let name = args
        .get("benchmark")
        .ok_or("--benchmark is required")?
        .to_lowercase();
    Benchmark::ALL
        .into_iter()
        .find(|b| b.short_name().eq_ignore_ascii_case(&name))
        .ok_or(format!("unknown benchmark '{name}'"))
}

fn parse_system(args: &Args) -> Result<SystemConfig, String> {
    let pes: usize = args.get_parsed("pes", 56)?;
    if pes == 0 || !pes.is_multiple_of(4) {
        return Err("--pes must be a positive multiple of 4".into());
    }
    Ok(SystemConfig::scaled(pes))
}

fn info(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let scale = parse_scale(&args)?;
    println!(
        "{:<6} {:<24} {:>8} {:>9} {:>8} {:>7}  RU",
        "name", "domain", "rows", "nnz", "avg-deg", "density"
    );
    for b in Benchmark::ALL {
        let m = b.generate(scale);
        let s = MatrixStats::compute(&m);
        println!(
            "{:<6} {:<24} {:>8} {:>9} {:>8.1} {:>7.0e}  {}",
            b.short_name(),
            b.domain(),
            s.num_rows,
            s.nnz,
            s.avg_degree,
            s.density,
            s.classify_ru()
        );
    }
    Ok(())
}

fn parse_plan(args: &Args, a: &Coo) -> Result<ExecutionPlan, String> {
    let mut plan = ExecutionPlan::spmm_base(a).map_err(|e| e.to_string())?;
    let mut rp = plan.tiling.row_panel_size;
    let mut cp = plan.tiling.col_panel_size;
    if let Some(v) = args.get("rp") {
        rp = v.parse().map_err(|_| "--rp: bad number")?;
    }
    if let Some(v) = args.get("cp") {
        cp = if v == "all" {
            a.num_cols().max(1)
        } else {
            v.parse().map_err(|_| "--cp: bad number")?
        };
    }
    // Re-validate through the constructor so a zero panel size is a flag
    // error here, not a failure inside the simulator.
    plan.tiling = spade_matrix::TilingConfig::new(rp, cp).map_err(|e| e.to_string())?;
    plan.r_policy = match args.get("rmatrix").unwrap_or("cache") {
        "cache" => RMatrixPolicy::Cache,
        "bypass" => RMatrixPolicy::Bypass,
        "victim" => RMatrixPolicy::BypassVictim,
        other => return Err(format!("--rmatrix: unknown policy '{other}'")),
    };
    plan.c_policy = CMatrixPolicy::Cache;
    if args.has("barriers") {
        plan.barriers = BarrierPolicy::per_column_panel();
    }
    Ok(plan)
}

struct RunSummary<'a> {
    benchmark: &'a str,
    kernel: String,
    k: usize,
    pes: usize,
    plan: &'a ExecutionPlan,
    report: &'a RunReport,
}

impl RunSummary<'_> {
    /// Hand-rolled JSON (the workspace is dependency-free); fields mirror
    /// the plain-text report.
    fn to_json(&self) -> String {
        let p = self.plan;
        let r = self.report;
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": {},\n",
                "  \"kernel\": {},\n",
                "  \"k\": {},\n",
                "  \"pes\": {},\n",
                "  \"plan\": {{\n",
                "    \"row_panel_size\": {},\n",
                "    \"col_panel_size\": {},\n",
                "    \"r_policy\": {},\n",
                "    \"c_policy\": {},\n",
                "    \"barriers\": {}\n",
                "  }},\n",
                "  \"report\": {{\n",
                "    \"cycles\": {},\n",
                "    \"time_ns\": {},\n",
                "    \"total_vops\": {},\n",
                "    \"dram_accesses\": {},\n",
                "    \"llc_accesses\": {},\n",
                "    \"requests_per_cycle\": {},\n",
                "    \"achieved_gbps\": {},\n",
                "    \"host_wall_ns\": {},\n",
                "    \"sim_cycles_per_host_sec\": {}\n",
                "  }}\n",
                "}}"
            ),
            json_str(self.benchmark),
            json_str(&self.kernel),
            self.k,
            self.pes,
            p.tiling.row_panel_size,
            p.tiling.col_panel_size,
            json_str(&format!("{:?}", p.r_policy)),
            json_str(&format!("{:?}", p.c_policy)),
            p.barriers.is_enabled(),
            r.cycles,
            r.time_ns,
            r.total_vops,
            r.dram_accesses,
            r.llc_accesses,
            r.requests_per_cycle,
            r.achieved_gbps,
            r.host_wall_ns,
            r.sim_cycles_per_host_sec(),
        )
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn execute(
    system_config: &SystemConfig,
    a: &Coo,
    name: &str,
    k: usize,
    kernel: Primitive,
    plan: &ExecutionPlan,
) -> Result<RunReport, String> {
    // Route through the bench workload so the gold kernel is computed once
    // and the run validates against the shared cached result.
    let w = Workload::from_matrix(name.to_string(), a.clone(), k);
    let job = Job::new(
        &Arc::new(w),
        &Arc::new(system_config.clone()),
        kernel,
        *plan,
    );
    job.try_execute().map_err(|e| e.to_string())
}

fn print_report(report: &RunReport, json: bool, ctx: RunSummary<'_>) -> Result<(), String> {
    if json {
        println!("{}", ctx.to_json());
    } else {
        println!("cycles            : {}", report.cycles);
        println!("time              : {:.1} µs", report.time_ns / 1e3);
        println!("vOps              : {}", report.total_vops);
        println!("DRAM accesses     : {}", report.dram_accesses);
        println!("LLC accesses      : {}", report.llc_accesses);
        println!("requests/cycle    : {:.2}", report.requests_per_cycle);
        println!("DRAM bandwidth    : {:.1} GB/s", report.achieved_gbps);
        println!(
            "termination cost  : {:.2}%",
            report.termination_fraction() * 100.0
        );
        println!(
            "host wall clock   : {:.1} ms ({:.1} Mcycle/s simulated)",
            report.host_wall_ns / 1e6,
            report.sim_cycles_per_host_sec() / 1e6
        );
    }
    Ok(())
}

/// Parses `--k`, rejecting values the simulator cannot run (K must fill
/// whole cache lines) before any simulation work starts.
fn parse_k(args: &Args) -> Result<usize, String> {
    let k: usize = args.get_parsed("k", 32)?;
    let line = spade_matrix::FLOATS_PER_LINE;
    if k == 0 || !k.is_multiple_of(line) {
        return Err(format!(
            "--k: {k} is not a multiple of the cache line ({line} floats)"
        ));
    }
    Ok(k)
}

fn parse_kernel(args: &Args) -> Result<Primitive, String> {
    match args.get("kernel").unwrap_or("spmm") {
        "spmm" => Ok(Primitive::Spmm),
        "sddmm" => Ok(Primitive::Sddmm),
        other => Err(format!("--kernel: unknown kernel '{other}'")),
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["json", "barriers"])?;
    let bench = parse_benchmark(&args)?;
    let scale = parse_scale(&args)?;
    let k = parse_k(&args)?;
    let kernel = parse_kernel(&args)?;
    let system_config = parse_system(&args)?;
    let a = bench.generate(scale);
    let plan = parse_plan(&args, &a)?;
    let report = execute(&system_config, &a, bench.short_name(), k, kernel, &plan)?;
    print_report(
        &report,
        args.has("json"),
        RunSummary {
            benchmark: bench.short_name(),
            kernel: kernel.to_string(),
            k,
            pes: system_config.num_pes,
            plan: &plan,
            report: &report,
        },
    )
}

fn advise_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let bench = parse_benchmark(&args)?;
    let scale = parse_scale(&args)?;
    let k = parse_k(&args)?;
    let system_config = parse_system(&args)?;
    let a = bench.generate(scale);
    let stats = MatrixStats::compute(&a);
    let plan = advisor::advise(&a, k, &system_config).map_err(|e| e.to_string())?;
    println!(
        "{}: {} rows, {} nnz, RU={}",
        bench.short_name(),
        a.num_rows(),
        a.nnz(),
        stats.classify_ru()
    );
    println!(
        "advised: RP={} CP={} rMatrix={:?} cMatrix={:?} barriers={}",
        plan.tiling.row_panel_size,
        plan.tiling.col_panel_size,
        plan.r_policy,
        plan.c_policy,
        plan.barriers.is_enabled()
    );
    Ok(())
}

fn search(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["full"])?;
    let bench = parse_benchmark(&args)?;
    let scale = parse_scale(&args)?;
    let k = parse_k(&args)?;
    let system_config = parse_system(&args)?;
    let a = bench.generate(scale);
    let space = if args.has("full") {
        PlanSearchSpace::table3(k)
    } else {
        PlanSearchSpace::quick(k)
    };
    // Fan the candidate sweep across host cores (SPADE_THREADS overrides).
    let workload = Arc::new(Workload::from_matrix(
        bench.short_name().to_string(),
        a.clone(),
        k,
    ));
    let config = Arc::new(system_config);
    let plans = space.enumerate(&a);
    let jobs: Vec<Job> = plans
        .iter()
        .map(|&plan| Job::new(&workload, &config, Primitive::Spmm, plan))
        .collect();
    let start = Instant::now();
    // One failing candidate should cost its own slot, not the sweep.
    let outcomes = ParallelRunner::from_env().run_results(&jobs);
    let reports: Vec<RunReport> = outcomes.iter().flatten().cloned().collect();
    println!(
        "{}",
        parallel::throughput_summary(&reports, start.elapsed())
    );
    let mut failures = 0usize;
    let mut results: Vec<(ExecutionPlan, u64)> = Vec::with_capacity(plans.len());
    for (plan, outcome) in plans.into_iter().zip(&outcomes) {
        match outcome {
            Ok(r) => results.push((plan, r.cycles)),
            Err(e) => {
                failures += 1;
                eprintln!("warning: candidate plan failed: {e}");
            }
        }
    }
    if results.is_empty() {
        return Err(format!("all {failures} candidate plans failed"));
    }
    results.sort_by_key(|&(_, c)| c);
    println!("{} plans searched; best first:", results.len());
    for (plan, cycles) in results.iter().take(5) {
        println!(
            "  {:>10} cycles  RP={:<6} CP={:<8} {:?} barriers={}",
            cycles,
            plan.tiling.row_panel_size,
            plan.tiling.col_panel_size,
            plan.r_policy,
            plan.barriers.is_enabled()
        );
    }
    Ok(())
}

fn run_mm(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["json"])?;
    let path = args.get("file").ok_or("--file is required")?;
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let a = mm::read_matrix_market(BufReader::new(file)).map_err(|e| e.to_string())?;
    let k = parse_k(&args)?;
    let system_config = parse_system(&args)?;
    let plan = advisor::advise(&a, k, &system_config).map_err(|e| e.to_string())?;
    let report = execute(&system_config, &a, path, k, Primitive::Spmm, &plan)?;
    print_report(
        &report,
        args.has("json"),
        RunSummary {
            benchmark: path,
            kernel: Primitive::Spmm.to_string(),
            k,
            pes: system_config.num_pes,
            plan: &plan,
            report: &report,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn info_runs() {
        dispatch(&argv(&["info"])).unwrap();
    }

    #[test]
    fn run_executes_a_tiny_benchmark() {
        dispatch(&argv(&[
            "run",
            "--benchmark",
            "myc",
            "--k",
            "16",
            "--pes",
            "4",
        ]))
        .unwrap();
    }

    #[test]
    fn run_with_json_and_knobs() {
        dispatch(&argv(&[
            "run",
            "--benchmark",
            "kro",
            "--pes",
            "4",
            "--rp",
            "4",
            "--cp",
            "all",
            "--rmatrix",
            "victim",
            "--json",
        ]))
        .unwrap();
    }

    #[test]
    fn advise_runs() {
        dispatch(&argv(&["advise", "--benchmark", "roa", "--pes", "8"])).unwrap();
    }

    #[test]
    fn bad_pes_is_rejected() {
        assert!(dispatch(&argv(&["run", "--benchmark", "kro", "--pes", "3"])).is_err());
    }

    #[test]
    fn mm_roundtrip_via_tempfile() {
        let a = Coo::from_triplets(32, 32, &[(0, 1, 1.0), (5, 7, 2.0), (31, 0, 3.0)]).unwrap();
        let path = std::env::temp_dir().join("spade_cli_test.mtx");
        let mut buf = Vec::new();
        mm::write_matrix_market(&a, &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        dispatch(&argv(&[
            "mm",
            "--file",
            path.to_str().unwrap(),
            "--k",
            "16",
            "--pes",
            "4",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(path);
    }
}
