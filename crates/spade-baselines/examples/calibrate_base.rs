//! Developer probe: kernel times of the three baseline machines.

use spade_baselines::cpu::{CpuConfig, CpuModel};
use spade_baselines::gpu::{GpuConfig, GpuModel};
use spade_baselines::sextans::{SextansConfig, SextansModel};
use spade_matrix::generators::{Benchmark, Scale};
use spade_matrix::DenseMatrix;
use std::time::Instant;
fn main() {
    let k = 32;
    for bench in [
        Benchmark::Roa,
        Benchmark::Kro,
        Benchmark::Ork,
        Benchmark::Del,
        Benchmark::Myc,
    ] {
        let a = bench.generate(Scale::Default);
        let b = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r + c) % 17) as f32 * 0.1);
        let t0 = Instant::now();
        let cpu = CpuModel::new(CpuConfig::ice_lake()).run_spmm(&a, &b);
        let gpu = GpuModel::new(GpuConfig::v100()).run_spmm(&a, &b);
        let sex = SextansModel::new(SextansConfig::idealized()).run_spmm(&a, &b);
        println!(
            "{}: CPU {:.0}us gbps={:.0} | GPU {:.0}us | Sextans {:.0}us (host {:.1}s)",
            bench.short_name(),
            cpu.report.kernel_ns / 1e3,
            cpu.report.achieved_gbps,
            gpu.report.kernel_ns / 1e3,
            sex.report.kernel_ns / 1e3,
            t0.elapsed().as_secs_f64()
        );
    }
}
