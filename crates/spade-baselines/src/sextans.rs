//! The idealized Sextans accelerator model (§6.A, §7.F).
//!
//! Sextans is an FPGA SpMM accelerator that streams sparse and dense data
//! from HBM through on-chip scratchpads in sequentially-batched phases.
//! Following the paper's methodology, the model is *idealized*: compute is
//! free (only memory time counts), FPGA/AXI limits are ignored, the
//! scratchpad is scaled up to 170 MB, tuples are compressed to 8 bytes,
//! and the achievable bandwidth utilization is 50 % of peak — all more
//! generous than the published Sextans numbers.
//!
//! Its one-size-fits-all execution model has the two weaknesses the paper
//! calls out (§7.F): sparse data is re-read once per 8-column batch of the
//! dense matrix (so `⌈K/8⌉` times), and when the dense output does not fit
//! the scratchpad the dense input is re-streamed once per output chunk.

use spade_matrix::{reference, Coo, DenseMatrix};

use crate::BaselineReport;

/// Sextans model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SextansConfig {
    /// Peak memory bandwidth in GB/s (the paper gives it the host's
    /// 410 GB/s theoretical DRAM).
    pub peak_gbps: f64,
    /// Achievable fraction of peak (0.5 for the idealized model — already
    /// far above the 15 % reported for the real FPGA).
    pub utilization: f64,
    /// On-chip scratchpad capacity in bytes (170 MB scaled-up).
    pub scratchpad_bytes: u64,
    /// Columns of the dense matrix processed per streaming pass (8 for
    /// Sextans).
    pub cols_per_pass: usize,
    /// Bytes per compressed `{row, col, val}` tuple.
    pub tuple_bytes: u64,
}

impl SextansConfig {
    /// The idealized scaled-up Sextans of §6.A.
    pub fn idealized() -> Self {
        SextansConfig {
            peak_gbps: 410.0,
            utilization: 0.5,
            scratchpad_bytes: 170 * 1_000_000,
            cols_per_pass: 8,
            tuple_bytes: 8,
        }
    }

    /// A proportionally scaled device for scaled-down benchmark suites.
    pub fn scaled_down(&self, factor: f64) -> Self {
        SextansConfig {
            peak_gbps: self.peak_gbps / factor,
            scratchpad_bytes: ((self.scratchpad_bytes as f64 / factor) as u64).max(1 << 16),
            ..*self
        }
    }
}

/// Result of one modeled Sextans SpMM.
#[derive(Debug, Clone, PartialEq)]
pub struct SextansRun {
    /// Functional output.
    pub output: DenseMatrix,
    /// Timing summary (kernel only; PCIe transfers are modeled
    /// separately).
    pub report: BaselineReport,
    /// Number of output chunks the dense output was split into.
    pub output_chunks: u64,
    /// Number of passes over the sparse data (`⌈K/8⌉`).
    pub sparse_passes: u64,
}

/// The idealized Sextans machine. It supports SpMM only — the paper notes
/// "Sextans does not support SDDMM" (§7.F).
#[derive(Debug, Clone)]
pub struct SextansModel {
    config: SextansConfig,
}

impl SextansModel {
    /// Creates the model.
    pub fn new(config: SextansConfig) -> Self {
        SextansModel { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SextansConfig {
        &self.config
    }

    /// Models SpMM (`D = A × B`).
    ///
    /// # Panics
    ///
    /// Panics if `B` has fewer rows than `A` has columns.
    pub fn run_spmm(&self, a: &Coo, b: &DenseMatrix) -> SextansRun {
        let k = b.num_cols() as u64;
        let nnz = a.nnz() as u64;
        let rows = a.num_rows() as u64;
        let cols = a.num_cols() as u64;

        // Per-pass output footprint: D rows × cols_per_pass floats.
        let pass_out_bytes = rows * self.config.cols_per_pass as u64 * 4;
        // Scratchpad holds the output chunk plus streaming buffers; charge
        // the whole scratchpad to the output chunk (idealized).
        let output_chunks = pass_out_bytes
            .div_ceil(self.config.scratchpad_bytes.max(1))
            .max(1);
        let sparse_passes = k.div_ceil(self.config.cols_per_pass as u64).max(1);

        // Traffic per §7.F:
        //  * sparse stream: once per pass over the dense columns,
        //  * dense input B: each pass streams its 8-column slice once per
        //    output chunk,
        //  * dense output D: written once.
        let sparse_bytes = nnz * self.config.tuple_bytes * sparse_passes;
        let b_bytes = cols * k * 4 * output_chunks;
        let d_bytes = rows * k * 4;
        let total_bytes = sparse_bytes + b_bytes + d_bytes;

        let effective_gbps = self.config.peak_gbps * self.config.utilization;
        let kernel_ns = total_bytes as f64 / effective_gbps;
        let lines = total_bytes.div_ceil(64);

        SextansRun {
            output: reference::spmm(a, b),
            report: BaselineReport::from_traffic(lines, kernel_ns, self.config.peak_gbps),
            output_chunks,
            sparse_passes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_matrix::generators::{Benchmark, Scale};

    fn dense(rows: usize, k: usize) -> DenseMatrix {
        DenseMatrix::from_fn(rows, k, |r, c| ((r + c) % 5) as f32)
    }

    #[test]
    fn output_is_reference() {
        let a = Benchmark::Kro.generate(Scale::Tiny);
        let b = dense(a.num_cols(), 32);
        let run = SextansModel::new(SextansConfig::idealized()).run_spmm(&a, &b);
        assert!(reference::dense_close(
            &run.output,
            &reference::spmm(&a, &b),
            0.0
        ));
    }

    #[test]
    fn sparse_rereads_grow_with_k() {
        let a = Benchmark::Del.generate(Scale::Tiny);
        let model = SextansModel::new(SextansConfig::idealized());
        let r32 = model.run_spmm(&a, &dense(a.num_cols(), 32));
        let r128 = model.run_spmm(&a, &dense(a.num_cols(), 128));
        assert_eq!(r32.sparse_passes, 4);
        assert_eq!(r128.sparse_passes, 16);
        assert!(r128.report.kernel_ns > r32.report.kernel_ns * 2.0);
    }

    #[test]
    fn small_scratchpad_forces_dense_rereads() {
        let a = Benchmark::Roa.generate(Scale::Tiny);
        let big = SextansModel::new(SextansConfig::idealized());
        let small = SextansModel::new(SextansConfig {
            scratchpad_bytes: 64 * 1024,
            ..SextansConfig::idealized()
        });
        let rb = big.run_spmm(&a, &dense(a.num_cols(), 32));
        let rs = small.run_spmm(&a, &dense(a.num_cols(), 32));
        assert_eq!(rb.output_chunks, 1);
        assert!(rs.output_chunks > 1);
        assert!(rs.report.dram_bytes > rb.report.dram_bytes);
    }

    #[test]
    fn utilization_is_capped_at_half() {
        let a = Benchmark::Kro.generate(Scale::Tiny);
        let run =
            SextansModel::new(SextansConfig::idealized()).run_spmm(&a, &dense(a.num_cols(), 32));
        assert!(
            run.report.utilization <= 0.500001,
            "{}",
            run.report.utilization
        );
        assert!(run.report.utilization > 0.49);
    }
}
