//! Host↔device data-transfer model (§3, Figure 2).
//!
//! SPADE's core motivation: on a PCIe-attached accelerator, a single SpMM
//! iteration spends ~97 % of its time moving data — the sparse matrix and
//! the dense input must cross to the device and the dense output must come
//! back, plus address mapping/pinning work that the paper's CUDA-event
//! measurements could not separate from the raw transfer. SPADE eliminates
//! both by sharing the host's memory system and virtual addresses.

use spade_matrix::{Coo, DenseMatrix};

/// PCIe + address-mapping transfer cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Host-to-device effective bandwidth in GB/s.
    pub h2d_gbps: f64,
    /// Device-to-host effective bandwidth in GB/s.
    pub d2h_gbps: f64,
    /// Address mapping / pinning overhead in nanoseconds per transferred
    /// megabyte (page-table and IOMMU work scales with the footprint).
    pub mapping_ns_per_mb: f64,
    /// Fixed per-transfer latency in nanoseconds (driver + DMA setup).
    pub setup_ns: f64,
}

impl TransferModel {
    /// A PCIe 3.0 ×16 link as observed in practice: ~12 GB/s raw with
    /// pageable-memory staging and mapping overheads that bring the
    /// effective single-iteration rate down further.
    pub fn pcie3() -> Self {
        TransferModel {
            h2d_gbps: 12.0,
            d2h_gbps: 12.0,
            mapping_ns_per_mb: 60_000.0,
            setup_ns: 10_000.0,
        }
    }

    /// Time to move `bytes` host-to-device, mapping included.
    pub fn h2d_ns(&self, bytes: u64) -> f64 {
        self.setup_ns
            + bytes as f64 / self.h2d_gbps
            + bytes as f64 / 1e6 * self.mapping_ns_per_mb / 1e0
    }

    /// Time to move `bytes` device-to-host.
    pub fn d2h_ns(&self, bytes: u64) -> f64 {
        self.setup_ns + bytes as f64 / self.d2h_gbps
    }

    /// Total transfer time of one SpMM iteration: `A` (CSR) and `B` go to
    /// the device, `D` comes back.
    pub fn spmm_roundtrip_ns(&self, a: &Coo, b: &DenseMatrix) -> f64 {
        let a_bytes = a.to_csr().size_bytes() as u64;
        let d_bytes = a.num_rows() as u64 * b.row_stride() as u64 * 4;
        self.h2d_ns(a_bytes + b.size_bytes() as u64) + self.d2h_ns(d_bytes)
    }

    /// Total transfer time of one SDDMM iteration: `A`, `B` and `Cᵀ` go to
    /// the device, the output values come back.
    pub fn sddmm_roundtrip_ns(&self, a: &Coo, b: &DenseMatrix, c_t: &DenseMatrix) -> f64 {
        let a_bytes = a.to_csr().size_bytes() as u64;
        let out_bytes = a.nnz() as u64 * 4;
        self.h2d_ns(a_bytes + b.size_bytes() as u64 + c_t.size_bytes() as u64)
            + self.d2h_ns(out_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_matrix::generators::{Benchmark, Scale};

    #[test]
    fn transfer_scales_with_bytes() {
        let m = TransferModel::pcie3();
        assert!(m.h2d_ns(2_000_000) > m.h2d_ns(1_000_000));
        assert!(m.h2d_ns(0) >= m.setup_ns);
    }

    #[test]
    fn transfer_dominates_single_iteration() {
        // The Figure 2 effect: for a bandwidth-bound kernel at 900 GB/s,
        // moving the same data at ~12 GB/s (plus mapping) must be the
        // overwhelming majority of total time.
        let a = Benchmark::Kro.generate(Scale::Small);
        let b = DenseMatrix::from_fn(a.num_cols(), 32, |_, _| 1.0);
        let transfer = TransferModel::pcie3().spmm_roundtrip_ns(&a, &b);
        let gpu = crate::gpu::GpuModel::new(crate::gpu::GpuConfig::v100()).run_spmm(&a, &b);
        let frac = transfer / (transfer + gpu.report.kernel_ns);
        assert!(frac > 0.9, "transfer fraction {frac}");
    }

    #[test]
    fn sddmm_roundtrip_moves_three_inputs() {
        let a = Benchmark::Pap.generate(Scale::Tiny);
        let b = DenseMatrix::zeros(a.num_rows(), 32);
        let c_t = DenseMatrix::zeros(a.num_cols(), 32);
        let m = TransferModel::pcie3();
        assert!(m.sddmm_roundtrip_ns(&a, &b, &c_t) > m.spmm_roundtrip_ns(&a, &b) * 0.9);
    }
}
