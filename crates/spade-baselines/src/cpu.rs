//! Timing model of the baseline dual-socket Ice Lake CPU server (Table 1).
//!
//! The paper measures a real 56-core machine running MKL
//! Inspector-Executor SpMM and TACO SDDMM. Here the CPU is simulated on the
//! *same* memory-hierarchy substrate as SPADE (48 KiB L1D, 1.25 MiB private
//! L2 per core, 84 MiB LLC, 304 GB/s DRAM), so speedup ratios are
//! self-consistent. Each core is an out-of-order engine with a bounded
//! memory-level-parallelism window (the load-queue/line-fill-buffer limit)
//! processing a contiguous, nnz-balanced chunk of CSR rows; cores advance
//! through the shared memory system in global time order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use spade_matrix::{reference, Coo, Csr, DenseMatrix, FLOATS_PER_LINE};
use spade_sim::{AccessPath, Cycle, DataClass, MemConfig, MemorySystem, PE_GHZ};

use crate::BaselineReport;

/// CPU-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Number of cores.
    pub cores: usize,
    /// Core clock in GHz (2.6 base for Ice Lake).
    pub ghz: f64,
    /// Outstanding L1 misses per core (line-fill buffers).
    pub mlp: usize,
    /// Dense elements processed per core cycle by the SIMD units
    /// (3×512-bit FMA ⇒ 48 single-precision lanes; ~32 sustained).
    pub flops_per_cycle: f64,
}

impl CpuConfig {
    /// The Table 1 Ice Lake server.
    pub fn ice_lake() -> Self {
        CpuConfig {
            cores: 56,
            ghz: 2.6,
            mlp: 12,
            flops_per_cycle: 32.0,
        }
    }

    /// A smaller machine for tests.
    pub fn small_test(cores: usize) -> Self {
        CpuConfig {
            cores,
            ghz: 2.6,
            mlp: 4,
            flops_per_cycle: 32.0,
        }
    }
}

/// Result of one simulated CPU SpMM.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuRun {
    /// The functional output.
    pub output: DenseMatrix,
    /// Timing summary.
    pub report: BaselineReport,
}

/// Result of one simulated CPU SDDMM.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSddmmRun {
    /// Output values in the input's non-zero order.
    pub output: Vec<f32>,
    /// Timing summary.
    pub report: BaselineReport,
}

/// One memory access of a core's instruction stream, preceded by
/// `pre_compute_x1024` cycles (×1024 fixed point, PE-cycle base) of SIMD
/// work.
#[derive(Debug, Clone, Copy)]
struct Op {
    line: u64,
    class: DataClass,
    write: bool,
    pre_compute_x1024: u64,
}

/// The simulated CPU machine.
#[derive(Debug)]
pub struct CpuModel {
    config: CpuConfig,
    mem_config: MemConfig,
}

impl CpuModel {
    /// Creates the model; the memory hierarchy follows
    /// [`MemConfig::cpu_ice_lake`] for the configured core count.
    pub fn new(config: CpuConfig) -> Self {
        Self::with_mem(config, MemConfig::cpu_ice_lake(config.cores))
    }

    /// Creates the model with an explicit memory hierarchy (used by the
    /// benchmark harness, which scales cache capacities together with the
    /// benchmark suite).
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy has fewer agents than the CPU has cores.
    pub fn with_mem(config: CpuConfig, mem_config: MemConfig) -> Self {
        assert!(
            mem_config.num_agents >= config.cores,
            "memory hierarchy has {} agents for {} cores",
            mem_config.num_agents,
            config.cores
        );
        CpuModel { mem_config, config }
    }

    /// The configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Partitions rows into contiguous, nnz-balanced chunks.
    fn partition(csr: &Csr, parts: usize) -> Vec<(usize, usize)> {
        let total = csr.nnz().max(1);
        let per_part = total.div_ceil(parts);
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0usize;
        let mut acc = 0usize;
        for r in 0..csr.num_rows() {
            acc += csr.row_nnz(r);
            if acc >= per_part {
                ranges.push((start, r + 1));
                start = r + 1;
                acc = 0;
            }
        }
        if start < csr.num_rows() {
            ranges.push((start, csr.num_rows()));
        }
        ranges
    }

    /// Simulates all cores' op streams, interleaved in global time order
    /// so shared-bandwidth contention is fair. Returns the finish cycle.
    fn simulate(&self, mem: &mut MemorySystem, ops: &[Vec<Op>]) -> Cycle {
        // One issue per CPU cycle, in PE cycles (×1024).
        let issue_step = ((1024.0 * PE_GHZ / self.config.ghz).round() as u64).max(1);
        struct CoreState {
            t_x1024: u64,
            slots: Vec<Cycle>,
            cursor: usize,
            last_completion: Cycle,
        }
        let mut cores: Vec<CoreState> = ops
            .iter()
            .map(|_| CoreState {
                t_x1024: 0,
                slots: vec![0; self.config.mlp.max(1)],
                cursor: 0,
                last_completion: 0,
            })
            .collect();
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..ops.len())
            .filter(|&c| !ops[c].is_empty())
            .map(|c| Reverse((0u64, c)))
            .collect();

        let mut finish: Cycle = 0;
        while let Some(Reverse((_, c))) = heap.pop() {
            let state = &mut cores[c];
            let op = ops[c][state.cursor];
            state.cursor += 1;
            state.t_x1024 += op.pre_compute_x1024;
            // MLP window: wait for the earliest-free slot.
            let (slot_idx, &slot_free) = state
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .expect("mlp >= 1");
            let now = (state.t_x1024 / 1024).max(slot_free);
            let done = if op.write {
                mem.write(c, op.line, AccessPath::Cached, op.class, now)
            } else {
                mem.read(c, op.line, AccessPath::Cached, op.class, now)
            };
            state.slots[slot_idx] = done;
            state.last_completion = state.last_completion.max(done);
            state.t_x1024 = state.t_x1024.max(now * 1024) + issue_step;
            if state.cursor < ops[c].len() {
                heap.push(Reverse((state.t_x1024, c)));
            } else {
                finish = finish.max(state.last_completion.max(state.t_x1024 / 1024));
            }
        }
        finish
    }

    /// Builds the per-core op streams for CSR SpMM.
    fn spmm_ops(&self, csr: &Csr, k: usize) -> Vec<Vec<Op>> {
        let lines_per_row = k.div_ceil(FLOATS_PER_LINE) as u64;
        let nnz = csr.nnz() as u64;
        let cols_base = 0u64;
        let vals_base = (nnz * 4).div_ceil(64) + 16;
        let b_base = vals_base + (nnz * 4).div_ceil(64) + 16;
        let b_lines = csr.num_cols() as u64 * lines_per_row;
        let d_base = b_base + b_lines + 16;
        let compute_x1024 =
            (1024.0 * (k as f64 / self.config.flops_per_cycle) * PE_GHZ / self.config.ghz) as u64;

        Self::partition(csr, self.config.cores)
            .iter()
            .map(|&(row_start, row_end)| {
                let mut ops = Vec::new();
                for row in row_start..row_end {
                    let (cols, _) = csr.row_entries(row);
                    let base_idx = csr.row_ptr()[row] as u64;
                    for (j, &c) in cols.iter().enumerate() {
                        let idx = base_idx + j as u64;
                        if idx.is_multiple_of(FLOATS_PER_LINE as u64) || j == 0 {
                            ops.push(Op {
                                line: cols_base + idx * 4 / 64,
                                class: DataClass::SparseIn,
                                write: false,
                                pre_compute_x1024: 0,
                            });
                            ops.push(Op {
                                line: vals_base + idx * 4 / 64,
                                class: DataClass::SparseIn,
                                write: false,
                                pre_compute_x1024: 0,
                            });
                        }
                        for l in 0..lines_per_row {
                            ops.push(Op {
                                line: b_base + c as u64 * lines_per_row + l,
                                class: DataClass::CMatrix,
                                write: false,
                                pre_compute_x1024: if l == 0 { compute_x1024 } else { 0 },
                            });
                        }
                    }
                    if !cols.is_empty() {
                        for l in 0..lines_per_row {
                            ops.push(Op {
                                line: d_base + row as u64 * lines_per_row + l,
                                class: DataClass::RMatrix,
                                write: true,
                                pre_compute_x1024: 0,
                            });
                        }
                    }
                }
                ops
            })
            .collect()
    }

    /// Builds the per-core op streams for SDDMM.
    fn sddmm_ops(&self, csr: &Csr, k: usize) -> Vec<Vec<Op>> {
        let lines_per_row = k.div_ceil(FLOATS_PER_LINE) as u64;
        let nnz = csr.nnz() as u64;
        let cols_base = 0u64;
        let vals_base = (nnz * 4).div_ceil(64) + 16;
        let b_base = vals_base + (nnz * 4).div_ceil(64) + 16;
        let b_lines = csr.num_rows() as u64 * lines_per_row;
        let c_base = b_base + b_lines + 16;
        let c_lines = csr.num_cols() as u64 * lines_per_row;
        let out_base = c_base + c_lines + 16;
        let compute_x1024 =
            (1024.0 * (k as f64 / self.config.flops_per_cycle) * PE_GHZ / self.config.ghz) as u64;

        Self::partition(csr, self.config.cores)
            .iter()
            .map(|&(row_start, row_end)| {
                let mut ops = Vec::new();
                for row in row_start..row_end {
                    let (cols, _) = csr.row_entries(row);
                    if cols.is_empty() {
                        continue;
                    }
                    // B row stays in registers for the whole row.
                    for l in 0..lines_per_row {
                        ops.push(Op {
                            line: b_base + row as u64 * lines_per_row + l,
                            class: DataClass::RMatrix,
                            write: false,
                            pre_compute_x1024: 0,
                        });
                    }
                    let base_idx = csr.row_ptr()[row] as u64;
                    for (j, &c) in cols.iter().enumerate() {
                        let idx = base_idx + j as u64;
                        if idx.is_multiple_of(FLOATS_PER_LINE as u64) || j == 0 {
                            ops.push(Op {
                                line: cols_base + idx * 4 / 64,
                                class: DataClass::SparseIn,
                                write: false,
                                pre_compute_x1024: 0,
                            });
                            ops.push(Op {
                                line: vals_base + idx * 4 / 64,
                                class: DataClass::SparseIn,
                                write: false,
                                pre_compute_x1024: 0,
                            });
                            ops.push(Op {
                                line: out_base + idx * 4 / 64,
                                class: DataClass::SparseOut,
                                write: true,
                                pre_compute_x1024: 0,
                            });
                        }
                        for l in 0..lines_per_row {
                            ops.push(Op {
                                line: c_base + c as u64 * lines_per_row + l,
                                class: DataClass::CMatrix,
                                write: false,
                                pre_compute_x1024: if l == 0 { compute_x1024 } else { 0 },
                            });
                        }
                    }
                }
                ops
            })
            .collect()
    }

    /// Runs SpMM (`D = A × B`) on the simulated CPU.
    ///
    /// # Panics
    ///
    /// Panics if `B` has fewer rows than `A` has columns.
    pub fn run_spmm(&self, a: &Coo, b: &DenseMatrix) -> CpuRun {
        let csr = a.to_csr();
        let mut mem = MemorySystem::new(self.mem_config.clone());
        let ops = self.spmm_ops(&csr, b.num_cols());
        let finish = self.simulate(&mut mem, &ops);
        let output = reference::spmm(a, b);
        let report = BaselineReport::from_traffic(
            mem.stats().dram_accesses(),
            finish as f64 / PE_GHZ,
            self.mem_config.dram.bandwidth_gbps,
        );
        CpuRun { output, report }
    }

    /// Runs SDDMM (`D = A ∘ (B × Cᵀ)`) on the simulated CPU.
    ///
    /// # Panics
    ///
    /// Panics on operand shape mismatches (see [`reference::sddmm`]).
    pub fn run_sddmm(&self, a: &Coo, b: &DenseMatrix, c_t: &DenseMatrix) -> CpuSddmmRun {
        let csr = a.to_csr();
        let mut mem = MemorySystem::new(self.mem_config.clone());
        let ops = self.sddmm_ops(&csr, b.num_cols());
        let finish = self.simulate(&mut mem, &ops);
        let output = reference::sddmm(a, b, c_t);
        let report = BaselineReport::from_traffic(
            mem.stats().dram_accesses(),
            finish as f64 / PE_GHZ,
            self.mem_config.dram.bandwidth_gbps,
        );
        CpuSddmmRun { output, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_matrix::generators::{Benchmark, Scale};

    fn dense(rows: usize, k: usize) -> DenseMatrix {
        DenseMatrix::from_fn(rows, k, |r, c| ((r + c) % 7) as f32 * 0.25)
    }

    #[test]
    fn spmm_output_matches_reference() {
        let a = Benchmark::Del.generate(Scale::Tiny);
        let b = dense(a.num_cols(), 32);
        let model = CpuModel::new(CpuConfig::small_test(4));
        let run = model.run_spmm(&a, &b);
        assert!(reference::dense_close(
            &run.output,
            &reference::spmm(&a, &b),
            1e-5
        ));
        assert!(run.report.kernel_ns > 0.0);
        assert!(run.report.dram_accesses > 0);
    }

    #[test]
    fn sddmm_output_matches_reference() {
        let a = Benchmark::Pap.generate(Scale::Tiny);
        let b = dense(a.num_rows(), 32);
        let c_t = dense(a.num_cols(), 32);
        let model = CpuModel::new(CpuConfig::small_test(4));
        let run = model.run_sddmm(&a, &b, &c_t);
        let gold = reference::sddmm(&a, &b, &c_t);
        assert!(reference::first_mismatch(&run.output, &gold, 1e-5).is_none());
    }

    #[test]
    fn more_cores_run_faster() {
        let a = Benchmark::Pac.generate(Scale::Tiny);
        let b = dense(a.num_cols(), 32);
        let slow = CpuModel::new(CpuConfig::small_test(1)).run_spmm(&a, &b);
        let fast = CpuModel::new(CpuConfig::small_test(8)).run_spmm(&a, &b);
        assert!(
            fast.report.kernel_ns * 2.0 < slow.report.kernel_ns,
            "8 cores {} vs 1 core {}",
            fast.report.kernel_ns,
            slow.report.kernel_ns
        );
    }

    #[test]
    fn larger_k_takes_longer() {
        let a = Benchmark::Del.generate(Scale::Tiny);
        let model = CpuModel::new(CpuConfig::small_test(4));
        let t32 = model
            .run_spmm(&a, &dense(a.num_cols(), 32))
            .report
            .kernel_ns;
        let t128 = model
            .run_spmm(&a, &dense(a.num_cols(), 128))
            .report
            .kernel_ns;
        assert!(t128 > t32 * 1.5);
    }

    #[test]
    fn partition_balances_nnz() {
        let a = Benchmark::Kro.generate(Scale::Tiny);
        let csr = a.to_csr();
        let ranges = CpuModel::partition(&csr, 4);
        assert!(ranges.len() <= 4);
        let covered: usize = ranges.iter().map(|&(s, e)| e - s).sum();
        assert_eq!(covered, csr.num_rows());
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn empty_matrix_is_instant() {
        let a = Coo::from_triplets(64, 64, &[]).unwrap();
        let b = dense(64, 32);
        let run = CpuModel::new(CpuConfig::small_test(2)).run_spmm(&a, &b);
        assert_eq!(run.report.dram_accesses, 0);
    }

    #[test]
    fn mlp_improves_latency_tolerance() {
        let a = Benchmark::Roa.generate(Scale::Tiny);
        let b = dense(a.num_cols(), 32);
        let narrow = CpuModel::new(CpuConfig {
            mlp: 1,
            ..CpuConfig::small_test(2)
        })
        .run_spmm(&a, &b);
        let wide = CpuModel::new(CpuConfig {
            mlp: 16,
            ..CpuConfig::small_test(2)
        })
        .run_spmm(&a, &b);
        assert!(
            wide.report.kernel_ns < narrow.report.kernel_ns,
            "wide {} vs narrow {}",
            wide.report.kernel_ns,
            narrow.report.kernel_ns
        );
    }
}
