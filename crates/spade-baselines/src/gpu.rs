//! Roofline model of the baseline NVIDIA V100 GPU (§6.A).
//!
//! SpMM and SDDMM on a V100 are bandwidth-bound: the paper's own analysis
//! attributes the GPU's advantage on low-RU matrices entirely to its
//! 900 GB/s achievable memory bandwidth (vs SPADE's 304 GB/s observed).
//! The model therefore simulates the kernel's DRAM traffic through the
//! GPU's 6 MiB L2 (tag-only) and converts bytes to time at the achievable
//! bandwidth, with a compute roofline as the alternative bound. The paper
//! also notes matrices that do not fit the 16 GiB device memory (DEL and
//! ROA at K = 128) — the model reports that condition so callers can apply
//! the paper's convention (GPU speedup = 1 over the CPU).

use spade_matrix::{reference, Coo, DenseMatrix, FLOATS_PER_LINE};
use spade_sim::{Cache, CacheConfig};

use crate::BaselineReport;

/// V100 model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Achievable global-memory bandwidth in GB/s (900 for a V100).
    pub bandwidth_gbps: f64,
    /// Fraction of the achievable bandwidth the sparse kernel sustains.
    /// cuSPARSE CSR SpMM reaches roughly 40–50 % of STREAM bandwidth on
    /// irregular matrices (imperfect coalescing, index overhead).
    pub kernel_efficiency: f64,
    /// L2 cache size in bytes (6 MiB on a V100).
    pub l2_bytes: usize,
    /// Device memory capacity in bytes (16 GiB on the paper's V100).
    pub memory_bytes: u64,
    /// Peak single-precision throughput in GFLOP/s (compute roofline).
    pub peak_gflops: f64,
    /// Fixed kernel-launch overhead in nanoseconds.
    pub launch_ns: f64,
}

impl GpuConfig {
    /// The paper's server-class V100.
    pub fn v100() -> Self {
        GpuConfig {
            bandwidth_gbps: 900.0,
            kernel_efficiency: 0.45,
            l2_bytes: 6 * 1024 * 1024,
            memory_bytes: 16 << 30,
            peak_gflops: 14_000.0,
            launch_ns: 5_000.0,
        }
    }

    /// A proportionally scaled device: bandwidth, L2 and capacity shrink
    /// by `1/factor`. Used when the benchmark suite itself is scaled down,
    /// so capacity effects (e.g. DEL/ROA at K = 128 not fitting) appear at
    /// the same relative sizes as in the paper.
    pub fn scaled_down(&self, factor: f64) -> Self {
        GpuConfig {
            bandwidth_gbps: self.bandwidth_gbps / factor,
            l2_bytes: ((self.l2_bytes as f64 / factor) as usize).max(64 * 1024),
            memory_bytes: (self.memory_bytes as f64 / factor) as u64,
            peak_gflops: self.peak_gflops / factor,
            ..*self
        }
    }
}

/// Result of one modeled GPU kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuRun {
    /// Functional output.
    pub output: DenseMatrix,
    /// Timing summary (kernel only, no transfers).
    pub report: BaselineReport,
    /// Whether the working set fits device memory; when `false`, the
    /// paper's convention is a GPU speedup of 1× over the CPU.
    pub fits_memory: bool,
}

/// Result of one modeled GPU SDDMM.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSddmmRun {
    /// Output values in the input's non-zero order.
    pub output: Vec<f32>,
    /// Timing summary.
    pub report: BaselineReport,
    /// Whether the working set fits device memory.
    pub fits_memory: bool,
}

/// The modeled GPU.
#[derive(Debug, Clone)]
pub struct GpuModel {
    config: GpuConfig,
}

impl GpuModel {
    /// Creates the model.
    pub fn new(config: GpuConfig) -> Self {
        GpuModel { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Bytes of the SpMM working set on the device.
    pub fn spmm_footprint(a: &Coo, b: &DenseMatrix) -> u64 {
        let d_bytes = a.num_rows() as u64 * b.row_stride() as u64 * 4;
        a.to_csr().size_bytes() as u64 + b.size_bytes() as u64 + d_bytes
    }

    /// Simulates the DRAM traffic of a CSR-order sweep through a tag-only
    /// L2, returning the number of DRAM line transfers.
    fn traffic_lines(&self, a: &Coo, k_lines: u64, sddmm: bool) -> u64 {
        let mut l2 = Cache::new(CacheConfig::new(self.config.l2_bytes, 16));
        let mut dram_lines: u64 = 0;
        // Address regions (line granular).
        let nnz = a.nnz() as u64;
        let sparse_lines = (nnz * 8).div_ceil(64); // compressed index+val pairs
        let b_base = sparse_lines + 64;
        let rows = a.num_rows() as u64;
        let cols = a.num_cols() as u64;
        let c_base = b_base + cols.max(rows) * k_lines + 64;
        let out_base = c_base + cols.max(rows) * k_lines + 64;

        // Streamed sparse data: always DRAM (too large to cache, no reuse).
        dram_lines += sparse_lines;

        let mut access = |l2: &mut Cache, line: u64, write: bool| {
            if !l2.access(line, write).is_hit() {
                dram_lines += 1;
            }
        };

        let mut current_row = u32::MAX;
        for (r, c, _) in a.iter() {
            if sddmm {
                // B[r] row: reused across the row's non-zeros (registers),
                // charged once per row.
                if r != current_row {
                    current_row = r;
                    for l in 0..k_lines {
                        access(&mut l2, b_base + r as u64 * k_lines + l, false);
                    }
                }
                for l in 0..k_lines {
                    access(&mut l2, c_base + c as u64 * k_lines + l, false);
                }
            } else {
                // SpMM: B[c] through L2; D row writes once per row.
                for l in 0..k_lines {
                    access(&mut l2, b_base + c as u64 * k_lines + l, false);
                }
                if r != current_row {
                    current_row = r;
                    for l in 0..k_lines {
                        access(&mut l2, out_base + r as u64 * k_lines + l, true);
                    }
                }
            }
        }
        if sddmm {
            // Output values stream out once.
            dram_lines += (nnz * 4).div_ceil(64);
        }
        dram_lines
    }

    fn kernel_time_ns(&self, dram_lines: u64, flops: f64) -> f64 {
        let bytes = dram_lines as f64 * 64.0;
        let mem_ns = bytes / (self.config.bandwidth_gbps * self.config.kernel_efficiency);
        let compute_ns = flops / self.config.peak_gflops;
        mem_ns.max(compute_ns) + self.config.launch_ns
    }

    /// Models SpMM (`D = A × B`).
    ///
    /// # Panics
    ///
    /// Panics if `B` has fewer rows than `A` has columns.
    pub fn run_spmm(&self, a: &Coo, b: &DenseMatrix) -> GpuRun {
        let k_lines = b.num_cols().div_ceil(FLOATS_PER_LINE) as u64;
        let lines = self.traffic_lines(a, k_lines, false);
        let flops = 2.0 * a.nnz() as f64 * b.num_cols() as f64;
        let kernel_ns = self.kernel_time_ns(lines, flops);
        GpuRun {
            output: reference::spmm(a, b),
            report: BaselineReport::from_traffic(lines, kernel_ns, self.config.bandwidth_gbps),
            fits_memory: Self::spmm_footprint(a, b) <= self.config.memory_bytes,
        }
    }

    /// Models SDDMM (`D = A ∘ (B × Cᵀ)`).
    ///
    /// # Panics
    ///
    /// Panics on operand shape mismatches (see [`reference::sddmm`]).
    pub fn run_sddmm(&self, a: &Coo, b: &DenseMatrix, c_t: &DenseMatrix) -> GpuSddmmRun {
        let k_lines = b.num_cols().div_ceil(FLOATS_PER_LINE) as u64;
        let lines = self.traffic_lines(a, k_lines, true);
        let flops = 2.0 * a.nnz() as f64 * b.num_cols() as f64;
        let kernel_ns = self.kernel_time_ns(lines, flops);
        let footprint = a.to_csr().size_bytes() as u64
            + b.size_bytes() as u64
            + c_t.size_bytes() as u64
            + a.nnz() as u64 * 4;
        GpuSddmmRun {
            output: reference::sddmm(a, b, c_t),
            report: BaselineReport::from_traffic(lines, kernel_ns, self.config.bandwidth_gbps),
            fits_memory: footprint <= self.config.memory_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_matrix::generators::{Benchmark, Scale};

    fn dense(rows: usize, k: usize) -> DenseMatrix {
        DenseMatrix::from_fn(rows, k, |r, c| ((r + 2 * c) % 9) as f32)
    }

    #[test]
    fn spmm_output_is_reference() {
        let a = Benchmark::Del.generate(Scale::Tiny);
        let b = dense(a.num_cols(), 32);
        let run = GpuModel::new(GpuConfig::v100()).run_spmm(&a, &b);
        assert!(reference::dense_close(
            &run.output,
            &reference::spmm(&a, &b),
            0.0
        ));
        assert!(run.fits_memory);
        assert!(run.report.kernel_ns > 0.0);
    }

    #[test]
    fn reuse_heavy_matrix_moves_less_data() {
        // MYC (dense rows, huge reuse) vs ROA (road, no reuse): DRAM bytes
        // per nnz must be far lower for MYC.
        let myc = Benchmark::Myc.generate(Scale::Tiny);
        let roa = Benchmark::Roa.generate(Scale::Tiny);
        let gpu = GpuModel::new(GpuConfig::v100());
        let m = gpu.run_spmm(&myc, &dense(myc.num_cols(), 32));
        let r = gpu.run_spmm(&roa, &dense(roa.num_cols(), 32));
        let m_bpn = m.report.dram_bytes as f64 / myc.nnz() as f64;
        let r_bpn = r.report.dram_bytes as f64 / roa.nnz() as f64;
        assert!(m_bpn * 2.0 < r_bpn, "MYC {m_bpn} vs ROA {r_bpn}");
    }

    #[test]
    fn capacity_limit_is_detected() {
        let a = Benchmark::Del.generate(Scale::Tiny);
        let b = dense(a.num_cols(), 128);
        let tiny_gpu = GpuModel::new(GpuConfig {
            memory_bytes: 1 << 20, // 1 MiB device
            ..GpuConfig::v100()
        });
        let run = tiny_gpu.run_spmm(&a, &b);
        assert!(!run.fits_memory);
    }

    #[test]
    fn sddmm_output_is_reference() {
        let a = Benchmark::Pap.generate(Scale::Tiny);
        let b = dense(a.num_rows(), 32);
        let c_t = dense(a.num_cols(), 32);
        let run = GpuModel::new(GpuConfig::v100()).run_sddmm(&a, &b, &c_t);
        let gold = reference::sddmm(&a, &b, &c_t);
        assert!(reference::first_mismatch(&run.output, &gold, 0.0).is_none());
    }

    #[test]
    fn scaled_down_preserves_ratios() {
        let cfg = GpuConfig::v100().scaled_down(100.0);
        assert!((cfg.bandwidth_gbps - 9.0).abs() < 1e-9);
        assert!(cfg.memory_bytes < GpuConfig::v100().memory_bytes);
    }

    #[test]
    fn launch_overhead_bounds_small_kernels() {
        let a = Coo::from_triplets(16, 16, &[(0, 0, 1.0)]).unwrap();
        let b = dense(16, 16);
        let run = GpuModel::new(GpuConfig::v100()).run_spmm(&a, &b);
        assert!(run.report.kernel_ns >= 5_000.0);
    }
}
