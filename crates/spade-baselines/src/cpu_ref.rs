//! Real multi-threaded CPU kernels.
//!
//! These run on the host machine and serve two purposes: a fast functional
//! oracle for large inputs, and a genuine hardware reference point (the
//! paper's CPU baseline is real silicon). SpMM parallelizes over row
//! chunks — each output row is owned by exactly one thread, the same
//! race-freedom argument as SPADE's row-panel constraint (§4.3).

use std::time::Instant;

use spade_matrix::{Coo, Csr, DenseMatrix};

/// Output and wall-clock time of a threaded kernel run.
#[derive(Debug, Clone, PartialEq)]
pub struct RefRun<T> {
    /// The computed output.
    pub output: T,
    /// Host wall-clock time in nanoseconds.
    pub wall_ns: f64,
}

/// Multi-threaded CSR SpMM on the host CPU.
///
/// # Panics
///
/// Panics if `B` has fewer rows than `A` has columns or `threads == 0`.
pub fn spmm_threaded(a: &Coo, b: &DenseMatrix, threads: usize) -> RefRun<DenseMatrix> {
    assert!(threads > 0, "need at least one thread");
    assert!(b.num_rows() >= a.num_cols(), "B too small for A");
    let csr = a.to_csr();
    let k = b.num_cols();
    let mut d = DenseMatrix::zeros(a.num_rows(), k);
    let stride = d.row_stride();
    let start = Instant::now();

    // Partition rows into contiguous nnz-balanced chunks and hand each
    // thread a disjoint slice of D's backing storage.
    let ranges = balance(&csr, threads);
    let mut slices: Vec<&mut [f32]> = Vec::with_capacity(ranges.len());
    let mut rest = d.as_mut_slice();
    for &(s, e) in &ranges {
        let (head, tail) = rest.split_at_mut((e - s) * stride);
        slices.push(head);
        rest = tail;
    }

    std::thread::scope(|scope| {
        for (&(row_start, row_end), chunk) in ranges.iter().zip(slices) {
            let csr = &csr;
            scope.spawn(move || {
                for row in row_start..row_end {
                    let (cols, vals) = csr.row_entries(row);
                    let off = (row - row_start) * stride;
                    let out = &mut chunk[off..off + k];
                    for (&c, &v) in cols.iter().zip(vals) {
                        let src = b.row(c as usize);
                        for (o, i) in out.iter_mut().zip(src) {
                            *o += v * i;
                        }
                    }
                }
            });
        }
    });

    RefRun {
        output: d,
        wall_ns: start.elapsed().as_nanos() as f64,
    }
}

/// Multi-threaded SDDMM on the host CPU. Output values follow the
/// non-zero order of `a`.
///
/// # Panics
///
/// Panics on operand shape mismatches or `threads == 0`.
pub fn sddmm_threaded(
    a: &Coo,
    b: &DenseMatrix,
    c_t: &DenseMatrix,
    threads: usize,
) -> RefRun<Vec<f32>> {
    assert!(threads > 0, "need at least one thread");
    assert!(b.num_rows() >= a.num_rows() && c_t.num_rows() >= a.num_cols());
    assert_eq!(b.num_cols(), c_t.num_cols());
    let csr = a.to_csr();
    let mut out = vec![0f32; a.nnz()];
    let start = Instant::now();

    let ranges = balance(&csr, threads);
    // Split the output by nnz ranges implied by the row ranges.
    let mut slices: Vec<&mut [f32]> = Vec::with_capacity(ranges.len());
    {
        let mut rest = out.as_mut_slice();
        for &(s, e) in &ranges {
            let take = csr.row_ptr()[e] - csr.row_ptr()[s];
            let (head, tail) = rest.split_at_mut(take);
            slices.push(head);
            rest = tail;
        }
    }

    std::thread::scope(|scope| {
        for (&(row_start, row_end), chunk) in ranges.iter().zip(slices) {
            let csr = &csr;
            scope.spawn(move || {
                let base = csr.row_ptr()[row_start];
                for row in row_start..row_end {
                    let (cols, vals) = csr.row_entries(row);
                    let x = b.row(row);
                    let offset = csr.row_ptr()[row] - base;
                    for (j, (&c, &v)) in cols.iter().zip(vals).enumerate() {
                        let y = c_t.row(c as usize);
                        let dot: f32 = x.iter().zip(y).map(|(p, q)| p * q).sum();
                        chunk[offset + j] = v * dot;
                    }
                }
            });
        }
    });

    RefRun {
        output: out,
        wall_ns: start.elapsed().as_nanos() as f64,
    }
}

/// Contiguous nnz-balanced row partition.
fn balance(csr: &Csr, parts: usize) -> Vec<(usize, usize)> {
    let total = csr.nnz().max(1);
    let per_part = total.div_ceil(parts);
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    for r in 0..csr.num_rows() {
        acc += csr.row_nnz(r);
        if acc >= per_part {
            ranges.push((start, r + 1));
            start = r + 1;
            acc = 0;
        }
    }
    if start < csr.num_rows() {
        ranges.push((start, csr.num_rows()));
    }
    if ranges.is_empty() {
        ranges.push((0, csr.num_rows()));
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_matrix::generators::{Benchmark, Scale};
    use spade_matrix::reference;

    fn dense(rows: usize, k: usize) -> DenseMatrix {
        DenseMatrix::from_fn(rows, k, |r, c| ((r * 3 + c) % 11) as f32 * 0.125)
    }

    #[test]
    fn threaded_spmm_matches_reference() {
        let a = Benchmark::Kro.generate(Scale::Tiny);
        let b = dense(a.num_cols(), 32);
        let run = spmm_threaded(&a, &b, 4);
        assert!(reference::dense_close(
            &run.output,
            &reference::spmm(&a, &b),
            1e-4
        ));
        assert!(run.wall_ns > 0.0);
    }

    #[test]
    fn threaded_spmm_single_thread_matches() {
        let a = Benchmark::Del.generate(Scale::Tiny);
        let b = dense(a.num_cols(), 32);
        let run = spmm_threaded(&a, &b, 1);
        assert!(reference::dense_close(
            &run.output,
            &reference::spmm(&a, &b),
            1e-4
        ));
    }

    #[test]
    fn threaded_sddmm_matches_reference() {
        let a = Benchmark::Pap.generate(Scale::Tiny);
        let b = dense(a.num_rows(), 32);
        let c_t = dense(a.num_cols(), 32);
        let run = sddmm_threaded(&a, &b, &c_t, 4);
        let gold = reference::sddmm(&a, &b, &c_t);
        assert!(reference::first_mismatch(&run.output, &gold, 1e-4).is_none());
    }

    #[test]
    fn empty_matrix_is_handled() {
        let a = Coo::from_triplets(16, 16, &[]).unwrap();
        let b = dense(16, 32);
        let run = spmm_threaded(&a, &b, 2);
        assert_eq!(run.output.num_rows(), 16);
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let a = Coo::from_triplets(4, 4, &[(0, 0, 1.0), (3, 3, 2.0)]).unwrap();
        let b = dense(4, 16);
        let run = spmm_threaded(&a, &b, 16);
        assert!(reference::dense_close(
            &run.output,
            &reference::spmm(&a, &b),
            1e-5
        ));
    }
}
