//! Baseline machines for the SPADE evaluation (§6).
//!
//! The paper compares the simulated SPADE accelerator against three
//! machines:
//!
//! * a real dual-socket **Intel Ice Lake** server (56 cores) running MKL
//!   SpMM / TACO SDDMM — modeled here as a timing simulation of 56
//!   out-of-order cores on the same memory-hierarchy substrate SPADE uses
//!   ([`cpu`]), with actual multi-threaded kernels as the functional oracle
//!   ([`cpu_ref`]);
//! * a real **NVIDIA V100** running cuSPARSE/dgSPARSE — modeled as a
//!   bandwidth-roofline with an L2 reuse filter ([`gpu`]), since SpMM and
//!   SDDMM are bandwidth-bound on GPUs;
//! * the **Sextans** FPGA accelerator, idealized exactly as §6.A describes:
//!   memory-time-only, 8-byte compressed tuples, scaled-up scratchpads and
//!   50 % peak bandwidth utilization ([`sextans`]).
//!
//! [`transfer`] models the host↔device PCIe traffic and address-mapping
//! overhead that Figure 2 shows dominating single-iteration GPU execution —
//! the overhead SPADE eliminates by construction.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpu;
pub mod cpu_ref;
pub mod gpu;
pub mod sextans;
pub mod transfer;

/// Timing summary shared by all baseline models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineReport {
    /// Kernel execution time in nanoseconds (excludes any host↔device
    /// transfer).
    pub kernel_ns: f64,
    /// DRAM lines touched (reads + writes).
    pub dram_accesses: u64,
    /// DRAM bytes moved.
    pub dram_bytes: u64,
    /// Achieved DRAM bandwidth in GB/s during the kernel.
    pub achieved_gbps: f64,
    /// Fraction of the machine's peak bandwidth achieved.
    pub utilization: f64,
}

impl BaselineReport {
    /// Builds a report from traffic and time.
    pub fn from_traffic(dram_accesses: u64, kernel_ns: f64, peak_gbps: f64) -> Self {
        let dram_bytes = dram_accesses * 64;
        let achieved = if kernel_ns > 0.0 {
            dram_bytes as f64 / kernel_ns
        } else {
            0.0
        };
        BaselineReport {
            kernel_ns,
            dram_accesses,
            dram_bytes,
            achieved_gbps: achieved,
            utilization: if peak_gbps > 0.0 {
                achieved / peak_gbps
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_derives_bandwidth() {
        // 1000 lines in 64 µs: 64 kB / 64000 ns = 1 GB/s.
        let r = BaselineReport::from_traffic(1000, 64_000.0, 10.0);
        assert_eq!(r.dram_bytes, 64_000);
        assert!((r.achieved_gbps - 1.0).abs() < 1e-9);
        assert!((r.utilization - 0.1).abs() < 1e-9);
    }

    #[test]
    fn zero_time_is_safe() {
        let r = BaselineReport::from_traffic(10, 0.0, 10.0);
        assert_eq!(r.achieved_gbps, 0.0);
    }
}
