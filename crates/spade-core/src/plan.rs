//! Execution plans: the flexibility knobs of SPADE (§2.2, §7.C).
//!
//! A plan fixes everything a programmer or compiler decides before a
//! SPADE-mode section: the tile row/column panel sizes, the cache-bypass
//! strategies of the two dense matrices, and whether scheduling barriers
//! order tile execution across PEs. `SPADE Base` uses no knobs; `SPADE Opt`
//! is, per matrix, the best-performing plan from the Table 3 search space.

use spade_matrix::{Coo, TilingConfig};

use crate::{CMatrixPolicy, RMatrixPolicy, SpadeError};

/// Whether and how the CPE inserts scheduling barriers (Figure 5b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarrierPolicy {
    /// Tiles execute in row-panel order per PE; no cross-PE ordering.
    None,
    /// A barrier after every group of `group` column panels: all PEs
    /// finish a group before any starts the next, keeping the concurrent
    /// cMatrix working set bounded.
    EveryColumnPanels {
        /// Column panels per barrier group (≥ 1).
        group: u32,
    },
}

impl BarrierPolicy {
    /// Barrier after every single column panel.
    pub fn per_column_panel() -> Self {
        BarrierPolicy::EveryColumnPanels { group: 1 }
    }

    /// `true` if barriers are inserted.
    pub fn is_enabled(&self) -> bool {
        matches!(self, BarrierPolicy::EveryColumnPanels { .. })
    }
}

/// A complete setting of SPADE's flexibility knobs for one kernel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecutionPlan {
    /// Sparse-matrix tiling (row/column panel sizes).
    pub tiling: TilingConfig,
    /// rMatrix cache policy.
    pub r_policy: RMatrixPolicy,
    /// cMatrix cache policy.
    pub c_policy: CMatrixPolicy,
    /// Scheduling-barrier policy.
    pub barriers: BarrierPolicy,
}

impl ExecutionPlan {
    /// The SPADE Base plan for SpMM (§7.A): 256-row panels, one column
    /// panel spanning the whole matrix, no bypassing, no barriers.
    ///
    /// # Errors
    ///
    /// Returns [`SpadeError::Matrix`] if the matrix has zero columns.
    pub fn spmm_base(a: &Coo) -> Result<Self, SpadeError> {
        Ok(ExecutionPlan {
            tiling: TilingConfig::new(256, a.num_cols().max(1))?,
            r_policy: RMatrixPolicy::Cache,
            c_policy: CMatrixPolicy::Cache,
            barriers: BarrierPolicy::None,
        })
    }

    /// The SPADE Base plan for SDDMM — identical knob settings.
    ///
    /// # Errors
    ///
    /// Returns [`SpadeError::Matrix`] if the matrix has zero columns.
    pub fn sddmm_base(a: &Coo) -> Result<Self, SpadeError> {
        Self::spmm_base(a)
    }

    /// A plan with explicit knob settings.
    ///
    /// # Errors
    ///
    /// Returns [`SpadeError::Matrix`] for invalid panel sizes.
    pub fn with_knobs(
        row_panel: usize,
        col_panel: usize,
        r_policy: RMatrixPolicy,
        c_policy: CMatrixPolicy,
        barriers: BarrierPolicy,
    ) -> Result<Self, SpadeError> {
        Ok(ExecutionPlan {
            tiling: TilingConfig::new(row_panel, col_panel)?,
            r_policy,
            c_policy,
            barriers,
        })
    }
}

/// The SPADE Opt search space of Table 3 for a given dense row size `K`.
///
/// Row panels {64, 256, 1024}; column panels {8192, 524288, all} for K=32
/// and {2048, 131072, all} for K=128; rMatrix bypass on/off; barriers only
/// for the medium column panel. For matrices with very few rows (MYC) the
/// caller may add a row panel of 16 (§7.A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSearchSpace {
    /// Row panel sizes to try.
    pub row_panels: Vec<usize>,
    /// Column panel sizes to try; `usize::MAX` means "all columns".
    pub col_panels: Vec<usize>,
    /// rMatrix policies to try.
    pub r_policies: Vec<RMatrixPolicy>,
    /// Column panel size at which barriers are also tried.
    pub barrier_col_panel: usize,
}

impl PlanSearchSpace {
    /// The Table 3 space for dense row size `k`.
    pub fn table3(k: usize) -> Self {
        let (mid, small) = if k >= 128 {
            (131_072, 2_048)
        } else {
            (524_288, 8_192)
        };
        PlanSearchSpace {
            row_panels: vec![64, 256, 1024],
            col_panels: vec![small, mid, usize::MAX],
            r_policies: vec![RMatrixPolicy::Cache, RMatrixPolicy::BypassVictim],
            barrier_col_panel: mid,
        }
    }

    /// A reduced space for quick experiments: 2 row panels × 2 column
    /// panels × 2 rMatrix policies (+ barrier variants).
    pub fn quick(k: usize) -> Self {
        let mut s = Self::table3(k);
        s.row_panels = vec![64, 1024];
        s.col_panels = vec![s.col_panels[0], usize::MAX];
        s.barrier_col_panel = s.col_panels[0];
        s
    }

    /// Adds a row panel size (e.g. 16 for MYC's load balance, §7.A).
    pub fn with_row_panel(mut self, rp: usize) -> Self {
        if !self.row_panels.contains(&rp) {
            self.row_panels.insert(0, rp);
        }
        self
    }

    /// Enumerates every plan in the space for matrix `a`.
    ///
    /// Column panel sizes are clamped to the matrix width, and duplicate
    /// plans (after clamping) are removed.
    pub fn enumerate(&self, a: &Coo) -> Vec<ExecutionPlan> {
        let mut plans = Vec::new();
        let ncols = a.num_cols().max(1);
        for &rp in &self.row_panels {
            for &cp_raw in &self.col_panels {
                let cp = cp_raw.min(ncols);
                for &rpol in &self.r_policies {
                    let barrier_options: &[BarrierPolicy] =
                        if cp_raw == self.barrier_col_panel && cp < ncols {
                            &[
                                BarrierPolicy::None,
                                BarrierPolicy::EveryColumnPanels { group: 1 },
                            ]
                        } else {
                            &[BarrierPolicy::None]
                        };
                    for &b in barrier_options {
                        if let Ok(plan) =
                            ExecutionPlan::with_knobs(rp, cp, rpol, CMatrixPolicy::Cache, b)
                        {
                            plans.push(plan);
                        }
                    }
                }
            }
        }
        plans.sort_by_key(|p| {
            (
                p.tiling.row_panel_size,
                p.tiling.col_panel_size,
                p.r_policy as u8 as usize,
                p.barriers.is_enabled() as usize,
            )
        });
        plans.dedup();
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_matrix::Coo;

    fn matrix(cols: usize) -> Coo {
        Coo::from_triplets(cols, cols, &[(0, 0, 1.0)]).unwrap()
    }

    #[test]
    fn base_plan_spans_all_columns() {
        let a = matrix(1000);
        let p = ExecutionPlan::spmm_base(&a).unwrap();
        assert_eq!(p.tiling.row_panel_size, 256);
        assert_eq!(p.tiling.col_panel_size, 1000);
        assert!(!p.barriers.is_enabled());
        assert_eq!(p.r_policy, RMatrixPolicy::Cache);
    }

    #[test]
    fn table3_space_depends_on_k() {
        let s32 = PlanSearchSpace::table3(32);
        let s128 = PlanSearchSpace::table3(128);
        assert!(s32.col_panels.contains(&524_288));
        assert!(s128.col_panels.contains(&131_072));
    }

    #[test]
    fn enumerate_clamps_and_dedups() {
        // A small matrix: all column-panel settings clamp to the same
        // width, so plans collapse.
        let a = matrix(100);
        let plans = PlanSearchSpace::table3(32).enumerate(&a);
        // 3 RPs × 1 effective CP × 2 rMatrix policies (no barriers since
        // cp == ncols).
        assert_eq!(plans.len(), 6);
    }

    #[test]
    fn enumerate_includes_barrier_variants_for_medium_cp() {
        let a = matrix(2_000_000);
        let plans = PlanSearchSpace::table3(32).enumerate(&a);
        let with_barriers = plans.iter().filter(|p| p.barriers.is_enabled()).count();
        // Barriers only for the medium column panel: 3 RPs × 2 policies.
        assert_eq!(with_barriers, 6);
        // Total: 3 RP × 3 CP × 2 pol + 6 barrier variants = 24.
        assert_eq!(plans.len(), 24);
    }

    #[test]
    fn with_row_panel_prepends_once() {
        let s = PlanSearchSpace::table3(32)
            .with_row_panel(16)
            .with_row_panel(16);
        assert_eq!(s.row_panels, vec![16, 64, 256, 1024]);
    }

    #[test]
    fn quick_space_is_smaller() {
        let a = matrix(2_000_000);
        let quick = PlanSearchSpace::quick(32).enumerate(&a);
        let full = PlanSearchSpace::table3(32).enumerate(&a);
        assert!(quick.len() < full.len());
        assert!(!quick.is_empty());
    }

    #[test]
    fn barrier_policy_helpers() {
        assert!(BarrierPolicy::per_column_panel().is_enabled());
        assert!(!BarrierPolicy::None.is_enabled());
    }
}
