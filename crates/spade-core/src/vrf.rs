//! The vector register file (VRF) and its tag CAM (§5.1 ④).
//!
//! Each vector register holds one cache line. The vOp generator tags
//! registers with the memory line they cache; before allocating, it checks
//! the tag CAM so that a line already resident (from a previous vOp) is
//! reused without a memory request. A status RAM tracks dirty/used bits,
//! and the write-back manager drains dirty registers between the
//! 25 % / 15 % occupancy thresholds (§5.1 ⑨).

use std::collections::HashMap;

use spade_sim::{Cycle, DataClass, Line};

/// Index of a vector register.
pub type VrId = usize;

/// Load state of one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VrState {
    /// No valid tag.
    Invalid,
    /// A fill is in flight; data arrives at the cycle payload.
    Loading {
        /// Completion time of the fill.
        ready_at: Cycle,
    },
    /// Data resident.
    Ready,
}

/// One vector register's bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Vr {
    tag: Line,
    state: VrState,
    dirty: bool,
    /// Pending vOps referencing this register (operand or destination).
    refs: u32,
    /// Completion time of the last vOp writing this register — the RAW
    /// chain for accumulations into the same line.
    last_write_done: Cycle,
    /// LRU stamp for clean-eviction choice.
    last_use: u64,
    class: DataClass,
}

const NO_TAG: Line = Line::MAX;

impl Vr {
    fn empty() -> Self {
        Vr {
            tag: NO_TAG,
            state: VrState::Invalid,
            dirty: false,
            refs: 0,
            last_write_done: 0,
            last_use: 0,
            class: DataClass::RMatrix,
        }
    }
}

/// Result of a [`Vrf::lookup_or_alloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocOutcome {
    /// The line was already tagged in a register — no memory request
    /// needed.
    Reused(VrId),
    /// A register was allocated; the caller must issue the fill (or mark
    /// the register ready for write-only destinations).
    Allocated(VrId),
    /// No register available: all are dirty, loading or referenced.
    Stall,
}

/// The vector register file.
///
/// # Example
///
/// ```
/// use spade_core::vrf::{AllocOutcome, Vrf};
/// use spade_sim::DataClass;
///
/// let mut vrf = Vrf::new(4);
/// let a = vrf.lookup_or_alloc(100, DataClass::CMatrix);
/// assert!(matches!(a, AllocOutcome::Allocated(_)));
/// let b = vrf.lookup_or_alloc(100, DataClass::CMatrix);
/// assert!(matches!(b, AllocOutcome::Reused(_)));
/// ```
#[derive(Debug, Clone)]
pub struct Vrf {
    regs: Vec<Vr>,
    cam: HashMap<Line, VrId>,
    dirty_count: usize,
    tick: u64,
    wb_cursor: usize,
}

impl Vrf {
    /// Creates a VRF with `num_regs` registers.
    ///
    /// # Panics
    ///
    /// Panics if `num_regs` is zero.
    pub fn new(num_regs: usize) -> Self {
        assert!(num_regs > 0, "the VRF needs at least one register");
        Vrf {
            regs: vec![Vr::empty(); num_regs],
            cam: HashMap::with_capacity(num_regs * 2),
            dirty_count: 0,
            tick: 0,
            wb_cursor: 0,
        }
    }

    /// Total registers.
    pub fn num_regs(&self) -> usize {
        self.regs.len()
    }

    /// Currently dirty registers.
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// Dirty fraction in `[0, 1]`.
    pub fn dirty_fraction(&self) -> f64 {
        self.dirty_count as f64 / self.regs.len() as f64
    }

    /// Finds `line` in the tag CAM or allocates a register for it.
    ///
    /// Allocation prefers invalid registers, then the least-recently-used
    /// clean, unreferenced, resident register (silently evicted — clean
    /// data needs no write-back). Returns [`AllocOutcome::Stall`] when
    /// nothing can be evicted.
    pub fn lookup_or_alloc(&mut self, line: Line, class: DataClass) -> AllocOutcome {
        self.tick += 1;
        if let Some(&id) = self.cam.get(&line) {
            self.regs[id].last_use = self.tick;
            return AllocOutcome::Reused(id);
        }
        // Invalid register?
        let slot = self.regs.iter().position(|r| r.state == VrState::Invalid);
        let slot = slot.or_else(|| {
            // LRU clean eviction candidate.
            self.regs
                .iter()
                .enumerate()
                .filter(|(_, r)| r.state == VrState::Ready && !r.dirty && r.refs == 0)
                .min_by_key(|(_, r)| r.last_use)
                .map(|(i, _)| i)
        });
        let Some(id) = slot else {
            return AllocOutcome::Stall;
        };
        if self.regs[id].tag != NO_TAG {
            self.cam.remove(&self.regs[id].tag);
        }
        self.regs[id] = Vr {
            tag: line,
            state: VrState::Loading {
                ready_at: Cycle::MAX,
            },
            dirty: false,
            refs: 0,
            last_write_done: 0,
            last_use: self.tick,
            class,
        };
        self.cam.insert(line, id);
        AllocOutcome::Allocated(id)
    }

    /// Marks a fill in flight, completing at `ready_at`.
    pub fn set_loading(&mut self, id: VrId, ready_at: Cycle) {
        self.regs[id].state = VrState::Loading { ready_at };
    }

    /// Marks the register resident immediately (write-only destinations:
    /// SDDMM output lines are fully produced, never read, §5.1).
    pub fn set_ready(&mut self, id: VrId) {
        self.regs[id].state = VrState::Ready;
    }

    /// Promotes registers whose fills have arrived by `now`.
    pub fn complete_loads(&mut self, now: Cycle) {
        for r in &mut self.regs {
            if let VrState::Loading { ready_at } = r.state {
                if ready_at <= now {
                    r.state = VrState::Ready;
                }
            }
        }
    }

    /// The cycle at which `id` has its data (now or in the future);
    /// `Cycle::MAX` while invalid.
    pub fn ready_at(&self, id: VrId) -> Cycle {
        match self.regs[id].state {
            VrState::Invalid => Cycle::MAX,
            VrState::Loading { ready_at } => ready_at,
            VrState::Ready => 0,
        }
    }

    /// Adds a pending-vOp reference.
    pub fn add_ref(&mut self, id: VrId) {
        self.regs[id].refs += 1;
    }

    /// Releases a pending-vOp reference. The caller (the PE retire stage)
    /// balances every `add_ref` with one release; an unbalanced release is
    /// a pipeline bug, checked in debug builds.
    pub fn release_ref(&mut self, id: VrId) {
        debug_assert!(self.regs[id].refs > 0, "unbalanced release on VR {id}");
        self.regs[id].refs = self.regs[id].refs.saturating_sub(1);
    }

    /// The RAW chain: when the last write to `id` completes.
    pub fn last_write_done(&self, id: VrId) -> Cycle {
        self.regs[id].last_write_done
    }

    /// Records a write to `id` completing at `done` and marks it dirty.
    pub fn record_write(&mut self, id: VrId, done: Cycle) {
        let r = &mut self.regs[id];
        if !r.dirty {
            self.dirty_count += 1;
        }
        r.dirty = true;
        r.last_write_done = r.last_write_done.max(done);
    }

    /// Picks a dirty register eligible for write-back: resident,
    /// unreferenced, and not written again in the future (`now` ≥ its last
    /// write completion). Least-recently-used dirty registers are drained
    /// first — they are the least likely to be written again.
    pub fn writeback_candidate(&mut self, now: Cycle) -> Option<VrId> {
        let _ = self.wb_cursor;
        self.regs
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.dirty && r.refs == 0 && r.state == VrState::Ready && r.last_write_done <= now
            })
            .min_by_key(|(_, r)| r.last_use)
            .map(|(i, _)| i)
    }

    /// Cleans `id` after its write-back is issued, returning the line and
    /// data class to write. Only dirty registers are write-back
    /// candidates; cleaning a clean one is a pipeline bug, checked in
    /// debug builds.
    pub fn clean(&mut self, id: VrId) -> (Line, DataClass) {
        let r = &mut self.regs[id];
        debug_assert!(r.dirty, "cleaning a clean register");
        if r.dirty {
            self.dirty_count -= 1;
        }
        r.dirty = false;
        (r.tag, r.class)
    }

    /// All dirty registers' (line, class), for the final VRF drain of a
    /// WB&Invalidate; the registers become clean and invalid.
    pub fn drain_dirty(&mut self) -> Vec<(Line, DataClass)> {
        let mut out = Vec::new();
        self.drain_dirty_into(&mut out);
        out
    }

    /// [`Vrf::drain_dirty`] into a caller-owned buffer (appending in
    /// register-index order, the same order `drain_dirty` produces), so a
    /// PE flushing repeatedly allocates nothing in steady state. Returns
    /// how many entries were appended.
    pub fn drain_dirty_into<B: Extend<(Line, DataClass)>>(&mut self, out: &mut B) -> usize {
        let mut n = 0;
        for r in &mut self.regs {
            if r.dirty {
                out.extend(std::iter::once((r.tag, r.class)));
                n += 1;
                r.dirty = false;
            }
            if r.tag != NO_TAG {
                self.cam.remove(&r.tag);
            }
            *r = Vr::empty();
        }
        self.dirty_count = 0;
        n
    }

    /// Whether every register is idle (no refs, no loads in flight). Dirty
    /// registers are allowed — barriers do not force write-backs.
    pub fn is_quiescent(&self) -> bool {
        self.regs
            .iter()
            .all(|r| r.refs == 0 && !matches!(r.state, VrState::Loading { .. }))
    }

    /// Earliest in-flight fill completion, if any (for idle fast-forward).
    pub fn next_load_completion(&self) -> Option<Cycle> {
        self.regs
            .iter()
            .filter_map(|r| match r.state {
                VrState::Loading { ready_at } => Some(ready_at),
                _ => None,
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CL: DataClass = DataClass::CMatrix;

    #[test]
    fn reuse_hits_the_cam() {
        let mut v = Vrf::new(2);
        let AllocOutcome::Allocated(a) = v.lookup_or_alloc(5, CL) else {
            panic!()
        };
        assert_eq!(v.lookup_or_alloc(5, CL), AllocOutcome::Reused(a));
    }

    #[test]
    fn allocation_prefers_invalid_then_lru_clean() {
        let mut v = Vrf::new(2);
        let AllocOutcome::Allocated(a) = v.lookup_or_alloc(1, CL) else {
            panic!()
        };
        v.set_ready(a);
        let AllocOutcome::Allocated(b) = v.lookup_or_alloc(2, CL) else {
            panic!()
        };
        v.set_ready(b);
        // Touch line 1 to make register `a` MRU.
        v.lookup_or_alloc(1, CL);
        let AllocOutcome::Allocated(c) = v.lookup_or_alloc(3, CL) else {
            panic!()
        };
        assert_eq!(c, b, "LRU clean register must be evicted");
        // Line 2's tag must be gone from the CAM.
        assert!(matches!(
            v.lookup_or_alloc(2, CL),
            AllocOutcome::Stall | AllocOutcome::Allocated(_)
        ));
    }

    #[test]
    fn stall_when_all_regs_are_busy() {
        let mut v = Vrf::new(1);
        let AllocOutcome::Allocated(a) = v.lookup_or_alloc(1, CL) else {
            panic!()
        };
        v.set_loading(a, 100); // in flight -> not evictable
        assert_eq!(v.lookup_or_alloc(2, CL), AllocOutcome::Stall);
        v.complete_loads(100);
        v.add_ref(a); // referenced -> still not evictable
        assert_eq!(v.lookup_or_alloc(2, CL), AllocOutcome::Stall);
        v.release_ref(a);
        assert!(matches!(
            v.lookup_or_alloc(2, CL),
            AllocOutcome::Allocated(_)
        ));
    }

    #[test]
    fn dirty_registers_are_not_silently_evicted() {
        let mut v = Vrf::new(1);
        let AllocOutcome::Allocated(a) = v.lookup_or_alloc(1, CL) else {
            panic!()
        };
        v.set_ready(a);
        v.record_write(a, 10);
        assert_eq!(v.lookup_or_alloc(2, CL), AllocOutcome::Stall);
    }

    #[test]
    fn load_completion_promotes_state() {
        let mut v = Vrf::new(1);
        let AllocOutcome::Allocated(a) = v.lookup_or_alloc(1, CL) else {
            panic!()
        };
        v.set_loading(a, 50);
        assert_eq!(v.ready_at(a), 50);
        v.complete_loads(49);
        assert_eq!(v.ready_at(a), 50);
        v.complete_loads(50);
        assert_eq!(v.ready_at(a), 0);
    }

    #[test]
    fn raw_chain_tracks_last_writer() {
        let mut v = Vrf::new(1);
        let AllocOutcome::Allocated(a) = v.lookup_or_alloc(1, CL) else {
            panic!()
        };
        v.set_ready(a);
        assert_eq!(v.last_write_done(a), 0);
        v.record_write(a, 20);
        v.record_write(a, 15); // out-of-order completion cannot regress
        assert_eq!(v.last_write_done(a), 20);
    }

    #[test]
    fn dirty_accounting_and_thresholds() {
        let mut v = Vrf::new(4);
        for line in 0..3 {
            let AllocOutcome::Allocated(id) = v.lookup_or_alloc(line, CL) else {
                panic!()
            };
            v.set_ready(id);
            v.record_write(id, 0);
        }
        assert_eq!(v.dirty_count(), 3);
        assert!((v.dirty_fraction() - 0.75).abs() < 1e-12);
        let c = v.writeback_candidate(10).unwrap();
        let (line, _) = v.clean(c);
        assert!(line < 3);
        assert_eq!(v.dirty_count(), 2);
    }

    #[test]
    fn writeback_waits_for_pending_writers() {
        let mut v = Vrf::new(1);
        let AllocOutcome::Allocated(a) = v.lookup_or_alloc(1, CL) else {
            panic!()
        };
        v.set_ready(a);
        v.record_write(a, 100); // write completes in the future
        assert_eq!(v.writeback_candidate(50), None);
        assert_eq!(v.writeback_candidate(100), Some(a));
    }

    #[test]
    fn drain_returns_all_dirty_lines_and_clears() {
        let mut v = Vrf::new(4);
        for line in 0..4 {
            let AllocOutcome::Allocated(id) = v.lookup_or_alloc(line, CL) else {
                panic!()
            };
            v.set_ready(id);
            if line % 2 == 0 {
                v.record_write(id, 0);
            }
        }
        let mut drained: Vec<Line> = v.drain_dirty().into_iter().map(|(l, _)| l).collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 2]);
        assert_eq!(v.dirty_count(), 0);
        assert!(v.is_quiescent());
        // Every register is reusable again.
        for line in 10..14 {
            assert!(matches!(
                v.lookup_or_alloc(line, CL),
                AllocOutcome::Allocated(_)
            ));
        }
    }

    #[test]
    fn quiescence_ignores_dirty_but_not_loading() {
        let mut v = Vrf::new(2);
        let AllocOutcome::Allocated(a) = v.lookup_or_alloc(1, CL) else {
            panic!()
        };
        v.set_ready(a);
        v.record_write(a, 0);
        assert!(v.is_quiescent());
        let AllocOutcome::Allocated(b) = v.lookup_or_alloc(2, CL) else {
            panic!()
        };
        v.set_loading(b, 99);
        assert!(!v.is_quiescent());
        assert_eq!(v.next_load_completion(), Some(99));
    }

    #[test]
    #[should_panic]
    fn zero_register_vrf_is_rejected() {
        let _ = Vrf::new(0);
    }
}
