//! The SPADE accelerator model — the primary contribution of *SPADE: A
//! Flexible and Scalable Accelerator for SpMM and SDDMM* (ISCA 2023).
//!
//! SPADE tightly couples accelerator processing elements (PEs) with the
//! cores of a multicore, as if they were advanced functional units: PEs
//! share the host's STLB, L2 and LLC and use its virtual addresses, so no
//! data is ever copied between host and accelerator (§4.1). Flexibility
//! comes from a high-level tile ISA (§4.2) whose knobs — tile sizes,
//! scheduling barriers, cache bypassing — adapt execution to the sparsity
//! structure of the input.
//!
//! Crate layout:
//!
//! * [`isa`](crate::Instruction) — the five tile-granular instructions and
//!   the bypass policies,
//! * [`ExecutionPlan`] / [`PlanSearchSpace`] — the flexibility knobs and
//!   the Table 3 search space behind `SPADE Opt`,
//! * [`Schedule`] — CPE tile scheduling with the SpMM row-panel constraint
//!   and scheduling barriers (§4.3),
//! * [`vrf`] — the vector register file with its tag CAM (§5.1),
//! * [`pe`] — the three-stage latency-tolerant PE pipeline (§4.4),
//! * [`SpadeSystem`] — the integrated system: run SpMM/SDDMM end to end,
//!   with functional results validated against the gold kernels,
//! * [`SystemConfig`] — Table 1 microarchitecture presets and the Table 4
//!   CFG0–CFG4 feature progression.
//!
//! # Example
//!
//! ```
//! use spade_core::{ExecutionPlan, SpadeSystem, SystemConfig};
//! use spade_matrix::{reference, Coo, DenseMatrix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = Coo::from_triplets(128, 128, &[(0, 5, 1.0), (100, 7, 2.0)])?;
//! let b = DenseMatrix::from_fn(128, 32, |r, _| r as f32);
//! let mut system = SpadeSystem::new(SystemConfig::scaled(8));
//! let run = system.run_spmm(&a, &b, &ExecutionPlan::spmm_base(&a)?)?;
//! assert!(reference::dense_close(&run.output, &reference::spmm(&a, &b), 1e-3));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
pub mod advisor;
mod config;
mod diag;
mod error;
mod isa;
pub mod pe;
mod plan;
mod report;
mod schedule;
mod system;
pub mod vrf;

pub use addr::AddressMap;
pub use config::{PipelineConfig, SystemConfig};
pub use diag::{PeSnapshot, StallDiagnostics, StallKind, WatchdogConfig};
pub use error::SpadeError;
pub use isa::{
    CMatrixPolicy, InitInstruction, Instruction, Primitive, RMatrixPolicy, TileInstruction,
};
pub use plan::{BarrierPolicy, ExecutionPlan, PlanSearchSpace};
pub use report::RunReport;
pub use schedule::{PeCommand, Schedule};
pub use system::{
    run_sddmm_checked, run_spmm_checked, sim_shards_from_env, SddmmRun, SpadeSystem, SpmmRun,
    SpmvRun,
};

// Observability types from the simulation layer, re-exported so downstream
// crates (bench, CLI) need only `spade_core` for telemetry and tracing.
pub use spade_sim::{JsonValue, TelemetrySample, TelemetrySeries, TraceEvent, TraceLog};
