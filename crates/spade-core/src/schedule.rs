//! CPE tile scheduling (§4.3).
//!
//! The control processing element assigns tiles to PEs under one hard
//! constraint: in SpMM, *all tiles of a row panel go to the same PE*,
//! because tiles of the same row panel update the same rMatrix rows and
//! must not race. Row panels are distributed round-robin. With scheduling
//! barriers, tile execution is additionally ordered by column-panel groups
//! (Figure 5b): every PE finishes its tiles of one group before any PE
//! starts the next.

use spade_matrix::TiledCoo;

use crate::{BarrierPolicy, Primitive};

/// One entry of a PE's command stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeCommand {
    /// Process tile `tile_idx` of the tiled matrix.
    Tile {
        /// Index into [`TiledCoo::tiles`].
        tile_idx: usize,
    },
    /// Wait until all PEs have reached barrier `id`.
    Barrier {
        /// Sequence number of the barrier (0, 1, 2…).
        id: u32,
    },
    /// Write back and invalidate the PE's L1, BBF and dirty vector
    /// registers (the WB&Invalidate instruction, §4.3).
    WbInvalidate,
    /// Pause the PE; SPADE-mode execution ends when every PE has read its
    /// Termination instruction.
    Terminate,
}

/// A full tile-to-PE assignment produced by the CPE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    per_pe: Vec<Vec<PeCommand>>,
    num_barriers: u32,
}

impl Schedule {
    /// Builds the schedule for `tiled` on `num_pes` PEs.
    ///
    /// Row panels are assigned round-robin to PEs; for SpMM this is also a
    /// correctness requirement (no row panel is split). Under
    /// [`BarrierPolicy::EveryColumnPanels`], commands are emitted
    /// column-panel-group by column-panel-group with a barrier between
    /// groups; every PE receives every barrier, even when it has no tiles
    /// in a group.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is zero.
    pub fn build(
        tiled: &TiledCoo,
        num_pes: usize,
        primitive: Primitive,
        barriers: BarrierPolicy,
    ) -> Self {
        assert!(num_pes > 0, "need at least one PE");
        // Row panel -> PE assignment. The same round-robin mapping is used
        // for SDDMM: it has no correctness constraint (§4.3) but keeps the
        // rMatrix locality of row-panel affinity.
        let _ = primitive;
        let pe_of_panel = |panel: usize| panel % num_pes;

        let mut per_pe: Vec<Vec<PeCommand>> = vec![Vec::new(); num_pes];
        let mut num_barriers = 0u32;
        match barriers {
            BarrierPolicy::None => {
                // Row-panel-major order per PE (the tiles array is already
                // row-panel-major, Figure 5a).
                for (tile_idx, info) in tiled.tiles().iter().enumerate() {
                    per_pe[pe_of_panel(info.row_panel)].push(PeCommand::Tile { tile_idx });
                }
            }
            BarrierPolicy::EveryColumnPanels { group } => {
                let group = group.max(1) as usize;
                let num_groups = tiled.num_col_panels().div_ceil(group);
                for g in 0..num_groups {
                    let cp_range = (g * group)..((g + 1) * group).min(tiled.num_col_panels());
                    for (tile_idx, info) in tiled.tiles().iter().enumerate() {
                        if cp_range.contains(&info.col_panel) {
                            per_pe[pe_of_panel(info.row_panel)].push(PeCommand::Tile { tile_idx });
                        }
                    }
                    // Barrier after every group except the last (nothing to
                    // order after the final group).
                    if g + 1 < num_groups {
                        for stream in &mut per_pe {
                            stream.push(PeCommand::Barrier { id: num_barriers });
                        }
                        num_barriers += 1;
                    }
                }
            }
        }
        // Termination procedure (§4.3): WB&Invalidate, then Terminate.
        for stream in &mut per_pe {
            stream.push(PeCommand::WbInvalidate);
            stream.push(PeCommand::Terminate);
        }
        Schedule {
            per_pe,
            num_barriers,
        }
    }

    /// The command stream of PE `pe`.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn commands(&self, pe: usize) -> &[PeCommand] {
        &self.per_pe[pe]
    }

    /// Number of PEs in the schedule.
    pub fn num_pes(&self) -> usize {
        self.per_pe.len()
    }

    /// Number of barriers inserted.
    pub fn num_barriers(&self) -> u32 {
        self.num_barriers
    }

    /// Total tiles scheduled (for sanity checks).
    pub fn num_tiles(&self) -> usize {
        self.per_pe
            .iter()
            .flatten()
            .filter(|c| matches!(c, PeCommand::Tile { .. }))
            .count()
    }

    /// The non-zero count of the largest per-PE share — used to diagnose
    /// load imbalance (MYC/KRO in §7.E).
    pub fn max_pe_nnz(&self, tiled: &TiledCoo) -> u64 {
        self.per_pe
            .iter()
            .map(|cmds| {
                cmds.iter()
                    .map(|c| match c {
                        PeCommand::Tile { tile_idx } => tiled.tiles()[*tile_idx].nnz as u64,
                        _ => 0,
                    })
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_matrix::{Coo, TilingConfig};

    fn tiled_4x4() -> TiledCoo {
        // Non-zeros in every 2x2 tile of a 4x4 matrix.
        let mut t = Vec::new();
        for r in 0..4u32 {
            for c in 0..4u32 {
                t.push((r, c, 1.0));
            }
        }
        let a = Coo::from_triplets(4, 4, &t).unwrap();
        TiledCoo::new(&a, TilingConfig::new(2, 2).unwrap()).unwrap()
    }

    #[test]
    fn row_panels_never_split_across_pes() {
        let tiled = tiled_4x4();
        let s = Schedule::build(&tiled, 2, Primitive::Spmm, BarrierPolicy::None);
        for pe in 0..2 {
            for cmd in s.commands(pe) {
                if let PeCommand::Tile { tile_idx } = cmd {
                    assert_eq!(tiled.tiles()[*tile_idx].row_panel % 2, pe);
                }
            }
        }
    }

    #[test]
    fn every_tile_is_scheduled_exactly_once() {
        let tiled = tiled_4x4();
        for barriers in [BarrierPolicy::None, BarrierPolicy::per_column_panel()] {
            let s = Schedule::build(&tiled, 3, Primitive::Spmm, barriers);
            assert_eq!(s.num_tiles(), tiled.tiles().len());
            let mut seen = vec![false; tiled.tiles().len()];
            for pe in 0..3 {
                for cmd in s.commands(pe) {
                    if let PeCommand::Tile { tile_idx } = cmd {
                        assert!(!seen[*tile_idx], "tile {tile_idx} scheduled twice");
                        seen[*tile_idx] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn barriers_are_uniform_across_pes() {
        let tiled = tiled_4x4(); // 2 column panels -> 1 barrier
        let s = Schedule::build(
            &tiled,
            2,
            Primitive::Spmm,
            BarrierPolicy::per_column_panel(),
        );
        assert_eq!(s.num_barriers(), 1);
        for pe in 0..2 {
            let barriers: Vec<u32> = s
                .commands(pe)
                .iter()
                .filter_map(|c| match c {
                    PeCommand::Barrier { id } => Some(*id),
                    _ => None,
                })
                .collect();
            assert_eq!(barriers, vec![0]);
        }
    }

    #[test]
    fn barrier_orders_column_panels() {
        let tiled = tiled_4x4();
        let s = Schedule::build(
            &tiled,
            2,
            Primitive::Spmm,
            BarrierPolicy::per_column_panel(),
        );
        for pe in 0..2 {
            let mut seen_barrier = false;
            for cmd in s.commands(pe) {
                match cmd {
                    PeCommand::Barrier { .. } => seen_barrier = true,
                    PeCommand::Tile { tile_idx } => {
                        let cp = tiled.tiles()[*tile_idx].col_panel;
                        if seen_barrier {
                            assert_eq!(cp, 1);
                        } else {
                            assert_eq!(cp, 0);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn no_barriers_without_policy() {
        let tiled = tiled_4x4();
        let s = Schedule::build(&tiled, 2, Primitive::Sddmm, BarrierPolicy::None);
        assert_eq!(s.num_barriers(), 0);
    }

    #[test]
    fn more_pes_than_panels_leaves_some_idle() {
        let tiled = tiled_4x4(); // 2 row panels
        let s = Schedule::build(&tiled, 8, Primitive::Spmm, BarrierPolicy::None);
        let busy = (0..8)
            .filter(|&pe| {
                s.commands(pe)
                    .iter()
                    .any(|c| matches!(c, PeCommand::Tile { .. }))
            })
            .count();
        assert_eq!(busy, 2);
    }

    #[test]
    fn group_size_two_merges_column_panels() {
        let a = {
            let mut t = Vec::new();
            for r in 0..4u32 {
                for c in 0..8u32 {
                    t.push((r, c, 1.0));
                }
            }
            Coo::from_triplets(4, 8, &t).unwrap()
        };
        let tiled = TiledCoo::new(&a, TilingConfig::new(2, 2).unwrap()).unwrap(); // 4 column panels
        let s = Schedule::build(
            &tiled,
            2,
            Primitive::Spmm,
            BarrierPolicy::EveryColumnPanels { group: 2 },
        );
        assert_eq!(s.num_barriers(), 1); // 2 groups -> 1 barrier
    }

    #[test]
    fn max_pe_nnz_measures_imbalance() {
        let tiled = tiled_4x4();
        let s1 = Schedule::build(&tiled, 1, Primitive::Spmm, BarrierPolicy::None);
        let s2 = Schedule::build(&tiled, 2, Primitive::Spmm, BarrierPolicy::None);
        assert_eq!(s1.max_pe_nnz(&tiled), 16);
        assert_eq!(s2.max_pe_nnz(&tiled), 8);
    }

    #[test]
    #[should_panic]
    fn zero_pes_is_rejected() {
        let tiled = tiled_4x4();
        let _ = Schedule::build(&tiled, 0, Primitive::Spmm, BarrierPolicy::None);
    }
}
