//! The integrated SPADE system (§4.1): many PEs sharing the host memory
//! hierarchy, driven by the CPE's tile schedule.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use spade_matrix::{reference, Coo, DenseMatrix, TiledCoo, FLOATS_PER_LINE};
use spade_sim::{
    fast_path_default, AccessPath, Cycle, DataClass, LevelKind, Line, MemorySystem,
    TelemetryCounters, TelemetryGauges, TelemetryRecorder, TelemetrySeries, TraceEvent, TraceLog,
};

use crate::pe::{
    BarrierSync, ExecPort, KernelData, Pe, PeStats, PortReply, RuntimeParams, TickResult,
};
use crate::{
    AddressMap, ExecutionPlan, Primitive, RunReport, Schedule, SpadeError, StallDiagnostics,
    StallKind, SystemConfig, WatchdogConfig,
};

/// Result of an SpMM run: the output dense matrix and the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmmRun {
    /// `D = A × B`, computed in the pipeline's out-of-order retirement
    /// order.
    pub output: DenseMatrix,
    /// Timing and traffic metrics.
    pub report: RunReport,
}

/// Result of an SDDMM run: the output sparse matrix (same structure as the
/// input) and the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct SddmmRun {
    /// `D = A ∘ (B × Cᵀ)`.
    pub output: Coo,
    /// Timing and traffic metrics.
    pub report: RunReport,
}

/// Result of an SpMV run (§9): the output vector and the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmvRun {
    /// `d = A · x`.
    pub output: Vec<f32>,
    /// Timing and traffic metrics.
    pub report: RunReport,
}

/// A simulated SPADE system.
///
/// Each call to [`SpadeSystem::run_spmm`] / [`SpadeSystem::run_sddmm`]
/// executes one SPADE-mode section: Initialization broadcast, tile
/// instructions per the CPE schedule, optional scheduling barriers, and the
/// WB&Invalidate/Termination sequence. Caches start cold unless
/// [`SpadeSystem::keep_warm`] is enabled.
///
/// # Example
///
/// ```
/// use spade_core::{ExecutionPlan, SpadeSystem, SystemConfig};
/// use spade_matrix::{reference, Coo, DenseMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Coo::from_triplets(64, 64, &[(0, 1, 2.0), (3, 2, 1.0), (63, 63, 1.0)])?;
/// let b = DenseMatrix::from_fn(64, 32, |r, c| (r + c) as f32);
/// let mut sys = SpadeSystem::new(SystemConfig::scaled(4));
/// let run = sys.run_spmm(&a, &b, &ExecutionPlan::spmm_base(&a)?)?;
/// assert!(reference::dense_close(&run.output, &reference::spmm(&a, &b), 1e-3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SpadeSystem {
    config: SystemConfig,
    mem: Option<MemorySystem>,
    keep_warm: bool,
    fast_forward: bool,
    /// Whether the memory hierarchy may use its filtered fast path
    /// (line/page filters + packed-set lookups); disabling forces the
    /// always-translate, always-lookup slow path. Bit-identical either
    /// way — pinned by the `memory_fastpath_equivalence` suite.
    mem_fast_path: bool,
    watchdog: WatchdogConfig,
    /// Requested host shard count for the event-driven driver (see
    /// [`SpadeSystem::set_shards`]); the effective count is clamped to the
    /// cluster count at run time.
    shards: usize,
    /// Telemetry window in cycles; `None` disables sampling.
    telemetry_window: Option<Cycle>,
    /// Whether to record an event trace for the next run.
    trace_on: bool,
    /// Telemetry series from the most recent run (taken, not cloned).
    last_telemetry: Option<TelemetrySeries>,
    /// Event trace from the most recent run (taken, not cloned).
    last_trace: Option<TraceLog>,
}

impl SpadeSystem {
    /// Creates a system from `config`.
    pub fn new(config: SystemConfig) -> Self {
        SpadeSystem {
            config,
            mem: None,
            keep_warm: false,
            fast_forward: true,
            // Honors the SPADE_MEM_SLOW_PATH environment veto; the
            // explicit setter overrides it per system.
            mem_fast_path: fast_path_default(),
            watchdog: WatchdogConfig::default(),
            // Honors the SPADE_SIM_SHARDS environment default; the
            // explicit setter overrides it per system.
            shards: sim_shards_from_env(),
            telemetry_window: None,
            trace_on: false,
            last_telemetry: None,
            last_trace: None,
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// When enabled, subsequent runs reuse the previous run's cache
    /// contents (timing queues and statistics still reset). Used to
    /// measure the cold-start overhead of §7.D.
    pub fn keep_warm(&mut self, warm: bool) -> &mut Self {
        self.keep_warm = warm;
        self
    }

    /// Selects the driver for the cycle loop (event-driven by default).
    ///
    /// When enabled, the loop is an event-driven ready queue: PEs are held
    /// in a min-heap keyed by their next wake cycle, only due PEs are
    /// ticked, and the clock jumps straight across idle gaps. Disabling it
    /// forces the naive loop that visits every cycle and polls every PE —
    /// kept purely as the behavioral oracle. Both drivers produce
    /// bit-identical outputs, reports, telemetry, and traces (see the
    /// `fast_forward` property tests and the `scheduler_equivalence`
    /// suite); the naive loop just spends host time proportional to
    /// simulated cycles × PEs (each poll paying the full ready-scan cost —
    /// the per-PE event gates are disabled too) instead of to actual
    /// events.
    pub fn set_fast_forward(&mut self, enabled: bool) -> &mut Self {
        self.fast_forward = enabled;
        self
    }

    /// Selects the memory-hierarchy driver (fast path by default).
    ///
    /// The fast path short-circuits back-to-back same-line accesses per
    /// requester and reuses the previous STLB translation for same-page
    /// streams; disabling it forces every request through the full
    /// translate-and-lookup slow path. Both produce bit-identical
    /// outputs, reports, telemetry and traces (see the
    /// `memory_fastpath_equivalence` suite); the slow path just spends
    /// more host time. The `SPADE_MEM_SLOW_PATH` environment variable
    /// applies the same veto globally at hierarchy construction; this
    /// per-system knob exists for the equivalence suites and benches.
    pub fn set_mem_fast_path(&mut self, enabled: bool) -> &mut Self {
        self.mem_fast_path = enabled;
        self
    }

    /// Whether the memory fast path is requested for subsequent runs.
    pub fn mem_fast_path(&self) -> bool {
        self.mem_fast_path
    }

    /// Requests `shards` host worker threads for the event-driven driver.
    ///
    /// The PEs are partitioned by cluster — each shard owns its clusters'
    /// L1s, victim caches, and line filters exclusively — and advance in
    /// lock-step time epochs. Accesses that cross into the shared levels
    /// (LLC, DRAM, STLB) are recorded into per-shard ordered logs during
    /// the parallel tick phase and replayed against the real memory system
    /// in global PE order at the epoch edge, so every run is
    /// **bit-identical** to the sequential event-driven driver: same
    /// outputs, reports, telemetry bytes, trace bytes, and fault schedules
    /// (pinned by the `sharded_equivalence` suite).
    ///
    /// The effective count is clamped to the cluster count at run time,
    /// `1` selects the sequential driver unchanged, and the naive oracle
    /// loop (see [`SpadeSystem::set_fast_forward`]) always runs
    /// single-threaded. The `SPADE_SIM_SHARDS` environment variable sets
    /// the default for new systems.
    pub fn set_shards(&mut self, shards: usize) -> &mut Self {
        self.shards = shards.max(1);
        self
    }

    /// The requested shard count (before run-time clamping).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Configures the deadlock watchdog: the idle budget before a run is
    /// declared livelocked, and an optional hard cycle ceiling. A tripped
    /// watchdog makes the run return [`SpadeError::Deadlock`] carrying a
    /// [`StallDiagnostics`] snapshot instead of aborting the process.
    pub fn set_watchdog(&mut self, watchdog: WatchdogConfig) -> &mut Self {
        self.watchdog = watchdog;
        self
    }

    /// The active watchdog configuration.
    pub fn watchdog(&self) -> WatchdogConfig {
        self.watchdog
    }

    /// Enables windowed telemetry sampling (window width in PE cycles) or
    /// disables it with `None`. Telemetry is pure observation: enabling it
    /// never changes a run's outputs, report, or cycle count. A zero
    /// window is rejected when the next run starts.
    pub fn set_telemetry(&mut self, window: Option<Cycle>) -> &mut Self {
        self.telemetry_window = window;
        self
    }

    /// The configured telemetry window, if sampling is enabled.
    pub fn telemetry_window(&self) -> Option<Cycle> {
        self.telemetry_window
    }

    /// Enables or disables event tracing (tile-instruction lifecycles,
    /// barriers, flushes, idle spans, fault firings, watchdog reports).
    /// Like telemetry, tracing never changes simulated behavior.
    pub fn set_trace(&mut self, enabled: bool) -> &mut Self {
        self.trace_on = enabled;
        self
    }

    /// Whether event tracing is enabled.
    pub fn trace_enabled(&self) -> bool {
        self.trace_on
    }

    /// Takes the telemetry series recorded by the most recent run (also
    /// populated when the run failed mid-way, e.g. on a watchdog trip).
    pub fn take_telemetry(&mut self) -> Option<TelemetrySeries> {
        self.last_telemetry.take()
    }

    /// Takes the event trace recorded by the most recent run (also
    /// populated when the run failed mid-way; a watchdog trip appears as
    /// its final event).
    pub fn take_trace(&mut self) -> Option<TraceLog> {
        self.last_trace.take()
    }

    /// Runs `D = A × B` under `plan`.
    ///
    /// # Errors
    ///
    /// Returns [`SpadeError::ShapeMismatch`] if `B` has fewer rows than `A`
    /// has columns, [`SpadeError::UnalignedK`] if `K` does not fill whole
    /// cache lines, and tiling errors from the plan.
    pub fn run_spmm(
        &mut self,
        a: &Coo,
        b: &DenseMatrix,
        plan: &ExecutionPlan,
    ) -> Result<SpmmRun, SpadeError> {
        self.validate_config()?;
        validate_k(b.num_cols())?;
        if b.num_rows() < a.num_cols() {
            return Err(SpadeError::ShapeMismatch {
                reason: format!(
                    "B has {} rows but A has {} columns",
                    b.num_rows(),
                    a.num_cols()
                ),
            });
        }
        let tiled = TiledCoo::new(a, plan.tiling)?;
        let mut d = DenseMatrix::zeros(a.num_rows(), b.num_cols());
        let addr = AddressMap::for_spmm(&tiled, b, &d);
        let schedule = Schedule::build(&tiled, self.config.num_pes, Primitive::Spmm, plan.barriers);
        let report = {
            let mut data = KernelData::Spmm { b, d: &mut d };
            self.simulate(Primitive::Spmm, plan, &tiled, &addr, &schedule, &mut data)?
        };
        Ok(SpmmRun { output: d, report })
    }

    /// Runs `D = A ∘ (B × Cᵀ)` under `plan`.
    ///
    /// # Errors
    ///
    /// Returns [`SpadeError::ShapeMismatch`] if `B` has fewer rows than `A`
    /// or `Cᵀ` fewer rows than `A` has columns or their `K` differs, and
    /// [`SpadeError::UnalignedK`] for a `K` that does not fill whole cache
    /// lines.
    pub fn run_sddmm(
        &mut self,
        a: &Coo,
        b: &DenseMatrix,
        c_t: &DenseMatrix,
        plan: &ExecutionPlan,
    ) -> Result<SddmmRun, SpadeError> {
        self.validate_config()?;
        validate_k(b.num_cols())?;
        if b.num_rows() < a.num_rows() || c_t.num_rows() < a.num_cols() {
            return Err(SpadeError::ShapeMismatch {
                reason: "B needs a row per row of A and Cᵀ a row per column of A".into(),
            });
        }
        if b.num_cols() != c_t.num_cols() {
            return Err(SpadeError::ShapeMismatch {
                reason: format!(
                    "B and Cᵀ disagree on K: {} vs {}",
                    b.num_cols(),
                    c_t.num_cols()
                ),
            });
        }
        let tiled = TiledCoo::new(a, plan.tiling)?;
        let addr = AddressMap::for_sddmm(&tiled, b, c_t);
        let schedule =
            Schedule::build(&tiled, self.config.num_pes, Primitive::Sddmm, plan.barriers);
        let mut out_tiled = vec![0f32; tiled.nnz()];
        let report = {
            let mut data = KernelData::Sddmm {
                b,
                c_t,
                out: &mut out_tiled,
            };
            self.simulate(Primitive::Sddmm, plan, &tiled, &addr, &schedule, &mut data)?
        };
        // Map tiled-order outputs back to the source row-major order.
        let triplets: Vec<(u32, u32, f32)> = (0..tiled.nnz())
            .map(|i| (tiled.r_ids()[i], tiled.c_ids()[i], out_tiled[i]))
            .collect();
        let output = Coo::from_triplets(a.num_rows(), a.num_cols(), &triplets)?;
        Ok(SddmmRun { output, report })
    }

    /// Runs sparse matrix × vector (`d = A · x`) — SpMM with a single
    /// dense column (§9: "SPADE can already support SpMV").
    ///
    /// The dense "matrix" is one element wide; rows still occupy whole
    /// cache lines per the SPADE layout rules, so each tuple generates one
    /// vOp.
    ///
    /// # Errors
    ///
    /// Returns [`SpadeError::ShapeMismatch`] if `x` is shorter than `A`'s
    /// column count, plus tiling errors from the plan.
    pub fn run_spmv(
        &mut self,
        a: &Coo,
        x: &[f32],
        plan: &ExecutionPlan,
    ) -> Result<SpmvRun, SpadeError> {
        self.validate_config()?;
        if x.len() < a.num_cols() {
            return Err(SpadeError::ShapeMismatch {
                reason: format!(
                    "x has {} entries but A has {} columns",
                    x.len(),
                    a.num_cols()
                ),
            });
        }
        let b = DenseMatrix::from_fn(a.num_cols(), 1, |r, _| x[r]);
        let tiled = TiledCoo::new(a, plan.tiling)?;
        let mut d = DenseMatrix::zeros(a.num_rows(), 1);
        let addr = AddressMap::for_spmm(&tiled, &b, &d);
        let schedule = Schedule::build(&tiled, self.config.num_pes, Primitive::Spmm, plan.barriers);
        let report = {
            let mut data = KernelData::Spmm { b: &b, d: &mut d };
            self.simulate(Primitive::Spmm, plan, &tiled, &addr, &schedule, &mut data)?
        };
        let output = (0..a.num_rows()).map(|r| d.get(r, 0)).collect();
        Ok(SpmvRun { output, report })
    }

    /// Runs sampled dense-vector × dense-vector (`d = A ∘ (x · yᵀ)`) — the
    /// SDDVV primitive of §9. For every non-zero `A[r, c]`, the output is
    /// `A[r, c] · x[r] · y[c]`.
    ///
    /// # Errors
    ///
    /// Returns [`SpadeError::ShapeMismatch`] when the vectors are shorter
    /// than `A`'s rows/columns, plus tiling errors from the plan.
    pub fn run_sddvv(
        &mut self,
        a: &Coo,
        x: &[f32],
        y: &[f32],
        plan: &ExecutionPlan,
    ) -> Result<SddmmRun, SpadeError> {
        self.validate_config()?;
        if x.len() < a.num_rows() || y.len() < a.num_cols() {
            return Err(SpadeError::ShapeMismatch {
                reason: "x needs an entry per row of A and y one per column".into(),
            });
        }
        let b = DenseMatrix::from_fn(a.num_rows(), 1, |r, _| x[r]);
        let c_t = DenseMatrix::from_fn(a.num_cols(), 1, |r, _| y[r]);
        let tiled = TiledCoo::new(a, plan.tiling)?;
        let addr = AddressMap::for_sddmm(&tiled, &b, &c_t);
        let schedule =
            Schedule::build(&tiled, self.config.num_pes, Primitive::Sddmm, plan.barriers);
        let mut out_tiled = vec![0f32; tiled.nnz()];
        let report = {
            let mut data = KernelData::Sddmm {
                b: &b,
                c_t: &c_t,
                out: &mut out_tiled,
            };
            self.simulate(Primitive::Sddmm, plan, &tiled, &addr, &schedule, &mut data)?
        };
        let triplets: Vec<(u32, u32, f32)> = (0..tiled.nnz())
            .map(|i| (tiled.r_ids()[i], tiled.c_ids()[i], out_tiled[i]))
            .collect();
        let output = Coo::from_triplets(a.num_rows(), a.num_cols(), &triplets)?;
        Ok(SddmmRun { output, report })
    }

    fn simulate(
        &mut self,
        primitive: Primitive,
        plan: &ExecutionPlan,
        tiled: &TiledCoo,
        addr: &AddressMap,
        schedule: &Schedule,
        data: &mut KernelData<'_>,
    ) -> Result<RunReport, SpadeError> {
        let host_start = std::time::Instant::now();
        // Artifacts describe exactly one run; drop any stale ones now so a
        // failure below cannot be mistaken for fresh observability data.
        self.last_telemetry = None;
        self.last_trace = None;
        if self.telemetry_window == Some(0) {
            return Err(SpadeError::InvalidConfig {
                reason: "telemetry window must be at least one cycle".into(),
            });
        }
        let num_pes = self.config.num_pes;
        let mut mem = match (self.keep_warm, self.mem.take()) {
            (true, Some(mut m)) if *m.config() == self.config.mem => {
                m.reset_stats();
                m
            }
            _ => MemorySystem::new(self.config.mem.clone()),
        };
        mem.set_trace(self.trace_on);
        mem.set_fast_path(self.mem_fast_path);
        let params = RuntimeParams {
            primitive,
            r_policy: plan.r_policy,
            c_policy: plan.c_policy,
            lines_per_row: (addr.dense_stride_bytes / 64) as u32,
        };
        let mut barriers = BarrierSync::new(num_pes);
        let mut pes: Vec<Pe> = (0..num_pes)
            .map(|i| {
                let mut pe = Pe::new(
                    i,
                    self.config.pipeline,
                    params,
                    schedule.commands(i).to_vec(),
                );
                pe.set_trace(self.trace_on);
                // The oracle loop models the textbook poll-everything
                // baseline: it re-runs the reservation-station ready scan
                // every polled cycle instead of trusting the event gate.
                pe.set_event_gates(self.fast_forward);
                pe
            })
            .collect();

        let clock_mult = self.config.pipeline.clock_mult.max(1);
        let watchdog = self.watchdog;
        let audit_on = mem.audit_active();
        // MSHR-style bound for in-flight read accounting: each PE holds at
        // most 3 sparse reads per sparse-LQ entry plus its dense LQ.
        let pipeline = self.config.pipeline;
        let read_bound = num_pes * (3 * pipeline.sparse_lq_entries + pipeline.dense_lq_entries);
        let mut now: Cycle = 0;
        // Per-PE wake times: a PE that reports Waiting(t) cannot change
        // state before its own next event at t (its queues are private), so
        // it is skipped until then. Barrier releases are the one external
        // wake source and reset every wake time.
        let mut wake: Vec<Cycle> = vec![0; num_pes];
        // Windowed telemetry: sampled at the top of every visited cycle,
        // before that cycle's activity, so window attribution is exact.
        let mut telemetry = self
            .telemetry_window
            .map(|w| TelemetryRecorder::new(w, num_pes));
        // Scheduler-level trace events (idle spans, barrier releases,
        // watchdog reports) on a dedicated lane after the per-PE lanes.
        let trace_on = self.trace_on;
        let sched_lane = num_pes as u64;
        let mut sched_events: Vec<TraceEvent> = Vec::new();
        // Error paths return the error through the driver instead of
        // bailing out of `simulate`, so the trace and telemetry collected
        // up to the failure are still assembled below — a deadlocked run's
        // trace is exactly the artifact one wants to look at.
        let env = LoopEnv {
            pes: &mut pes,
            mem: &mut mem,
            barriers: &mut barriers,
            addr,
            tiled,
            data,
            telemetry: &mut telemetry,
            sched_events: &mut sched_events,
            wake: &mut wake,
            now: &mut now,
            clock_mult,
            watchdog,
            audit_on,
            read_bound,
            trace_on,
            sched_lane,
        };
        // Sharding only applies to the event-driven driver: the naive loop
        // stays the untouched single-threaded oracle. Shard count 1 (or a
        // single cluster) compiles down to today's sequential path.
        let requested_shards = if self.fast_forward { self.shards } else { 1 };
        let shard_plan = shard_ranges(
            num_pes,
            self.config.mem.agents_per_cluster,
            requested_shards,
        );
        let eff_shards = shard_plan.len();
        let mut shard_walls: Vec<f64> = Vec::new();
        let mut sim_err = if eff_shards > 1 {
            run_sharded_loop(env, &shard_plan, &mut shard_walls)
        } else if self.fast_forward {
            run_event_loop(env)
        } else {
            run_naive_loop(env)
        };
        if sim_err.is_none() && audit_on {
            if let Err(e) = audit_system(&mut mem, &pes, now, read_bound) {
                sim_err = Some(e);
            } else if let Err(reason) = mem.audit_final(now) {
                sim_err = Some(SpadeError::InvariantViolation { cycle: now, reason });
            }
        }

        // Assemble observability artifacts on success *and* failure.
        if let Some(rec) = telemetry.take() {
            self.last_telemetry = Some(rec.finish(now, |c| observe_into(&mem, &pes, c)));
        }
        if trace_on {
            let mut log = TraceLog::new();
            for i in 0..num_pes {
                log.set_lane(i as u64, format!("PE {i}"));
            }
            log.set_lane(sched_lane, "scheduler");
            if let Some(SpadeError::Deadlock { diagnostics }) = &sim_err {
                sched_events.push(diagnostics.to_trace_event(sched_lane));
            }
            for pe in pes.iter_mut() {
                log.events.append(&mut pe.take_trace_events());
            }
            log.events.append(&mut mem.take_trace_events());
            log.events.append(&mut sched_events);
            log.sort_by_time();
            self.last_trace = Some(log);
        }
        if let Some(e) = sim_err {
            return Err(e);
        }

        let pe_stats: Vec<PeStats> = pes.iter().map(|p| *p.stats()).collect();
        let mut report = RunReport::collect(
            now,
            mem.stats().clone(),
            mem.dram().achieved_gbps(now),
            mem.dram().utilization(now),
            &pe_stats,
            tiled.nnz() as u64,
            schedule.max_pe_nnz(tiled),
            schedule.num_barriers(),
        );
        report.host_wall_ns = host_start.elapsed().as_nanos() as f64;
        report.shards = eff_shards as u32;
        report.shard_wall_ns = shard_walls;
        self.mem = Some(mem);
        Ok(report)
    }
}

impl SpadeSystem {
    fn validate_config(&self) -> Result<(), SpadeError> {
        self.config
            .pipeline
            .validate()
            .and_then(|()| self.config.mem.validate())
            .map_err(|reason| SpadeError::InvalidConfig { reason })?;
        if self.config.mem.num_agents < self.config.num_pes {
            return Err(SpadeError::InvalidConfig {
                reason: format!(
                    "memory system has {} agents but the system has {} PEs",
                    self.config.mem.num_agents, self.config.num_pes
                ),
            });
        }
        Ok(())
    }
}

/// Idle gaps at least this long (in cycles) are recorded as `idle` spans on
/// the scheduler trace lane; shorter gaps are elided so the trace size
/// stays bounded by real activity, not by cycle count.
const IDLE_TRACE_MIN: Cycle = 16;

/// The invariant auditor piggybacks on the cycle loop: every AUDIT_PERIOD
/// visited cycles it cross-checks the memory system and the PE queues.
/// Auditing is pure bookkeeping — it never feeds back into timing — so
/// enabling it cannot change a report.
const AUDIT_PERIOD: u64 = 4096;

/// Everything a cycle-loop driver needs, bundled so the event-driven and
/// naive drivers share one signature. `now` and `wake` stay borrowed from
/// `simulate` because artifact assembly and deadlock diagnostics read them
/// after the driver returns.
struct LoopEnv<'a, 'b> {
    pes: &'a mut [Pe],
    mem: &'a mut MemorySystem,
    barriers: &'a mut BarrierSync,
    addr: &'a AddressMap,
    tiled: &'a TiledCoo,
    data: &'a mut KernelData<'b>,
    telemetry: &'a mut Option<TelemetryRecorder>,
    sched_events: &'a mut Vec<TraceEvent>,
    wake: &'a mut [Cycle],
    now: &'a mut Cycle,
    clock_mult: u32,
    watchdog: WatchdogConfig,
    audit_on: bool,
    read_bound: usize,
    trace_on: bool,
    sched_lane: u64,
}

/// The event-driven cycle-loop driver (the default).
///
/// PEs sit in a lazy-deletion min-heap keyed by `(wake cycle, PE index)`;
/// an entry is valid iff it still matches `wake[i]` and the PE is live.
/// Each iteration visits one cycle: it pops and ticks every due PE (equal
/// wake cycles pop in PE index order, matching the naive scan's
/// shared-resource arbitration), then jumps `now` to the next valid entry.
/// Host work per visited cycle is `O(due PEs · log num_pes)` instead of the
/// naive loop's `O(num_pes)` per simulated cycle.
///
/// Equivalence with [`run_naive_loop`] rests on three facts. First, both
/// drivers tick exactly the PEs whose wake cycle has arrived, in index
/// order, with identical arguments — so PE and memory state evolve
/// identically. Second, cycles this driver skips are ones where the naive
/// loop ticks nothing (every live PE waiting) and the barrier cannot
/// release (arrivals only happen inside ticks), so no counter or queue can
/// change during them; telemetry windows crossed in a jump are emitted as
/// zero-delta samples, bit-identical to a cycle-by-cycle walk. Third, when
/// no finite wake remains the naive loop's idle spin is replayed
/// arithmetically, reproducing its watchdog trip cycle-for-cycle.
fn run_event_loop(env: LoopEnv<'_, '_>) -> Option<SpadeError> {
    let LoopEnv {
        pes,
        mem,
        barriers,
        addr,
        tiled,
        data,
        telemetry,
        sched_events,
        wake,
        now,
        clock_mult,
        watchdog,
        audit_on,
        read_bound,
        trace_on,
        sched_lane,
    } = env;
    let mut live = pes.iter().filter(|pe| !pe.is_done()).count();
    let mut ready: BinaryHeap<Reverse<(Cycle, usize)>> = pes
        .iter()
        .enumerate()
        .filter(|(_, pe)| !pe.is_done())
        .map(|(i, _)| Reverse((0, i)))
        .collect();
    let mut loop_iters = 0u64;
    loop {
        loop_iters += 1;
        if let Some(rec) = telemetry.as_mut() {
            rec.advance_to(*now, |c| observe_into(mem, pes, c));
        }
        if audit_on && loop_iters.is_multiple_of(AUDIT_PERIOD) {
            if let Err(e) = audit_system(mem, pes, *now, read_bound) {
                return Some(e);
            }
        }
        if let Some(max_cycles) = watchdog.max_cycles {
            if *now > max_cycles {
                return Some(deadlock(
                    StallKind::CycleBudgetExceeded,
                    *now,
                    0,
                    pes,
                    wake,
                    mem,
                    barriers,
                ));
            }
        }
        let mut progressed = false;
        while let Some(&Reverse((w, i))) = ready.peek() {
            if wake[i] != w || pes[i].is_done() {
                ready.pop(); // superseded or dead entry (lazy deletion)
                continue;
            }
            if w > *now {
                break;
            }
            debug_assert_eq!(w, *now, "ready queue skipped a wake cycle");
            ready.pop();
            let pe = &mut pes[i];
            let mut pe_next = Cycle::MAX;
            let mut pe_progressed = false;
            for _ in 0..clock_mult {
                match pe.tick(*now, mem, barriers, addr, tiled, data) {
                    TickResult::Progressed => pe_progressed = true,
                    TickResult::Waiting(t) => pe_next = pe_next.min(t),
                    TickResult::Done => break,
                }
            }
            if pe.is_done() {
                // `wake[i]` keeps its due value: deadlock snapshots show a
                // done PE's last wake, and the naive loop leaves it too.
                live -= 1;
                continue;
            }
            if pe_progressed {
                progressed = true;
                wake[i] = *now + 1;
                ready.push(Reverse((*now + 1, i)));
            } else {
                // Waiting(MAX) means blocked on a barrier; no queue entry —
                // a release re-queues it below.
                wake[i] = if pe_next == Cycle::MAX {
                    Cycle::MAX
                } else {
                    pe_next.max(*now + 1)
                };
                if wake[i] != Cycle::MAX {
                    ready.push(Reverse((wake[i], i)));
                }
            }
        }
        if barriers.try_release() {
            progressed = true;
            if trace_on {
                sched_events.push(
                    TraceEvent::instant("barrier release", "barrier", *now, sched_lane)
                        .arg("barrier", barriers.released().saturating_sub(1)),
                );
            }
            for (i, w) in wake.iter_mut().enumerate() {
                // Done PEs get their wake reset too (diagnostics snapshots
                // include them) but never a ready-queue entry. The guard
                // also keeps a PE that just progressed from being queued
                // twice for the same cycle.
                if *w != *now + 1 {
                    *w = *now + 1;
                    if !pes[i].is_done() {
                        ready.push(Reverse((*now + 1, i)));
                    }
                }
            }
        }
        if live == 0 {
            return None;
        }
        if progressed {
            *now += 1;
            continue;
        }
        let next = loop {
            match ready.peek() {
                Some(&Reverse((w, i))) if wake[i] != w || pes[i].is_done() => {
                    ready.pop();
                }
                Some(&Reverse((w, _))) => break Some(w),
                None => break None,
            }
        };
        match next {
            Some(next_event) => {
                debug_assert!(next_event > *now);
                if trace_on && next_event - *now >= IDLE_TRACE_MIN {
                    sched_events.push(TraceEvent::complete(
                        "idle",
                        "idle",
                        *now,
                        next_event - *now,
                        sched_lane,
                    ));
                }
                *now = next_event;
            }
            None => {
                // Every live PE is barrier-blocked with no finite wake, and
                // the barrier cannot release on its own: nothing can ever
                // change again. The naive loop spins one empty cycle at a
                // time until a watchdog trips; replay that spin in closed
                // form. At synthetic cycle `now + k` it first checks the
                // idle budget (trips once `k` reaches it), then the cycle
                // ceiling (trips once `now + k` exceeds it).
                let k_idle = Cycle::from(watchdog.idle_budget.max(1));
                let (kind, k) = match watchdog.max_cycles {
                    Some(mc) if mc - *now + 1 < k_idle => {
                        (StallKind::CycleBudgetExceeded, mc - *now + 1)
                    }
                    _ => (StallKind::IdleLivelock, k_idle),
                };
                *now += k;
                return Some(deadlock(kind, *now, k as u32, pes, wake, mem, barriers));
            }
        }
    }
}

/// The original cycle-by-cycle driver, kept as the behavioral oracle for
/// [`run_event_loop`]: every simulated cycle is visited and every live PE
/// polled, whether or not it can act. The PEs run with their dispatch-scan
/// event gate disabled (see [`Pe::set_event_gates`]), so each poll pays
/// the full architectural cost a textbook simulator would.
fn run_naive_loop(env: LoopEnv<'_, '_>) -> Option<SpadeError> {
    let LoopEnv {
        pes,
        mem,
        barriers,
        addr,
        tiled,
        data,
        telemetry,
        sched_events,
        wake,
        now,
        clock_mult,
        watchdog,
        audit_on,
        read_bound,
        trace_on,
        sched_lane,
    } = env;
    let mut loop_iters = 0u64;
    let mut idle_iters = 0u32;
    loop {
        loop_iters += 1;
        if let Some(rec) = telemetry.as_mut() {
            rec.advance_to(*now, |c| observe_into(mem, pes, c));
        }
        if audit_on && loop_iters.is_multiple_of(AUDIT_PERIOD) {
            if let Err(e) = audit_system(mem, pes, *now, read_bound) {
                return Some(e);
            }
        }
        if let Some(max_cycles) = watchdog.max_cycles {
            if *now > max_cycles {
                return Some(deadlock(
                    StallKind::CycleBudgetExceeded,
                    *now,
                    idle_iters,
                    pes,
                    wake,
                    mem,
                    barriers,
                ));
            }
        }
        let mut progressed = false;
        let mut all_done = true;
        let mut due_any = false;
        let mut next_event = Cycle::MAX;
        for (i, pe) in pes.iter_mut().enumerate() {
            if pe.is_done() {
                continue;
            }
            // Poll every live PE every cycle, whether or not it can act:
            // this loop is the textbook baseline the event-driven driver
            // is measured against, so it pays the full polling cost. A PE
            // with nothing due is inert under `tick` (every pipeline
            // stage is gated on a future event), so the extra polls
            // change no architectural state. `due` is recorded before the
            // tick only so the idle-gap trace span below is emitted on
            // the one cycle of the gap the event-driven driver visits.
            let due = wake[i] <= *now;
            due_any |= due;
            let mut pe_next = Cycle::MAX;
            let mut pe_progressed = false;
            for _ in 0..clock_mult {
                match pe.tick(*now, mem, barriers, addr, tiled, data) {
                    TickResult::Progressed => pe_progressed = true,
                    TickResult::Waiting(t) => pe_next = pe_next.min(t),
                    TickResult::Done => break,
                }
            }
            if pe.is_done() {
                continue;
            }
            all_done = false;
            if pe_progressed {
                debug_assert!(due, "a PE progressed on a poll it could not act in");
                progressed = true;
                wake[i] = *now + 1;
                next_event = next_event.min(*now + 1);
            } else {
                // Waiting(MAX) means blocked on a barrier; leave the
                // wake at infinity — a release resets it below.
                wake[i] = if pe_next == Cycle::MAX {
                    Cycle::MAX
                } else {
                    pe_next.max(*now + 1)
                };
                next_event = next_event.min(wake[i]);
            }
        }
        if barriers.try_release() {
            progressed = true;
            for w in wake.iter_mut() {
                *w = *now + 1;
            }
            next_event = next_event.min(*now + 1);
            if trace_on {
                sched_events.push(
                    TraceEvent::instant("barrier release", "barrier", *now, sched_lane)
                        .arg("barrier", barriers.released().saturating_sub(1)),
                );
            }
        }
        if all_done {
            return None;
        }
        if progressed {
            *now += 1;
            idle_iters = 0;
        } else if next_event != Cycle::MAX && next_event > *now {
            // Entering an idle gap: the cycles up to `next_event` are
            // walked one at a time, but nothing can change during them.
            // Record the span the event-driven driver would (`due_any`
            // limits this to the gap's first cycle — the only cycle the
            // event-driven driver visits — so the traces stay identical).
            if due_any && trace_on && next_event - *now >= IDLE_TRACE_MIN {
                sched_events.push(TraceEvent::complete(
                    "idle",
                    "idle",
                    *now,
                    next_event - *now,
                    sched_lane,
                ));
            }
            *now += 1;
            idle_iters = 0;
        } else {
            *now += 1;
            idle_iters += 1;
            if idle_iters >= watchdog.idle_budget {
                return Some(deadlock(
                    StallKind::IdleLivelock,
                    *now,
                    idle_iters,
                    pes,
                    wake,
                    mem,
                    barriers,
                ));
            }
        }
    }
}

/// The default shard count for new systems: the `SPADE_SIM_SHARDS`
/// environment variable, or 1 (sequential) when unset. A set-but-invalid
/// value (a typo like `SPADE_SIM_SHARDS=two` or `=0`) warns to stderr
/// once per process and falls back to sequential instead of being
/// silently swallowed.
pub fn sim_shards_from_env() -> usize {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    if let Ok(v) = std::env::var("SPADE_SIM_SHARDS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: SPADE_SIM_SHARDS={v:?} is not a positive shard \
                     count; running sequentially (1 shard)"
                );
            }),
        }
    }
    1
}

/// Cluster-aligned shard partition: contiguous PE index ranges, each
/// covering whole clusters, as balanced as the cluster count allows. The
/// returned length is the effective shard count (`requested` clamped to
/// the cluster count); every range is non-empty.
fn shard_ranges(num_pes: usize, agents_per_cluster: usize, requested: usize) -> Vec<Range<usize>> {
    let apc = agents_per_cluster.max(1);
    let clusters = num_pes.div_ceil(apc).max(1);
    let shards = requested.clamp(1, clusters);
    let base = clusters / shards;
    let rem = clusters % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut cluster = 0usize;
    for s in 0..shards {
        let take = base + usize::from(s < rem);
        let lo = (cluster * apc).min(num_pes);
        cluster += take;
        let hi = (cluster * apc).min(num_pes);
        ranges.push(lo..hi);
    }
    ranges
}

/// One operation against the shared boundary (LLC/DRAM/STLB, the kernel
/// arrays, or the barrier), recorded by a shard's [`LogPort`] during the
/// parallel tick phase. The issuing PE and the cycle are implicit — every
/// log belongs to one PE and one epoch — so replaying a log at the epoch
/// edge reproduces the exact call sequence the sequential driver would
/// have made.
#[derive(Debug, Clone, Copy)]
enum SharedOp {
    /// A memory read; redeems one ticket with the fill cycle.
    Read {
        line: Line,
        path: AccessPath,
        class: DataClass,
    },
    /// A write-back; redeems one ticket with the accept cycle.
    Write {
        line: Line,
        path: AccessPath,
        class: DataClass,
    },
    /// A private-level flush; redeems one ticket with the line count.
    Flush,
    /// One retired vOp's functional arithmetic (no ticket — replay order
    /// alone fixes the f32 accumulation order).
    Apply {
        row: u32,
        col: u32,
        val: f32,
        seg: u32,
        func_out_idx: u64,
    },
    /// A barrier arrival (no ticket).
    Arrive { id: u32 },
}

/// The sharded driver's [`ExecPort`]: appends every shared-boundary
/// operation to the owning PE's per-epoch log and answers with tickets.
/// Barrier state is answered from a start-of-epoch snapshot — exact,
/// because releases only ever happen in the coordinator's serial section
/// between tick phases.
struct LogPort<'a> {
    /// The PE this log belongs to (checked against the caller).
    agent: usize,
    ops: &'a mut Vec<SharedOp>,
    tickets: u32,
    /// Barriers released as of this epoch's start.
    released: u32,
}

impl LogPort<'_> {
    fn ticket(&mut self) -> PortReply {
        let k = self.tickets;
        self.tickets += 1;
        PortReply::Ticket(k)
    }
}

impl ExecPort for LogPort<'_> {
    fn read(
        &mut self,
        agent: usize,
        line: Line,
        path: AccessPath,
        class: DataClass,
        _now: Cycle,
    ) -> PortReply {
        debug_assert_eq!(agent, self.agent, "a log port serves exactly one PE");
        self.ops.push(SharedOp::Read { line, path, class });
        self.ticket()
    }

    fn write(
        &mut self,
        agent: usize,
        line: Line,
        path: AccessPath,
        class: DataClass,
        _now: Cycle,
    ) -> PortReply {
        debug_assert_eq!(agent, self.agent, "a log port serves exactly one PE");
        self.ops.push(SharedOp::Write { line, path, class });
        self.ticket()
    }

    fn flush_agent(&mut self, agent: usize, _now: Cycle) -> PortReply {
        debug_assert_eq!(agent, self.agent, "a log port serves exactly one PE");
        self.ops.push(SharedOp::Flush);
        self.ticket()
    }

    fn apply_vop(&mut self, row: u32, col: u32, val: f32, seg: u32, func_out_idx: u64) {
        self.ops.push(SharedOp::Apply {
            row,
            col,
            val,
            seg,
            func_out_idx,
        });
    }

    fn arrive(&mut self, id: u32) {
        self.ops.push(SharedOp::Arrive { id });
    }

    fn barrier_passed(&self, id: u32) -> bool {
        self.released > id
    }
}

/// Per-PE observation cache for the sharded driver: everything
/// [`observe_into`] reads from a `Pe`, refreshed by the owning worker at
/// the end of each epoch's resolve phase so the coordinator can serve
/// telemetry probes without touching worker-owned PEs.
#[derive(Debug, Clone, Copy, Default)]
struct PeObs {
    vops: u64,
    tuples: u64,
    stall_no_vr: u64,
    stall_no_rs: u64,
    stall_no_dense_lq: u64,
    lq_depth: u64,
    done: bool,
}

impl PeObs {
    fn of(pe: &Pe) -> PeObs {
        let s = pe.stats();
        PeObs {
            vops: s.vops,
            tuples: s.tuples,
            stall_no_vr: s.stall_no_vr,
            stall_no_rs: s.stall_no_rs,
            stall_no_dense_lq: s.stall_no_dense_lq,
            lq_depth: pe.load_queue_depth() as u64,
            done: pe.is_done(),
        }
    }
}

/// One ticked PE's epoch outcome, reported by its worker.
#[derive(Debug, Clone, Copy)]
struct TickOutcome {
    /// Global PE index.
    pe: usize,
    /// Whether any sub-tick progressed.
    progressed: bool,
    /// Whether the PE finished this epoch.
    done: bool,
    /// Minimum `Waiting(t)` over the sub-ticks (`Cycle::MAX` if none).
    /// Only consulted when `progressed` is false, in which case the tick
    /// issued no shared-boundary operations and the value is a real,
    /// sentinel-free wake cycle.
    next: Cycle,
}

/// A shard's coordinator⇄worker exchange area. The worker locks it while
/// executing a command; the coordinator locks it only in the serial
/// sections between commands, when every worker is parked at the epoch
/// barrier — so the mutex is never contended, it just proves exclusivity
/// to the borrow checker.
#[derive(Debug, Default)]
struct ShardState {
    /// Global indices of this shard's due PEs this epoch (coordinator).
    due: Vec<usize>,
    /// Parallel to `due`: each PE's shared-op log (worker, tick phase).
    logs: Vec<Vec<SharedOp>>,
    /// Parallel to `due`: ticket redemption values (coordinator, replay).
    results: Vec<Vec<u64>>,
    /// Parallel to `due`: tick outcomes (worker, tick phase).
    out: Vec<TickOutcome>,
    /// Per shard-local PE: observation cache (worker, resolve phase).
    obs: Vec<PeObs>,
    /// First invariant violation found by this shard's audit, if any.
    audit_err: Option<String>,
    /// Panic message if a worker command panicked; stops the run.
    poison: Option<String>,
    /// Cumulative busy nanoseconds this worker spent executing commands.
    wall_ns: u64,
}

/// Locks ignoring poisoning: a panicked worker already records its panic
/// in `ShardState::poison`, and the coordinator still needs the state to
/// shut the run down cleanly.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Commands the coordinator issues to the workers, published in an atomic
/// before the epoch barrier is crossed.
const CMD_TICK: u8 = 0;
const CMD_RESOLVE: u8 = 1;
const CMD_AUDIT: u8 = 2;
const CMD_STOP: u8 = 3;

/// A sense-reversing spin barrier for the epoch protocol. Waits spin
/// briefly then yield, so the coordinator parking through a worker phase
/// (and vice versa) does not starve the other threads on small hosts.
struct SpinBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Reset before the generation bump publishes the release:
            // late spinners only leave once they observe the new
            // generation, so they cannot race the reset.
            self.arrived.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Why the coordinator ended the epoch loop. Deadlock diagnostics are
/// materialized only after the worker scope ends and the PE slice is
/// whole again.
enum StopReason {
    Finished,
    Deadlock(StallKind, u32),
    Error(SpadeError),
}

fn worker_panic(cycle: Cycle, msg: String) -> SpadeError {
    SpadeError::InvariantViolation {
        cycle,
        reason: format!("sharded worker panicked: {msg}"),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Tick phase, executed by each worker on its own shard: run every due
/// PE's sub-ticks against a logging port and record the outcome. The PE
/// sees `Cycle::MAX` placeholders for every shared-boundary result — all
/// strictly in the future, exactly like the real completions — so its
/// in-epoch behavior is identical to the sequential driver's.
#[allow(clippy::too_many_arguments)]
fn shard_tick(
    pes: &mut [Pe],
    base: usize,
    st: &mut ShardState,
    now: Cycle,
    clock_mult: u32,
    released: u32,
    addr: &AddressMap,
    tiled: &TiledCoo,
) {
    let ShardState { due, logs, out, .. } = st;
    out.clear();
    while logs.len() < due.len() {
        logs.push(Vec::new());
    }
    for (j, &gi) in due.iter().enumerate() {
        let log = &mut logs[j];
        log.clear();
        let pe = &mut pes[gi - base];
        let mut port = LogPort {
            agent: gi,
            ops: log,
            tickets: 0,
            released,
        };
        let mut pe_next = Cycle::MAX;
        let mut pe_progressed = false;
        for _ in 0..clock_mult {
            match pe.tick_port(now, &mut port, addr, tiled) {
                TickResult::Progressed => pe_progressed = true,
                TickResult::Waiting(t) => pe_next = pe_next.min(t),
                TickResult::Done => break,
            }
        }
        out.push(TickOutcome {
            pe: gi,
            progressed: pe_progressed,
            done: pe.is_done(),
            next: pe_next,
        });
    }
}

/// Resolve phase, executed by each worker on its own shard: redeem every
/// due PE's tickets against the replayed results and refresh its
/// observation cache. This runs even when the epoch is about to end — the
/// last flushing PE's deferred flush trace event is emitted here.
fn shard_resolve(pes: &mut [Pe], base: usize, st: &mut ShardState) {
    let ShardState {
        due, results, obs, ..
    } = st;
    for (j, &gi) in due.iter().enumerate() {
        let pe = &mut pes[gi - base];
        pe.resolve_pending(&results[j]);
        obs[gi - base] = PeObs::of(pe);
    }
}

/// Audit phase: per-PE invariant checks for this shard (the memory-system
/// half runs in the coordinator beforehand). Records the first violation
/// in shard-local PE order; the coordinator aggregates across shards in
/// shard order, which is global PE order.
fn shard_audit(pes: &[Pe], st: &mut ShardState) {
    st.audit_err = None;
    for pe in pes {
        if let Err(reason) = pe.check_invariants() {
            st.audit_err = Some(reason);
            return;
        }
    }
}

/// A worker thread's command loop: park at the epoch barrier, execute the
/// published command on this shard, park at the end barrier. Panics are
/// caught and surfaced through `ShardState::poison` so the coordinator
/// can stop the run instead of hanging the barrier.
#[allow(clippy::too_many_arguments)]
fn shard_worker(
    pes: &mut [Pe],
    base: usize,
    slot: &Mutex<ShardState>,
    barrier: &SpinBarrier,
    cmd: &AtomicU8,
    epoch_now: &AtomicU64,
    released_snap: &AtomicU32,
    clock_mult: u32,
    addr: &AddressMap,
    tiled: &TiledCoo,
) {
    loop {
        barrier.wait();
        let c = cmd.load(Ordering::Acquire);
        if c == CMD_STOP {
            return;
        }
        let t0 = std::time::Instant::now();
        let now = epoch_now.load(Ordering::Acquire);
        let released = released_snap.load(Ordering::Acquire);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut st = lock(slot);
            match c {
                CMD_TICK => shard_tick(
                    &mut *pes, base, &mut st, now, clock_mult, released, addr, tiled,
                ),
                CMD_RESOLVE => shard_resolve(pes, base, &mut st),
                _ => shard_audit(pes, &mut st),
            }
        }));
        let mut st = lock(slot);
        if let Err(payload) = caught {
            let msg = panic_message(payload.as_ref());
            st.poison.get_or_insert(msg);
        }
        st.wall_ns += t0.elapsed().as_nanos() as u64;
        drop(st);
        barrier.wait();
    }
}

/// The sharded event-driven driver: the tentpole of the intra-run
/// parallelism work.
///
/// PEs are partitioned by cluster into `ranges` (one contiguous slice per
/// worker thread). Each visited cycle is one *epoch*:
///
/// 1. **Serial** (coordinator): telemetry sample, periodic audit, cycle
///    ceiling, and popping every due PE from the global ready heap into
///    its shard's work list — identical bookkeeping, in identical order,
///    to [`run_event_loop`].
/// 2. **Tick** (parallel): each worker ticks its due PEs against a
///    [`LogPort`]. Everything a tick touches is shard-private except the
///    logged shared-boundary calls, which are answered with tickets.
/// 3. **Serial**: the coordinator replays the logs against the real
///    memory system, kernel arrays, and barrier — shard by shard in
///    ascending order, i.e. exactly the global PE order the sequential
///    driver interleaves its calls in, so memory stats, latencies, fault
///    rolls, trace events, and f32 accumulation are all bit-identical —
///    then applies the tick outcomes to the ready heap and releases the
///    barrier if it filled.
/// 4. **Resolve** (parallel): workers redeem tickets via
///    [`Pe::resolve_pending`], patching the `Cycle::MAX` placeholders to
///    the replayed completion cycles before any PE can be ticked again.
/// 5. **Serial**: termination / next-cycle decision, again identical to
///    the sequential driver.
///
/// Determinism does not depend on thread scheduling anywhere: workers
/// only order operations within single-PE logs (program order), and every
/// cross-PE merge happens in the coordinator's serial sections.
fn run_sharded_loop(
    env: LoopEnv<'_, '_>,
    ranges: &[Range<usize>],
    shard_walls: &mut Vec<f64>,
) -> Option<SpadeError> {
    let LoopEnv {
        pes,
        mem,
        barriers,
        addr,
        tiled,
        data,
        telemetry,
        sched_events,
        wake,
        now,
        clock_mult,
        watchdog,
        audit_on,
        read_bound,
        trace_on,
        sched_lane,
    } = env;
    let shards = ranges.len();
    let num_pes = pes.len();

    let cmd = AtomicU8::new(CMD_STOP);
    let epoch_now = AtomicU64::new(*now);
    let released_snap = AtomicU32::new(barriers.released());
    let barrier = SpinBarrier::new(shards + 1);
    let slots: Vec<Mutex<ShardState>> = ranges
        .iter()
        .map(|r| {
            Mutex::new(ShardState {
                obs: pes[r.clone()].iter().map(PeObs::of).collect(),
                ..ShardState::default()
            })
        })
        .collect();
    let mut shard_of = vec![0usize; num_pes];
    for (s, r) in ranges.iter().enumerate() {
        for slot in &mut shard_of[r.clone()] {
            *slot = s;
        }
    }
    // The coordinator may not touch worker-owned PEs inside the scope;
    // liveness is tracked through this mirror, updated from tick outcomes.
    let mut done_mirror: Vec<bool> = pes.iter().map(|p| p.is_done()).collect();
    let mut live = done_mirror.iter().filter(|d| !**d).count();
    let mut ready: BinaryHeap<Reverse<(Cycle, usize)>> = (0..num_pes)
        .filter(|&i| !done_mirror[i])
        .map(|i| Reverse((*now, i)))
        .collect();
    let mut dues: Vec<Vec<usize>> = vec![Vec::new(); shards];
    let mut loop_iters = 0u64;

    let stop = std::thread::scope(|scope| {
        let mut rest: &mut [Pe] = &mut pes[..];
        let mut offset = 0usize;
        for (s, r) in ranges.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(r.end - offset);
            offset = r.end;
            rest = tail;
            let slot = &slots[s];
            let (barrier, cmd) = (&barrier, &cmd);
            let (epoch_now, released_snap) = (&epoch_now, &released_snap);
            let base = r.start;
            scope.spawn(move || {
                shard_worker(
                    head,
                    base,
                    slot,
                    barrier,
                    cmd,
                    epoch_now,
                    released_snap,
                    clock_mult,
                    addr,
                    tiled,
                );
            });
        }

        let stop = 'epochs: loop {
            loop_iters += 1;
            if let Some(rec) = telemetry.as_mut() {
                rec.advance_to(*now, |c| observe_shards(mem, &slots, c));
            }
            if audit_on && loop_iters.is_multiple_of(AUDIT_PERIOD) {
                // Memory-system half first, then the PE halves — the same
                // order `audit_system` checks in.
                if let Err(reason) = mem.audit(*now, Some(read_bound)) {
                    break StopReason::Error(SpadeError::InvariantViolation {
                        cycle: *now,
                        reason,
                    });
                }
                epoch_now.store(*now, Ordering::Release);
                cmd.store(CMD_AUDIT, Ordering::Release);
                barrier.wait();
                barrier.wait();
                let mut err = None;
                for slot in &slots {
                    let mut st = lock(slot);
                    let found = st.poison.take().or_else(|| st.audit_err.take());
                    if err.is_none() {
                        err = found;
                    }
                }
                if let Some(reason) = err {
                    // Abort before ticking, like the sequential drivers.
                    break StopReason::Error(SpadeError::InvariantViolation {
                        cycle: *now,
                        reason,
                    });
                }
            }
            if let Some(max_cycles) = watchdog.max_cycles {
                if *now > max_cycles {
                    break StopReason::Deadlock(StallKind::CycleBudgetExceeded, 0);
                }
            }
            // Pop every due PE into its shard's work list (same lazy
            // deletion as the sequential heap; equal wake cycles pop in
            // PE index order, and shards are contiguous index ranges, so
            // each shard's list is already in global tick order).
            for d in dues.iter_mut() {
                d.clear();
            }
            let mut any_due = false;
            while let Some(&Reverse((w, i))) = ready.peek() {
                if wake[i] != w || done_mirror[i] {
                    ready.pop();
                    continue;
                }
                if w > *now {
                    break;
                }
                debug_assert_eq!(w, *now, "ready queue skipped a wake cycle");
                ready.pop();
                dues[shard_of[i]].push(i);
                any_due = true;
            }
            let mut progressed = false;
            if any_due {
                for (d, slot) in dues.iter_mut().zip(&slots) {
                    std::mem::swap(&mut lock(slot).due, d);
                }
                epoch_now.store(*now, Ordering::Release);
                released_snap.store(barriers.released(), Ordering::Release);
                cmd.store(CMD_TICK, Ordering::Release);
                barrier.wait();
                barrier.wait();
                for slot in &slots {
                    if let Some(msg) = lock(slot).poison.take() {
                        break 'epochs StopReason::Error(worker_panic(*now, msg));
                    }
                }
                // Replay the logs in global PE order and fold in the
                // outcomes.
                for slot in &slots {
                    let mut guard = lock(slot);
                    let ShardState {
                        due, logs, results, ..
                    } = &mut *guard;
                    while results.len() < due.len() {
                        results.push(Vec::new());
                    }
                    for (j, &gi) in due.iter().enumerate() {
                        let res = &mut results[j];
                        res.clear();
                        for op in &logs[j] {
                            match *op {
                                SharedOp::Read { line, path, class } => {
                                    let t = mem.read(gi, line, path, class, *now);
                                    debug_assert!(t > *now, "read completes in the future");
                                    res.push(t);
                                }
                                SharedOp::Write { line, path, class } => {
                                    let t = mem.write(gi, line, path, class, *now);
                                    debug_assert!(t > *now, "write accepts in the future");
                                    res.push(t);
                                }
                                SharedOp::Flush => {
                                    res.push(mem.flush_agent(gi, *now) as u64);
                                }
                                SharedOp::Apply {
                                    row,
                                    col,
                                    val,
                                    seg,
                                    func_out_idx,
                                } => {
                                    data.apply_vop(
                                        row,
                                        col,
                                        val,
                                        seg as usize,
                                        func_out_idx as usize,
                                    );
                                }
                                SharedOp::Arrive { id } => barriers.arrive(id),
                            }
                        }
                    }
                    for o in &guard.out {
                        if o.done {
                            // `wake` keeps its due value, mirroring the
                            // sequential driver's diagnostics snapshots.
                            done_mirror[o.pe] = true;
                            live -= 1;
                        } else if o.progressed {
                            progressed = true;
                            wake[o.pe] = *now + 1;
                            ready.push(Reverse((*now + 1, o.pe)));
                        } else {
                            wake[o.pe] = if o.next == Cycle::MAX {
                                Cycle::MAX
                            } else {
                                o.next.max(*now + 1)
                            };
                            if wake[o.pe] != Cycle::MAX {
                                ready.push(Reverse((wake[o.pe], o.pe)));
                            }
                        }
                    }
                }
            }
            if barriers.try_release() {
                progressed = true;
                if trace_on {
                    sched_events.push(
                        TraceEvent::instant("barrier release", "barrier", *now, sched_lane)
                            .arg("barrier", barriers.released().saturating_sub(1)),
                    );
                }
                for (i, w) in wake.iter_mut().enumerate() {
                    if *w != *now + 1 {
                        *w = *now + 1;
                        if !done_mirror[i] {
                            ready.push(Reverse((*now + 1, i)));
                        }
                    }
                }
            }
            if any_due {
                // Resolve runs even when the run is about to finish: the
                // last flushing PE's deferred flush trace event is emitted
                // here.
                cmd.store(CMD_RESOLVE, Ordering::Release);
                barrier.wait();
                barrier.wait();
                for slot in &slots {
                    if let Some(msg) = lock(slot).poison.take() {
                        break 'epochs StopReason::Error(worker_panic(*now, msg));
                    }
                }
            }
            if live == 0 {
                break StopReason::Finished;
            }
            if progressed {
                *now += 1;
                continue;
            }
            let next = loop {
                match ready.peek() {
                    Some(&Reverse((w, i))) if wake[i] != w || done_mirror[i] => {
                        ready.pop();
                    }
                    Some(&Reverse((w, _))) => break Some(w),
                    None => break None,
                }
            };
            match next {
                Some(next_event) => {
                    debug_assert!(next_event > *now);
                    if trace_on && next_event - *now >= IDLE_TRACE_MIN {
                        sched_events.push(TraceEvent::complete(
                            "idle",
                            "idle",
                            *now,
                            next_event - *now,
                            sched_lane,
                        ));
                    }
                    *now = next_event;
                }
                None => {
                    // Same closed-form replay of the naive idle spin as
                    // the sequential event driver: idle budgets count
                    // *global* idle cycles, independent of shard count.
                    let k_idle = Cycle::from(watchdog.idle_budget.max(1));
                    let (kind, k) = match watchdog.max_cycles {
                        Some(mc) if mc - *now + 1 < k_idle => {
                            (StallKind::CycleBudgetExceeded, mc - *now + 1)
                        }
                        _ => (StallKind::IdleLivelock, k_idle),
                    };
                    *now += k;
                    break StopReason::Deadlock(kind, k as u32);
                }
            }
        };
        cmd.store(CMD_STOP, Ordering::Release);
        barrier.wait();
        stop
    });

    shard_walls.extend(slots.iter().map(|s| lock(s).wall_ns as f64));
    match stop {
        StopReason::Finished => None,
        StopReason::Error(e) => Some(e),
        StopReason::Deadlock(kind, idle_iters) => {
            Some(deadlock(kind, *now, idle_iters, pes, wake, mem, barriers))
        }
    }
}

/// The sharded driver's telemetry probe: the memory half reads the real
/// [`MemorySystem`] (coordinator-owned), the PE half reads the per-shard
/// observation caches, in shard order — which is global PE order, so the
/// sample bytes match [`observe_into`] exactly.
fn observe_shards(
    mem: &MemorySystem,
    slots: &[Mutex<ShardState>],
    counters: &mut TelemetryCounters,
) -> TelemetryGauges {
    observe_mem(mem, counters);
    counters.vops = 0;
    counters.tuples = 0;
    counters.stall_no_vr = 0;
    counters.stall_no_rs = 0;
    counters.stall_no_dense_lq = 0;
    counters.pe_vops.clear();
    let mut gauges = TelemetryGauges::default();
    for slot in slots {
        let st = lock(slot);
        for o in &st.obs {
            counters.vops += o.vops;
            counters.tuples += o.tuples;
            counters.stall_no_vr += o.stall_no_vr;
            counters.stall_no_rs += o.stall_no_rs;
            counters.stall_no_dense_lq += o.stall_no_dense_lq;
            counters.pe_vops.push(o.vops);
            gauges.in_flight_loads += o.lq_depth;
            if !o.done {
                gauges.active_pes += 1;
            }
        }
    }
    gauges
}

/// Snapshots the cumulative counters and instantaneous gauges telemetry
/// samples are differenced from, reusing the recorder's scratch buffer so
/// the steady-state request path never allocates. Only called at window
/// boundaries — the recorder invokes it lazily through a closure.
fn observe_into(
    mem: &MemorySystem,
    pes: &[Pe],
    counters: &mut TelemetryCounters,
) -> TelemetryGauges {
    observe_mem(mem, counters);
    counters.vops = 0;
    counters.tuples = 0;
    counters.stall_no_vr = 0;
    counters.stall_no_rs = 0;
    counters.stall_no_dense_lq = 0;
    counters.pe_vops.clear();
    let mut gauges = TelemetryGauges::default();
    for pe in pes {
        let s = pe.stats();
        counters.vops += s.vops;
        counters.tuples += s.tuples;
        counters.stall_no_vr += s.stall_no_vr;
        counters.stall_no_rs += s.stall_no_rs;
        counters.stall_no_dense_lq += s.stall_no_dense_lq;
        counters.pe_vops.push(s.vops);
        gauges.in_flight_loads += pe.load_queue_depth() as u64;
        if !pe.is_done() {
            gauges.active_pes += 1;
        }
    }
    gauges
}

/// The memory-system half of a telemetry probe, shared between
/// [`observe_into`] and [`observe_shards`].
fn observe_mem(mem: &MemorySystem, counters: &mut TelemetryCounters) {
    let stats = mem.stats();
    counters.requests_issued = stats.requests_issued;
    counters.tlb_misses = stats.tlb_misses;
    counters.faults_injected = stats.faults_injected;
    for (i, level) in LevelKind::ALL.iter().enumerate() {
        let s = stats.level(*level);
        counters.level_accesses[i] = s.accesses;
        counters.level_hits[i] = s.hits;
    }
}

/// Runs the periodic invariant checks: memory-system audit (occupancy,
/// counters, in-flight reads) plus per-PE queue bounds.
fn audit_system(
    mem: &mut MemorySystem,
    pes: &[Pe],
    now: Cycle,
    read_bound: usize,
) -> Result<(), SpadeError> {
    if let Err(reason) = mem.audit(now, Some(read_bound)) {
        return Err(SpadeError::InvariantViolation { cycle: now, reason });
    }
    for pe in pes {
        if let Err(reason) = pe.check_invariants() {
            return Err(SpadeError::InvariantViolation { cycle: now, reason });
        }
    }
    Ok(())
}

/// Assembles a [`SpadeError::Deadlock`] from the stalled loop state.
fn deadlock(
    kind: StallKind,
    now: Cycle,
    idle_iters: u32,
    pes: &[Pe],
    wake: &[Cycle],
    mem: &mut MemorySystem,
    barriers: &BarrierSync,
) -> SpadeError {
    let earliest_wake = pes
        .iter()
        .zip(wake)
        .filter(|(pe, &w)| !pe.is_done() && w != Cycle::MAX)
        .map(|(_, &w)| w)
        .min();
    let snapshots = pes
        .iter()
        .zip(wake)
        .map(|(pe, &w)| {
            let mut s = pe.snapshot();
            s.wake_at = (w != Cycle::MAX).then_some(w);
            s
        })
        .collect();
    SpadeError::Deadlock {
        diagnostics: Box::new(StallDiagnostics {
            kind,
            cycle: now,
            idle_iters,
            earliest_wake,
            outstanding_reads: mem.outstanding_reads(now).map(|n| n as u64),
            barrier_released: barriers.released(),
            barrier_arrived: barriers.arrived(),
            pes: snapshots,
        }),
    }
}

fn validate_k(k: usize) -> Result<(), SpadeError> {
    if k == 0 || !k.is_multiple_of(FLOATS_PER_LINE) {
        return Err(SpadeError::UnalignedK { k });
    }
    Ok(())
}

/// Convenience: runs SpMM and checks the result against the gold kernel,
/// panicking on divergence. Used pervasively by tests and benches.
///
/// # Panics
///
/// Panics if the simulated output diverges from [`reference::spmm`] beyond
/// `1e-3` relative tolerance or the run fails.
pub fn run_spmm_checked(
    system: &mut SpadeSystem,
    a: &Coo,
    b: &DenseMatrix,
    plan: &ExecutionPlan,
) -> SpmmRun {
    let run = system.run_spmm(a, b, plan).expect("SpMM run failed");
    let gold = reference::spmm(a, b);
    assert!(
        reference::dense_close(&run.output, &gold, 1e-3),
        "simulated SpMM diverged from the gold kernel"
    );
    run
}

/// Convenience: runs SDDMM and checks the result against the gold kernel.
///
/// # Panics
///
/// Panics if the simulated output diverges from [`reference::sddmm`] beyond
/// `1e-3` relative tolerance or the run fails.
pub fn run_sddmm_checked(
    system: &mut SpadeSystem,
    a: &Coo,
    b: &DenseMatrix,
    c_t: &DenseMatrix,
    plan: &ExecutionPlan,
) -> SddmmRun {
    let run = system.run_sddmm(a, b, c_t, plan).expect("SDDMM run failed");
    let gold = reference::sddmm(a, b, c_t);
    assert!(
        reference::first_mismatch(run.output.vals(), &gold, 1e-3).is_none(),
        "simulated SDDMM diverged from the gold kernel"
    );
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BarrierPolicy, CMatrixPolicy, RMatrixPolicy};
    use spade_matrix::TilingConfig;

    fn small_matrix() -> Coo {
        let mut t = Vec::new();
        // A ring plus some extra structure over 64 rows.
        for i in 0..64u32 {
            t.push((i, (i + 1) % 64, 1.0 + i as f32 * 0.1));
            t.push((i, (i * 7) % 64, 0.5));
            if i % 3 == 0 {
                t.push((i, i, 2.0));
            }
        }
        Coo::from_triplets(64, 64, &t).unwrap()
    }

    fn dense(k: usize) -> DenseMatrix {
        DenseMatrix::from_fn(64, k, |r, c| ((r * 13 + c * 7) % 32) as f32 * 0.125)
    }

    fn sys() -> SpadeSystem {
        SpadeSystem::new(SystemConfig::scaled(4))
    }

    #[test]
    fn spmm_matches_gold_kernel() {
        let a = small_matrix();
        let b = dense(32);
        let run = run_spmm_checked(&mut sys(), &a, &b, &ExecutionPlan::spmm_base(&a).unwrap());
        assert!(run.report.cycles > 0);
        assert_eq!(run.report.total_nnz, a.nnz() as u64);
        assert!(run.report.total_vops >= a.nnz() as u64 * 2); // K=32 -> 2 vOps/nnz
    }

    #[test]
    fn sddmm_matches_gold_kernel() {
        let a = small_matrix();
        let b = dense(32);
        let c_t = dense(32);
        let run = run_sddmm_checked(
            &mut sys(),
            &a,
            &b,
            &c_t,
            &ExecutionPlan::sddmm_base(&a).unwrap(),
        );
        assert!(run.report.cycles > 0);
        assert_eq!(run.output.nnz(), a.nnz());
    }

    #[test]
    fn spmm_with_tiling_and_barriers_matches_gold() {
        let a = small_matrix();
        let b = dense(32);
        let plan = ExecutionPlan {
            tiling: TilingConfig::new(8, 16).unwrap(),
            r_policy: RMatrixPolicy::Cache,
            c_policy: CMatrixPolicy::Cache,
            barriers: BarrierPolicy::per_column_panel(),
        };
        let run = run_spmm_checked(&mut sys(), &a, &b, &plan);
        assert!(run.report.num_barriers > 0);
    }

    #[test]
    fn spmm_with_all_bypass_policies_matches_gold() {
        let a = small_matrix();
        let b = dense(32);
        for r_policy in [
            RMatrixPolicy::Cache,
            RMatrixPolicy::Bypass,
            RMatrixPolicy::BypassVictim,
        ] {
            for c_policy in [CMatrixPolicy::Cache, CMatrixPolicy::Bypass] {
                let plan = ExecutionPlan {
                    tiling: TilingConfig::new(16, 64).unwrap(),
                    r_policy,
                    c_policy,
                    barriers: BarrierPolicy::None,
                };
                run_spmm_checked(&mut sys(), &a, &b, &plan);
            }
        }
    }

    #[test]
    fn k128_generates_eight_vops_per_nnz() {
        let a = small_matrix();
        let b = dense(128);
        let run = run_spmm_checked(&mut sys(), &a, &b, &ExecutionPlan::spmm_base(&a).unwrap());
        assert_eq!(run.report.total_vops, a.nnz() as u64 * 8);
    }

    #[test]
    fn unaligned_k_is_rejected() {
        let a = small_matrix();
        let b = DenseMatrix::zeros(64, 20);
        let err = sys()
            .run_spmm(&a, &b, &ExecutionPlan::spmm_base(&a).unwrap())
            .unwrap_err();
        assert!(matches!(err, SpadeError::UnalignedK { k: 20 }));
    }

    #[test]
    fn undersized_b_is_rejected() {
        let a = small_matrix();
        let b = DenseMatrix::zeros(32, 32);
        assert!(matches!(
            sys().run_spmm(&a, &b, &ExecutionPlan::spmm_base(&a).unwrap()),
            Err(SpadeError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn single_pe_system_works() {
        let a = small_matrix();
        let b = dense(32);
        let mut sys = SpadeSystem::new(SystemConfig::scaled(4));
        // All tiles to one PE via a row panel covering the whole matrix.
        let plan = ExecutionPlan {
            tiling: TilingConfig::new(64, 64).unwrap(),
            r_policy: RMatrixPolicy::Cache,
            c_policy: CMatrixPolicy::Cache,
            barriers: BarrierPolicy::None,
        };
        run_spmm_checked(&mut sys, &a, &b, &plan);
    }

    #[test]
    fn empty_matrix_completes_immediately() {
        let a = Coo::from_triplets(64, 64, &[]).unwrap();
        let b = dense(32);
        let run = sys()
            .run_spmm(&a, &b, &ExecutionPlan::spmm_base(&a).unwrap())
            .unwrap();
        assert_eq!(run.report.total_vops, 0);
        assert!(run.report.cycles > 0); // instruction fetch + termination
    }

    #[test]
    fn warm_start_reduces_dram_traffic() {
        let a = small_matrix();
        let b = dense(32);
        let plan = ExecutionPlan::spmm_base(&a).unwrap();
        let mut sys = sys();
        sys.keep_warm(true);
        let cold = sys.run_spmm(&a, &b, &plan).unwrap();
        let warm = sys.run_spmm(&a, &b, &plan).unwrap();
        assert!(
            warm.report.dram_accesses < cold.report.dram_accesses,
            "warm {} vs cold {}",
            warm.report.dram_accesses,
            cold.report.dram_accesses
        );
        assert!(warm.report.cycles <= cold.report.cycles);
    }

    #[test]
    fn termination_overhead_is_small() {
        let a = small_matrix();
        let b = dense(32);
        let run = run_spmm_checked(&mut sys(), &a, &b, &ExecutionPlan::spmm_base(&a).unwrap());
        // §7.D reports ~0.2 % on large matrices; on a tiny one allow more,
        // but it must remain a modest fraction.
        assert!(run.report.termination_fraction() < 0.5);
    }

    #[test]
    fn spmv_matches_dense_reference() {
        let a = small_matrix();
        let x: Vec<f32> = (0..64).map(|i| (i % 7) as f32 * 0.5 - 1.0).collect();
        let run = sys()
            .run_spmv(&a, &x, &ExecutionPlan::spmm_base(&a).unwrap())
            .unwrap();
        // Reference: SpMM against the 1-column dense matrix.
        let b = DenseMatrix::from_fn(64, 1, |r, _| x[r]);
        let gold = reference::spmm(&a, &b);
        for r in 0..64 {
            assert!(
                (run.output[r] - gold.get(r, 0)).abs() < 1e-3,
                "row {r}: {} vs {}",
                run.output[r],
                gold.get(r, 0)
            );
        }
        // One vOp per non-zero: single-line rows.
        assert_eq!(run.report.total_vops, a.nnz() as u64);
    }

    #[test]
    fn sddvv_computes_scaled_outer_product_samples() {
        let a = small_matrix();
        let x: Vec<f32> = (0..64).map(|i| (i % 5) as f32 * 0.25).collect();
        let y: Vec<f32> = (0..64).map(|i| (i % 3) as f32 * 0.5).collect();
        let run = sys()
            .run_sddvv(&a, &x, &y, &ExecutionPlan::sddmm_base(&a).unwrap())
            .unwrap();
        for (r, c, v) in run.output.iter() {
            let orig = a
                .iter()
                .find(|&(rr, cc, _)| rr == r && cc == c)
                .expect("structure preserved")
                .2;
            let expect = orig * x[r as usize] * y[c as usize];
            assert!((v - expect).abs() < 1e-3, "({r},{c}): {v} vs {expect}");
        }
    }

    #[test]
    fn spmv_rejects_short_vector() {
        let a = small_matrix();
        let err = sys()
            .run_spmv(&a, &[1.0; 10], &ExecutionPlan::spmm_base(&a).unwrap())
            .unwrap_err();
        assert!(matches!(err, SpadeError::ShapeMismatch { .. }));
    }

    #[test]
    fn requests_per_cycle_is_positive() {
        let a = small_matrix();
        let b = dense(32);
        let run = run_spmm_checked(&mut sys(), &a, &b, &ExecutionPlan::spmm_base(&a).unwrap());
        assert!(run.report.requests_per_cycle > 0.0);
        assert!(run.report.achieved_gbps > 0.0);
    }

    #[test]
    fn observability_is_pure_observation() {
        let a = small_matrix();
        let b = dense(32);
        let plan = ExecutionPlan::spmm_base(&a).unwrap();
        let plain = sys().run_spmm(&a, &b, &plan).unwrap();

        let mut observed = sys();
        observed.set_telemetry(Some(64)).set_trace(true);
        let run = observed.run_spmm(&a, &b, &plan).unwrap();
        // Enabling telemetry + tracing must not change anything simulated.
        assert_eq!(run.report, plain.report);
        assert_eq!(run.output, plain.output);

        let series = observed.take_telemetry().expect("telemetry recorded");
        assert_eq!(series.window, 64);
        // The windows tile the whole run: total covered length is
        // cycles + 1 (cycle 0 through `cycles` inclusive).
        let covered: Cycle = series.samples.iter().map(|s| s.len).sum();
        assert_eq!(covered, run.report.cycles + 1);
        let requests: u64 = series.samples.iter().map(|s| s.requests).sum();
        assert_eq!(requests, run.report.mem.requests_issued);
        let vops: u64 = series.samples.iter().map(|s| s.vops).sum();
        assert_eq!(vops, run.report.total_vops);

        let trace = observed.take_trace().expect("trace recorded");
        assert!(!trace.is_empty());
        // One lane per PE plus the scheduler lane.
        assert_eq!(trace.lanes().len(), observed.config().num_pes + 1);
        assert!(trace.events.iter().any(|e| e.cat == "tile"));
        assert!(trace.events.iter().any(|e| e.cat == "flush"));
        assert_eq!(spade_sim::json::validate(&trace.to_chrome_json()), Ok(()));
    }

    #[test]
    fn artifacts_survive_a_watchdog_trip() {
        let a = small_matrix();
        let b = dense(32);
        let mut sys = sys();
        sys.set_watchdog(WatchdogConfig {
            idle_budget: 1_000_000,
            max_cycles: Some(50),
        });
        sys.set_telemetry(Some(16)).set_trace(true);
        let err = sys
            .run_spmm(&a, &b, &ExecutionPlan::spmm_base(&a).unwrap())
            .unwrap_err();
        assert!(matches!(err, SpadeError::Deadlock { .. }));
        // Both artifacts cover the truncated run, and the trace ends with
        // the watchdog's own report.
        assert!(sys.take_telemetry().is_some());
        let trace = sys.take_trace().expect("trace recorded");
        assert!(trace.events.iter().any(|e| e.cat == "watchdog"));
    }

    #[test]
    fn sharded_driver_is_bit_identical() {
        let a = small_matrix();
        let b = dense(32);
        let plan = ExecutionPlan {
            tiling: TilingConfig::new(8, 16).unwrap(),
            r_policy: RMatrixPolicy::Cache,
            c_policy: CMatrixPolicy::Cache,
            barriers: BarrierPolicy::per_column_panel(),
        };
        // 16 PEs = 4 clusters of 4: room for genuinely parallel shards.
        let mut gold_sys = SpadeSystem::new(SystemConfig::scaled(16));
        gold_sys
            .set_shards(1)
            .set_telemetry(Some(64))
            .set_trace(true);
        let gold = gold_sys.run_spmm(&a, &b, &plan).unwrap();
        let gold_tel = gold_sys.take_telemetry().unwrap().to_json().render();
        let gold_trace = gold_sys.take_trace().unwrap().to_chrome_json();
        for shards in [2, 3, 4, 7] {
            let mut sys = SpadeSystem::new(SystemConfig::scaled(16));
            sys.set_shards(shards)
                .set_telemetry(Some(64))
                .set_trace(true);
            let run = sys.run_spmm(&a, &b, &plan).unwrap();
            assert_eq!(
                run.report, gold.report,
                "report diverged at {shards} shards"
            );
            assert_eq!(
                run.output, gold.output,
                "output diverged at {shards} shards"
            );
            assert_eq!(run.report.shards, shards.min(4) as u32);
            assert_eq!(run.report.shard_wall_ns.len(), shards.min(4));
            let tel = sys.take_telemetry().unwrap().to_json().render();
            assert_eq!(tel, gold_tel, "telemetry bytes diverged at {shards} shards");
            let trace = sys.take_trace().unwrap().to_chrome_json();
            assert_eq!(trace, gold_trace, "trace bytes diverged at {shards} shards");
        }
    }

    #[test]
    fn sharded_watchdog_trip_matches_sequential() {
        let a = small_matrix();
        let b = dense(32);
        let plan = ExecutionPlan::spmm_base(&a).unwrap();
        let watchdog = WatchdogConfig {
            idle_budget: 1_000_000,
            max_cycles: Some(50),
        };
        let gold_err = {
            let mut sys = SpadeSystem::new(SystemConfig::scaled(16));
            sys.set_watchdog(watchdog);
            sys.run_spmm(&a, &b, &plan).unwrap_err()
        };
        let sharded_err = {
            let mut sys = SpadeSystem::new(SystemConfig::scaled(16));
            sys.set_watchdog(watchdog).set_shards(4);
            sys.run_spmm(&a, &b, &plan).unwrap_err()
        };
        match (gold_err, sharded_err) {
            (SpadeError::Deadlock { diagnostics: g }, SpadeError::Deadlock { diagnostics: s }) => {
                assert_eq!(g, s, "stall diagnostics diverged under sharding")
            }
            (g, s) => panic!("expected deadlocks, got {g:?} and {s:?}"),
        }
    }

    #[test]
    fn zero_telemetry_window_is_rejected() {
        let a = small_matrix();
        let b = dense(32);
        let mut sys = sys();
        sys.set_telemetry(Some(0));
        let err = sys
            .run_spmm(&a, &b, &ExecutionPlan::spmm_base(&a).unwrap())
            .unwrap_err();
        assert!(matches!(err, SpadeError::InvalidConfig { .. }));
    }
}
