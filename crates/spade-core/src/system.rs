//! The integrated SPADE system (§4.1): many PEs sharing the host memory
//! hierarchy, driven by the CPE's tile schedule.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use spade_matrix::{reference, Coo, DenseMatrix, TiledCoo, FLOATS_PER_LINE};
use spade_sim::{
    fast_path_default, Cycle, LevelKind, MemorySystem, TelemetryCounters, TelemetryGauges,
    TelemetryRecorder, TelemetrySeries, TraceEvent, TraceLog,
};

use crate::pe::{BarrierSync, KernelData, Pe, PeStats, RuntimeParams, TickResult};
use crate::{
    AddressMap, ExecutionPlan, Primitive, RunReport, Schedule, SpadeError, StallDiagnostics,
    StallKind, SystemConfig, WatchdogConfig,
};

/// Result of an SpMM run: the output dense matrix and the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmmRun {
    /// `D = A × B`, computed in the pipeline's out-of-order retirement
    /// order.
    pub output: DenseMatrix,
    /// Timing and traffic metrics.
    pub report: RunReport,
}

/// Result of an SDDMM run: the output sparse matrix (same structure as the
/// input) and the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct SddmmRun {
    /// `D = A ∘ (B × Cᵀ)`.
    pub output: Coo,
    /// Timing and traffic metrics.
    pub report: RunReport,
}

/// Result of an SpMV run (§9): the output vector and the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmvRun {
    /// `d = A · x`.
    pub output: Vec<f32>,
    /// Timing and traffic metrics.
    pub report: RunReport,
}

/// A simulated SPADE system.
///
/// Each call to [`SpadeSystem::run_spmm`] / [`SpadeSystem::run_sddmm`]
/// executes one SPADE-mode section: Initialization broadcast, tile
/// instructions per the CPE schedule, optional scheduling barriers, and the
/// WB&Invalidate/Termination sequence. Caches start cold unless
/// [`SpadeSystem::keep_warm`] is enabled.
///
/// # Example
///
/// ```
/// use spade_core::{ExecutionPlan, SpadeSystem, SystemConfig};
/// use spade_matrix::{reference, Coo, DenseMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Coo::from_triplets(64, 64, &[(0, 1, 2.0), (3, 2, 1.0), (63, 63, 1.0)])?;
/// let b = DenseMatrix::from_fn(64, 32, |r, c| (r + c) as f32);
/// let mut sys = SpadeSystem::new(SystemConfig::scaled(4));
/// let run = sys.run_spmm(&a, &b, &ExecutionPlan::spmm_base(&a)?)?;
/// assert!(reference::dense_close(&run.output, &reference::spmm(&a, &b), 1e-3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SpadeSystem {
    config: SystemConfig,
    mem: Option<MemorySystem>,
    keep_warm: bool,
    fast_forward: bool,
    /// Whether the memory hierarchy may use its filtered fast path
    /// (line/page filters + packed-set lookups); disabling forces the
    /// always-translate, always-lookup slow path. Bit-identical either
    /// way — pinned by the `memory_fastpath_equivalence` suite.
    mem_fast_path: bool,
    watchdog: WatchdogConfig,
    /// Telemetry window in cycles; `None` disables sampling.
    telemetry_window: Option<Cycle>,
    /// Whether to record an event trace for the next run.
    trace_on: bool,
    /// Telemetry series from the most recent run (taken, not cloned).
    last_telemetry: Option<TelemetrySeries>,
    /// Event trace from the most recent run (taken, not cloned).
    last_trace: Option<TraceLog>,
}

impl SpadeSystem {
    /// Creates a system from `config`.
    pub fn new(config: SystemConfig) -> Self {
        SpadeSystem {
            config,
            mem: None,
            keep_warm: false,
            fast_forward: true,
            // Honors the SPADE_MEM_SLOW_PATH environment veto; the
            // explicit setter overrides it per system.
            mem_fast_path: fast_path_default(),
            watchdog: WatchdogConfig::default(),
            telemetry_window: None,
            trace_on: false,
            last_telemetry: None,
            last_trace: None,
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// When enabled, subsequent runs reuse the previous run's cache
    /// contents (timing queues and statistics still reset). Used to
    /// measure the cold-start overhead of §7.D.
    pub fn keep_warm(&mut self, warm: bool) -> &mut Self {
        self.keep_warm = warm;
        self
    }

    /// Selects the driver for the cycle loop (event-driven by default).
    ///
    /// When enabled, the loop is an event-driven ready queue: PEs are held
    /// in a min-heap keyed by their next wake cycle, only due PEs are
    /// ticked, and the clock jumps straight across idle gaps. Disabling it
    /// forces the naive loop that visits every cycle and polls every PE —
    /// kept purely as the behavioral oracle. Both drivers produce
    /// bit-identical outputs, reports, telemetry, and traces (see the
    /// `fast_forward` property tests and the `scheduler_equivalence`
    /// suite); the naive loop just spends host time proportional to
    /// simulated cycles × PEs (each poll paying the full ready-scan cost —
    /// the per-PE event gates are disabled too) instead of to actual
    /// events.
    pub fn set_fast_forward(&mut self, enabled: bool) -> &mut Self {
        self.fast_forward = enabled;
        self
    }

    /// Selects the memory-hierarchy driver (fast path by default).
    ///
    /// The fast path short-circuits back-to-back same-line accesses per
    /// requester and reuses the previous STLB translation for same-page
    /// streams; disabling it forces every request through the full
    /// translate-and-lookup slow path. Both produce bit-identical
    /// outputs, reports, telemetry and traces (see the
    /// `memory_fastpath_equivalence` suite); the slow path just spends
    /// more host time. The `SPADE_MEM_SLOW_PATH` environment variable
    /// applies the same veto globally at hierarchy construction; this
    /// per-system knob exists for the equivalence suites and benches.
    pub fn set_mem_fast_path(&mut self, enabled: bool) -> &mut Self {
        self.mem_fast_path = enabled;
        self
    }

    /// Whether the memory fast path is requested for subsequent runs.
    pub fn mem_fast_path(&self) -> bool {
        self.mem_fast_path
    }

    /// Configures the deadlock watchdog: the idle budget before a run is
    /// declared livelocked, and an optional hard cycle ceiling. A tripped
    /// watchdog makes the run return [`SpadeError::Deadlock`] carrying a
    /// [`StallDiagnostics`] snapshot instead of aborting the process.
    pub fn set_watchdog(&mut self, watchdog: WatchdogConfig) -> &mut Self {
        self.watchdog = watchdog;
        self
    }

    /// The active watchdog configuration.
    pub fn watchdog(&self) -> WatchdogConfig {
        self.watchdog
    }

    /// Enables windowed telemetry sampling (window width in PE cycles) or
    /// disables it with `None`. Telemetry is pure observation: enabling it
    /// never changes a run's outputs, report, or cycle count. A zero
    /// window is rejected when the next run starts.
    pub fn set_telemetry(&mut self, window: Option<Cycle>) -> &mut Self {
        self.telemetry_window = window;
        self
    }

    /// The configured telemetry window, if sampling is enabled.
    pub fn telemetry_window(&self) -> Option<Cycle> {
        self.telemetry_window
    }

    /// Enables or disables event tracing (tile-instruction lifecycles,
    /// barriers, flushes, idle spans, fault firings, watchdog reports).
    /// Like telemetry, tracing never changes simulated behavior.
    pub fn set_trace(&mut self, enabled: bool) -> &mut Self {
        self.trace_on = enabled;
        self
    }

    /// Whether event tracing is enabled.
    pub fn trace_enabled(&self) -> bool {
        self.trace_on
    }

    /// Takes the telemetry series recorded by the most recent run (also
    /// populated when the run failed mid-way, e.g. on a watchdog trip).
    pub fn take_telemetry(&mut self) -> Option<TelemetrySeries> {
        self.last_telemetry.take()
    }

    /// Takes the event trace recorded by the most recent run (also
    /// populated when the run failed mid-way; a watchdog trip appears as
    /// its final event).
    pub fn take_trace(&mut self) -> Option<TraceLog> {
        self.last_trace.take()
    }

    /// Runs `D = A × B` under `plan`.
    ///
    /// # Errors
    ///
    /// Returns [`SpadeError::ShapeMismatch`] if `B` has fewer rows than `A`
    /// has columns, [`SpadeError::UnalignedK`] if `K` does not fill whole
    /// cache lines, and tiling errors from the plan.
    pub fn run_spmm(
        &mut self,
        a: &Coo,
        b: &DenseMatrix,
        plan: &ExecutionPlan,
    ) -> Result<SpmmRun, SpadeError> {
        self.validate_config()?;
        validate_k(b.num_cols())?;
        if b.num_rows() < a.num_cols() {
            return Err(SpadeError::ShapeMismatch {
                reason: format!(
                    "B has {} rows but A has {} columns",
                    b.num_rows(),
                    a.num_cols()
                ),
            });
        }
        let tiled = TiledCoo::new(a, plan.tiling)?;
        let mut d = DenseMatrix::zeros(a.num_rows(), b.num_cols());
        let addr = AddressMap::for_spmm(&tiled, b, &d);
        let schedule = Schedule::build(&tiled, self.config.num_pes, Primitive::Spmm, plan.barriers);
        let report = {
            let mut data = KernelData::Spmm { b, d: &mut d };
            self.simulate(Primitive::Spmm, plan, &tiled, &addr, &schedule, &mut data)?
        };
        Ok(SpmmRun { output: d, report })
    }

    /// Runs `D = A ∘ (B × Cᵀ)` under `plan`.
    ///
    /// # Errors
    ///
    /// Returns [`SpadeError::ShapeMismatch`] if `B` has fewer rows than `A`
    /// or `Cᵀ` fewer rows than `A` has columns or their `K` differs, and
    /// [`SpadeError::UnalignedK`] for a `K` that does not fill whole cache
    /// lines.
    pub fn run_sddmm(
        &mut self,
        a: &Coo,
        b: &DenseMatrix,
        c_t: &DenseMatrix,
        plan: &ExecutionPlan,
    ) -> Result<SddmmRun, SpadeError> {
        self.validate_config()?;
        validate_k(b.num_cols())?;
        if b.num_rows() < a.num_rows() || c_t.num_rows() < a.num_cols() {
            return Err(SpadeError::ShapeMismatch {
                reason: "B needs a row per row of A and Cᵀ a row per column of A".into(),
            });
        }
        if b.num_cols() != c_t.num_cols() {
            return Err(SpadeError::ShapeMismatch {
                reason: format!(
                    "B and Cᵀ disagree on K: {} vs {}",
                    b.num_cols(),
                    c_t.num_cols()
                ),
            });
        }
        let tiled = TiledCoo::new(a, plan.tiling)?;
        let addr = AddressMap::for_sddmm(&tiled, b, c_t);
        let schedule =
            Schedule::build(&tiled, self.config.num_pes, Primitive::Sddmm, plan.barriers);
        let mut out_tiled = vec![0f32; tiled.nnz()];
        let report = {
            let mut data = KernelData::Sddmm {
                b,
                c_t,
                out: &mut out_tiled,
            };
            self.simulate(Primitive::Sddmm, plan, &tiled, &addr, &schedule, &mut data)?
        };
        // Map tiled-order outputs back to the source row-major order.
        let triplets: Vec<(u32, u32, f32)> = (0..tiled.nnz())
            .map(|i| (tiled.r_ids()[i], tiled.c_ids()[i], out_tiled[i]))
            .collect();
        let output = Coo::from_triplets(a.num_rows(), a.num_cols(), &triplets)?;
        Ok(SddmmRun { output, report })
    }

    /// Runs sparse matrix × vector (`d = A · x`) — SpMM with a single
    /// dense column (§9: "SPADE can already support SpMV").
    ///
    /// The dense "matrix" is one element wide; rows still occupy whole
    /// cache lines per the SPADE layout rules, so each tuple generates one
    /// vOp.
    ///
    /// # Errors
    ///
    /// Returns [`SpadeError::ShapeMismatch`] if `x` is shorter than `A`'s
    /// column count, plus tiling errors from the plan.
    pub fn run_spmv(
        &mut self,
        a: &Coo,
        x: &[f32],
        plan: &ExecutionPlan,
    ) -> Result<SpmvRun, SpadeError> {
        self.validate_config()?;
        if x.len() < a.num_cols() {
            return Err(SpadeError::ShapeMismatch {
                reason: format!(
                    "x has {} entries but A has {} columns",
                    x.len(),
                    a.num_cols()
                ),
            });
        }
        let b = DenseMatrix::from_fn(a.num_cols(), 1, |r, _| x[r]);
        let tiled = TiledCoo::new(a, plan.tiling)?;
        let mut d = DenseMatrix::zeros(a.num_rows(), 1);
        let addr = AddressMap::for_spmm(&tiled, &b, &d);
        let schedule = Schedule::build(&tiled, self.config.num_pes, Primitive::Spmm, plan.barriers);
        let report = {
            let mut data = KernelData::Spmm { b: &b, d: &mut d };
            self.simulate(Primitive::Spmm, plan, &tiled, &addr, &schedule, &mut data)?
        };
        let output = (0..a.num_rows()).map(|r| d.get(r, 0)).collect();
        Ok(SpmvRun { output, report })
    }

    /// Runs sampled dense-vector × dense-vector (`d = A ∘ (x · yᵀ)`) — the
    /// SDDVV primitive of §9. For every non-zero `A[r, c]`, the output is
    /// `A[r, c] · x[r] · y[c]`.
    ///
    /// # Errors
    ///
    /// Returns [`SpadeError::ShapeMismatch`] when the vectors are shorter
    /// than `A`'s rows/columns, plus tiling errors from the plan.
    pub fn run_sddvv(
        &mut self,
        a: &Coo,
        x: &[f32],
        y: &[f32],
        plan: &ExecutionPlan,
    ) -> Result<SddmmRun, SpadeError> {
        self.validate_config()?;
        if x.len() < a.num_rows() || y.len() < a.num_cols() {
            return Err(SpadeError::ShapeMismatch {
                reason: "x needs an entry per row of A and y one per column".into(),
            });
        }
        let b = DenseMatrix::from_fn(a.num_rows(), 1, |r, _| x[r]);
        let c_t = DenseMatrix::from_fn(a.num_cols(), 1, |r, _| y[r]);
        let tiled = TiledCoo::new(a, plan.tiling)?;
        let addr = AddressMap::for_sddmm(&tiled, &b, &c_t);
        let schedule =
            Schedule::build(&tiled, self.config.num_pes, Primitive::Sddmm, plan.barriers);
        let mut out_tiled = vec![0f32; tiled.nnz()];
        let report = {
            let mut data = KernelData::Sddmm {
                b: &b,
                c_t: &c_t,
                out: &mut out_tiled,
            };
            self.simulate(Primitive::Sddmm, plan, &tiled, &addr, &schedule, &mut data)?
        };
        let triplets: Vec<(u32, u32, f32)> = (0..tiled.nnz())
            .map(|i| (tiled.r_ids()[i], tiled.c_ids()[i], out_tiled[i]))
            .collect();
        let output = Coo::from_triplets(a.num_rows(), a.num_cols(), &triplets)?;
        Ok(SddmmRun { output, report })
    }

    fn simulate(
        &mut self,
        primitive: Primitive,
        plan: &ExecutionPlan,
        tiled: &TiledCoo,
        addr: &AddressMap,
        schedule: &Schedule,
        data: &mut KernelData<'_>,
    ) -> Result<RunReport, SpadeError> {
        let host_start = std::time::Instant::now();
        // Artifacts describe exactly one run; drop any stale ones now so a
        // failure below cannot be mistaken for fresh observability data.
        self.last_telemetry = None;
        self.last_trace = None;
        if self.telemetry_window == Some(0) {
            return Err(SpadeError::InvalidConfig {
                reason: "telemetry window must be at least one cycle".into(),
            });
        }
        let num_pes = self.config.num_pes;
        let mut mem = match (self.keep_warm, self.mem.take()) {
            (true, Some(mut m)) if *m.config() == self.config.mem => {
                m.reset_stats();
                m
            }
            _ => MemorySystem::new(self.config.mem.clone()),
        };
        mem.set_trace(self.trace_on);
        mem.set_fast_path(self.mem_fast_path);
        let params = RuntimeParams {
            primitive,
            r_policy: plan.r_policy,
            c_policy: plan.c_policy,
            lines_per_row: (addr.dense_stride_bytes / 64) as u32,
        };
        let mut barriers = BarrierSync::new(num_pes);
        let mut pes: Vec<Pe> = (0..num_pes)
            .map(|i| {
                let mut pe = Pe::new(
                    i,
                    self.config.pipeline,
                    params,
                    schedule.commands(i).to_vec(),
                );
                pe.set_trace(self.trace_on);
                // The oracle loop models the textbook poll-everything
                // baseline: it re-runs the reservation-station ready scan
                // every polled cycle instead of trusting the event gate.
                pe.set_event_gates(self.fast_forward);
                pe
            })
            .collect();

        let clock_mult = self.config.pipeline.clock_mult.max(1);
        let watchdog = self.watchdog;
        let audit_on = mem.audit_active();
        // MSHR-style bound for in-flight read accounting: each PE holds at
        // most 3 sparse reads per sparse-LQ entry plus its dense LQ.
        let pipeline = self.config.pipeline;
        let read_bound = num_pes * (3 * pipeline.sparse_lq_entries + pipeline.dense_lq_entries);
        let mut now: Cycle = 0;
        // Per-PE wake times: a PE that reports Waiting(t) cannot change
        // state before its own next event at t (its queues are private), so
        // it is skipped until then. Barrier releases are the one external
        // wake source and reset every wake time.
        let mut wake: Vec<Cycle> = vec![0; num_pes];
        // Windowed telemetry: sampled at the top of every visited cycle,
        // before that cycle's activity, so window attribution is exact.
        let mut telemetry = self
            .telemetry_window
            .map(|w| TelemetryRecorder::new(w, num_pes));
        // Scheduler-level trace events (idle spans, barrier releases,
        // watchdog reports) on a dedicated lane after the per-PE lanes.
        let trace_on = self.trace_on;
        let sched_lane = num_pes as u64;
        let mut sched_events: Vec<TraceEvent> = Vec::new();
        // Error paths return the error through the driver instead of
        // bailing out of `simulate`, so the trace and telemetry collected
        // up to the failure are still assembled below — a deadlocked run's
        // trace is exactly the artifact one wants to look at.
        let env = LoopEnv {
            pes: &mut pes,
            mem: &mut mem,
            barriers: &mut barriers,
            addr,
            tiled,
            data,
            telemetry: &mut telemetry,
            sched_events: &mut sched_events,
            wake: &mut wake,
            now: &mut now,
            clock_mult,
            watchdog,
            audit_on,
            read_bound,
            trace_on,
            sched_lane,
        };
        let mut sim_err = if self.fast_forward {
            run_event_loop(env)
        } else {
            run_naive_loop(env)
        };
        if sim_err.is_none() && audit_on {
            if let Err(e) = audit_system(&mut mem, &pes, now, read_bound) {
                sim_err = Some(e);
            } else if let Err(reason) = mem.audit_final(now) {
                sim_err = Some(SpadeError::InvariantViolation { cycle: now, reason });
            }
        }

        // Assemble observability artifacts on success *and* failure.
        if let Some(rec) = telemetry.take() {
            self.last_telemetry = Some(rec.finish(now, |c| observe_into(&mem, &pes, c)));
        }
        if trace_on {
            let mut log = TraceLog::new();
            for i in 0..num_pes {
                log.set_lane(i as u64, format!("PE {i}"));
            }
            log.set_lane(sched_lane, "scheduler");
            if let Some(SpadeError::Deadlock { diagnostics }) = &sim_err {
                sched_events.push(diagnostics.to_trace_event(sched_lane));
            }
            for pe in pes.iter_mut() {
                log.events.append(&mut pe.take_trace_events());
            }
            log.events.append(&mut mem.take_trace_events());
            log.events.append(&mut sched_events);
            log.sort_by_time();
            self.last_trace = Some(log);
        }
        if let Some(e) = sim_err {
            return Err(e);
        }

        let pe_stats: Vec<PeStats> = pes.iter().map(|p| *p.stats()).collect();
        let mut report = RunReport::collect(
            now,
            mem.stats().clone(),
            mem.dram().achieved_gbps(now),
            mem.dram().utilization(now),
            &pe_stats,
            tiled.nnz() as u64,
            schedule.max_pe_nnz(tiled),
            schedule.num_barriers(),
        );
        report.host_wall_ns = host_start.elapsed().as_nanos() as f64;
        self.mem = Some(mem);
        Ok(report)
    }
}

impl SpadeSystem {
    fn validate_config(&self) -> Result<(), SpadeError> {
        self.config
            .pipeline
            .validate()
            .and_then(|()| self.config.mem.validate())
            .map_err(|reason| SpadeError::InvalidConfig { reason })?;
        if self.config.mem.num_agents < self.config.num_pes {
            return Err(SpadeError::InvalidConfig {
                reason: format!(
                    "memory system has {} agents but the system has {} PEs",
                    self.config.mem.num_agents, self.config.num_pes
                ),
            });
        }
        Ok(())
    }
}

/// Idle gaps at least this long (in cycles) are recorded as `idle` spans on
/// the scheduler trace lane; shorter gaps are elided so the trace size
/// stays bounded by real activity, not by cycle count.
const IDLE_TRACE_MIN: Cycle = 16;

/// The invariant auditor piggybacks on the cycle loop: every AUDIT_PERIOD
/// visited cycles it cross-checks the memory system and the PE queues.
/// Auditing is pure bookkeeping — it never feeds back into timing — so
/// enabling it cannot change a report.
const AUDIT_PERIOD: u64 = 4096;

/// Everything a cycle-loop driver needs, bundled so the event-driven and
/// naive drivers share one signature. `now` and `wake` stay borrowed from
/// `simulate` because artifact assembly and deadlock diagnostics read them
/// after the driver returns.
struct LoopEnv<'a, 'b> {
    pes: &'a mut [Pe],
    mem: &'a mut MemorySystem,
    barriers: &'a mut BarrierSync,
    addr: &'a AddressMap,
    tiled: &'a TiledCoo,
    data: &'a mut KernelData<'b>,
    telemetry: &'a mut Option<TelemetryRecorder>,
    sched_events: &'a mut Vec<TraceEvent>,
    wake: &'a mut [Cycle],
    now: &'a mut Cycle,
    clock_mult: u32,
    watchdog: WatchdogConfig,
    audit_on: bool,
    read_bound: usize,
    trace_on: bool,
    sched_lane: u64,
}

/// The event-driven cycle-loop driver (the default).
///
/// PEs sit in a lazy-deletion min-heap keyed by `(wake cycle, PE index)`;
/// an entry is valid iff it still matches `wake[i]` and the PE is live.
/// Each iteration visits one cycle: it pops and ticks every due PE (equal
/// wake cycles pop in PE index order, matching the naive scan's
/// shared-resource arbitration), then jumps `now` to the next valid entry.
/// Host work per visited cycle is `O(due PEs · log num_pes)` instead of the
/// naive loop's `O(num_pes)` per simulated cycle.
///
/// Equivalence with [`run_naive_loop`] rests on three facts. First, both
/// drivers tick exactly the PEs whose wake cycle has arrived, in index
/// order, with identical arguments — so PE and memory state evolve
/// identically. Second, cycles this driver skips are ones where the naive
/// loop ticks nothing (every live PE waiting) and the barrier cannot
/// release (arrivals only happen inside ticks), so no counter or queue can
/// change during them; telemetry windows crossed in a jump are emitted as
/// zero-delta samples, bit-identical to a cycle-by-cycle walk. Third, when
/// no finite wake remains the naive loop's idle spin is replayed
/// arithmetically, reproducing its watchdog trip cycle-for-cycle.
fn run_event_loop(env: LoopEnv<'_, '_>) -> Option<SpadeError> {
    let LoopEnv {
        pes,
        mem,
        barriers,
        addr,
        tiled,
        data,
        telemetry,
        sched_events,
        wake,
        now,
        clock_mult,
        watchdog,
        audit_on,
        read_bound,
        trace_on,
        sched_lane,
    } = env;
    let mut live = pes.iter().filter(|pe| !pe.is_done()).count();
    let mut ready: BinaryHeap<Reverse<(Cycle, usize)>> = pes
        .iter()
        .enumerate()
        .filter(|(_, pe)| !pe.is_done())
        .map(|(i, _)| Reverse((0, i)))
        .collect();
    let mut loop_iters = 0u64;
    loop {
        loop_iters += 1;
        if let Some(rec) = telemetry.as_mut() {
            rec.advance_to(*now, |c| observe_into(mem, pes, c));
        }
        if audit_on && loop_iters.is_multiple_of(AUDIT_PERIOD) {
            if let Err(e) = audit_system(mem, pes, *now, read_bound) {
                return Some(e);
            }
        }
        if let Some(max_cycles) = watchdog.max_cycles {
            if *now > max_cycles {
                return Some(deadlock(
                    StallKind::CycleBudgetExceeded,
                    *now,
                    0,
                    pes,
                    wake,
                    mem,
                    barriers,
                ));
            }
        }
        let mut progressed = false;
        while let Some(&Reverse((w, i))) = ready.peek() {
            if wake[i] != w || pes[i].is_done() {
                ready.pop(); // superseded or dead entry (lazy deletion)
                continue;
            }
            if w > *now {
                break;
            }
            debug_assert_eq!(w, *now, "ready queue skipped a wake cycle");
            ready.pop();
            let pe = &mut pes[i];
            let mut pe_next = Cycle::MAX;
            let mut pe_progressed = false;
            for _ in 0..clock_mult {
                match pe.tick(*now, mem, barriers, addr, tiled, data) {
                    TickResult::Progressed => pe_progressed = true,
                    TickResult::Waiting(t) => pe_next = pe_next.min(t),
                    TickResult::Done => break,
                }
            }
            if pe.is_done() {
                // `wake[i]` keeps its due value: deadlock snapshots show a
                // done PE's last wake, and the naive loop leaves it too.
                live -= 1;
                continue;
            }
            if pe_progressed {
                progressed = true;
                wake[i] = *now + 1;
                ready.push(Reverse((*now + 1, i)));
            } else {
                // Waiting(MAX) means blocked on a barrier; no queue entry —
                // a release re-queues it below.
                wake[i] = if pe_next == Cycle::MAX {
                    Cycle::MAX
                } else {
                    pe_next.max(*now + 1)
                };
                if wake[i] != Cycle::MAX {
                    ready.push(Reverse((wake[i], i)));
                }
            }
        }
        if barriers.try_release() {
            progressed = true;
            if trace_on {
                sched_events.push(
                    TraceEvent::instant("barrier release", "barrier", *now, sched_lane)
                        .arg("barrier", barriers.released().saturating_sub(1)),
                );
            }
            for (i, w) in wake.iter_mut().enumerate() {
                // Done PEs get their wake reset too (diagnostics snapshots
                // include them) but never a ready-queue entry. The guard
                // also keeps a PE that just progressed from being queued
                // twice for the same cycle.
                if *w != *now + 1 {
                    *w = *now + 1;
                    if !pes[i].is_done() {
                        ready.push(Reverse((*now + 1, i)));
                    }
                }
            }
        }
        if live == 0 {
            return None;
        }
        if progressed {
            *now += 1;
            continue;
        }
        let next = loop {
            match ready.peek() {
                Some(&Reverse((w, i))) if wake[i] != w || pes[i].is_done() => {
                    ready.pop();
                }
                Some(&Reverse((w, _))) => break Some(w),
                None => break None,
            }
        };
        match next {
            Some(next_event) => {
                debug_assert!(next_event > *now);
                if trace_on && next_event - *now >= IDLE_TRACE_MIN {
                    sched_events.push(TraceEvent::complete(
                        "idle",
                        "idle",
                        *now,
                        next_event - *now,
                        sched_lane,
                    ));
                }
                *now = next_event;
            }
            None => {
                // Every live PE is barrier-blocked with no finite wake, and
                // the barrier cannot release on its own: nothing can ever
                // change again. The naive loop spins one empty cycle at a
                // time until a watchdog trips; replay that spin in closed
                // form. At synthetic cycle `now + k` it first checks the
                // idle budget (trips once `k` reaches it), then the cycle
                // ceiling (trips once `now + k` exceeds it).
                let k_idle = Cycle::from(watchdog.idle_budget.max(1));
                let (kind, k) = match watchdog.max_cycles {
                    Some(mc) if mc - *now + 1 < k_idle => {
                        (StallKind::CycleBudgetExceeded, mc - *now + 1)
                    }
                    _ => (StallKind::IdleLivelock, k_idle),
                };
                *now += k;
                return Some(deadlock(kind, *now, k as u32, pes, wake, mem, barriers));
            }
        }
    }
}

/// The original cycle-by-cycle driver, kept as the behavioral oracle for
/// [`run_event_loop`]: every simulated cycle is visited and every live PE
/// polled, whether or not it can act. The PEs run with their dispatch-scan
/// event gate disabled (see [`Pe::set_event_gates`]), so each poll pays
/// the full architectural cost a textbook simulator would.
fn run_naive_loop(env: LoopEnv<'_, '_>) -> Option<SpadeError> {
    let LoopEnv {
        pes,
        mem,
        barriers,
        addr,
        tiled,
        data,
        telemetry,
        sched_events,
        wake,
        now,
        clock_mult,
        watchdog,
        audit_on,
        read_bound,
        trace_on,
        sched_lane,
    } = env;
    let mut loop_iters = 0u64;
    let mut idle_iters = 0u32;
    loop {
        loop_iters += 1;
        if let Some(rec) = telemetry.as_mut() {
            rec.advance_to(*now, |c| observe_into(mem, pes, c));
        }
        if audit_on && loop_iters.is_multiple_of(AUDIT_PERIOD) {
            if let Err(e) = audit_system(mem, pes, *now, read_bound) {
                return Some(e);
            }
        }
        if let Some(max_cycles) = watchdog.max_cycles {
            if *now > max_cycles {
                return Some(deadlock(
                    StallKind::CycleBudgetExceeded,
                    *now,
                    idle_iters,
                    pes,
                    wake,
                    mem,
                    barriers,
                ));
            }
        }
        let mut progressed = false;
        let mut all_done = true;
        let mut due_any = false;
        let mut next_event = Cycle::MAX;
        for (i, pe) in pes.iter_mut().enumerate() {
            if pe.is_done() {
                continue;
            }
            // Poll every live PE every cycle, whether or not it can act:
            // this loop is the textbook baseline the event-driven driver
            // is measured against, so it pays the full polling cost. A PE
            // with nothing due is inert under `tick` (every pipeline
            // stage is gated on a future event), so the extra polls
            // change no architectural state. `due` is recorded before the
            // tick only so the idle-gap trace span below is emitted on
            // the one cycle of the gap the event-driven driver visits.
            let due = wake[i] <= *now;
            due_any |= due;
            let mut pe_next = Cycle::MAX;
            let mut pe_progressed = false;
            for _ in 0..clock_mult {
                match pe.tick(*now, mem, barriers, addr, tiled, data) {
                    TickResult::Progressed => pe_progressed = true,
                    TickResult::Waiting(t) => pe_next = pe_next.min(t),
                    TickResult::Done => break,
                }
            }
            if pe.is_done() {
                continue;
            }
            all_done = false;
            if pe_progressed {
                debug_assert!(due, "a PE progressed on a poll it could not act in");
                progressed = true;
                wake[i] = *now + 1;
                next_event = next_event.min(*now + 1);
            } else {
                // Waiting(MAX) means blocked on a barrier; leave the
                // wake at infinity — a release resets it below.
                wake[i] = if pe_next == Cycle::MAX {
                    Cycle::MAX
                } else {
                    pe_next.max(*now + 1)
                };
                next_event = next_event.min(wake[i]);
            }
        }
        if barriers.try_release() {
            progressed = true;
            for w in wake.iter_mut() {
                *w = *now + 1;
            }
            next_event = next_event.min(*now + 1);
            if trace_on {
                sched_events.push(
                    TraceEvent::instant("barrier release", "barrier", *now, sched_lane)
                        .arg("barrier", barriers.released().saturating_sub(1)),
                );
            }
        }
        if all_done {
            return None;
        }
        if progressed {
            *now += 1;
            idle_iters = 0;
        } else if next_event != Cycle::MAX && next_event > *now {
            // Entering an idle gap: the cycles up to `next_event` are
            // walked one at a time, but nothing can change during them.
            // Record the span the event-driven driver would (`due_any`
            // limits this to the gap's first cycle — the only cycle the
            // event-driven driver visits — so the traces stay identical).
            if due_any && trace_on && next_event - *now >= IDLE_TRACE_MIN {
                sched_events.push(TraceEvent::complete(
                    "idle",
                    "idle",
                    *now,
                    next_event - *now,
                    sched_lane,
                ));
            }
            *now += 1;
            idle_iters = 0;
        } else {
            *now += 1;
            idle_iters += 1;
            if idle_iters >= watchdog.idle_budget {
                return Some(deadlock(
                    StallKind::IdleLivelock,
                    *now,
                    idle_iters,
                    pes,
                    wake,
                    mem,
                    barriers,
                ));
            }
        }
    }
}

/// Snapshots the cumulative counters and instantaneous gauges telemetry
/// samples are differenced from, reusing the recorder's scratch buffer so
/// the steady-state request path never allocates. Only called at window
/// boundaries — the recorder invokes it lazily through a closure.
fn observe_into(
    mem: &MemorySystem,
    pes: &[Pe],
    counters: &mut TelemetryCounters,
) -> TelemetryGauges {
    let stats = mem.stats();
    counters.requests_issued = stats.requests_issued;
    counters.tlb_misses = stats.tlb_misses;
    counters.faults_injected = stats.faults_injected;
    for (i, level) in LevelKind::ALL.iter().enumerate() {
        let s = stats.level(*level);
        counters.level_accesses[i] = s.accesses;
        counters.level_hits[i] = s.hits;
    }
    counters.vops = 0;
    counters.tuples = 0;
    counters.stall_no_vr = 0;
    counters.stall_no_rs = 0;
    counters.stall_no_dense_lq = 0;
    counters.pe_vops.clear();
    let mut gauges = TelemetryGauges::default();
    for pe in pes {
        let s = pe.stats();
        counters.vops += s.vops;
        counters.tuples += s.tuples;
        counters.stall_no_vr += s.stall_no_vr;
        counters.stall_no_rs += s.stall_no_rs;
        counters.stall_no_dense_lq += s.stall_no_dense_lq;
        counters.pe_vops.push(s.vops);
        gauges.in_flight_loads += pe.load_queue_depth() as u64;
        if !pe.is_done() {
            gauges.active_pes += 1;
        }
    }
    gauges
}

/// Runs the periodic invariant checks: memory-system audit (occupancy,
/// counters, in-flight reads) plus per-PE queue bounds.
fn audit_system(
    mem: &mut MemorySystem,
    pes: &[Pe],
    now: Cycle,
    read_bound: usize,
) -> Result<(), SpadeError> {
    if let Err(reason) = mem.audit(now, Some(read_bound)) {
        return Err(SpadeError::InvariantViolation { cycle: now, reason });
    }
    for pe in pes {
        if let Err(reason) = pe.check_invariants() {
            return Err(SpadeError::InvariantViolation { cycle: now, reason });
        }
    }
    Ok(())
}

/// Assembles a [`SpadeError::Deadlock`] from the stalled loop state.
fn deadlock(
    kind: StallKind,
    now: Cycle,
    idle_iters: u32,
    pes: &[Pe],
    wake: &[Cycle],
    mem: &mut MemorySystem,
    barriers: &BarrierSync,
) -> SpadeError {
    let earliest_wake = pes
        .iter()
        .zip(wake)
        .filter(|(pe, &w)| !pe.is_done() && w != Cycle::MAX)
        .map(|(_, &w)| w)
        .min();
    let snapshots = pes
        .iter()
        .zip(wake)
        .map(|(pe, &w)| {
            let mut s = pe.snapshot();
            s.wake_at = (w != Cycle::MAX).then_some(w);
            s
        })
        .collect();
    SpadeError::Deadlock {
        diagnostics: Box::new(StallDiagnostics {
            kind,
            cycle: now,
            idle_iters,
            earliest_wake,
            outstanding_reads: mem.outstanding_reads(now).map(|n| n as u64),
            barrier_released: barriers.released(),
            barrier_arrived: barriers.arrived(),
            pes: snapshots,
        }),
    }
}

fn validate_k(k: usize) -> Result<(), SpadeError> {
    if k == 0 || !k.is_multiple_of(FLOATS_PER_LINE) {
        return Err(SpadeError::UnalignedK { k });
    }
    Ok(())
}

/// Convenience: runs SpMM and checks the result against the gold kernel,
/// panicking on divergence. Used pervasively by tests and benches.
///
/// # Panics
///
/// Panics if the simulated output diverges from [`reference::spmm`] beyond
/// `1e-3` relative tolerance or the run fails.
pub fn run_spmm_checked(
    system: &mut SpadeSystem,
    a: &Coo,
    b: &DenseMatrix,
    plan: &ExecutionPlan,
) -> SpmmRun {
    let run = system.run_spmm(a, b, plan).expect("SpMM run failed");
    let gold = reference::spmm(a, b);
    assert!(
        reference::dense_close(&run.output, &gold, 1e-3),
        "simulated SpMM diverged from the gold kernel"
    );
    run
}

/// Convenience: runs SDDMM and checks the result against the gold kernel.
///
/// # Panics
///
/// Panics if the simulated output diverges from [`reference::sddmm`] beyond
/// `1e-3` relative tolerance or the run fails.
pub fn run_sddmm_checked(
    system: &mut SpadeSystem,
    a: &Coo,
    b: &DenseMatrix,
    c_t: &DenseMatrix,
    plan: &ExecutionPlan,
) -> SddmmRun {
    let run = system.run_sddmm(a, b, c_t, plan).expect("SDDMM run failed");
    let gold = reference::sddmm(a, b, c_t);
    assert!(
        reference::first_mismatch(run.output.vals(), &gold, 1e-3).is_none(),
        "simulated SDDMM diverged from the gold kernel"
    );
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BarrierPolicy, CMatrixPolicy, RMatrixPolicy};
    use spade_matrix::TilingConfig;

    fn small_matrix() -> Coo {
        let mut t = Vec::new();
        // A ring plus some extra structure over 64 rows.
        for i in 0..64u32 {
            t.push((i, (i + 1) % 64, 1.0 + i as f32 * 0.1));
            t.push((i, (i * 7) % 64, 0.5));
            if i % 3 == 0 {
                t.push((i, i, 2.0));
            }
        }
        Coo::from_triplets(64, 64, &t).unwrap()
    }

    fn dense(k: usize) -> DenseMatrix {
        DenseMatrix::from_fn(64, k, |r, c| ((r * 13 + c * 7) % 32) as f32 * 0.125)
    }

    fn sys() -> SpadeSystem {
        SpadeSystem::new(SystemConfig::scaled(4))
    }

    #[test]
    fn spmm_matches_gold_kernel() {
        let a = small_matrix();
        let b = dense(32);
        let run = run_spmm_checked(&mut sys(), &a, &b, &ExecutionPlan::spmm_base(&a).unwrap());
        assert!(run.report.cycles > 0);
        assert_eq!(run.report.total_nnz, a.nnz() as u64);
        assert!(run.report.total_vops >= a.nnz() as u64 * 2); // K=32 -> 2 vOps/nnz
    }

    #[test]
    fn sddmm_matches_gold_kernel() {
        let a = small_matrix();
        let b = dense(32);
        let c_t = dense(32);
        let run = run_sddmm_checked(
            &mut sys(),
            &a,
            &b,
            &c_t,
            &ExecutionPlan::sddmm_base(&a).unwrap(),
        );
        assert!(run.report.cycles > 0);
        assert_eq!(run.output.nnz(), a.nnz());
    }

    #[test]
    fn spmm_with_tiling_and_barriers_matches_gold() {
        let a = small_matrix();
        let b = dense(32);
        let plan = ExecutionPlan {
            tiling: TilingConfig::new(8, 16).unwrap(),
            r_policy: RMatrixPolicy::Cache,
            c_policy: CMatrixPolicy::Cache,
            barriers: BarrierPolicy::per_column_panel(),
        };
        let run = run_spmm_checked(&mut sys(), &a, &b, &plan);
        assert!(run.report.num_barriers > 0);
    }

    #[test]
    fn spmm_with_all_bypass_policies_matches_gold() {
        let a = small_matrix();
        let b = dense(32);
        for r_policy in [
            RMatrixPolicy::Cache,
            RMatrixPolicy::Bypass,
            RMatrixPolicy::BypassVictim,
        ] {
            for c_policy in [CMatrixPolicy::Cache, CMatrixPolicy::Bypass] {
                let plan = ExecutionPlan {
                    tiling: TilingConfig::new(16, 64).unwrap(),
                    r_policy,
                    c_policy,
                    barriers: BarrierPolicy::None,
                };
                run_spmm_checked(&mut sys(), &a, &b, &plan);
            }
        }
    }

    #[test]
    fn k128_generates_eight_vops_per_nnz() {
        let a = small_matrix();
        let b = dense(128);
        let run = run_spmm_checked(&mut sys(), &a, &b, &ExecutionPlan::spmm_base(&a).unwrap());
        assert_eq!(run.report.total_vops, a.nnz() as u64 * 8);
    }

    #[test]
    fn unaligned_k_is_rejected() {
        let a = small_matrix();
        let b = DenseMatrix::zeros(64, 20);
        let err = sys()
            .run_spmm(&a, &b, &ExecutionPlan::spmm_base(&a).unwrap())
            .unwrap_err();
        assert!(matches!(err, SpadeError::UnalignedK { k: 20 }));
    }

    #[test]
    fn undersized_b_is_rejected() {
        let a = small_matrix();
        let b = DenseMatrix::zeros(32, 32);
        assert!(matches!(
            sys().run_spmm(&a, &b, &ExecutionPlan::spmm_base(&a).unwrap()),
            Err(SpadeError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn single_pe_system_works() {
        let a = small_matrix();
        let b = dense(32);
        let mut sys = SpadeSystem::new(SystemConfig::scaled(4));
        // All tiles to one PE via a row panel covering the whole matrix.
        let plan = ExecutionPlan {
            tiling: TilingConfig::new(64, 64).unwrap(),
            r_policy: RMatrixPolicy::Cache,
            c_policy: CMatrixPolicy::Cache,
            barriers: BarrierPolicy::None,
        };
        run_spmm_checked(&mut sys, &a, &b, &plan);
    }

    #[test]
    fn empty_matrix_completes_immediately() {
        let a = Coo::from_triplets(64, 64, &[]).unwrap();
        let b = dense(32);
        let run = sys()
            .run_spmm(&a, &b, &ExecutionPlan::spmm_base(&a).unwrap())
            .unwrap();
        assert_eq!(run.report.total_vops, 0);
        assert!(run.report.cycles > 0); // instruction fetch + termination
    }

    #[test]
    fn warm_start_reduces_dram_traffic() {
        let a = small_matrix();
        let b = dense(32);
        let plan = ExecutionPlan::spmm_base(&a).unwrap();
        let mut sys = sys();
        sys.keep_warm(true);
        let cold = sys.run_spmm(&a, &b, &plan).unwrap();
        let warm = sys.run_spmm(&a, &b, &plan).unwrap();
        assert!(
            warm.report.dram_accesses < cold.report.dram_accesses,
            "warm {} vs cold {}",
            warm.report.dram_accesses,
            cold.report.dram_accesses
        );
        assert!(warm.report.cycles <= cold.report.cycles);
    }

    #[test]
    fn termination_overhead_is_small() {
        let a = small_matrix();
        let b = dense(32);
        let run = run_spmm_checked(&mut sys(), &a, &b, &ExecutionPlan::spmm_base(&a).unwrap());
        // §7.D reports ~0.2 % on large matrices; on a tiny one allow more,
        // but it must remain a modest fraction.
        assert!(run.report.termination_fraction() < 0.5);
    }

    #[test]
    fn spmv_matches_dense_reference() {
        let a = small_matrix();
        let x: Vec<f32> = (0..64).map(|i| (i % 7) as f32 * 0.5 - 1.0).collect();
        let run = sys()
            .run_spmv(&a, &x, &ExecutionPlan::spmm_base(&a).unwrap())
            .unwrap();
        // Reference: SpMM against the 1-column dense matrix.
        let b = DenseMatrix::from_fn(64, 1, |r, _| x[r]);
        let gold = reference::spmm(&a, &b);
        for r in 0..64 {
            assert!(
                (run.output[r] - gold.get(r, 0)).abs() < 1e-3,
                "row {r}: {} vs {}",
                run.output[r],
                gold.get(r, 0)
            );
        }
        // One vOp per non-zero: single-line rows.
        assert_eq!(run.report.total_vops, a.nnz() as u64);
    }

    #[test]
    fn sddvv_computes_scaled_outer_product_samples() {
        let a = small_matrix();
        let x: Vec<f32> = (0..64).map(|i| (i % 5) as f32 * 0.25).collect();
        let y: Vec<f32> = (0..64).map(|i| (i % 3) as f32 * 0.5).collect();
        let run = sys()
            .run_sddvv(&a, &x, &y, &ExecutionPlan::sddmm_base(&a).unwrap())
            .unwrap();
        for (r, c, v) in run.output.iter() {
            let orig = a
                .iter()
                .find(|&(rr, cc, _)| rr == r && cc == c)
                .expect("structure preserved")
                .2;
            let expect = orig * x[r as usize] * y[c as usize];
            assert!((v - expect).abs() < 1e-3, "({r},{c}): {v} vs {expect}");
        }
    }

    #[test]
    fn spmv_rejects_short_vector() {
        let a = small_matrix();
        let err = sys()
            .run_spmv(&a, &[1.0; 10], &ExecutionPlan::spmm_base(&a).unwrap())
            .unwrap_err();
        assert!(matches!(err, SpadeError::ShapeMismatch { .. }));
    }

    #[test]
    fn requests_per_cycle_is_positive() {
        let a = small_matrix();
        let b = dense(32);
        let run = run_spmm_checked(&mut sys(), &a, &b, &ExecutionPlan::spmm_base(&a).unwrap());
        assert!(run.report.requests_per_cycle > 0.0);
        assert!(run.report.achieved_gbps > 0.0);
    }

    #[test]
    fn observability_is_pure_observation() {
        let a = small_matrix();
        let b = dense(32);
        let plan = ExecutionPlan::spmm_base(&a).unwrap();
        let plain = sys().run_spmm(&a, &b, &plan).unwrap();

        let mut observed = sys();
        observed.set_telemetry(Some(64)).set_trace(true);
        let run = observed.run_spmm(&a, &b, &plan).unwrap();
        // Enabling telemetry + tracing must not change anything simulated.
        assert_eq!(run.report, plain.report);
        assert_eq!(run.output, plain.output);

        let series = observed.take_telemetry().expect("telemetry recorded");
        assert_eq!(series.window, 64);
        // The windows tile the whole run: total covered length is
        // cycles + 1 (cycle 0 through `cycles` inclusive).
        let covered: Cycle = series.samples.iter().map(|s| s.len).sum();
        assert_eq!(covered, run.report.cycles + 1);
        let requests: u64 = series.samples.iter().map(|s| s.requests).sum();
        assert_eq!(requests, run.report.mem.requests_issued);
        let vops: u64 = series.samples.iter().map(|s| s.vops).sum();
        assert_eq!(vops, run.report.total_vops);

        let trace = observed.take_trace().expect("trace recorded");
        assert!(!trace.is_empty());
        // One lane per PE plus the scheduler lane.
        assert_eq!(trace.lanes().len(), observed.config().num_pes + 1);
        assert!(trace.events.iter().any(|e| e.cat == "tile"));
        assert!(trace.events.iter().any(|e| e.cat == "flush"));
        assert_eq!(spade_sim::json::validate(&trace.to_chrome_json()), Ok(()));
    }

    #[test]
    fn artifacts_survive_a_watchdog_trip() {
        let a = small_matrix();
        let b = dense(32);
        let mut sys = sys();
        sys.set_watchdog(WatchdogConfig {
            idle_budget: 1_000_000,
            max_cycles: Some(50),
        });
        sys.set_telemetry(Some(16)).set_trace(true);
        let err = sys
            .run_spmm(&a, &b, &ExecutionPlan::spmm_base(&a).unwrap())
            .unwrap_err();
        assert!(matches!(err, SpadeError::Deadlock { .. }));
        // Both artifacts cover the truncated run, and the trace ends with
        // the watchdog's own report.
        assert!(sys.take_telemetry().is_some());
        let trace = sys.take_trace().expect("trace recorded");
        assert!(trace.events.iter().any(|e| e.cat == "watchdog"));
    }

    #[test]
    fn zero_telemetry_window_is_rejected() {
        let a = small_matrix();
        let b = dense(32);
        let mut sys = sys();
        sys.set_telemetry(Some(0));
        let err = sys
            .run_spmm(&a, &b, &ExecutionPlan::spmm_base(&a).unwrap())
            .unwrap_err();
        assert!(matches!(err, SpadeError::InvalidConfig { .. }));
    }
}
