//! SPADE system configuration: the Table 1 microarchitecture and the
//! Table 4 feature-progression configurations (CFG0–CFG5).

use spade_sim::{Cycle, MemConfig};

/// Per-PE pipeline parameters (the SPADE column of Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Entries in the sparse load queue; each entry stages one cache line
    /// of each of the three sparse arrays (16 non-zeros). Table 1: 6.
    pub sparse_lq_entries: usize,
    /// Entries in the tOp queue at the frontend/backend interface.
    /// Table 1: 16.
    pub top_queue_entries: usize,
    /// vOp reservation-station slots. Table 1: 32.
    pub rs_entries: usize,
    /// Outstanding dense-line loads. Table 1: 32.
    pub dense_lq_entries: usize,
    /// Outstanding write-backs (store queue). Table 1: 8.
    pub store_queue_entries: usize,
    /// Physical vector registers. Table 1: 64.
    pub vrf_regs: usize,
    /// Write-back manager start threshold as a dirty fraction (0.25).
    pub wb_hi: f64,
    /// Write-back manager stop threshold (0.15).
    pub wb_lo: f64,
    /// Pipelined SIMD latency in PE cycles.
    pub simd_latency: Cycle,
    /// Whether sparse-input loads bypass the cache hierarchy (a CFG4
    /// system feature — before it, sparse streams pollute the caches).
    pub sparse_bypass: bool,
    /// PE clock as a multiple of the 0.8 GHz base (4 for the 3.2 GHz
    /// CFG0/CFG1 design points: the PE performs 4 pipeline steps per
    /// simulated 0.8 GHz cycle).
    pub clock_mult: u32,
    /// Cycles to fetch/decode one tile instruction from the CPE input
    /// registers.
    pub instr_fetch_cycles: Cycle,
}

impl PipelineConfig {
    /// Checks the structural minimums the pipeline model needs to make
    /// forward progress. Notably, issuing one vOp reserves up to two
    /// dense-load-queue slots (the rMatrix and cMatrix operand lines), so
    /// `dense_lq_entries` below 2 can never issue and the PE livelocks.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a parameter is below its
    /// structural minimum.
    pub fn validate(&self) -> Result<(), String> {
        if self.dense_lq_entries < 2 {
            return Err(format!(
                "dense_lq_entries = {} but a vOp issues up to 2 dense loads; the PE could never issue",
                self.dense_lq_entries
            ));
        }
        for (name, v) in [
            ("sparse_lq_entries", self.sparse_lq_entries),
            ("top_queue_entries", self.top_queue_entries),
            ("rs_entries", self.rs_entries),
            ("store_queue_entries", self.store_queue_entries),
            ("vrf_regs", self.vrf_regs),
        ] {
            if v == 0 {
                return Err(format!("{name} must be at least 1"));
            }
        }
        Ok(())
    }

    /// The Table 1 SPADE PE.
    pub fn table1() -> Self {
        PipelineConfig {
            sparse_lq_entries: 6,
            top_queue_entries: 16,
            rs_entries: 32,
            dense_lq_entries: 32,
            store_queue_entries: 8,
            vrf_regs: 64,
            wb_hi: 0.25,
            wb_lo: 0.15,
            simd_latency: 4,
            sparse_bypass: true,
            clock_mult: 1,
            instr_fetch_cycles: 4,
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::table1()
    }
}

/// A full SPADE system: PE count, pipeline and memory hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of PEs.
    pub num_pes: usize,
    /// Pipeline parameters (identical across PEs).
    pub pipeline: PipelineConfig,
    /// The shared host memory system.
    pub mem: MemConfig,
}

impl SystemConfig {
    /// The paper's 224-PE SPADE system (Table 1).
    pub fn paper() -> Self {
        Self::with_pes(224)
    }

    /// A SPADE system with `num_pes` PEs and the full Table 1 memory
    /// parameters (LLC scales with the PE count; DRAM stays at the host's
    /// 304 GB/s).
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is not a multiple of 4.
    pub fn with_pes(num_pes: usize) -> Self {
        SystemConfig {
            num_pes,
            pipeline: PipelineConfig::table1(),
            mem: MemConfig::spade_table1(num_pes),
        }
    }

    /// A proportionally scaled system for fast experiments: LLC and DRAM
    /// bandwidth shrink with the PE count, preserving the 224-PE balance.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is not a multiple of 4.
    pub fn scaled(num_pes: usize) -> Self {
        SystemConfig {
            num_pes,
            pipeline: PipelineConfig::table1(),
            mem: MemConfig::scaled(num_pes),
        }
    }

    /// The SPADE*n* scale-up of §7.E: `factor`× PEs, DRAM bandwidth, LLC
    /// size and link latency.
    pub fn scaled_up(&self, factor: usize) -> Self {
        SystemConfig {
            num_pes: self.num_pes * factor,
            pipeline: self.pipeline,
            mem: self.mem.scaled_up(factor),
        }
    }

    /// The miniSPADE prototype chip (§6.D): four *in-order* PEs, each with
    /// an L1 and a bypass buffer, sharing one L2 and a memory buffer. The
    /// tape-out proves the front-end, tOps, vOps and cache bypassing; this
    /// preset models its structure (in-order execution = a single
    /// reservation station, a small VRF, no victim cache, one cluster).
    ///
    /// Timing uses the simulator's 0.8 GHz base rather than the die's
    /// 200 MHz — the prototype is a functional proof of concept, not a
    /// performance vehicle.
    pub fn mini_spade() -> Self {
        use spade_sim::{CacheConfig, DramConfig, StlbConfig};
        let pipeline = PipelineConfig {
            sparse_lq_entries: 2,
            top_queue_entries: 4,
            rs_entries: 1, // in-order: one vOp in flight at the RS
            dense_lq_entries: 4,
            store_queue_entries: 2,
            vrf_regs: 16,
            wb_hi: 0.25,
            wb_lo: 0.15,
            simd_latency: 4,
            sparse_bypass: true,
            clock_mult: 1,
            instr_fetch_cycles: 4,
        };
        let mem = spade_sim::MemConfig {
            num_agents: 4,
            agents_per_cluster: 4,
            l1: CacheConfig::new(4 * 1024, 4),
            victim: None,
            l2: CacheConfig::new(32 * 1024, 8),
            // The die's "memory buffer" plays the LLC role.
            llc: CacheConfig::new(64 * 1024, 8),
            llc_banks: 1,
            dram: DramConfig {
                channels: 1,
                bandwidth_gbps: 12.8,
                latency_cycles: 80,
            },
            stlb: StlbConfig {
                entries: 64,
                ways: 4,
                page_bytes: 4096,
                miss_penalty: 100,
            },
            link_latency: 16,
            l1_latency: 2,
            l2_latency: 10,
            llc_latency: 20,
            faults: spade_sim::FaultConfig::none(),
        };
        SystemConfig {
            num_pes: 4,
            pipeline,
            mem,
        }
    }

    /// One of the Table 4 configurations (CFG0–CFG4) at the given total
    /// PE budget. `base` supplies the memory system; queue sizes, PE count
    /// and clock follow Table 4:
    ///
    /// * CFG0 — 16 RS entries, 3-entry sparse LQ, ¼ the PEs at 4× clock,
    ///   sparse data through the caches.
    /// * CFG1 — CFG0 with 32 RS entries.
    /// * CFG2 — CFG1 with the full PE count at 1× clock.
    /// * CFG3 — CFG2 with a 6-entry sparse LQ.
    /// * CFG4 — CFG3 with sparse-data cache bypass (= SPADE Base).
    ///
    /// CFG5 (= SPADE Opt) is CFG4 plus flexible execution, which is a
    /// *plan* property, not a system property.
    ///
    /// # Panics
    ///
    /// Panics if `level > 4` or the PE count is not a multiple of 16
    /// (CFG0/CFG1 use a quarter of the PEs in clusters of 4).
    pub fn table4_cfg(base: &SystemConfig, level: u8) -> Self {
        assert!(level <= 4, "CFG5 is CFG4 + a tuned ExecutionPlan");
        let mut cfg = base.clone();
        if level <= 1 {
            assert!(
                base.num_pes.is_multiple_of(16),
                "CFG0/1 use a quarter of the PEs in clusters of 4"
            );
            cfg.num_pes = base.num_pes / 4;
            cfg.mem.num_agents = cfg.num_pes;
            cfg.pipeline.clock_mult = 4;
        }
        cfg.pipeline.rs_entries = if level == 0 { 16 } else { 32 };
        cfg.pipeline.sparse_lq_entries = if level <= 2 { 3 } else { 6 };
        cfg.pipeline.sparse_bypass = level >= 4;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_pipeline_matches_paper() {
        let p = PipelineConfig::table1();
        assert_eq!(p.sparse_lq_entries, 6);
        assert_eq!(p.rs_entries, 32);
        assert_eq!(p.dense_lq_entries, 32);
        assert_eq!(p.store_queue_entries, 8);
        assert_eq!(p.vrf_regs, 64);
        assert!((p.wb_hi - 0.25).abs() < 1e-12);
        assert!((p.wb_lo - 0.15).abs() < 1e-12);
    }

    #[test]
    fn paper_system_has_224_pes() {
        let s = SystemConfig::paper();
        assert_eq!(s.num_pes, 224);
        assert_eq!(s.mem.num_agents, 224);
    }

    #[test]
    fn cfg_progression_follows_table4() {
        let base = SystemConfig::scaled(64);
        let c0 = SystemConfig::table4_cfg(&base, 0);
        assert_eq!(c0.num_pes, 16);
        assert_eq!(c0.pipeline.clock_mult, 4);
        assert_eq!(c0.pipeline.rs_entries, 16);
        assert_eq!(c0.pipeline.sparse_lq_entries, 3);
        assert!(!c0.pipeline.sparse_bypass);

        let c1 = SystemConfig::table4_cfg(&base, 1);
        assert_eq!(c1.pipeline.rs_entries, 32);
        assert_eq!(c1.num_pes, 16);

        let c2 = SystemConfig::table4_cfg(&base, 2);
        assert_eq!(c2.num_pes, 64);
        assert_eq!(c2.pipeline.clock_mult, 1);
        assert_eq!(c2.pipeline.sparse_lq_entries, 3);

        let c3 = SystemConfig::table4_cfg(&base, 3);
        assert_eq!(c3.pipeline.sparse_lq_entries, 6);
        assert!(!c3.pipeline.sparse_bypass);

        let c4 = SystemConfig::table4_cfg(&base, 4);
        assert!(c4.pipeline.sparse_bypass);
        assert_eq!(c4, SystemConfig::scaled(64));
    }

    #[test]
    #[should_panic]
    fn cfg5_is_not_a_system_config() {
        let base = SystemConfig::scaled(64);
        let _ = SystemConfig::table4_cfg(&base, 5);
    }

    #[test]
    fn mini_spade_is_a_four_pe_inorder_machine() {
        let m = SystemConfig::mini_spade();
        assert_eq!(m.num_pes, 4);
        assert_eq!(m.pipeline.rs_entries, 1);
        assert!(m.mem.victim.is_none());
        assert_eq!(m.mem.num_agents, 4);
    }

    #[test]
    fn scaled_up_multiplies_pes() {
        let s = SystemConfig::scaled(8).scaled_up(2);
        assert_eq!(s.num_pes, 16);
        assert_eq!(s.mem.num_agents, 16);
    }
}
