//! Watchdog configuration and stall diagnostics.
//!
//! A starved or misconfigured system used to abort the whole process via
//! `assert!`. The watchdog turns that into data: when no PE can make
//! progress within the configured budget, [`crate::SpadeSystem`] returns
//! [`crate::SpadeError::Deadlock`] carrying a [`StallDiagnostics`]
//! snapshot — the cycle, every PE's control state and queue occupancies,
//! the outstanding memory requests and the earliest wake event — so a hang
//! becomes a debuggable report instead of a dead sweep.

use std::fmt;

use spade_sim::{Cycle, TraceEvent};

use crate::pe::PeStats;

/// Knobs for the simulation watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Consecutive no-progress loop iterations tolerated before the run is
    /// declared livelocked. Each iteration advances one cycle without any
    /// PE progressing or any future wake event existing.
    pub idle_budget: u32,
    /// Optional hard ceiling on simulated cycles; `None` means unlimited.
    /// Useful to bound exploratory sweeps over untrusted configurations.
    pub max_cycles: Option<Cycle>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            idle_budget: 1_000_000,
            max_cycles: None,
        }
    }
}

/// Why the watchdog fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StallKind {
    /// The idle budget ran out: no PE progressed and no future event was
    /// scheduled for `idle_budget` consecutive cycles.
    IdleLivelock,
    /// The run exceeded [`WatchdogConfig::max_cycles`].
    CycleBudgetExceeded,
}

impl StallKind {
    /// Short, stable label used in diagnostics output and trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            StallKind::IdleLivelock => "idle livelock",
            StallKind::CycleBudgetExceeded => "cycle budget exceeded",
        }
    }
}

/// One PE's control state and queue occupancies at watchdog time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeSnapshot {
    /// PE index.
    pub id: usize,
    /// Control-state name (e.g. `Ready`, `AtBarrier(2)`, `Done`).
    pub state: String,
    /// Commands consumed from the CPE stream.
    pub commands_done: usize,
    /// Total commands in the CPE stream.
    pub commands_total: usize,
    /// Non-zeros of the active tile not yet fetched.
    pub tile_remaining: u64,
    /// Sparse load-queue occupancy.
    pub sparse_lq: usize,
    /// tOp-queue occupancy.
    pub top_q: usize,
    /// Reservation-station occupancy.
    pub rs: usize,
    /// vOps in the SIMD pipeline.
    pub in_flight: usize,
    /// Dense loads outstanding.
    pub dense_loads: usize,
    /// Stores outstanding.
    pub stores: usize,
    /// Dirty lines awaiting the final VRF drain.
    pub pending_flush: usize,
    /// The cycle the scheduler expects this PE to wake at, if any
    /// (`None` for a PE waiting on an external event such as a barrier).
    pub wake_at: Option<Cycle>,
    /// Execution statistics up to the stall.
    pub stats: PeStats,
}

impl fmt::Display for PeSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PE {:>3} {:<20} cmds {}/{} tile_rem {} | sparse_lq {} top_q {} rs {} \
             in_flight {} dense_lds {} stores {} flush {} | wake {} | \
             tuples {} vops {} stalls(vr/rs/lq) {}/{}/{}",
            self.id,
            self.state,
            self.commands_done,
            self.commands_total,
            self.tile_remaining,
            self.sparse_lq,
            self.top_q,
            self.rs,
            self.in_flight,
            self.dense_loads,
            self.stores,
            self.pending_flush,
            match self.wake_at {
                Some(t) => t.to_string(),
                None => "external".into(),
            },
            self.stats.tuples,
            self.stats.vops,
            self.stats.stall_no_vr,
            self.stats.stall_no_rs,
            self.stats.stall_no_dense_lq,
        )
    }
}

/// Full snapshot of a stuck simulation, carried by
/// [`crate::SpadeError::Deadlock`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallDiagnostics {
    /// What tripped the watchdog.
    pub kind: StallKind,
    /// Simulated cycle at which the watchdog fired.
    pub cycle: Cycle,
    /// Consecutive no-progress iterations observed.
    pub idle_iters: u32,
    /// The earliest scheduled wake event across all PEs, if any.
    pub earliest_wake: Option<Cycle>,
    /// Memory reads still in flight, when the invariant auditor was
    /// tracking them (`None` with auditing off).
    pub outstanding_reads: Option<u64>,
    /// Barriers released so far.
    pub barrier_released: u32,
    /// PEs arrived at the current barrier.
    pub barrier_arrived: u32,
    /// Per-PE state, indexed by PE id.
    pub pes: Vec<PeSnapshot>,
}

impl StallDiagnostics {
    /// One-line headline: what fired, when, and the key loop state. The
    /// full [`Display`](fmt::Display) rendering adds a line per PE.
    pub fn summary(&self) -> String {
        format!(
            "{} at cycle {} ({} idle iterations, earliest wake {}, \
             outstanding reads {}, barrier {} released / {} arrived)",
            self.kind.as_str(),
            self.cycle,
            self.idle_iters,
            match self.earliest_wake {
                Some(t) => t.to_string(),
                None => "none".into(),
            },
            match self.outstanding_reads {
                Some(n) => n.to_string(),
                None => "untracked".into(),
            },
            self.barrier_released,
            self.barrier_arrived,
        )
    }

    /// This snapshot as an instant trace event on `lane`, so a deadlocked
    /// run's trace shows *where* the watchdog fired and carries the full
    /// human-readable report in its args.
    pub fn to_trace_event(&self, lane: u64) -> TraceEvent {
        TraceEvent::instant(
            format!("watchdog: {}", self.kind.as_str()),
            "watchdog",
            self.cycle,
            lane,
        )
        .arg("idle_iters", self.idle_iters)
        .arg("barrier_released", self.barrier_released)
        .arg("barrier_arrived", self.barrier_arrived)
        .arg("detail", self.to_string())
    }
}

impl fmt::Display for StallDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for pe in &self.pes {
            writeln!(f, "  {pe}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> PeSnapshot {
        PeSnapshot {
            id: 0,
            state: "Ready".into(),
            commands_done: 1,
            commands_total: 4,
            tile_remaining: 10,
            sparse_lq: 2,
            top_q: 1,
            rs: 3,
            in_flight: 0,
            dense_loads: 4,
            stores: 0,
            pending_flush: 0,
            wake_at: Some(123),
            stats: PeStats::default(),
        }
    }

    #[test]
    fn default_watchdog_matches_historic_budget() {
        let w = WatchdogConfig::default();
        assert_eq!(w.idle_budget, 1_000_000);
        assert_eq!(w.max_cycles, None);
    }

    #[test]
    fn display_carries_the_key_facts() {
        let d = StallDiagnostics {
            kind: StallKind::IdleLivelock,
            cycle: 4242,
            idle_iters: 17,
            earliest_wake: None,
            outstanding_reads: Some(3),
            barrier_released: 1,
            barrier_arrived: 2,
            pes: vec![snapshot()],
        };
        let text = d.to_string();
        assert!(text.contains("idle livelock"));
        assert!(text.contains("4242"));
        assert!(text.contains("PE   0"));
        assert!(text.contains("Ready"));
        // The summary is the headline of the full rendering.
        assert!(text.starts_with(&d.summary()));
    }

    #[test]
    fn trace_event_carries_the_diagnostics() {
        let d = StallDiagnostics {
            kind: StallKind::CycleBudgetExceeded,
            cycle: 99,
            idle_iters: 0,
            earliest_wake: Some(120),
            outstanding_reads: None,
            barrier_released: 0,
            barrier_arrived: 0,
            pes: vec![snapshot()],
        };
        let ev = d.to_trace_event(7);
        assert_eq!(ev.ts, 99);
        assert_eq!(ev.tid, 7);
        assert_eq!(ev.cat, "watchdog");
        assert!(ev.name.contains("cycle budget exceeded"));
        // The full Display text rides along as an arg, so trace viewers
        // show the same report the error path prints.
        let detail = ev
            .args
            .iter()
            .find(|(k, _)| *k == "detail")
            .expect("detail arg");
        assert!(format!("{:?}", detail.1).contains("PE   0"));
    }
}
