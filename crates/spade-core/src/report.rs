//! Execution reports: the metrics every figure and table of the evaluation
//! is built from.

use spade_sim::{cycles_to_ns, level_name, Cycle, DataClass, JsonValue, LevelKind, MemStats};

use crate::pe::PeStats;

/// Timing and traffic summary of one simulated SPADE-mode section.
///
/// Equality ignores [`RunReport::host_wall_ns`]: two runs of the same job
/// are *deterministically equal* when every simulated metric matches, even
/// though the host needed different amounts of real time for them.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total SPADE-mode cycles (0.8 GHz PE cycles), including the
    /// termination flush.
    pub cycles: Cycle,
    /// Wall-clock nanoseconds at the 0.8 GHz PE clock.
    pub time_ns: f64,
    /// Total DRAM accesses (reads + write-backs).
    pub dram_accesses: u64,
    /// Total LLC lookups.
    pub llc_accesses: u64,
    /// Memory requests issued per cycle across all PEs (the latency
    /// tolerance metric of Figure 10).
    pub requests_per_cycle: f64,
    /// Achieved DRAM bandwidth in GB/s.
    pub achieved_gbps: f64,
    /// Fraction of the configured DRAM bandwidth used.
    pub dram_utilization: f64,
    /// Non-zeros processed.
    pub total_nnz: u64,
    /// Non-zeros on the most-loaded PE (load-imbalance diagnostic).
    pub max_pe_nnz: u64,
    /// Scheduling barriers executed.
    pub num_barriers: u32,
    /// Cycles spent after compute finished, in the SPADE→CPU transition
    /// (VRF drain + L1/BBF write-back & invalidate, §7.D).
    pub termination_cycles: Cycle,
    /// STLB page walks.
    pub tlb_misses: u64,
    /// Full per-level memory statistics.
    pub mem: MemStats,
    /// vOps executed across all PEs.
    pub total_vops: u64,
    /// Aggregate allocation-stall cycles (no free vector register).
    pub stall_no_vr: u64,
    /// Aggregate reservation-station-full stall cycles.
    pub stall_no_rs: u64,
    /// Host wall-clock nanoseconds the simulation itself took. This is a
    /// property of the host machine, not of the modelled hardware; it is
    /// excluded from equality comparisons.
    pub host_wall_ns: f64,
    /// How many host shards drove the simulation (1 for the sequential
    /// drivers). A host-execution property like `host_wall_ns`: excluded
    /// from equality so sharded and sequential runs of the same job
    /// compare equal.
    pub shards: u32,
    /// Per-shard busy wall-clock nanoseconds (empty for the sequential
    /// drivers): the host time each worker spent ticking and resolving its
    /// PEs, for attributing `sim_cycles_per_host_sec` speedups to shard
    /// balance. Excluded from equality like `host_wall_ns`.
    pub shard_wall_ns: Vec<f64>,
}

impl PartialEq for RunReport {
    fn eq(&self, other: &Self) -> bool {
        // Everything except host_wall_ns: simulated metrics only.
        self.cycles == other.cycles
            && self.time_ns == other.time_ns
            && self.dram_accesses == other.dram_accesses
            && self.llc_accesses == other.llc_accesses
            && self.requests_per_cycle == other.requests_per_cycle
            && self.achieved_gbps == other.achieved_gbps
            && self.dram_utilization == other.dram_utilization
            && self.total_nnz == other.total_nnz
            && self.max_pe_nnz == other.max_pe_nnz
            && self.num_barriers == other.num_barriers
            && self.termination_cycles == other.termination_cycles
            && self.tlb_misses == other.tlb_misses
            && self.mem == other.mem
            && self.total_vops == other.total_vops
            && self.stall_no_vr == other.stall_no_vr
            && self.stall_no_rs == other.stall_no_rs
    }
}

impl RunReport {
    /// Builds a report from the end-of-run state.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn collect(
        cycles: Cycle,
        mem_stats: MemStats,
        achieved_gbps: f64,
        dram_utilization: f64,
        pe_stats: &[PeStats],
        total_nnz: u64,
        max_pe_nnz: u64,
        num_barriers: u32,
    ) -> Self {
        let compute_end = pe_stats
            .iter()
            .map(|s| s.flush_started_at)
            .max()
            .unwrap_or(0);
        RunReport {
            cycles,
            time_ns: cycles_to_ns(cycles),
            dram_accesses: mem_stats.dram_accesses(),
            llc_accesses: mem_stats.llc_accesses(),
            requests_per_cycle: mem_stats.requests_per_cycle(cycles),
            achieved_gbps,
            dram_utilization,
            total_nnz,
            max_pe_nnz,
            num_barriers,
            termination_cycles: cycles.saturating_sub(compute_end),
            tlb_misses: mem_stats.tlb_misses,
            total_vops: pe_stats.iter().map(|s| s.vops).sum(),
            stall_no_vr: pe_stats.iter().map(|s| s.stall_no_vr).sum(),
            stall_no_rs: pe_stats.iter().map(|s| s.stall_no_rs).sum(),
            mem: mem_stats,
            host_wall_ns: 0.0,
            shards: 1,
            shard_wall_ns: Vec::new(),
        }
    }

    /// Simulation throughput: simulated PE cycles per host wall-clock
    /// second. The figure of merit for simulator-performance work — a
    /// faster simulator moves this up with `cycles` unchanged. Zero when no
    /// host time was recorded.
    pub fn sim_cycles_per_host_sec(&self) -> f64 {
        if self.host_wall_ns <= 0.0 {
            0.0
        } else {
            self.cycles as f64 / (self.host_wall_ns / 1e9)
        }
    }

    /// Effective GFLOP/s for SpMM (`2·nnz·K` flops) at the given dense row
    /// size.
    pub fn spmm_gflops(&self, k: usize) -> f64 {
        if self.time_ns == 0.0 {
            return 0.0;
        }
        2.0 * self.total_nnz as f64 * k as f64 / self.time_ns
    }

    /// Fraction of total time spent in the termination transition.
    pub fn termination_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.termination_cycles as f64 / self.cycles as f64
        }
    }

    /// This report as a JSON object, including the per-level and per-class
    /// memory statistics. `host_wall_ns` is included for convenience but —
    /// like report equality — it describes the host, not the simulated
    /// hardware, so tooling that compares artifacts should ignore it.
    pub fn to_json(&self) -> JsonValue {
        let levels = LevelKind::ALL
            .iter()
            .map(|level| {
                let s = self.mem.level(*level);
                (
                    level_name(*level),
                    JsonValue::object([
                        ("accesses", s.accesses.into()),
                        ("hits", s.hits.into()),
                        ("misses", s.misses().into()),
                        ("writebacks", s.writebacks.into()),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        let dram_by_class = DataClass::ALL
            .iter()
            .map(|class| {
                let name = match class {
                    DataClass::SparseIn => "sparse_in",
                    DataClass::SparseOut => "sparse_out",
                    DataClass::RMatrix => "r_matrix",
                    DataClass::CMatrix => "c_matrix",
                };
                (name, self.mem.dram_by_class(*class).into())
            })
            .collect::<Vec<_>>();
        JsonValue::object([
            ("cycles", self.cycles.into()),
            ("time_ns", self.time_ns.into()),
            ("dram_accesses", self.dram_accesses.into()),
            ("llc_accesses", self.llc_accesses.into()),
            ("requests_per_cycle", self.requests_per_cycle.into()),
            ("achieved_gbps", self.achieved_gbps.into()),
            ("dram_utilization", self.dram_utilization.into()),
            ("total_nnz", self.total_nnz.into()),
            ("max_pe_nnz", self.max_pe_nnz.into()),
            ("num_barriers", self.num_barriers.into()),
            ("termination_cycles", self.termination_cycles.into()),
            ("tlb_misses", self.tlb_misses.into()),
            ("faults_injected", self.mem.faults_injected.into()),
            ("requests_issued", self.mem.requests_issued.into()),
            ("levels", JsonValue::object(levels)),
            ("dram_by_class", JsonValue::object(dram_by_class)),
            ("total_vops", self.total_vops.into()),
            ("stall_no_vr", self.stall_no_vr.into()),
            ("stall_no_rs", self.stall_no_rs.into()),
            ("host_wall_ns", self.host_wall_ns.into()),
            ("shards", self.shards.into()),
            (
                "shard_wall_ns",
                JsonValue::Array(self.shard_wall_ns.iter().map(|&w| w.into()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: Cycle, flush_at: Cycle) -> RunReport {
        let pe = PeStats {
            tuples: 100,
            vops: 200,
            flush_started_at: flush_at,
            ..Default::default()
        };
        RunReport::collect(cycles, MemStats::new(), 10.0, 0.5, &[pe], 100, 100, 0)
    }

    #[test]
    fn termination_fraction_is_relative() {
        let r = report(1000, 900);
        assert_eq!(r.termination_cycles, 100);
        assert!((r.termination_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn gflops_counts_two_flops_per_element() {
        let r = report(800, 800); // 800 cycles = 1000 ns
        let g = r.spmm_gflops(32);
        assert!((g - 2.0 * 100.0 * 32.0 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cycle_report_is_safe() {
        let r = report(0, 0);
        assert_eq!(r.termination_fraction(), 0.0);
        assert_eq!(r.requests_per_cycle, 0.0);
    }

    #[test]
    fn json_rendering_is_valid_and_complete() {
        let r = report(1000, 900);
        let text = r.to_json().render();
        assert_eq!(spade_sim::json::validate(&text), Ok(()));
        for key in [
            "\"cycles\":1000",
            "\"requests_per_cycle\"",
            "\"levels\"",
            "\"llc\"",
            "\"dram_by_class\"",
            "\"total_vops\":200",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
