use std::error::Error;
use std::fmt;

use spade_matrix::MatrixError;

use crate::diag::StallDiagnostics;

/// Errors produced when planning or running a SPADE execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpadeError {
    /// The underlying matrix operation failed (bad tiling, bad shapes…).
    Matrix(MatrixError),
    /// The dense operands do not match the sparse matrix shape.
    ShapeMismatch {
        /// Explanation of the mismatch.
        reason: String,
    },
    /// The dense row size `K` is not a multiple of the cache-line size
    /// (a SPADE data-layout requirement, §4.3).
    UnalignedK {
        /// The offending K.
        k: usize,
    },
    /// A configuration parameter is invalid (zero queue, empty VRF…).
    InvalidConfig {
        /// Explanation of the invalid parameter.
        reason: String,
    },
    /// The simulation watchdog fired: no PE could make progress within the
    /// configured budget. The diagnostics describe exactly where every PE
    /// was stuck.
    Deadlock {
        /// Snapshot of the stalled system (boxed: it carries per-PE
        /// state and would otherwise dominate the size of every `Result`).
        diagnostics: Box<StallDiagnostics>,
    },
    /// The invariant auditor detected an internal inconsistency (queue
    /// over-occupancy, leaked in-flight requests, impossible counters).
    InvariantViolation {
        /// Simulated cycle at which the violation was detected.
        cycle: u64,
        /// Description of the violated invariant.
        reason: String,
    },
}

impl fmt::Display for SpadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpadeError::Matrix(e) => write!(f, "matrix error: {e}"),
            SpadeError::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
            SpadeError::UnalignedK { k } => write!(
                f,
                "dense row size {k} is not a multiple of the cache line ({} floats)",
                spade_matrix::FLOATS_PER_LINE
            ),
            SpadeError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SpadeError::Deadlock { diagnostics } => {
                write!(f, "simulation deadlock: {diagnostics}")
            }
            SpadeError::InvariantViolation { cycle, reason } => {
                write!(f, "invariant violation at cycle {cycle}: {reason}")
            }
        }
    }
}

impl Error for SpadeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpadeError::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MatrixError> for SpadeError {
    fn from(e: MatrixError) -> Self {
        SpadeError::Matrix(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = SpadeError::UnalignedK { k: 20 };
        assert!(e.to_string().contains("20"));
        let e = SpadeError::from(MatrixError::DimensionTooLarge { dim: 1 });
        assert!(e.to_string().starts_with("matrix error"));
    }

    #[test]
    fn source_is_chained_for_matrix_errors() {
        let e = SpadeError::from(MatrixError::DimensionTooLarge { dim: 1 });
        assert!(e.source().is_some());
        let e = SpadeError::UnalignedK { k: 1 };
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SpadeError>();
    }
}
