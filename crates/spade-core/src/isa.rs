//! The SPADE tile ISA (Figure 4c).
//!
//! SPADE is programmable through five coarse-grained instructions that the
//! control processing element (CPE) writes into each PE's memory-mapped
//! input registers: *Initialization*, *Tile*, *Scheduling Barrier*,
//! *WB&Invalidate* and *Termination*. Instructions are tile-granular, so
//! PEs never fetch or decode fine-grained instruction streams (§4.2).

/// Which kernel a SPADE-mode section executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// Sparse × dense → dense.
    Spmm,
    /// Sampled dense × dense → sparse.
    Sddmm,
}

impl std::fmt::Display for Primitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Primitive::Spmm => write!(f, "SpMM"),
            Primitive::Sddmm => write!(f, "SDDMM"),
        }
    }
}

/// Cache-hierarchy policy for rMatrix accesses (§5.2).
///
/// The rMatrix (`D` in SpMM, `B` in SDDMM) is only reused within a single
/// PE, so caching it can pollute the shared caches. SPADE exposes three
/// choices: cache it normally, bypass all caches, or bypass while staging
/// the small reused working set in the BBF's victim cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RMatrixPolicy {
    /// Through the cache hierarchy.
    Cache,
    /// Bypass all caches (high VRF reuse case).
    Bypass,
    /// Bypass the caches but stage lines in the BBF victim cache (small
    /// reused working set, large total footprint).
    BypassVictim,
}

/// Cache-hierarchy policy for cMatrix accesses.
///
/// The cMatrix is shared across PEs and processed in row order inside a
/// tile, so VRF reuse is rare and caching is usually best (§5.2); bypass
/// remains available as a knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CMatrixPolicy {
    /// Through the cache hierarchy (the recommended default).
    Cache,
    /// Bypass all caches.
    Bypass,
}

/// The *Initialization* instruction: broadcast to every PE before any tile
/// work, carrying base addresses, bypass strategies and data-shape
/// parameters. PEs store it in special registers and reconfigure their
/// hardware (§4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InitInstruction {
    /// SpMM or SDDMM.
    pub primitive: Primitive,
    /// Base byte address of the rMatrix.
    pub r_matrix_base: u64,
    /// Base byte address of the cMatrix.
    pub c_matrix_base: u64,
    /// Base byte address of the tiled `r_ids` array.
    pub r_ids_base: u64,
    /// Base byte address of the tiled `c_ids` array.
    pub c_ids_base: u64,
    /// Base byte address of the tiled `vals` array.
    pub vals_base: u64,
    /// Base byte address of the output `vals` array (SDDMM only).
    pub sparse_out_base: u64,
    /// rMatrix bypass strategy.
    pub r_policy: RMatrixPolicy,
    /// cMatrix bypass strategy.
    pub c_policy: CMatrixPolicy,
    /// Bytes per sparse index (4 in this model).
    pub index_bytes: u32,
    /// Bytes per value (4 in this model).
    pub val_bytes: u32,
    /// Dense row size `K` in elements; must fill whole cache lines.
    pub k: u32,
    /// Row stride of the dense matrices in bytes (≥ `k · val_bytes`,
    /// cache-line aligned).
    pub dense_stride_bytes: u32,
}

/// The *Tile* instruction: process one tile of the sparse input (§4.2).
/// Arguments come straight from the Appendix A tiling metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileInstruction {
    /// Offset (in non-zeros) of the tile's first entry in the tiled arrays
    /// (`sparse_in start offset`).
    pub sparse_in_offset: u64,
    /// Offset (in values) of the tile's first output in the output values
    /// array (`sparse_out start offset`, SDDMM only).
    pub sparse_out_offset: u64,
    /// Number of non-zeros in the tile (`NNZ_num`). Unbounded — SPADE
    /// imposes no tile-size constraints.
    pub nnz: u64,
}

/// One instruction as delivered by the CPE to a PE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instruction {
    /// Configure the PE for a kernel.
    Init(InitInstruction),
    /// Process a tile.
    Tile(TileInstruction),
    /// Wait until every PE has reached this barrier (§4.3). The payload is
    /// the barrier's sequence number.
    SchedulingBarrier(u32),
    /// Write back and invalidate the PE's L1 and BBF (§4.3).
    WbInvalidate,
    /// Pause the PE and end its SPADE-mode section.
    Termination,
}

impl Instruction {
    /// `true` for [`Instruction::Tile`].
    pub fn is_tile(&self) -> bool {
        matches!(self, Instruction::Tile(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_display_matches_paper() {
        assert_eq!(Primitive::Spmm.to_string(), "SpMM");
        assert_eq!(Primitive::Sddmm.to_string(), "SDDMM");
    }

    #[test]
    fn instruction_discriminates_tiles() {
        let t = Instruction::Tile(TileInstruction {
            sparse_in_offset: 0,
            sparse_out_offset: 0,
            nnz: 7,
        });
        assert!(t.is_tile());
        assert!(!Instruction::Termination.is_tile());
        assert!(!Instruction::SchedulingBarrier(0).is_tile());
    }

    #[test]
    fn policies_are_copy_and_comparable() {
        let p = RMatrixPolicy::BypassVictim;
        let q = p;
        assert_eq!(p, q);
        assert_ne!(CMatrixPolicy::Cache, CMatrixPolicy::Bypass);
    }
}
