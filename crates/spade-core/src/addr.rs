//! Virtual-address layout of the matrix data structures.
//!
//! SPADE PEs use the host's virtual addresses directly (§4.1), so the
//! simulation assigns each array a page-aligned region of a single shared
//! address space and derives cache-line addresses from element indices.

use spade_matrix::{DenseMatrix, TiledCoo, CACHE_LINE_BYTES};
use spade_sim::Line;

const PAGE: u64 = 4096;

fn page_align(addr: u64) -> u64 {
    addr.div_ceil(PAGE) * PAGE
}

/// Page-aligned virtual-address assignment for one kernel invocation.
///
/// # Example
///
/// ```
/// use spade_core::AddressMap;
/// use spade_matrix::{Coo, DenseMatrix, TiledCoo, TilingConfig};
///
/// # fn main() -> Result<(), spade_matrix::MatrixError> {
/// let a = Coo::from_triplets(4, 4, &[(0, 1, 1.0)])?;
/// let tiled = TiledCoo::new(&a, TilingConfig::new(2, 2)?)?;
/// let b = DenseMatrix::zeros(4, 32);
/// let d = DenseMatrix::zeros(4, 32);
/// let map = AddressMap::for_spmm(&tiled, &b, &d);
/// // Distinct arrays never share a cache line.
/// assert_ne!(map.r_ids_line(0), map.c_ids_line(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    /// Base byte address of the tiled `r_ids` array (4 B entries).
    pub r_ids_base: u64,
    /// Base byte address of the tiled `c_ids` array (4 B entries).
    pub c_ids_base: u64,
    /// Base byte address of the tiled `vals` array (4 B entries).
    pub vals_base: u64,
    /// Base byte address of the rMatrix (row-major, padded rows).
    pub r_matrix_base: u64,
    /// Base byte address of the cMatrix (row-major, padded rows).
    pub c_matrix_base: u64,
    /// Base byte address of the SDDMM output values array.
    pub sparse_out_base: u64,
    /// Dense row stride in bytes (same for rMatrix and cMatrix).
    pub dense_stride_bytes: u64,
}

impl AddressMap {
    /// Lays out the arrays of an SpMM invocation: `A` (tiled), `B`
    /// (cMatrix) and `D` (rMatrix).
    pub fn for_spmm(a: &TiledCoo, b: &DenseMatrix, d: &DenseMatrix) -> Self {
        Self::layout(a, d, b, 0)
    }

    /// Lays out the arrays of an SDDMM invocation: `A` (tiled), `B`
    /// (rMatrix), `Cᵀ` (cMatrix) and the output values.
    pub fn for_sddmm(a: &TiledCoo, b: &DenseMatrix, c_t: &DenseMatrix) -> Self {
        Self::layout(a, b, c_t, a.out_len_padded() as u64 * 4)
    }

    fn layout(
        a: &TiledCoo,
        r_matrix: &DenseMatrix,
        c_matrix: &DenseMatrix,
        out_bytes: u64,
    ) -> Self {
        let nnz_bytes = a.nnz() as u64 * 4;
        let mut cursor = PAGE; // leave page 0 unmapped
        let r_ids_base = cursor;
        cursor = page_align(cursor + nnz_bytes);
        let c_ids_base = cursor;
        cursor = page_align(cursor + nnz_bytes);
        let vals_base = cursor;
        cursor = page_align(cursor + nnz_bytes);
        let r_matrix_base = cursor;
        cursor = page_align(cursor + r_matrix.size_bytes() as u64);
        let c_matrix_base = cursor;
        cursor = page_align(cursor + c_matrix.size_bytes() as u64);
        let sparse_out_base = cursor;
        debug_assert_eq!(
            r_matrix.row_stride(),
            c_matrix.row_stride(),
            "rMatrix and cMatrix share K and therefore the stride"
        );
        let _ = out_bytes;
        AddressMap {
            r_ids_base,
            c_ids_base,
            vals_base,
            r_matrix_base,
            c_matrix_base,
            sparse_out_base,
            dense_stride_bytes: r_matrix.row_stride() as u64 * 4,
        }
    }

    /// Cache line holding entry `idx` of the `r_ids` array.
    #[inline]
    pub fn r_ids_line(&self, idx: u64) -> Line {
        (self.r_ids_base + idx * 4) / CACHE_LINE_BYTES as u64
    }

    /// Cache line holding entry `idx` of the `c_ids` array.
    #[inline]
    pub fn c_ids_line(&self, idx: u64) -> Line {
        (self.c_ids_base + idx * 4) / CACHE_LINE_BYTES as u64
    }

    /// Cache line holding entry `idx` of the `vals` array.
    #[inline]
    pub fn vals_line(&self, idx: u64) -> Line {
        (self.vals_base + idx * 4) / CACHE_LINE_BYTES as u64
    }

    /// First cache line of rMatrix row `row`.
    #[inline]
    pub fn r_matrix_line(&self, row: u64, line_in_row: u64) -> Line {
        (self.r_matrix_base + row * self.dense_stride_bytes) / CACHE_LINE_BYTES as u64 + line_in_row
    }

    /// First cache line of cMatrix row `row`.
    #[inline]
    pub fn c_matrix_line(&self, row: u64, line_in_row: u64) -> Line {
        (self.c_matrix_base + row * self.dense_stride_bytes) / CACHE_LINE_BYTES as u64 + line_in_row
    }

    /// Cache line holding output value `idx` of the SDDMM output array.
    #[inline]
    pub fn sparse_out_line(&self, idx: u64) -> Line {
        (self.sparse_out_base + idx * 4) / CACHE_LINE_BYTES as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_matrix::{Coo, TilingConfig};

    fn fixture() -> (TiledCoo, DenseMatrix, DenseMatrix) {
        let a = Coo::from_triplets(8, 8, &[(0, 1, 1.0), (7, 7, 2.0), (3, 4, 3.0)]).unwrap();
        let tiled = TiledCoo::new(&a, TilingConfig::new(4, 4).unwrap()).unwrap();
        let b = DenseMatrix::zeros(8, 32);
        let d = DenseMatrix::zeros(8, 32);
        (tiled, b, d)
    }

    #[test]
    fn regions_are_disjoint_and_page_aligned() {
        let (tiled, b, d) = fixture();
        let m = AddressMap::for_spmm(&tiled, &b, &d);
        let bases = [
            m.r_ids_base,
            m.c_ids_base,
            m.vals_base,
            m.r_matrix_base,
            m.c_matrix_base,
            m.sparse_out_base,
        ];
        for w in bases.windows(2) {
            assert!(w[0] < w[1], "regions must ascend: {bases:?}");
        }
        for b in bases {
            assert_eq!(b % PAGE, 0);
        }
    }

    #[test]
    fn dense_rows_start_on_line_boundaries() {
        let (tiled, b, d) = fixture();
        let m = AddressMap::for_spmm(&tiled, &b, &d);
        // K = 32 floats = 2 lines per row.
        assert_eq!(m.dense_stride_bytes, 128);
        assert_eq!(m.r_matrix_line(1, 0) - m.r_matrix_line(0, 0), 2);
        assert_eq!(m.r_matrix_line(0, 1), m.r_matrix_line(0, 0) + 1);
    }

    #[test]
    fn sparse_arrays_pack_sixteen_entries_per_line() {
        let (tiled, b, d) = fixture();
        let m = AddressMap::for_spmm(&tiled, &b, &d);
        assert_eq!(m.r_ids_line(0), m.r_ids_line(15));
        assert_ne!(m.r_ids_line(0), m.r_ids_line(16));
    }

    #[test]
    fn sddmm_layout_allocates_output_region() {
        let (tiled, b, d) = fixture();
        let m = AddressMap::for_sddmm(&tiled, &b, &d);
        assert!(m.sparse_out_base > m.c_matrix_base);
        // Output index 0 and 15 share a line.
        assert_eq!(m.sparse_out_line(0), m.sparse_out_line(15));
    }
}
