//! Structure-driven plan selection — the "inspector" role of §4.2.
//!
//! Before a SPADE-mode section, "a compiler or a programmer analyzes the
//! sparse input matrix and decides on a set of good configuration
//! parameters". [`advise`] is that analysis pass: a heuristic that reads
//! the matrix's structural statistics (degree skew, locality, row count)
//! and the target system's capacities, and picks tile sizes, bypass
//! strategies and a barrier policy *without* running the §7.A exhaustive
//! search. It encodes the paper's own findings:
//!
//! * low-RU matrices (near-diagonal, low degree) want full-width column
//!   panels and plain caching — SPADE Base is already a good fit (§7.A);
//! * high-RU, hub-heavy matrices want column panels sized to the LLC and
//!   scheduling barriers to bound the concurrent cMatrix working set
//!   (§7.C, Table 5);
//! * matrices with very few rows want small row panels to fight load
//!   imbalance (MYC in §7.A);
//! * rMatrix bypass helps when rMatrix rows are barely reused outside the
//!   VRF (low average degree per row panel), and hurts when the reused
//!   working set overflows the victim cache (Table 6).

use spade_matrix::analysis::{MatrixFeatures, MatrixStats, RestructuringUtility};
use spade_matrix::{Coo, TilingConfig, CACHE_LINE_BYTES, FLOATS_PER_LINE};

use crate::{
    BarrierPolicy, CMatrixPolicy, ExecutionPlan, PlanSearchSpace, RMatrixPolicy, SpadeError,
    SystemConfig,
};

/// Which tier of the advise policy produced a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdviseSource {
    /// A fitted cost model ranked the candidate plans.
    Model,
    /// The structural heuristic ([`advise`]) picked the plan.
    Heuristic,
    /// Exhaustive simulation (`find_opt`) picked the plan.
    Exhaustive,
}

impl AdviseSource {
    /// Stable lower-case name, used in wire responses and metric labels.
    pub fn as_str(&self) -> &'static str {
        match self {
            AdviseSource::Model => "model",
            AdviseSource::Heuristic => "heuristic",
            AdviseSource::Exhaustive => "exhaustive",
        }
    }
}

impl std::fmt::Display for AdviseSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The outcome of [`advise_tiered`]: a plan plus where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// The selected execution plan.
    pub plan: ExecutionPlan,
    /// Which tier selected it.
    pub source: AdviseSource,
    /// The model's cycle prediction for the plan, when the model tier ran.
    pub predicted_cycles: Option<f64>,
}

/// A fitted cost model's view, as the advisor needs it: rank candidate
/// plans by predicted cycles without simulating.
///
/// Implemented by `spade-bench`'s trained `CostModel`; defined here so the
/// advisor stays free of the training machinery (spade-core cannot depend
/// on spade-bench).
pub trait PlanRanker {
    /// `true` when the model trusts its own predictions enough to drive
    /// plan selection (trained on enough rows, acceptable holdout error,
    /// matching feature-vector version). Unconfident rankers are skipped
    /// and the heuristic tier answers instead.
    fn confident(&self) -> bool;

    /// Ranks `plans` for a matrix with structural `features`, dense row
    /// size `k` and `pes` processing elements. Returns `(index into
    /// plans, predicted cycles)` sorted ascending by predicted cycles
    /// (ties broken by index), or `None` when the model cannot score
    /// these inputs.
    fn rank(
        &self,
        features: &MatrixFeatures,
        k: usize,
        pes: usize,
        plans: &[ExecutionPlan],
    ) -> Option<Vec<(usize, f64)>>;
}

/// The candidate plans the model tier ranks: the quick Table-3 space plus
/// the structural heuristic's pick and SPADE Base, deduplicated. Base is
/// always present, so a sane ranker can never do worse than the worst
/// candidate and an exhaustive sweep over this list contains the
/// heuristic answer.
///
/// # Errors
///
/// Returns [`SpadeError::Matrix`] only for degenerate shapes (zero
/// columns).
pub fn advise_candidates(
    a: &Coo,
    k: usize,
    system: &SystemConfig,
) -> Result<Vec<ExecutionPlan>, SpadeError> {
    let mut plans = PlanSearchSpace::quick(k).enumerate(a);
    let heuristic = advise(a, k, system)?;
    if !plans.contains(&heuristic) {
        plans.push(heuristic);
    }
    let base = ExecutionPlan::spmm_base(a)?;
    if !plans.contains(&base) {
        plans.push(base);
    }
    Ok(plans)
}

/// Three-tier plan selection (the `advise --fast` policy):
///
/// 1. **Model** — when `ranker` is present and [`PlanRanker::confident`],
///    rank the [`advise_candidates`] list and return the top plan with
///    its predicted cycles.
/// 2. **Heuristic** — otherwise fall back to the structural [`advise`].
/// 3. **Exhaustive** — full simulation is *not* run here; callers that
///    want `find_opt` ground truth invoke it explicitly (it is demoted
///    to an offline verification path).
///
/// # Errors
///
/// Returns [`SpadeError::Matrix`] only for degenerate shapes (zero
/// columns).
pub fn advise_tiered(
    a: &Coo,
    k: usize,
    system: &SystemConfig,
    ranker: Option<&dyn PlanRanker>,
) -> Result<Advice, SpadeError> {
    if let Some(model) = ranker {
        if model.confident() {
            let features = MatrixFeatures::compute(a);
            let candidates = advise_candidates(a, k, system)?;
            if let Some(ranked) = model.rank(&features, k, system.num_pes, &candidates) {
                if let Some(&(best, predicted)) = ranked.first() {
                    if best < candidates.len() && predicted.is_finite() {
                        return Ok(Advice {
                            plan: candidates[best],
                            source: AdviseSource::Model,
                            predicted_cycles: Some(predicted),
                        });
                    }
                }
            }
        }
    }
    Ok(Advice {
        plan: advise(a, k, system)?,
        source: AdviseSource::Heuristic,
        predicted_cycles: None,
    })
}

/// Picks an execution plan for `a` with dense row size `k` on `system`,
/// from structure alone (no simulation).
///
/// This is a fast heuristic, not the exhaustive `SPADE Opt` search: it is
/// expected to recover most of Opt's gain at none of its cost. Use
/// [`crate::PlanSearchSpace`] when search time is acceptable.
///
/// # Errors
///
/// Returns [`SpadeError::Matrix`] only for degenerate shapes (zero
/// columns).
pub fn advise(a: &Coo, k: usize, system: &SystemConfig) -> Result<ExecutionPlan, SpadeError> {
    let stats = MatrixStats::compute(a);
    let ru = stats.classify_ru();
    let num_pes = system.num_pes.max(1);
    let ncols = a.num_cols().max(1);
    let nrows = a.num_rows().max(1);
    let dense_row_bytes = k.max(1).div_ceil(FLOATS_PER_LINE) * CACHE_LINE_BYTES;

    // Row panel: aim for at least ~8 panels per PE so the CPE can balance
    // load; clamp so a panel still holds a few cache lines of work.
    let target_panels = num_pes * 8;
    let mut row_panel = (nrows / target_panels).max(1);
    // Hub-heavy matrices skew nnz per panel: halve the panel to give the
    // scheduler finer grains.
    if stats.degree_skew > 50.0 {
        row_panel = (row_panel / 2).max(1);
    }
    // Low-RU matrices are SPADE Base's home turf (§7.A): finer row panels
    // buy no locality and only add scheduling grains, so never go below
    // Base's 256 there. This keeps the advise floor at Base for the
    // matrices where restructuring cannot help.
    if ru == RestructuringUtility::Low {
        row_panel = row_panel.max(256);
    }

    // Column panel: low-RU matrices keep the full width (tiling buys
    // nothing, §7.A); otherwise size the panel so one cMatrix slice fits
    // comfortably in the LLC (the §5.2/§7.C working-set argument).
    let llc_bytes = system.mem.llc.size_bytes;
    let col_panel = match ru {
        RestructuringUtility::Low => ncols,
        _ => {
            let slice_rows = (llc_bytes / 2 / dense_row_bytes).max(16);
            slice_rows.min(ncols)
        }
    };

    // Barriers: only useful when the matrix is actually column-tiled and
    // reuse is worth coordinating (medium/high RU with real column cuts).
    let barriers = if col_panel < ncols && ru == RestructuringUtility::High {
        BarrierPolicy::per_column_panel()
    } else {
        BarrierPolicy::None
    };

    // rMatrix policy: with low average degree the rMatrix sees little
    // reuse beyond the VRF, so bypassing avoids cache pollution — provided
    // the per-panel rMatrix footprint fits the victim cache (the Table 6
    // overflow hazard).
    let vc_bytes = system.mem.victim.map(|v| v.size_bytes).unwrap_or(0);
    let panel_r_bytes = row_panel * dense_row_bytes;
    let low_reuse = stats.avg_degree < 4.0;
    let r_policy = if low_reuse && vc_bytes > 0 && panel_r_bytes <= vc_bytes / 2 {
        RMatrixPolicy::BypassVictim
    } else {
        RMatrixPolicy::Cache
    };

    Ok(ExecutionPlan {
        tiling: TilingConfig::new(row_panel, col_panel)?,
        r_policy,
        c_policy: CMatrixPolicy::Cache,
        barriers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_matrix::generators::{Benchmark, Scale};

    fn system() -> SystemConfig {
        SystemConfig::scaled(56)
    }

    #[test]
    fn low_ru_matrices_keep_full_column_panels() {
        let a = Benchmark::Roa.generate(Scale::Tiny);
        let p = advise(&a, 32, &system()).unwrap();
        assert_eq!(p.tiling.col_panel_size, a.num_cols());
        assert!(!p.barriers.is_enabled());
    }

    #[test]
    fn high_ru_matrices_get_column_tiles_and_barriers() {
        let a = Benchmark::Ork.generate(Scale::Default);
        let mut sys = system();
        // Shrink the LLC so the cMatrix cannot fit (the barrier regime).
        sys.mem.llc = spade_sim::CacheConfig::new(64 * 1024, 8);
        let p = advise(&a, 32, &sys).unwrap();
        assert!(p.tiling.col_panel_size < a.num_cols());
        assert!(p.barriers.is_enabled());
    }

    #[test]
    fn few_row_matrices_get_small_row_panels() {
        let myc = Benchmark::Myc.generate(Scale::Tiny);
        let roa = Benchmark::Roa.generate(Scale::Tiny);
        let pm = advise(&myc, 32, &system()).unwrap();
        let pr = advise(&roa, 32, &system()).unwrap();
        assert!(pm.tiling.row_panel_size < pr.tiling.row_panel_size);
    }

    #[test]
    fn rmatrix_bypass_respects_victim_capacity() {
        let a = Benchmark::Del.generate(Scale::Tiny);
        // Large K makes the per-panel rMatrix footprint overflow the VC.
        let p512 = advise(&a, 512, &system()).unwrap();
        let p32 = advise(&a, 32, &system()).unwrap();
        if p512.tiling.row_panel_size * 512 * 4 > 8 * 1024 {
            assert_eq!(p512.r_policy, RMatrixPolicy::Cache);
        }
        // Small K on small panels is the bypass sweet spot.
        let _ = p32;
    }

    #[test]
    fn advised_plans_run_correctly() {
        use crate::{run_spmm_checked, SpadeSystem};
        use spade_matrix::DenseMatrix;
        for b in [Benchmark::Kro, Benchmark::Roa, Benchmark::Myc] {
            let a = b.generate(Scale::Tiny);
            let dense = DenseMatrix::from_fn(a.num_cols(), 32, |r, c| ((r + c) % 9) as f32);
            let plan = advise(&a, 32, &system()).unwrap();
            let mut sys = SpadeSystem::new(SystemConfig::scaled(8));
            run_spmm_checked(&mut sys, &a, &dense, &plan);
        }
    }

    /// A ranker that always prefers the last candidate, for wiring tests.
    struct LastPlanRanker {
        confident: bool,
    }

    impl PlanRanker for LastPlanRanker {
        fn confident(&self) -> bool {
            self.confident
        }
        fn rank(
            &self,
            _features: &MatrixFeatures,
            _k: usize,
            _pes: usize,
            plans: &[ExecutionPlan],
        ) -> Option<Vec<(usize, f64)>> {
            Some(
                (0..plans.len())
                    .rev()
                    .enumerate()
                    .map(|(rank, idx)| (idx, 1000.0 + rank as f64))
                    .collect(),
            )
        }
    }

    #[test]
    fn advise_candidates_include_heuristic_and_base() {
        let a = Benchmark::Myc.generate(Scale::Tiny);
        let sys = system();
        let candidates = advise_candidates(&a, 32, &sys).unwrap();
        let heuristic = advise(&a, 32, &sys).unwrap();
        let base = ExecutionPlan::spmm_base(&a).unwrap();
        assert!(candidates.contains(&heuristic));
        assert!(candidates.contains(&base));
        let mut dedup = candidates.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), candidates.len(), "candidates contain dupes");
    }

    #[test]
    fn tiered_advise_uses_model_when_confident() {
        let a = Benchmark::Kro.generate(Scale::Tiny);
        let sys = system();
        let advice =
            advise_tiered(&a, 32, &sys, Some(&LastPlanRanker { confident: true })).unwrap();
        assert_eq!(advice.source, AdviseSource::Model);
        assert_eq!(advice.predicted_cycles, Some(1000.0));
        let candidates = advise_candidates(&a, 32, &sys).unwrap();
        assert_eq!(advice.plan, *candidates.last().unwrap());
    }

    #[test]
    fn tiered_advise_falls_back_when_not_confident() {
        let a = Benchmark::Kro.generate(Scale::Tiny);
        let sys = system();
        let advice =
            advise_tiered(&a, 32, &sys, Some(&LastPlanRanker { confident: false })).unwrap();
        assert_eq!(advice.source, AdviseSource::Heuristic);
        assert_eq!(advice.plan, advise(&a, 32, &sys).unwrap());
        assert_eq!(advice.predicted_cycles, None);
        let no_model = advise_tiered(&a, 32, &sys, None).unwrap();
        assert_eq!(no_model.source, AdviseSource::Heuristic);
        assert_eq!(no_model.plan, advice.plan);
    }

    #[test]
    fn advise_source_names_are_wire_stable() {
        assert_eq!(AdviseSource::Model.as_str(), "model");
        assert_eq!(AdviseSource::Heuristic.as_str(), "heuristic");
        assert_eq!(AdviseSource::Exhaustive.to_string(), "exhaustive");
    }

    #[test]
    fn advised_beats_or_matches_base_on_high_ru() {
        use crate::{run_spmm_checked, SpadeSystem};
        use spade_matrix::DenseMatrix;
        let a = Benchmark::Myc.generate(Scale::Tiny);
        let dense = DenseMatrix::from_fn(a.num_cols(), 32, |r, c| ((r * 3 + c) % 7) as f32);
        let sys_cfg = SystemConfig::scaled(8);
        let base = run_spmm_checked(
            &mut SpadeSystem::new(sys_cfg.clone()),
            &a,
            &dense,
            &ExecutionPlan::spmm_base(&a).unwrap(),
        );
        let advised_plan = advise(&a, 32, &sys_cfg).unwrap();
        let advised = run_spmm_checked(
            &mut SpadeSystem::new(sys_cfg.clone()),
            &a,
            &dense,
            &advised_plan,
        );
        assert!(
            advised.report.cycles <= base.report.cycles,
            "advised {} vs base {}",
            advised.report.cycles,
            base.report.cycles
        );
    }
}
