//! The SPADE processing-element pipeline (§4.4, §5.1).
//!
//! Three logical stages, all latency-tolerant and decoupled by queues:
//!
//! * **Sparse front-end** — the Sparse Data Loader issues cache-line
//!   requests for the `r_ids`/`c_ids`/`vals` arrays into the sparse load
//!   queue (①), pops `(r_id, c_id, val)` tuples and generates tuple
//!   operations (tOps) carrying the dense row addresses (②–③).
//! * **vOp generator** — breaks each tOp into cache-line-sized vector
//!   operations, allocating vector registers through the VR tag CAM and
//!   issuing dense loads for operands not already resident (④–⑥).
//! * **Dense back-end** — vOps wait in reservation stations for their
//!   operands and RAW dependences, dispatch out of order into a pipelined
//!   SIMD unit, and a write-back manager drains dirty registers between
//!   the 25 %/15 % thresholds (⑦–⑨).
//!
//! The PE performs the *functional* arithmetic at vOp retirement, in the
//! exact (out-of-order, RAW-chained) order the timing model executes it, so
//! every simulated run is validated against the gold kernels.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use spade_matrix::{DenseMatrix, TiledCoo, FLOATS_PER_LINE};
use spade_sim::{AccessPath, Cycle, DataClass, Line, MemorySystem, TraceEvent};

use crate::vrf::{AllocOutcome, VrId, Vrf};
use crate::{AddressMap, CMatrixPolicy, PeCommand, PipelineConfig, Primitive, RMatrixPolicy};

/// Functional operand/result arrays for the kernel being simulated.
///
/// SpMM reads `B` and accumulates into `D`; SDDMM reads `B` and `Cᵀ` and
/// accumulates scalar partial dot products into the output values (indexed
/// in tiled order).
#[derive(Debug)]
pub enum KernelData<'a> {
    /// SpMM operands.
    Spmm {
        /// The cMatrix `B`.
        b: &'a DenseMatrix,
        /// The rMatrix `D` (accumulated in place).
        d: &'a mut DenseMatrix,
    },
    /// SDDMM operands.
    Sddmm {
        /// The rMatrix `B`.
        b: &'a DenseMatrix,
        /// The cMatrix `Cᵀ`.
        c_t: &'a DenseMatrix,
        /// Output values in tiled-array order.
        out: &'a mut [f32],
    },
}

impl KernelData<'_> {
    /// Applies one vOp's arithmetic: segment `seg` (one cache line) of the
    /// dense rows selected by non-zero `(row, col, val)`.
    pub(crate) fn apply_vop(
        &mut self,
        row: u32,
        col: u32,
        val: f32,
        seg: usize,
        func_out_idx: usize,
    ) {
        let lo = seg * FLOATS_PER_LINE;
        match self {
            KernelData::Spmm { b, d } => {
                let hi = (lo + FLOATS_PER_LINE).min(b.num_cols());
                if lo >= hi {
                    return;
                }
                let src = &b.row(col as usize)[lo..hi];
                let dst = &mut d.row_mut(row as usize)[lo..hi];
                for (o, i) in dst.iter_mut().zip(src) {
                    *o += val * i;
                }
            }
            KernelData::Sddmm { b, c_t, out } => {
                let hi = (lo + FLOATS_PER_LINE).min(b.num_cols());
                if lo >= hi {
                    return;
                }
                let x = &b.row(row as usize)[lo..hi];
                let y = &c_t.row(col as usize)[lo..hi];
                let dot: f32 = x.iter().zip(y).map(|(a, b)| a * b).sum();
                out[func_out_idx] += val * dot;
            }
        }
    }
}

/// Reply to a shared-resource port operation: either the completed result
/// (the completion cycle of a read/write, or the flushed line count), or a
/// ticket redeemable against the epoch-edge replay results.
///
/// A given port implementation answers uniformly — all `Done` (the direct
/// port) or all `Ticket` (the sharded driver's logging port); a PE never
/// sees a mix within one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PortReply {
    /// The operation executed immediately; the value is its result.
    Done(u64),
    /// The operation was deferred; index into the epoch's replay results.
    Ticket(u32),
}

impl PortReply {
    /// The ticket index of a deferred reply. Mixing direct and deferred
    /// replies within one tick is a port-implementation bug.
    fn ticket(self) -> u32 {
        match self {
            PortReply::Ticket(k) => k,
            PortReply::Done(_) => unreachable!("a port must defer all of a tick's operations"),
        }
    }
}

/// The shared-resource boundary a PE tick runs against: memory accesses,
/// functional vOp application, and barrier coordination. Everything else a
/// tick touches is PE-private.
///
/// [`DirectPort`] executes against the real structures (the sequential
/// drivers; compiles to exactly the pre-port code). The sharded driver
/// substitutes a logging port that appends every operation to a per-shard
/// ordered log and answers with tickets; the log is replayed in global PE
/// order at the epoch edge and the tickets are redeemed through
/// [`Pe::resolve_pending`], making the parallel run bit-identical to the
/// sequential one.
pub(crate) trait ExecPort {
    /// A memory read by `agent` for `line`; replies with the fill cycle.
    fn read(
        &mut self,
        agent: usize,
        line: Line,
        path: AccessPath,
        class: DataClass,
        now: Cycle,
    ) -> PortReply;
    /// A write-back by `agent` of `line`; replies with the accept cycle.
    fn write(
        &mut self,
        agent: usize,
        line: Line,
        path: AccessPath,
        class: DataClass,
        now: Cycle,
    ) -> PortReply;
    /// Flushes `agent`'s private cache levels; replies with the count of
    /// lines written back.
    fn flush_agent(&mut self, agent: usize, now: Cycle) -> PortReply;
    /// Applies one retired vOp's functional arithmetic.
    fn apply_vop(&mut self, row: u32, col: u32, val: f32, seg: u32, func_out_idx: u64);
    /// The PE arrives at barrier `id`.
    fn arrive(&mut self, id: u32);
    /// Whether barrier `id` has been released. Releases only happen
    /// between tick phases, so a start-of-epoch snapshot is exact.
    fn barrier_passed(&self, id: u32) -> bool;
}

/// The pass-through port: every operation executes immediately against the
/// real memory system, kernel data, and barrier state.
pub(crate) struct DirectPort<'a, 'b> {
    pub mem: &'a mut MemorySystem,
    pub barriers: &'a mut BarrierSync,
    pub data: &'a mut KernelData<'b>,
}

impl ExecPort for DirectPort<'_, '_> {
    fn read(
        &mut self,
        agent: usize,
        line: Line,
        path: AccessPath,
        class: DataClass,
        now: Cycle,
    ) -> PortReply {
        PortReply::Done(self.mem.read(agent, line, path, class, now))
    }

    fn write(
        &mut self,
        agent: usize,
        line: Line,
        path: AccessPath,
        class: DataClass,
        now: Cycle,
    ) -> PortReply {
        PortReply::Done(self.mem.write(agent, line, path, class, now))
    }

    fn flush_agent(&mut self, agent: usize, now: Cycle) -> PortReply {
        PortReply::Done(self.mem.flush_agent(agent, now) as u64)
    }

    fn apply_vop(&mut self, row: u32, col: u32, val: f32, seg: u32, func_out_idx: u64) {
        self.data
            .apply_vop(row, col, val, seg as usize, func_out_idx as usize);
    }

    fn arrive(&mut self, id: u32) {
        self.barriers.arrive(id);
    }

    fn barrier_passed(&self, id: u32) -> bool {
        self.barriers.passed(id)
    }
}

/// Cross-PE scheduling-barrier coordination (§4.3): the CPE will not send
/// new tile instructions until every PE has read the barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierSync {
    released: u32,
    arrived: u32,
    num_pes: u32,
}

impl BarrierSync {
    /// Creates the synchronizer for `num_pes` PEs.
    pub fn new(num_pes: usize) -> Self {
        BarrierSync {
            released: 0,
            arrived: 0,
            num_pes: num_pes as u32,
        }
    }

    /// A PE arrives at barrier `id`.
    ///
    /// The schedule construction guarantees every PE reaches barriers in
    /// release order, so out-of-order arrival is a pure internal invariant
    /// (checked in debug builds only).
    pub fn arrive(&mut self, id: u32) {
        debug_assert_eq!(id, self.released, "barriers must be reached in order");
        self.arrived += 1;
    }

    /// Barriers released so far.
    pub fn released(&self) -> u32 {
        self.released
    }

    /// PEs arrived at the current barrier.
    pub fn arrived(&self) -> u32 {
        self.arrived
    }

    /// Releases the current barrier once everyone arrived. Returns whether
    /// a release happened.
    pub fn try_release(&mut self) -> bool {
        if self.arrived == self.num_pes {
            self.arrived = 0;
            self.released += 1;
            true
        } else {
            false
        }
    }

    /// Whether barrier `id` has been released.
    pub fn passed(&self, id: u32) -> bool {
        self.released > id
    }
}

/// Per-kernel runtime parameters distilled from the Initialization
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeParams {
    /// SpMM or SDDMM.
    pub primitive: Primitive,
    /// rMatrix cache policy.
    pub r_policy: RMatrixPolicy,
    /// cMatrix cache policy.
    pub c_policy: CMatrixPolicy,
    /// Cache lines per dense row (K / 16).
    pub lines_per_row: u32,
}

/// One sparse line-group fetch in flight: a contiguous range of non-zeros
/// whose `r_ids`/`c_ids`/`vals` lines arrive together at `ready_at`. The
/// tuples themselves are materialized lazily from the tiled arrays at pop
/// time, so the entry is a fixed-size record and the loader allocates
/// nothing in steady state.
#[derive(Debug, Clone, Copy)]
struct SparseEntry {
    ready_at: Cycle,
    /// Replay tickets for the three line fetches when the entry was issued
    /// through a logging port; `ready_at` holds `Cycle::MAX` (strictly
    /// later than any real fill, so in-tick behavior is unchanged) until
    /// [`Pe::resolve_pending`] redeems them.
    pending: Option<[u32; 3]>,
    /// Absolute index (into the tiled arrays) of the next tuple to pop;
    /// doubles as the functional output index.
    idx: u64,
    /// Padded-output index of the next tuple (for the output line address).
    out_idx: u64,
    /// Tuples remaining in this line group.
    remaining: u64,
}

/// A tuple operation: addresses resolved, awaiting vOp expansion.
#[derive(Debug, Clone, Copy)]
struct TOp {
    row: u32,
    col: u32,
    val: f32,
    func_out_idx: u64,
    out_line: Line,
    next_seg: u32,
}

#[derive(Debug, Clone, Copy)]
struct RsEntry {
    op1: VrId,
    op2: VrId,
    dest: VrId,
    row: u32,
    col: u32,
    val: f32,
    seg: u32,
    func_out_idx: u64,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    done: Cycle,
    op1: VrId,
    op2: VrId,
    dest: VrId,
    row: u32,
    col: u32,
    val: f32,
    seg: u32,
    func_out_idx: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AfterDrain {
    Barrier(u32),
    Flush,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeState {
    /// Ready to fetch the next command.
    Ready,
    /// Reading an input register (instruction delivery latency).
    Fetching { until: Cycle },
    /// Waiting for the pipeline to drain before a barrier or flush.
    WaitDrain(AfterDrain),
    /// Arrived at a barrier; waiting for release.
    AtBarrier(u32),
    /// Draining dirty VRs and flushing L1/BBF (WB&Invalidate).
    Flushing,
    /// Terminated.
    Done,
}

/// Per-PE event recorder for the instruction-lifecycle trace. Allocated
/// only when tracing is on; it observes control-state transitions and
/// never influences them.
#[derive(Debug, Default)]
struct PeTrace {
    events: Vec<TraceEvent>,
    /// Issue span of the tile currently being fetched: `(tile_idx, nnz,
    /// start, vops_before, tuples_before)`. Closed at the next command
    /// decode, so spans run issue-to-issue (the pipeline may still drain
    /// a tile's vOps while the next tile issues).
    open_tile: Option<(usize, u32, Cycle, u64, u64)>,
    /// Cycle at which the PE decoded a Barrier command (drain + wait span).
    barrier_from: Option<(u32, Cycle)>,
    /// Flush start cycle and dirty-line count at drain time.
    flush_from: Option<(Cycle, usize)>,
}

impl PeTrace {
    /// Closes the open tile-issue span, attributing the vOps/tuples
    /// executed since it opened.
    fn close_tile(&mut self, id: usize, now: Cycle, stats: &PeStats) {
        if let Some((tile_idx, nnz, from, vops0, tuples0)) = self.open_tile.take() {
            self.events.push(
                TraceEvent::complete(
                    format!("tile {tile_idx}"),
                    "tile",
                    from,
                    now.saturating_sub(from),
                    id as u64,
                )
                .arg("tile", tile_idx)
                .arg("nnz", nnz)
                .arg("vops", stats.vops.saturating_sub(vops0))
                .arg("tuples", stats.tuples.saturating_sub(tuples0)),
            );
        }
    }
}

/// What a PE reported for one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickResult {
    /// Did some work this cycle.
    Progressed,
    /// Nothing to do until the given cycle (`Cycle::MAX` = waiting on a
    /// barrier or external event).
    Waiting(Cycle),
    /// Terminated.
    Done,
}

/// Per-PE execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeStats {
    /// Tuples processed (equals the non-zeros assigned to this PE).
    pub tuples: u64,
    /// vOps executed.
    pub vops: u64,
    /// Cycles where the vOp generator stalled for a free vector register.
    /// Stalls accrue as elapsed cycles when they resolve (or change
    /// cause), so the totals are independent of how often the stalled PE
    /// was polled.
    pub stall_no_vr: u64,
    /// Cycles where the vOp generator stalled for a reservation-station
    /// slot.
    pub stall_no_rs: u64,
    /// Cycles where the vOp generator stalled for dense load-queue space.
    pub stall_no_dense_lq: u64,
    /// Cycle at which this PE finished all its work.
    pub finished_at: Cycle,
    /// Cycle at which this PE started its final WB&Invalidate (compute
    /// complete); 0 until then.
    pub flush_started_at: Cycle,
}

/// What the vOp generator is currently stalled on (see [`Pe::note_stall`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallCause {
    /// No free vector register (VRF allocation blocked).
    Vr,
    /// Reservation stations full.
    Rs,
    /// Dense load queue full.
    DenseLq,
}

/// One SPADE processing element.
#[derive(Debug)]
pub struct Pe {
    id: usize,
    cfg: PipelineConfig,
    params: RuntimeParams,
    commands: Vec<PeCommand>,
    cursor: usize,
    state: PeState,
    // Active tile fetch state.
    tile_next_nnz: u64,
    tile_remaining: u64,
    tile_out_next: u64,
    // Pipeline queues.
    sparse_lq: VecDeque<SparseEntry>,
    top_q: VecDeque<TOp>,
    /// Reservation stations, kept in program (seq) order so the dispatch
    /// scan can stop at the first ready entry. Dispatched entries become
    /// `None` tombstones (removal from the middle must not shift the
    /// queue on the hot path); tombstones drain from the front eagerly and
    /// the deque is compacted in place once they dominate it.
    rs: VecDeque<Option<RsEntry>>,
    /// Live (non-tombstone) reservation-station entries; this — not
    /// `rs.len()` — is the architectural occupancy.
    rs_live: usize,
    /// In-flight SIMD operations. Dispatch happens at monotonically
    /// nondecreasing `now` with a fixed latency, so completions are FIFO.
    in_flight: VecDeque<InFlight>,
    vrf: Vrf,
    /// (completion, vr) heap for dense loads in flight; bounds the dense
    /// load queue.
    dense_loads: BinaryHeap<Reverse<(Cycle, VrId)>>,
    /// Completion heap for outstanding stores; bounds the store queue.
    stores: BinaryHeap<Reverse<Cycle>>,
    /// Dirty lines pending the final VRF drain of a WB&Invalidate.
    pending_flush: VecDeque<(Line, DataClass)>,
    /// Write-back manager hysteresis: currently draining toward `wb_lo`.
    wb_draining: bool,
    /// Earliest cycle at which a reservation-station scan can find a ready
    /// vOp (event-driven gate for the dispatch scan).
    rs_next_try: Cycle,
    /// Whether the dispatch scan honors `rs_next_try`. The event-driven
    /// driver relies on the gate; the naive oracle loop disables it so
    /// every polled cycle pays the full architectural ready scan, like a
    /// textbook cycle-by-cycle simulator. The gate is a pure
    /// short-circuit — a scan before `rs_next_try` finds nothing ready —
    /// so both settings dispatch identically (the `scheduler_equivalence`
    /// suite checks this byte-for-byte).
    event_gates: bool,
    /// Set when the vOp generator stalled on VRF allocation; cleared by
    /// any event that frees a register (retire, write-back, load arrival).
    alloc_blocked: bool,
    /// Open vOp-generator stall: its cause and the cycle it began. Closed
    /// — accrued into `stats` as elapsed cycles — when the generator next
    /// acts, runs dry, or the cause changes. Accrual at transition points
    /// makes the totals identical under any polling discipline: re-observing
    /// an open stall (same cause) is a no-op, so an every-cycle poll loop
    /// and an event-driven scheduler report the same counts.
    stall_open: Option<(StallCause, Cycle)>,
    stats: PeStats,
    /// Lifecycle trace recorder; `None` (no allocation, no work) unless
    /// tracing was requested.
    trace: Option<Box<PeTrace>>,
    /// Tickets for dense-operand loads issued through a logging port this
    /// epoch: `(ticket, register)`. The matching `dense_loads` entries and
    /// VRF fill times hold `Cycle::MAX` until resolved.
    pending_dense: Vec<(u32, VrId)>,
    /// Tickets for write-backs issued through a logging port this epoch;
    /// the matching `stores` entries hold `Cycle::MAX` until resolved.
    pending_stores: Vec<u32>,
    /// A flush that completed through a logging port this epoch: the
    /// ticket for the flushed-line count, plus the deferred trace span
    /// when tracing — its event is emitted at resolve time so it can
    /// carry the real line count. Nothing after a flush completion can
    /// trace at the same cycle, so deferring the emission preserves
    /// byte-exact trace order.
    pending_flush_done: Option<PendingFlush>,
}

/// Deferred flush completion from a logged-port epoch: the line-count
/// ticket, plus `(from, vr_lines, at)` for the trace span when tracing.
type PendingFlush = (u32, Option<(Cycle, usize, Cycle)>);

impl Pe {
    /// Creates a PE with its command stream (ending in WB&Invalidate +
    /// Termination).
    pub fn new(
        id: usize,
        cfg: PipelineConfig,
        params: RuntimeParams,
        commands: Vec<PeCommand>,
    ) -> Self {
        Pe {
            id,
            cfg,
            params,
            commands,
            cursor: 0,
            state: PeState::Ready,
            tile_next_nnz: 0,
            tile_remaining: 0,
            tile_out_next: 0,
            sparse_lq: VecDeque::with_capacity(cfg.sparse_lq_entries),
            top_q: VecDeque::with_capacity(cfg.top_queue_entries),
            rs: VecDeque::with_capacity(cfg.rs_entries * 2),
            rs_live: 0,
            in_flight: VecDeque::new(),
            vrf: Vrf::new(cfg.vrf_regs),
            dense_loads: BinaryHeap::new(),
            stores: BinaryHeap::new(),
            pending_flush: VecDeque::new(),
            wb_draining: false,
            rs_next_try: 0,
            event_gates: true,
            alloc_blocked: false,
            stall_open: None,
            stats: PeStats::default(),
            trace: None,
            pending_dense: Vec::new(),
            pending_stores: Vec::new(),
            pending_flush_done: None,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &PeStats {
        &self.stats
    }

    /// Observes the vOp generator stalled on `cause` at `now`. A repeat
    /// observation of the open stall is a no-op; a cause change closes the
    /// old stall (accruing its elapsed cycles) and opens the new one.
    fn note_stall(&mut self, cause: StallCause, now: Cycle) {
        match self.stall_open {
            Some((open, _)) if open == cause => {}
            _ => {
                self.close_stall(now);
                self.stall_open = Some((cause, now));
            }
        }
    }

    /// Closes any open stall at `now`, accruing the elapsed cycles
    /// (minimum one: a stall observed at all lasted at least the cycle it
    /// was observed in) into the per-cause counter.
    fn close_stall(&mut self, now: Cycle) {
        if let Some((cause, since)) = self.stall_open.take() {
            let elapsed = (now - since).max(1);
            match cause {
                StallCause::Vr => self.stats.stall_no_vr += elapsed,
                StallCause::Rs => self.stats.stall_no_rs += elapsed,
                StallCause::DenseLq => self.stats.stall_no_dense_lq += elapsed,
            }
        }
    }

    /// Enables (default) or disables the event-driven dispatch-scan gate;
    /// see the `event_gates` field. Disabling it changes host cost only,
    /// never simulated behavior.
    pub fn set_event_gates(&mut self, enabled: bool) {
        self.event_gates = enabled;
    }

    /// Enables or disables lifecycle tracing for this PE. Tracing is pure
    /// observation: it records command decodes, barrier waits and flushes
    /// but never changes pipeline behavior.
    pub fn set_trace(&mut self, enabled: bool) {
        self.trace = enabled.then(Box::default);
    }

    /// Takes the recorded trace events (lane id = PE id), disabling the
    /// recorder.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.trace.take().map(|t| t.events).unwrap_or_default()
    }

    /// Reads currently queued in this PE's load structures: outstanding
    /// dense-operand loads plus sparse line-group fetches not yet fully
    /// consumed. Used as the in-flight-reads telemetry gauge.
    pub fn load_queue_depth(&self) -> usize {
        self.dense_loads.len() + self.sparse_lq.len()
    }

    /// A diagnostic snapshot of this PE's control state and queue
    /// occupancies (the per-PE section of a
    /// [`crate::StallDiagnostics`]). `wake_at` is left `None`; the
    /// scheduler, which owns the wake times, fills it in.
    pub fn snapshot(&self) -> crate::PeSnapshot {
        crate::PeSnapshot {
            id: self.id,
            state: format!("{:?}", self.state),
            commands_done: self.cursor,
            commands_total: self.commands.len(),
            tile_remaining: self.tile_remaining,
            sparse_lq: self.sparse_lq.len(),
            top_q: self.top_q.len(),
            rs: self.rs_live,
            in_flight: self.in_flight.len(),
            dense_loads: self.dense_loads.len(),
            stores: self.stores.len(),
            pending_flush: self.pending_flush.len(),
            wake_at: None,
            stats: self.stats,
        }
    }

    /// Checks this PE's queue occupancies against the configured bounds
    /// (the PE half of the invariant auditor).
    pub fn check_invariants(&self) -> Result<(), String> {
        let bounds = [
            (
                "sparse_lq",
                self.sparse_lq.len(),
                self.cfg.sparse_lq_entries,
            ),
            ("top_q", self.top_q.len(), self.cfg.top_queue_entries),
            ("rs", self.rs_live, self.cfg.rs_entries),
            (
                "dense_loads",
                self.dense_loads.len(),
                self.cfg.dense_lq_entries,
            ),
            ("stores", self.stores.len(), self.cfg.store_queue_entries),
        ];
        for (name, occ, cap) in bounds {
            if occ > cap {
                return Err(format!(
                    "PE {}: {name} occupancy {occ} exceeds capacity {cap}",
                    self.id
                ));
            }
        }
        Ok(())
    }

    /// Whether this PE has terminated.
    pub fn is_done(&self) -> bool {
        self.state == PeState::Done
    }

    fn r_path(&self) -> AccessPath {
        match self.params.r_policy {
            RMatrixPolicy::Cache => AccessPath::Cached,
            RMatrixPolicy::Bypass => AccessPath::Bypass,
            RMatrixPolicy::BypassVictim => AccessPath::BypassVictim,
        }
    }

    fn c_path(&self) -> AccessPath {
        match self.params.c_policy {
            CMatrixPolicy::Cache => AccessPath::Cached,
            CMatrixPolicy::Bypass => AccessPath::Bypass,
        }
    }

    fn sparse_path(&self) -> AccessPath {
        if self.cfg.sparse_bypass {
            AccessPath::Bypass
        } else {
            AccessPath::Cached
        }
    }

    fn path_for_class(&self, class: DataClass) -> AccessPath {
        match class {
            DataClass::RMatrix => self.r_path(),
            DataClass::CMatrix => self.c_path(),
            DataClass::SparseIn => self.sparse_path(),
            // SDDMM output always bypasses (§5.2).
            DataClass::SparseOut => AccessPath::Bypass,
        }
    }

    fn pipeline_empty(&self) -> bool {
        self.tile_remaining == 0
            && self.sparse_lq.is_empty()
            && self.top_q.is_empty()
            && self.rs_live == 0
            && self.in_flight.is_empty()
            && self.dense_loads.is_empty()
    }

    /// Advances this PE by one pipeline step at `now`, executing shared
    /// memory / barrier / functional operations directly.
    #[allow(clippy::too_many_arguments)]
    pub fn tick(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        barriers: &mut BarrierSync,
        addr: &AddressMap,
        tiled: &TiledCoo,
        data: &mut KernelData<'_>,
    ) -> TickResult {
        let mut port = DirectPort {
            mem,
            barriers,
            data,
        };
        self.tick_port(now, &mut port, addr, tiled)
    }

    /// Advances this PE by one pipeline step at `now` against an abstract
    /// shared-resource port (see [`ExecPort`]).
    pub(crate) fn tick_port<P: ExecPort>(
        &mut self,
        now: Cycle,
        port: &mut P,
        addr: &AddressMap,
        tiled: &TiledCoo,
    ) -> TickResult {
        if self.state == PeState::Done {
            return TickResult::Done;
        }
        let mut progressed = false;

        // ─ Completion harvesting ─
        while let Some(&Reverse((done, vr))) = self.dense_loads.peek() {
            if done > now {
                break;
            }
            self.dense_loads.pop();
            self.vrf.set_ready(vr);
            self.rs_next_try = self.rs_next_try.min(now);
            self.alloc_blocked = false;
            progressed = true;
        }
        while let Some(&Reverse(done)) = self.stores.peek() {
            if done > now {
                break;
            }
            self.stores.pop();
            progressed = true;
        }

        // ─ ⑧ Retire finished vOps (pipelined SIMD; completions are FIFO) ─
        while self.in_flight.front().is_some_and(|f| f.done <= now) {
            let f = self.in_flight.pop_front().expect("front checked");
            port.apply_vop(f.row, f.col, f.val, f.seg, f.func_out_idx);
            self.vrf.release_ref(f.op1);
            self.vrf.release_ref(f.op2);
            self.vrf.release_ref(f.dest);
            self.stats.vops += 1;
            self.alloc_blocked = false;
            progressed = true;
        }

        // ─ ⑨ Write-back manager ─
        if self.wb_draining || self.vrf.dirty_fraction() >= self.cfg.wb_hi {
            self.wb_draining = self.vrf.dirty_fraction() > self.cfg.wb_lo;
            if self.wb_draining && self.stores.len() < self.cfg.store_queue_entries {
                if let Some(vr) = self.vrf.writeback_candidate(now) {
                    let (line, class) = self.vrf.clean(vr);
                    let accept = port.write(self.id, line, self.path_for_class(class), class, now);
                    self.push_store(accept);
                    self.alloc_blocked = false;
                    progressed = true;
                    self.wb_draining = self.vrf.dirty_fraction() > self.cfg.wb_lo;
                }
            }
        }

        // ─ ⑦ Dispatch one ready vOp, oldest first (the deque is in seq
        //     order, so the first ready entry is the oldest ready one).
        //     The scan is gated on `rs_next_try`: a failed scan computes a
        //     lower bound on when any entry can become ready, and only a
        //     load arrival or a new entry re-arms it earlier. ─
        if self.rs_live > 0 && (now >= self.rs_next_try || !self.event_gates) {
            let mut best: Option<usize> = None;
            let mut bound = Cycle::MAX;
            for (idx, slot) in self.rs.iter().enumerate() {
                // Tombstones occupy no architectural slot and never
                // reorder the live entries around them, so skipping them
                // preserves the oldest-ready-first dispatch order exactly.
                let Some(e) = slot else { continue };
                let ready_at = self
                    .vrf
                    .ready_at(e.op1)
                    .max(self.vrf.ready_at(e.op2))
                    .max(self.vrf.last_write_done(e.dest));
                if ready_at <= now {
                    best = Some(idx);
                    break;
                }
                bound = bound.min(ready_at);
            }
            if let Some(idx) = best {
                let e = self.rs[idx].take().expect("scan found a live entry");
                self.rs_live -= 1;
                // Drain leading tombstones so the common oldest-first
                // dispatch keeps the deque short, then compact in place
                // (order-preserving) if tombstones still dominate.
                while self.rs.front().is_some_and(Option::is_none) {
                    self.rs.pop_front();
                }
                if self.rs.len() >= self.rs_live * 2 + 2 {
                    self.rs.retain(Option::is_some);
                }
                let done = now + self.cfg.simd_latency;
                self.vrf.record_write(e.dest, done);
                self.in_flight.push_back(InFlight {
                    done,
                    op1: e.op1,
                    op2: e.op2,
                    dest: e.dest,
                    row: e.row,
                    col: e.col,
                    val: e.val,
                    seg: e.seg,
                    func_out_idx: e.func_out_idx,
                });
                // Dispatch is one per cycle; try again next cycle.
                self.rs_next_try = now + 1;
                progressed = true;
            } else {
                self.rs_next_try = bound.max(now + 1);
            }
        }

        // ─ ④–⑥ vOp generation: one vOp per cycle. Allocation retries are
        //     gated: a VRF stall can only clear after a retire, a
        //     write-back or a load arrival. ─
        if let Some(&top) = self.top_q.front() {
            // The `alloc_blocked` latch is checked first: while it is set
            // the generator cannot retry no matter what the queues look
            // like, so VRF allocation is the binding constraint. (It must
            // also come first for stable attribution: a failed `gen_vop`
            // may have issued its op1 dense load before stalling on op2,
            // so the dense-queue occupancy test can flip *after* the VR
            // stall latched.)
            if self.alloc_blocked {
                self.note_stall(StallCause::Vr, now);
            } else if self.rs_live >= self.cfg.rs_entries {
                self.note_stall(StallCause::Rs, now);
            } else if self.dense_loads.len() + 2 > self.cfg.dense_lq_entries {
                self.note_stall(StallCause::DenseLq, now);
            } else if self.gen_vop(top, now, port, addr) {
                self.close_stall(now);
                let t = self.top_q.front_mut().expect("tOp queue was non-empty");
                t.next_seg += 1;
                if t.next_seg >= self.params.lines_per_row {
                    self.top_q.pop_front();
                }
                self.rs_next_try = self.rs_next_try.min(now + 1);
                progressed = true;
            } else {
                self.alloc_blocked = true;
                self.note_stall(StallCause::Vr, now);
            }
        } else {
            // The generator ran dry: close any stall left open by the
            // final tOp (it resolved the tick that tOp issued).
            self.close_stall(now);
        }

        // ─ ②–③ Pop one tuple into a tOp ─
        if self.top_q.len() < self.cfg.top_queue_entries {
            if let Some(entry) = self.sparse_lq.front_mut() {
                if entry.ready_at <= now {
                    if entry.remaining > 0 {
                        let i = entry.idx as usize;
                        let out_line = addr.sparse_out_line(entry.out_idx);
                        self.top_q.push_back(TOp {
                            row: tiled.r_ids()[i],
                            col: tiled.c_ids()[i],
                            val: tiled.vals()[i],
                            func_out_idx: entry.idx,
                            out_line,
                            next_seg: 0,
                        });
                        entry.idx += 1;
                        entry.out_idx += 1;
                        entry.remaining -= 1;
                        self.stats.tuples += 1;
                        progressed = true;
                    }
                    if self.sparse_lq.front().is_some_and(|e| e.remaining == 0) {
                        self.sparse_lq.pop_front();
                    }
                }
            }
        }

        // ─ ① Sparse data loader: one line-group request per cycle ─
        if self.tile_remaining > 0 && self.sparse_lq.len() < self.cfg.sparse_lq_entries {
            let idx = self.tile_next_nnz;
            let line_cap = FLOATS_PER_LINE as u64 - (idx % FLOATS_PER_LINE as u64);
            let chunk = self.tile_remaining.min(line_cap);
            let path = self.sparse_path();
            let r1 = port.read(
                self.id,
                addr.r_ids_line(idx),
                path,
                DataClass::SparseIn,
                now,
            );
            let r2 = port.read(
                self.id,
                addr.c_ids_line(idx),
                path,
                DataClass::SparseIn,
                now,
            );
            let r3 = port.read(self.id, addr.vals_line(idx), path, DataClass::SparseIn, now);
            let (ready_at, pending) = match (r1, r2, r3) {
                (PortReply::Done(t1), PortReply::Done(t2), PortReply::Done(t3)) => {
                    (t1.max(t2).max(t3), None)
                }
                _ => (Cycle::MAX, Some([r1.ticket(), r2.ticket(), r3.ticket()])),
            };
            self.sparse_lq.push_back(SparseEntry {
                ready_at,
                pending,
                idx,
                out_idx: self.tile_out_next,
                remaining: chunk,
            });
            self.tile_next_nnz += chunk;
            self.tile_out_next += chunk;
            self.tile_remaining -= chunk;
            progressed = true;
        }

        // ─ Command handling ─
        progressed |= self.step_control(now, port, tiled);

        if self.state == PeState::Done {
            self.stats.finished_at = now;
            return TickResult::Done;
        }
        if progressed {
            TickResult::Progressed
        } else {
            TickResult::Waiting(self.next_event(now))
        }
    }

    /// Pushes a write-back completion, recording its replay ticket when it
    /// came from a logging port (`Cycle::MAX` sorts after every real
    /// completion, so an unresolved store behaves like one still in
    /// flight — exactly what it is).
    fn push_store(&mut self, accept: PortReply) {
        match accept {
            PortReply::Done(t) => self.stores.push(Reverse(t)),
            PortReply::Ticket(k) => {
                self.stores.push(Reverse(Cycle::MAX));
                self.pending_stores.push(k);
            }
        }
    }

    /// Registers a dense-operand load for `id`, recording its replay
    /// ticket when it came from a logging port.
    fn push_dense_load(&mut self, id: VrId, done: PortReply) {
        let done = match done {
            PortReply::Done(t) => t,
            PortReply::Ticket(k) => {
                self.pending_dense.push((k, id));
                Cycle::MAX
            }
        };
        self.vrf.set_loading(id, done);
        self.dense_loads.push(Reverse((done, id)));
    }

    /// Generates one vOp for `top` (segment `top.next_seg`). Returns false
    /// on an allocation stall.
    fn gen_vop<P: ExecPort>(
        &mut self,
        top: TOp,
        now: Cycle,
        port: &mut P,
        addr: &AddressMap,
    ) -> bool {
        let seg = top.next_seg as u64;
        let (op1_line, op1_class, op2_line, op2_class, dest_is_out) = match self.params.primitive {
            Primitive::Spmm => (
                addr.r_matrix_line(top.row as u64, seg),
                DataClass::RMatrix,
                addr.c_matrix_line(top.col as u64, seg),
                DataClass::CMatrix,
                false,
            ),
            Primitive::Sddmm => (
                addr.r_matrix_line(top.row as u64, seg),
                DataClass::RMatrix,
                addr.c_matrix_line(top.col as u64, seg),
                DataClass::CMatrix,
                true,
            ),
        };

        // Allocate / look up operand 1.
        let op1 = match self.vrf.lookup_or_alloc(op1_line, op1_class) {
            AllocOutcome::Reused(id) => id,
            AllocOutcome::Allocated(id) => {
                let done = port.read(
                    self.id,
                    op1_line,
                    self.path_for_class(op1_class),
                    op1_class,
                    now,
                );
                self.push_dense_load(id, done);
                id
            }
            AllocOutcome::Stall => return false,
        };
        // Operand 2.
        let op2 = match self.vrf.lookup_or_alloc(op2_line, op2_class) {
            AllocOutcome::Reused(id) => id,
            AllocOutcome::Allocated(id) => {
                let done = port.read(
                    self.id,
                    op2_line,
                    self.path_for_class(op2_class),
                    op2_class,
                    now,
                );
                self.push_dense_load(id, done);
                id
            }
            AllocOutcome::Stall => return false,
        };
        // Destination: the rMatrix operand for SpMM (read-modify-write), a
        // write-only output register for SDDMM.
        let dest = if dest_is_out {
            match self.vrf.lookup_or_alloc(top.out_line, DataClass::SparseOut) {
                AllocOutcome::Reused(id) => id,
                AllocOutcome::Allocated(id) => {
                    // Output tiles are cache-line aligned and fully
                    // produced: no fill needed (§4.3).
                    self.vrf.set_ready(id);
                    id
                }
                AllocOutcome::Stall => return false,
            }
        } else {
            op1
        };

        self.vrf.add_ref(op1);
        self.vrf.add_ref(op2);
        self.vrf.add_ref(dest);
        self.rs.push_back(Some(RsEntry {
            op1,
            op2,
            dest,
            row: top.row,
            col: top.col,
            val: top.val,
            seg: top.next_seg,
            func_out_idx: top.func_out_idx,
        }));
        self.rs_live += 1;
        true
    }

    /// Handles command fetch, barriers, and flushes. Returns whether it
    /// made progress.
    fn step_control<P: ExecPort>(&mut self, now: Cycle, port: &mut P, tiled: &TiledCoo) -> bool {
        match self.state {
            PeState::Ready => {
                // Fetch the next command once the current tile's sparse
                // fetch has fully issued (tile processing may still drain).
                if self.tile_remaining == 0 && self.cursor < self.commands.len() {
                    self.state = PeState::Fetching {
                        until: now + self.cfg.instr_fetch_cycles,
                    };
                    return true;
                }
                false
            }
            PeState::Fetching { until } => {
                if now < until {
                    return false;
                }
                let cmd = self.commands[self.cursor];
                self.cursor += 1;
                if let Some(tr) = self.trace.as_deref_mut() {
                    // Any decode ends the previous tile's issue span.
                    tr.close_tile(self.id, now, &self.stats);
                }
                match cmd {
                    PeCommand::Tile { tile_idx } => {
                        // The tile-instruction arguments (sparse_in offset,
                        // sparse_out offset, NNZ_num) come from the tiling
                        // metadata of Appendix A.
                        let info = tiled.tiles()[tile_idx];
                        self.tile_next_nnz = info.sparse_in_start as u64;
                        self.tile_remaining = info.nnz as u64;
                        self.tile_out_next = info.sparse_out_start as u64;
                        self.state = PeState::Ready;
                        if let Some(tr) = self.trace.as_deref_mut() {
                            tr.open_tile = Some((
                                tile_idx,
                                info.nnz as u32,
                                now,
                                self.stats.vops,
                                self.stats.tuples,
                            ));
                        }
                    }
                    PeCommand::Barrier { id } => {
                        self.state = PeState::WaitDrain(AfterDrain::Barrier(id));
                        if let Some(tr) = self.trace.as_deref_mut() {
                            tr.barrier_from = Some((id, now));
                        }
                    }
                    PeCommand::WbInvalidate => {
                        self.state = PeState::WaitDrain(AfterDrain::Flush);
                    }
                    PeCommand::Terminate => {
                        self.state = PeState::Done;
                        if let Some(tr) = self.trace.as_deref_mut() {
                            tr.events.push(TraceEvent::instant(
                                "terminate",
                                "control",
                                now,
                                self.id as u64,
                            ));
                        }
                    }
                }
                true
            }
            PeState::WaitDrain(after) => {
                if !self.pipeline_empty() {
                    return false;
                }
                match after {
                    AfterDrain::Barrier(id) => {
                        port.arrive(id);
                        self.state = PeState::AtBarrier(id);
                    }
                    AfterDrain::Flush => {
                        self.pending_flush.clear();
                        self.vrf.drain_dirty_into(&mut self.pending_flush);
                        self.stats.flush_started_at = now;
                        self.state = PeState::Flushing;
                        if let Some(tr) = self.trace.as_deref_mut() {
                            tr.flush_from = Some((now, self.pending_flush.len()));
                        }
                    }
                }
                true
            }
            PeState::AtBarrier(id) => {
                if port.barrier_passed(id) {
                    self.state = PeState::Ready;
                    if let Some(tr) = self.trace.as_deref_mut() {
                        if let Some((bid, from)) = tr.barrier_from.take() {
                            tr.events.push(
                                TraceEvent::complete(
                                    format!("barrier {bid}"),
                                    "barrier",
                                    from,
                                    now.saturating_sub(from),
                                    self.id as u64,
                                )
                                .arg("barrier", bid),
                            );
                        }
                    }
                    true
                } else {
                    false
                }
            }
            PeState::Flushing => {
                if let Some(&(line, class)) = self.pending_flush.front() {
                    if self.stores.len() < self.cfg.store_queue_entries {
                        self.pending_flush.pop_front();
                        let accept =
                            port.write(self.id, line, self.path_for_class(class), class, now);
                        self.push_store(accept);
                        return true;
                    }
                    false
                } else if self.stores.is_empty() {
                    self.state = PeState::Ready;
                    match port.flush_agent(self.id, now) {
                        PortReply::Done(cache_lines) => {
                            if let Some(tr) = self.trace.as_deref_mut() {
                                if let Some((from, vr_lines)) = tr.flush_from.take() {
                                    tr.events.push(
                                        TraceEvent::complete(
                                            "flush",
                                            "flush",
                                            from,
                                            now.saturating_sub(from),
                                            self.id as u64,
                                        )
                                        .arg("vr_lines", vr_lines)
                                        .arg("cache_lines", cache_lines),
                                    );
                                }
                            }
                        }
                        PortReply::Ticket(k) => {
                            // The trace span needs the replayed line count;
                            // defer its emission to `resolve_pending`.
                            let span = self
                                .trace
                                .as_deref_mut()
                                .and_then(|tr| tr.flush_from.take())
                                .map(|(from, vr_lines)| (from, vr_lines, now));
                            self.pending_flush_done = Some((k, span));
                        }
                    }
                    true
                } else {
                    false
                }
            }
            PeState::Done => false,
        }
    }

    /// Earliest future event this PE is waiting on.
    /// The earliest *future* event that can unblock this PE. Events at or
    /// before `now` were already harvested by this tick; one that is still
    /// pending (e.g. a ready sparse-LQ entry behind a full tOp queue) can
    /// only move when something else frees up, so it is not a wake source.
    /// Reporting it would make the scheduler busy-wait on a starved PE and
    /// mask genuine livelocks from the watchdog.
    pub(crate) fn next_event(&self, now: Cycle) -> Cycle {
        let mut next = Cycle::MAX;
        let mut fold = |t: Cycle| {
            if t > now {
                next = next.min(t);
            }
        };
        if let Some(&Reverse((t, _))) = self.dense_loads.peek() {
            fold(t);
        }
        if let Some(&Reverse(t)) = self.stores.peek() {
            fold(t);
        }
        if let Some(e) = self.sparse_lq.front() {
            fold(e.ready_at);
        }
        for f in &self.in_flight {
            fold(f.done);
        }
        if let PeState::Fetching { until } = self.state {
            fold(until);
        }
        next
    }

    /// Redeems the tickets a logging port issued during this epoch's
    /// tick(s) against the replayed results, patching queue timestamps and
    /// VRF fill cycles in place. Every `Cycle::MAX` placeholder is strictly
    /// in the future during the epoch it was issued in (real completions
    /// are always later than the issue cycle), so patching at the epoch
    /// edge — before the PE can next be ticked — leaves behavior
    /// bit-identical to having had the real values all along.
    pub(crate) fn resolve_pending(&mut self, results: &[u64]) {
        for e in self.sparse_lq.iter_mut() {
            if let Some([a, b, c]) = e.pending.take() {
                e.ready_at = results[a as usize]
                    .max(results[b as usize])
                    .max(results[c as usize]);
            }
        }
        if !self.pending_dense.is_empty() {
            let mut heap = std::mem::take(&mut self.dense_loads).into_vec();
            for (k, vr) in self.pending_dense.drain(..) {
                let done = results[k as usize];
                self.vrf.set_loading(vr, done);
                let slot = heap
                    .iter_mut()
                    .find(|r| r.0 .0 == Cycle::MAX && r.0 .1 == vr)
                    .expect("ticketed dense load must be queued");
                slot.0 .0 = done;
            }
            self.dense_loads = heap.into();
        }
        if !self.pending_stores.is_empty() {
            let mut stores: Vec<Cycle> = std::mem::take(&mut self.stores)
                .into_vec()
                .into_iter()
                .map(|Reverse(t)| t)
                .filter(|&t| t != Cycle::MAX)
                .collect();
            for k in self.pending_stores.drain(..) {
                stores.push(results[k as usize]);
            }
            self.stores = stores.into_iter().map(Reverse).collect();
        }
        if let Some((k, span)) = self.pending_flush_done.take() {
            let cache_lines = results[k as usize];
            if let Some((from, vr_lines, at)) = span {
                if let Some(tr) = self.trace.as_deref_mut() {
                    tr.events.push(
                        TraceEvent::complete(
                            "flush",
                            "flush",
                            from,
                            at.saturating_sub(from),
                            self.id as u64,
                        )
                        .arg("vr_lines", vr_lines)
                        .arg("cache_lines", cache_lines),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AddressMap, BarrierPolicy, PlanSearchSpace, Schedule};
    use spade_matrix::{Coo, TiledCoo, TilingConfig};
    use spade_sim::{MemConfig, MemorySystem};

    fn fixture() -> (TiledCoo, AddressMap, DenseMatrix, DenseMatrix) {
        let mut t = Vec::new();
        for i in 0..32u32 {
            t.push((i, (i * 3) % 32, 1.0 + i as f32 * 0.1));
            t.push((i, (i + 1) % 32, 0.5));
        }
        let a = Coo::from_triplets(32, 32, &t).unwrap();
        let tiled = TiledCoo::new(&a, TilingConfig::new(8, 32).unwrap()).unwrap();
        let b = DenseMatrix::from_fn(32, 16, |r, c| (r + c) as f32 * 0.25);
        let d = DenseMatrix::zeros(32, 16);
        let addr = AddressMap::for_spmm(&tiled, &b, &d);
        (tiled, addr, b, d)
    }

    fn params() -> RuntimeParams {
        RuntimeParams {
            primitive: Primitive::Spmm,
            r_policy: RMatrixPolicy::Cache,
            c_policy: CMatrixPolicy::Cache,
            lines_per_row: 1,
        }
    }

    /// Drives a single PE to completion, returning the final cycle.
    fn drive(
        pe: &mut Pe,
        mem: &mut MemorySystem,
        barriers: &mut BarrierSync,
        addr: &AddressMap,
        tiled: &TiledCoo,
        data: &mut KernelData<'_>,
    ) -> Cycle {
        const BUDGET: u64 = 2_000_000;
        let mut now = 0;
        for _ in 0..BUDGET {
            match pe.tick(now, mem, barriers, addr, tiled, data) {
                TickResult::Done => return now,
                TickResult::Progressed => now += 1,
                TickResult::Waiting(t) => {
                    now = if t == Cycle::MAX {
                        now + 1
                    } else {
                        t.max(now + 1)
                    }
                }
            }
        }
        panic!(
            "PE did not terminate within {BUDGET} iterations (cycle {now});\nfinal state: {}",
            pe.snapshot()
        );
    }

    #[test]
    fn single_pe_processes_all_tiles_and_terminates() {
        let (tiled, addr, b, mut d) = fixture();
        let schedule = Schedule::build(&tiled, 1, Primitive::Spmm, BarrierPolicy::None);
        let mut pe = Pe::new(
            0,
            PipelineConfig::table1(),
            params(),
            schedule.commands(0).to_vec(),
        );
        let mut mem = MemorySystem::new(MemConfig::small_test(1));
        let mut barriers = BarrierSync::new(1);
        let mut data = KernelData::Spmm { b: &b, d: &mut d };
        drive(&mut pe, &mut mem, &mut barriers, &addr, &tiled, &mut data);
        assert!(pe.is_done());
        assert_eq!(pe.stats().tuples, tiled.nnz() as u64);
        assert_eq!(pe.stats().vops, tiled.nnz() as u64); // K=16 -> 1 vOp/nnz
                                                         // All dirty state flushed at termination.
        assert_eq!(mem.l1_occupancy(0), 0);
    }

    #[test]
    fn in_order_pe_still_completes() {
        // rs_entries = 1 models the in-order miniSPADE pipeline.
        let (tiled, addr, b, mut d) = fixture();
        let schedule = Schedule::build(&tiled, 1, Primitive::Spmm, BarrierPolicy::None);
        let mut cfg = PipelineConfig::table1();
        cfg.rs_entries = 1;
        cfg.vrf_regs = 8;
        let mut pe = Pe::new(0, cfg, params(), schedule.commands(0).to_vec());
        let mut mem = MemorySystem::new(MemConfig::small_test(1));
        let mut barriers = BarrierSync::new(1);
        let mut data = KernelData::Spmm { b: &b, d: &mut d };
        drive(&mut pe, &mut mem, &mut barriers, &addr, &tiled, &mut data);
        assert_eq!(pe.stats().vops, tiled.nnz() as u64);
    }

    #[test]
    fn out_of_order_pipeline_beats_in_order() {
        let (tiled, addr, b, _) = fixture();
        let schedule = Schedule::build(&tiled, 1, Primitive::Spmm, BarrierPolicy::None);
        let mut times = Vec::new();
        for rs in [1usize, 32] {
            let mut cfg = PipelineConfig::table1();
            cfg.rs_entries = rs;
            let mut d = DenseMatrix::zeros(32, 16);
            let mut pe = Pe::new(0, cfg, params(), schedule.commands(0).to_vec());
            let mut mem = MemorySystem::new(MemConfig::small_test(1));
            let mut barriers = BarrierSync::new(1);
            let mut data = KernelData::Spmm { b: &b, d: &mut d };
            times.push(drive(
                &mut pe,
                &mut mem,
                &mut barriers,
                &addr,
                &tiled,
                &mut data,
            ));
        }
        assert!(
            times[1] < times[0],
            "ooo {} vs in-order {}",
            times[1],
            times[0]
        );
    }

    #[test]
    fn barrier_sync_protocol() {
        let mut sync = BarrierSync::new(2);
        assert!(!sync.passed(0));
        sync.arrive(0);
        assert!(!sync.try_release());
        sync.arrive(0);
        assert!(sync.try_release());
        assert!(sync.passed(0));
        assert!(!sync.passed(1));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)] // the order check is a debug_assert
    fn out_of_order_barrier_arrival_is_rejected() {
        let mut sync = BarrierSync::new(2);
        sync.arrive(1);
    }

    #[test]
    fn pe_waits_at_barrier_until_release() {
        let (tiled, addr, b, mut d) = fixture();
        // Two PEs, barrier per column panel (single panel -> no barrier);
        // force barriers by tiling with 4 column panels.
        let tiled = {
            let a = tiled.to_coo();
            TiledCoo::new(&a, TilingConfig::new(8, 8).unwrap()).unwrap()
        };
        let addr2 = AddressMap::for_spmm(&tiled, &b, &d);
        let _ = addr;
        let schedule = Schedule::build(
            &tiled,
            2,
            Primitive::Spmm,
            BarrierPolicy::per_column_panel(),
        );
        assert!(schedule.num_barriers() > 0);
        let mut pe0 = Pe::new(
            0,
            PipelineConfig::table1(),
            params(),
            schedule.commands(0).to_vec(),
        );
        let mut pe1 = Pe::new(
            1,
            PipelineConfig::table1(),
            params(),
            schedule.commands(1).to_vec(),
        );
        let mut mem = MemorySystem::new(MemConfig::small_test(2));
        let mut barriers = BarrierSync::new(2);
        let mut data = KernelData::Spmm { b: &b, d: &mut d };
        let mut done = (false, false);
        for now in 0..5_000_000u64 {
            let r0 = pe0.tick(now, &mut mem, &mut barriers, &addr2, &tiled, &mut data);
            let r1 = pe1.tick(now, &mut mem, &mut barriers, &addr2, &tiled, &mut data);
            barriers.try_release();
            done = (pe0.is_done(), pe1.is_done());
            if done.0 && done.1 {
                break;
            }
            let _ = (r0, r1);
        }
        assert!(
            done.0 && done.1,
            "both PEs must pass the barrier and finish"
        );
        assert_eq!(pe0.stats().tuples + pe1.stats().tuples, tiled.nnz() as u64);
        let _ = PlanSearchSpace::table3(32);
    }

    #[test]
    fn sparse_loader_chunks_align_to_lines() {
        // A tile whose sparse_in offset is mid-line: the first chunk must
        // stop at the line boundary (16 entries).
        let mut t = Vec::new();
        for i in 0..40u32 {
            t.push((i % 8, i % 8, 1.0 + i as f32));
        }
        let a = Coo::from_triplets(8, 8, &t).unwrap();
        // 8x8 with row panels of 1: tiles start at arbitrary offsets.
        let tiled = TiledCoo::new(&a, TilingConfig::new(1, 8).unwrap()).unwrap();
        let starts: Vec<usize> = tiled.tiles().iter().map(|ti| ti.sparse_in_start).collect();
        assert!(starts.iter().any(|s| s % 16 != 0), "need a mid-line tile");
        let b = DenseMatrix::from_fn(8, 16, |r, c| (r * c) as f32);
        let mut d = DenseMatrix::zeros(8, 16);
        let addr = AddressMap::for_spmm(&tiled, &b, &d);
        let schedule = Schedule::build(&tiled, 1, Primitive::Spmm, BarrierPolicy::None);
        let mut pe = Pe::new(
            0,
            PipelineConfig::table1(),
            params(),
            schedule.commands(0).to_vec(),
        );
        let mut mem = MemorySystem::new(MemConfig::small_test(1));
        let mut barriers = BarrierSync::new(1);
        let mut data = KernelData::Spmm { b: &b, d: &mut d };
        drive(&mut pe, &mut mem, &mut barriers, &addr, &tiled, &mut data);
        assert_eq!(pe.stats().tuples, tiled.nnz() as u64);
    }
}
