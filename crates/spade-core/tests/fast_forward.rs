//! The idle fast-forward in the system cycle loop is an optimization, not
//! a model change: jumping `now` to the next wake event must produce
//! exactly the run a naive `now += 1` tick loop produces — same cycle
//! count, same stats, same functional output.

use spade_core::{
    BarrierPolicy, CMatrixPolicy, ExecutionPlan, PipelineConfig, RMatrixPolicy, SpadeSystem,
    SystemConfig,
};
use spade_matrix::generators::{Benchmark, Scale};
use spade_matrix::{reference, Coo, DenseMatrix, TilingConfig};

/// A deliberately starved system: single-entry queues and a one-slot
/// reservation station force frequent stalls, which is where the
/// fast-forward path does the most jumping. The dense load queue sits at
/// its structural minimum of 2 (one vOp issues up to two operand loads).
fn starved_config(num_pes: usize) -> SystemConfig {
    let mut cfg = SystemConfig::scaled(num_pes);
    cfg.pipeline = PipelineConfig {
        sparse_lq_entries: 1,
        top_queue_entries: 1,
        rs_entries: 1,
        dense_lq_entries: 2,
        store_queue_entries: 1,
        ..cfg.pipeline
    };
    cfg
}

fn tiny_matrix() -> Coo {
    // Small but irregular: a banded matrix with a dense row and column.
    let mut triplets = Vec::new();
    for r in 0..48u32 {
        for d in 0..3u32 {
            let c = (r * 5 + d * 17) % 48;
            triplets.push((r, c, (r + d) as f32 * 0.25 - 1.0));
        }
        triplets.push((r, 0, 1.0));
        triplets.push((0, r, -1.0));
    }
    Coo::from_triplets(48, 48, &triplets).unwrap()
}

fn plans(a: &Coo) -> Vec<ExecutionPlan> {
    vec![
        ExecutionPlan::spmm_base(a).unwrap(),
        ExecutionPlan {
            tiling: TilingConfig::new(4, 16).unwrap(),
            r_policy: RMatrixPolicy::BypassVictim,
            c_policy: CMatrixPolicy::Cache,
            barriers: BarrierPolicy::per_column_panel(),
        },
    ]
}

/// Runs SpMM twice — fast-forward on and off — and checks for an
/// identical report (modulo host wall clock) and identical output.
fn check_spmm_equivalence(config: &SystemConfig, a: &Coo, k: usize) {
    let b = DenseMatrix::from_fn(a.num_cols(), k, |r, c| {
        ((r * 3 + c) % 13) as f32 * 0.5 - 2.0
    });
    for plan in plans(a) {
        let mut fast = SpadeSystem::new(config.clone());
        let run_fast = fast.run_spmm(a, &b, &plan).unwrap();

        let mut naive = SpadeSystem::new(config.clone());
        naive.set_fast_forward(false);
        let run_naive = naive.run_spmm(a, &b, &plan).unwrap();

        assert_eq!(
            run_fast.report, run_naive.report,
            "fast-forward changed the simulated report under {plan:?}"
        );
        assert!(reference::dense_close(
            &run_fast.output,
            &run_naive.output,
            0.0
        ));
    }
}

#[test]
fn fast_forward_is_invisible_on_a_starved_single_cluster() {
    let cfg = starved_config(4);
    check_spmm_equivalence(&cfg, &tiny_matrix(), 16);
}

#[test]
fn fast_forward_is_invisible_on_the_default_pipeline() {
    let cfg = SystemConfig::scaled(4);
    check_spmm_equivalence(&cfg, &tiny_matrix(), 16);
}

#[test]
fn fast_forward_is_invisible_on_a_generated_graph() {
    let a = Benchmark::Myc.generate(Scale::Tiny);
    check_spmm_equivalence(&starved_config(4), &a, 16);
}

#[test]
fn fast_forward_is_invisible_for_sddmm() {
    let a = tiny_matrix();
    let k = 16;
    let cfg = starved_config(4);
    let b = DenseMatrix::from_fn(a.num_rows(), k, |r, c| ((r + 2 * c) % 7) as f32 * 0.5);
    let ct = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((2 * r + c) % 5) as f32 * 0.5);
    let plan = ExecutionPlan::spmm_base(&a).unwrap();

    let mut fast = SpadeSystem::new(cfg.clone());
    let run_fast = fast.run_sddmm(&a, &b, &ct, &plan).unwrap();

    let mut naive = SpadeSystem::new(cfg);
    naive.set_fast_forward(false);
    let run_naive = naive.run_sddmm(&a, &b, &ct, &plan).unwrap();

    assert_eq!(run_fast.report, run_naive.report);
    assert_eq!(run_fast.output.vals(), run_naive.output.vals());
}

#[test]
fn fast_forward_is_invisible_on_a_true_single_pe() {
    use spade_sim::MemConfig;
    let cfg = SystemConfig {
        num_pes: 1,
        pipeline: starved_config(4).pipeline,
        mem: MemConfig::small_test(1),
    };
    check_spmm_equivalence(&cfg, &tiny_matrix(), 16);
}

#[test]
fn sub_minimum_dense_lq_is_rejected_not_livelocked() {
    // A 1-entry dense load queue can never issue a vOp (each vOp reserves
    // two operand slots); the run must fail fast instead of spinning.
    let mut cfg = SystemConfig::scaled(4);
    cfg.pipeline.dense_lq_entries = 1;
    let a = tiny_matrix();
    let b = DenseMatrix::from_fn(a.num_cols(), 16, |r, c| (r + c) as f32);
    let plan = ExecutionPlan::spmm_base(&a).unwrap();
    let err = SpadeSystem::new(cfg).run_spmm(&a, &b, &plan).unwrap_err();
    assert!(matches!(err, spade_core::SpadeError::InvalidConfig { .. }));
}

#[test]
fn fast_forward_actually_skips_host_work() {
    // Not an equivalence check: make sure the toggle is real by observing
    // that both paths at least agree on a non-trivial cycle count.
    let a = tiny_matrix();
    let b = DenseMatrix::from_fn(a.num_cols(), 16, |r, c| (r + c) as f32 * 0.125);
    let plan = ExecutionPlan::spmm_base(&a).unwrap();
    let mut sys = SpadeSystem::new(starved_config(4));
    let run = sys.run_spmm(&a, &b, &plan).unwrap();
    assert!(run.report.cycles > 0);
    assert!(run.report.host_wall_ns > 0.0);
}
