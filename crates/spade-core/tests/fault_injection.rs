//! End-to-end fault-tolerance properties: zero-impact plans are exact
//! no-ops, injected delays never corrupt results, starvation returns a
//! diagnosable `Deadlock` error, and the invariant auditor stays quiet on
//! healthy runs. This suite doubles as the CI fault-injection stress job
//! (release mode with `SPADE_AUDIT=1`).

use spade_core::{
    run_sddmm_checked, run_spmm_checked, ExecutionPlan, SpadeError, SpadeSystem, StallKind,
    SystemConfig, WatchdogConfig,
};
use spade_matrix::{Coo, DenseMatrix};
use spade_sim::FaultConfig;

fn matrix() -> Coo {
    let mut t = Vec::new();
    for i in 0..96u32 {
        t.push((i, (i + 1) % 96, 1.0 + i as f32 * 0.01));
        t.push((i, (i * 5) % 96, 0.25));
        if i % 4 == 0 {
            t.push((i, i, 2.0));
        }
    }
    Coo::from_triplets(96, 96, &t).unwrap()
}

fn dense(k: usize) -> DenseMatrix {
    DenseMatrix::from_fn(96, k, |r, c| ((r * 17 + c * 3) % 64) as f32 * 0.0625)
}

fn system_with_faults(faults: FaultConfig) -> SpadeSystem {
    let mut cfg = SystemConfig::scaled(4);
    cfg.mem.faults = faults;
    SpadeSystem::new(cfg)
}

#[test]
fn zero_impact_plan_is_bit_identical_to_fault_free() {
    let a = matrix();
    let b = dense(32);
    let plan = ExecutionPlan::spmm_base(&a).unwrap();

    let clean = SpadeSystem::new(SystemConfig::scaled(4))
        .run_spmm(&a, &b, &plan)
        .unwrap();
    // A plan with a seed but all-zero probabilities must be an exact no-op.
    let armed = system_with_faults(FaultConfig {
        seed: 0xDEAD_BEEF,
        ..FaultConfig::none()
    })
    .run_spmm(&a, &b, &plan)
    .unwrap();

    assert_eq!(clean.report, armed.report);
    assert_eq!(clean.output, armed.output);
    assert_eq!(armed.report.mem.faults_injected, 0);
}

#[test]
fn injected_delays_still_validate_against_gold_spmm() {
    let a = matrix();
    let b = dense(32);
    let plan = ExecutionPlan::spmm_base(&a).unwrap();

    let clean = SpadeSystem::new(SystemConfig::scaled(4))
        .run_spmm(&a, &b, &plan)
        .unwrap();
    let mut sys = system_with_faults(FaultConfig::stress(3));
    let faulty = run_spmm_checked(&mut sys, &a, &b, &plan);

    assert!(
        faulty.report.mem.faults_injected > 0,
        "stress plan never fired"
    );
    assert!(
        faulty.report.cycles >= clean.report.cycles,
        "faults may only slow a run down: {} < {}",
        faulty.report.cycles,
        clean.report.cycles
    );
}

#[test]
fn injected_delays_still_validate_against_gold_sddmm() {
    let a = matrix();
    let b = dense(32);
    let c_t = dense(32);
    let plan = ExecutionPlan::sddmm_base(&a).unwrap();
    let mut sys = system_with_faults(FaultConfig::stress(11));
    let run = run_sddmm_checked(&mut sys, &a, &b, &c_t, &plan);
    assert!(run.report.mem.faults_injected > 0);
}

#[test]
fn faulty_runs_are_deterministic() {
    let a = matrix();
    let b = dense(32);
    let plan = ExecutionPlan::spmm_base(&a).unwrap();
    let faults = FaultConfig::stress(42);
    let r1 = system_with_faults(faults).run_spmm(&a, &b, &plan).unwrap();
    let r2 = system_with_faults(faults).run_spmm(&a, &b, &plan).unwrap();
    assert_eq!(r1.report, r2.report);
    assert_eq!(r1.output, r2.output);
}

#[test]
fn stlb_evictions_increase_page_walks() {
    let a = matrix();
    let b = dense(32);
    let plan = ExecutionPlan::spmm_base(&a).unwrap();
    let clean = SpadeSystem::new(SystemConfig::scaled(4))
        .run_spmm(&a, &b, &plan)
        .unwrap();
    let faults = FaultConfig {
        seed: 5,
        stlb_evict_prob: 0.05,
        ..FaultConfig::none()
    };
    let faulty = system_with_faults(faults).run_spmm(&a, &b, &plan).unwrap();
    assert!(
        faulty.report.tlb_misses > clean.report.tlb_misses,
        "evictions should force extra walks: {} vs {}",
        faulty.report.tlb_misses,
        clean.report.tlb_misses
    );
}

#[test]
fn forced_starvation_returns_deadlock_with_diagnostics() {
    let a = matrix();
    let b = dense(32);
    let plan = ExecutionPlan::spmm_base(&a).unwrap();
    // A write-back threshold above 1.0 means dirty registers are never
    // drained, and dirty registers are not eviction candidates; once every
    // register of the tiny VRF holds a dirty output line the vOp generator
    // stalls forever with an empty wake schedule.
    let mut cfg = SystemConfig::scaled(4);
    cfg.pipeline.vrf_regs = 2;
    cfg.pipeline.wb_hi = 2.0;
    cfg.pipeline.wb_lo = 2.0;
    let mut sys = SpadeSystem::new(cfg.clone());
    // Keep the test fast: starve out after a small idle budget.
    sys.set_watchdog(WatchdogConfig {
        idle_budget: 10_000,
        max_cycles: None,
    });
    let err = sys.run_spmm(&a, &b, &plan).unwrap_err();
    let SpadeError::Deadlock { diagnostics } = err else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert_eq!(diagnostics.kind, StallKind::IdleLivelock);
    assert!(diagnostics.cycle > 0);
    assert_eq!(diagnostics.idle_iters, 10_000);
    assert_eq!(diagnostics.pes.len(), cfg.num_pes);
    // The stalled PEs must show the allocation stall that caused the hang.
    assert!(diagnostics.pes.iter().any(|p| p.stats.stall_no_vr > 0));
    // The rendered report names the stall and every PE.
    let text = diagnostics.to_string();
    assert!(text.contains("idle livelock"));
    assert!(text.contains("PE   0"));
}

#[test]
fn sharded_starvation_trips_the_global_idle_budget_with_diagnostics() {
    // The same starvation recipe as above, but on a 4-cluster machine with
    // scheduling barriers and the run split across 4 host shards. Once the
    // starved PEs wedge, the remaining PEs sit blocked at a cross-shard
    // barrier no arrival will ever release — the classic hang shape for a
    // parallel driver. The watchdog must still fire (no hang), the idle
    // budget must be counted globally (one shared budget, not one per
    // shard), and the diagnostics must match the sequential driver's
    // exactly.
    let a = matrix();
    let b = dense(32);
    let mut plan = ExecutionPlan::spmm_base(&a).unwrap();
    plan.barriers = spade_core::BarrierPolicy::per_column_panel();
    let mut cfg = SystemConfig::scaled(16);
    cfg.pipeline.vrf_regs = 2;
    cfg.pipeline.wb_hi = 2.0;
    cfg.pipeline.wb_lo = 2.0;
    let watchdog = WatchdogConfig {
        idle_budget: 10_000,
        max_cycles: None,
    };
    let diag_at = |shards: usize| {
        let mut sys = SpadeSystem::new(cfg.clone());
        sys.set_watchdog(watchdog).set_shards(shards);
        let err = sys.run_spmm(&a, &b, &plan).unwrap_err();
        let SpadeError::Deadlock { diagnostics } = err else {
            panic!("expected Deadlock at {shards} shards, got {err:?}");
        };
        diagnostics
    };
    let sequential = diag_at(1);
    let sharded = diag_at(4);
    assert_eq!(sequential.kind, StallKind::IdleLivelock);
    // idle_iters equal to the budget on both drivers pins the global
    // accounting: a per-shard budget would fire after 4x fewer global
    // idle cycles and the snapshots would differ.
    assert_eq!(sharded.idle_iters, watchdog.idle_budget);
    assert_eq!(
        *sequential, *sharded,
        "stall diagnostics diverged under sharding"
    );
    // The snapshot names the barrier-blocked PEs so the hang is debuggable.
    assert_eq!(sharded.pes.len(), 16);
}

#[test]
fn cycle_budget_returns_deadlock_instead_of_running_forever() {
    let a = matrix();
    let b = dense(32);
    let plan = ExecutionPlan::spmm_base(&a).unwrap();
    let mut sys = SpadeSystem::new(SystemConfig::scaled(4));
    sys.set_watchdog(WatchdogConfig {
        idle_budget: 1_000_000,
        max_cycles: Some(10),
    });
    let err = sys.run_spmm(&a, &b, &plan).unwrap_err();
    let SpadeError::Deadlock { diagnostics } = err else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert_eq!(diagnostics.kind, StallKind::CycleBudgetExceeded);
}

#[test]
fn auditor_stays_quiet_under_fault_stress() {
    // Runs with the auditor active (always in debug; via SPADE_AUDIT=1 in
    // the release-mode CI stress job) across primitives and fault plans.
    let a = matrix();
    let b = dense(32);
    let c_t = dense(32);
    for seed in [1, 2, 3] {
        let mut sys = system_with_faults(FaultConfig::stress(seed));
        run_spmm_checked(&mut sys, &a, &b, &ExecutionPlan::spmm_base(&a).unwrap());
        let mut sys = system_with_faults(FaultConfig::light(seed));
        run_sddmm_checked(
            &mut sys,
            &a,
            &b,
            &c_t,
            &ExecutionPlan::sddmm_base(&a).unwrap(),
        );
    }
}

#[test]
fn invalid_mem_config_is_reported_not_panicked() {
    let a = matrix();
    let b = dense(32);
    let plan = ExecutionPlan::spmm_base(&a).unwrap();

    // Fewer memory agents than PEs used to hit an assert inside the
    // hierarchy; now it is a typed error.
    let mut cfg = SystemConfig::scaled(4);
    cfg.mem.num_agents = 2;
    let err = SpadeSystem::new(cfg).run_spmm(&a, &b, &plan).unwrap_err();
    assert!(matches!(err, SpadeError::InvalidConfig { .. }));

    let mut cfg = SystemConfig::scaled(4);
    cfg.mem.agents_per_cluster = 0;
    let err = SpadeSystem::new(cfg).run_spmm(&a, &b, &plan).unwrap_err();
    assert!(matches!(err, SpadeError::InvalidConfig { .. }));

    let mut cfg = SystemConfig::scaled(4);
    cfg.mem.faults.dram_delay_prob = 2.0;
    let err = SpadeSystem::new(cfg).run_spmm(&a, &b, &plan).unwrap_err();
    assert!(matches!(err, SpadeError::InvalidConfig { .. }));
}
