//! Randomized tests of the vector register file: CAM consistency,
//! reference counting, and write-back eligibility under arbitrary
//! operation sequences drawn from a deterministic RNG stream.

use spade_core::vrf::{AllocOutcome, Vrf};
use spade_matrix::rng::Rng64;
use spade_sim::DataClass;

/// A randomized VRF workout: allocate/reuse lines, complete loads, write,
/// clean — mirroring what the vOp generator and write-back manager do.
#[derive(Debug, Clone)]
enum Op {
    Lookup(u64),
    CompleteLoads(u64),
    Write(usize, u64),
    ReleaseOne,
    CleanCandidate(u64),
}

fn random_op(rng: &mut Rng64) -> Op {
    match rng.bounded(5) {
        0 => Op::Lookup(rng.gen_range(0..32u64)),
        1 => Op::CompleteLoads(rng.gen_range(0..2000u64)),
        2 => Op::Write(rng.gen_range(0..8usize), rng.gen_range(0..2000u64)),
        3 => Op::ReleaseOne,
        _ => Op::CleanCandidate(rng.gen_range(0..4000u64)),
    }
}

#[test]
fn vrf_invariants_hold_under_arbitrary_sequences() {
    let mut rng = Rng64::seed_from_u64(0x0e4f);
    for case in 0..256 {
        let num_ops = rng.gen_range(1usize..200);
        let ops: Vec<Op> = (0..num_ops).map(|_| random_op(&mut rng)).collect();

        let mut vrf = Vrf::new(8);
        // Shadow state: how many refs we have taken, per register.
        let mut refs_taken: Vec<u32> = vec![0; 8];
        let mut ready: Vec<bool> = vec![false; 8];
        let mut now = 0u64;

        for op in ops {
            match op {
                Op::Lookup(line) => {
                    match vrf.lookup_or_alloc(line, DataClass::CMatrix) {
                        AllocOutcome::Allocated(id) => {
                            // Caller contract: every allocation is followed
                            // by a fill (or immediate ready).
                            vrf.set_loading(id, now + 10);
                            ready[id] = false;
                            vrf.add_ref(id);
                            refs_taken[id] += 1;
                            // A second lookup of the same line must reuse.
                            assert_eq!(
                                vrf.lookup_or_alloc(line, DataClass::CMatrix),
                                AllocOutcome::Reused(id),
                                "case {case}"
                            );
                        }
                        AllocOutcome::Reused(id) => {
                            vrf.add_ref(id);
                            refs_taken[id] += 1;
                        }
                        AllocOutcome::Stall => {
                            // Legal only when every register is pinned:
                            // loading, referenced, or dirty.
                            assert!(
                                (0..8).all(|i| refs_taken[i] > 0
                                    || vrf.ready_at(i) > 0
                                    || vrf.dirty_count() > 0),
                                "case {case}: stall with a free register"
                            );
                        }
                    }
                }
                Op::CompleteLoads(t) => {
                    now = now.max(t);
                    vrf.complete_loads(now);
                    for (i, r) in ready.iter_mut().enumerate() {
                        if vrf.ready_at(i) == 0 {
                            *r = true;
                        }
                    }
                }
                Op::Write(i, t) => {
                    let id = i % 8;
                    if ready[id] && vrf.ready_at(id) == 0 {
                        vrf.record_write(id, t);
                        assert!(vrf.last_write_done(id) >= t, "case {case}");
                    }
                }
                Op::ReleaseOne => {
                    if let Some(id) = (0..8).find(|&i| refs_taken[i] > 0) {
                        vrf.release_ref(id);
                        refs_taken[id] -= 1;
                    }
                }
                Op::CleanCandidate(t) => {
                    now = now.max(t);
                    if let Some(id) = vrf.writeback_candidate(now) {
                        // Eligibility contract.
                        assert_eq!(
                            refs_taken[id], 0,
                            "case {case}: writeback of a referenced register"
                        );
                        assert!(vrf.last_write_done(id) <= now, "case {case}");
                        let before = vrf.dirty_count();
                        vrf.clean(id);
                        assert_eq!(vrf.dirty_count(), before - 1, "case {case}");
                    }
                }
            }
            assert!(vrf.dirty_count() <= vrf.num_regs());
            let frac = vrf.dirty_fraction();
            assert!((0.0..=1.0).contains(&frac));
        }

        // Drain: afterwards the VRF is pristine.
        for (i, taken) in refs_taken.iter_mut().enumerate() {
            for _ in 0..*taken {
                vrf.release_ref(i);
            }
            *taken = 0;
        }
        let drained = vrf.drain_dirty();
        assert!(drained.len() <= 8);
        assert_eq!(vrf.dirty_count(), 0);
        assert!(vrf.is_quiescent(), "case {case}: VRF not quiescent");
    }
}
