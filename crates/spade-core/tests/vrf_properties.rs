//! Property tests of the vector register file: CAM consistency, reference
//! counting, and write-back eligibility under arbitrary operation
//! sequences.

use proptest::prelude::*;
use spade_core::vrf::{AllocOutcome, Vrf};
use spade_sim::DataClass;

/// A randomized VRF workout: allocate/reuse lines, complete loads, write,
/// clean — mirroring what the vOp generator and write-back manager do.
#[derive(Debug, Clone)]
enum Op {
    Lookup(u64),
    CompleteLoads(u64),
    Write(usize, u64),
    ReleaseOne,
    CleanCandidate(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..32).prop_map(Op::Lookup),
        (0u64..2000).prop_map(Op::CompleteLoads),
        ((0usize..8), (0u64..2000)).prop_map(|(i, t)| Op::Write(i, t)),
        Just(Op::ReleaseOne),
        (0u64..4000).prop_map(Op::CleanCandidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn vrf_invariants_hold_under_arbitrary_sequences(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let mut vrf = Vrf::new(8);
        // Shadow state: how many refs we have taken, per register.
        let mut refs_taken: Vec<u32> = vec![0; 8];
        let mut ready: Vec<bool> = vec![false; 8];
        let mut now = 0u64;

        for op in ops {
            match op {
                Op::Lookup(line) => {
                    match vrf.lookup_or_alloc(line, DataClass::CMatrix) {
                        AllocOutcome::Allocated(id) => {
                            // Caller contract: every allocation is followed
                            // by a fill (or immediate ready).
                            vrf.set_loading(id, now + 10);
                            ready[id] = false;
                            vrf.add_ref(id);
                            refs_taken[id] += 1;
                            // A second lookup of the same line must reuse.
                            prop_assert_eq!(
                                vrf.lookup_or_alloc(line, DataClass::CMatrix),
                                AllocOutcome::Reused(id)
                            );
                        }
                        AllocOutcome::Reused(id) => {
                            vrf.add_ref(id);
                            refs_taken[id] += 1;
                        }
                        AllocOutcome::Stall => {
                            // Legal only when every register is pinned:
                            // loading, referenced, or dirty.
                            prop_assert!(
                                (0..8).all(|i| refs_taken[i] > 0
                                    || vrf.ready_at(i) > 0
                                    || vrf.dirty_count() > 0),
                                "stall with a free register"
                            );
                        }
                    }
                }
                Op::CompleteLoads(t) => {
                    now = now.max(t);
                    vrf.complete_loads(now);
                    for (i, r) in ready.iter_mut().enumerate() {
                        if vrf.ready_at(i) == 0 {
                            *r = true;
                        }
                    }
                }
                Op::Write(i, t) => {
                    let id = i % 8;
                    if ready[id] && vrf.ready_at(id) == 0 {
                        vrf.record_write(id, t);
                        prop_assert!(vrf.last_write_done(id) >= t);
                    }
                }
                Op::ReleaseOne => {
                    if let Some(id) = (0..8).find(|&i| refs_taken[i] > 0) {
                        vrf.release_ref(id);
                        refs_taken[id] -= 1;
                    }
                }
                Op::CleanCandidate(t) => {
                    now = now.max(t);
                    if let Some(id) = vrf.writeback_candidate(now) {
                        // Eligibility contract.
                        prop_assert_eq!(refs_taken[id], 0, "writeback of a referenced register");
                        prop_assert!(vrf.last_write_done(id) <= now);
                        let before = vrf.dirty_count();
                        vrf.clean(id);
                        prop_assert_eq!(vrf.dirty_count(), before - 1);
                    }
                }
            }
            prop_assert!(vrf.dirty_count() <= vrf.num_regs());
            let frac = vrf.dirty_fraction();
            prop_assert!((0.0..=1.0).contains(&frac));
        }

        // Drain: afterwards the VRF is pristine.
        for (i, taken) in refs_taken.iter_mut().enumerate() {
            for _ in 0..*taken {
                vrf.release_ref(i);
            }
            *taken = 0;
        }
        let drained = vrf.drain_dirty();
        prop_assert!(drained.len() <= 8);
        prop_assert_eq!(vrf.dirty_count(), 0);
        prop_assert!(vrf.is_quiescent());
    }
}
