//! Developer probe: wall-clock cost and headline metrics of single
//! simulated runs (used to budget the benchmark suite).

use spade_core::{ExecutionPlan, SpadeSystem, SystemConfig};
use spade_matrix::generators::{Benchmark, Scale};
use spade_matrix::DenseMatrix;
use std::time::Instant;

fn main() {
    for (bench, pes) in [
        (Benchmark::Kro, 224usize),
        (Benchmark::Roa, 224),
        (Benchmark::Ork, 56),
    ] {
        let a = bench.generate(Scale::Default);
        let b = DenseMatrix::from_fn(a.num_cols(), 32, |r, c| ((r + c) % 17) as f32 * 0.1);
        let mut sys = SpadeSystem::new(SystemConfig::with_pes(pes));
        let plan = ExecutionPlan::spmm_base(&a).unwrap();
        let t0 = Instant::now();
        let run = sys.run_spmm(&a, &b, &plan).unwrap();
        println!(
            "{} pes={} nnz={} cycles={} time_ms={:.1} host_s={:.2} rpc={:.2} gbps={:.1} dram={}",
            bench.short_name(),
            pes,
            a.nnz(),
            run.report.cycles,
            run.report.time_ns / 1e6,
            t0.elapsed().as_secs_f64(),
            run.report.requests_per_cycle,
            run.report.achieved_gbps,
            run.report.dram_accesses
        );
    }
}
