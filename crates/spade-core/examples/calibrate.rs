//! Developer probe: wall-clock cost and headline metrics of single
//! simulated runs (used to budget the benchmark suite).

use spade_core::{ExecutionPlan, SpadeSystem, SystemConfig};
use spade_matrix::generators::{Benchmark, Scale};
use spade_matrix::DenseMatrix;
use std::time::Instant;
fn main() {
    let pes = 224;
    let k = 32;
    for bench in [
        Benchmark::Roa,
        Benchmark::Kro,
        Benchmark::Ork,
        Benchmark::Del,
        Benchmark::Myc,
    ] {
        let a = bench.generate(Scale::Default);
        let b = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r + c) % 17) as f32 * 0.1);
        let mut sys = SpadeSystem::new(SystemConfig::with_pes(pes));
        let t0 = Instant::now();
        let spade = sys
            .run_spmm(&a, &b, &ExecutionPlan::spmm_base(&a).unwrap())
            .unwrap();
        let t_spade = t0.elapsed().as_secs_f64();
        println!(
            "{}: SPADE base {:.0}us gbps={:.0} (host {:.1}s)",
            bench.short_name(),
            spade.report.time_ns / 1e3,
            spade.report.achieved_gbps,
            t_spade
        );
    }
}
