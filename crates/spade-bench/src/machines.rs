//! Suite-scaled machine configurations (see the crate docs for the
//! scaling rationale).

use spade_baselines::cpu::{CpuConfig, CpuModel};
use spade_baselines::gpu::{GpuConfig, GpuModel};
use spade_baselines::sextans::{SextansConfig, SextansModel};
use spade_baselines::transfer::TransferModel;
use spade_core::{
    BarrierPolicy, CMatrixPolicy, ExecutionPlan, PlanSearchSpace, RMatrixPolicy, SystemConfig,
};
use spade_matrix::Coo;
use spade_sim::{ns_to_cycles, CacheConfig, DramConfig, MemConfig, StlbConfig};

use crate::CAPACITY_SCALE;

/// Scaled cache sizes: shared-capacity levels (L2, LLC) divided by the
/// capacity factor; per-PE structures (L1, victim cache) keep working
/// minima — the L1 must still cover the 64-register VRF and a victim
/// cache still needs a few sets.
fn scaled_caches() -> (CacheConfig, CacheConfig, CacheConfig, usize) {
    // Paper: L1 32 KiB, VC 16 KiB, L2 1.25 MiB / 4 PEs, LLC 1.5 MiB / 4 PEs.
    let l1 = CacheConfig::new(8 * 1024, 8);
    let vc = CacheConfig::new(2 * 1024, 2);
    let l2 = CacheConfig::new(((1_310_720.0 / CAPACITY_SCALE) as usize).max(8 * 1024), 16);
    // Round the scaled per-cluster LLC slice *up* to a whole number of
    // 12-way sets: 1.5 MiB / 160 ≈ 9830 B → 13 sets × 768 B = 9984 B.
    // (`MemConfig::validate` rejects inexact geometries rather than
    // silently shrinking them.)
    let llc_set_bytes = 12 * 64;
    let llc_per_cluster = ((1_572_864.0 / CAPACITY_SCALE) as usize)
        .max(4 * 1024)
        .div_ceil(llc_set_bytes)
        * llc_set_bytes;
    (l1, vc, l2, llc_per_cluster)
}

/// The SPADE system used by the benches: Table 1 pipeline, full DRAM
/// bandwidth, suite-scaled cache capacities.
///
/// # Panics
///
/// Panics if `num_pes` is not a multiple of 4.
pub fn spade_system(num_pes: usize) -> SystemConfig {
    let mut cfg = SystemConfig::with_pes(num_pes);
    let (l1, vc, l2, llc_per_cluster) = scaled_caches();
    let clusters = num_pes / 4;
    cfg.mem.l1 = l1;
    cfg.mem.victim = Some(vc);
    cfg.mem.l2 = l2;
    cfg.mem.llc = CacheConfig::new(clusters * llc_per_cluster, 12);
    cfg
}

/// The CPU baseline used by the benches: 56 Ice Lake cores with
/// suite-scaled caches on the same DRAM.
pub fn cpu_model() -> CpuModel {
    let cpu = CpuConfig::ice_lake();
    let (l1, _, l2, llc_per_cluster) = scaled_caches();
    let mem = MemConfig {
        num_agents: cpu.cores,
        agents_per_cluster: 1,
        l1,
        victim: None,
        l2,
        llc: CacheConfig::new(cpu.cores * llc_per_cluster, 12),
        llc_banks: cpu.cores,
        dram: DramConfig::ice_lake(),
        stlb: StlbConfig::ice_lake(),
        link_latency: ns_to_cycles(60.0),
        l1_latency: 2,
        l2_latency: 14,
        llc_latency: 30,
        faults: spade_sim::FaultConfig::none(),
    };
    CpuModel::with_mem(cpu, mem)
}

/// The V100 baseline used by the benches: full bandwidth, capacity-scaled
/// L2 and device memory (same `CAPACITY_SCALE` as the host caches, so
/// GPU-side reuse and the DEL/ROA-at-K=128 capacity exception appear at
/// the paper's relative sizes).
pub fn gpu_model() -> GpuModel {
    let base = GpuConfig::v100();
    GpuModel::new(GpuConfig {
        l2_bytes: ((base.l2_bytes as f64 / CAPACITY_SCALE) as usize).max(32 * 1024),
        memory_bytes: (base.memory_bytes as f64 / CAPACITY_SCALE) as u64,
        ..base
    })
}

/// The idealized Sextans used by the benches: full bandwidth,
/// capacity-scaled scratchpad (the §7.F dense-input re-streaming effect
/// needs the dense output to overflow the scratchpad at the same relative
/// point as in the paper).
pub fn sextans_model() -> SextansModel {
    let base = SextansConfig::idealized();
    SextansModel::new(SextansConfig {
        scratchpad_bytes: ((base.scratchpad_bytes as f64 / CAPACITY_SCALE) as u64).max(1 << 16),
        ..base
    })
}

/// The PCIe transfer model (not scaled: link properties, not capacities).
pub fn transfer_model() -> TransferModel {
    TransferModel::pcie3()
}

/// The bench SPADE Base plan: the paper's "row panel 256, column panel =
/// all, no bypass, no barriers", with the row panel scaled to preserve
/// panels-per-PE at the suite scale.
///
/// # Panics
///
/// Panics if `a` has zero columns.
pub fn base_plan(a: &Coo) -> ExecutionPlan {
    ExecutionPlan::with_knobs(
        8,
        a.num_cols().max(1),
        RMatrixPolicy::Cache,
        CMatrixPolicy::Cache,
        BarrierPolicy::None,
    )
    .expect("base plan parameters are valid")
}

/// The bench search space mirroring Table 3's structure at the suite
/// scale: row panels {4, 16, 64}, column panels {small, medium, all} with
/// the medium sized to roughly the LLC working set, rMatrix bypass on/off,
/// barriers on the medium column panel.
pub fn search_space(k: usize) -> PlanSearchSpace {
    let (small_cp, mid_cp) = if k >= 128 {
        (256, 2_048)
    } else {
        (1_024, 8_192)
    };
    PlanSearchSpace {
        row_panels: vec![4, 16, 64],
        col_panels: vec![small_cp, mid_cp, usize::MAX],
        r_policies: vec![RMatrixPolicy::Cache, RMatrixPolicy::BypassVictim],
        barrier_col_panel: mid_cp,
    }
}

/// A reduced space for quick runs: row panels {4, 64} with the full-width
/// column panel for both rMatrix policies, plus a medium-column-panel
/// barrier probe — six plans that cover each knob once.
pub fn quick_search_space(k: usize) -> PlanSearchSpace {
    let mut s = search_space(k);
    s.row_panels = vec![4, 64];
    s.col_panels = vec![s.col_panels[1], usize::MAX];
    s.r_policies = vec![RMatrixPolicy::Cache, RMatrixPolicy::BypassVictim];
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_llc_preserves_working_set_ratio() {
        let cfg = spade_system(224);
        // 56 clusters × (1.5 MiB / 160 rounded up to whole 12-way sets).
        assert_eq!(cfg.mem.llc.size_bytes, 56 * 9984);
        assert!(cfg.mem.llc.is_exact());
        assert_eq!(cfg.mem.dram.bandwidth_gbps, 304.0);
        assert_eq!(cfg.mem.validate(), Ok(()));
    }

    #[test]
    fn l1_still_covers_the_vrf() {
        let cfg = spade_system(224);
        // 64 vector registers of 64 B = 4 KiB; the L1 must be larger.
        assert!(cfg.mem.l1.size_bytes >= 8 * 1024);
    }

    #[test]
    fn cpu_and_spade_share_dram() {
        let cpu = cpu_model();
        let spade = spade_system(224);
        assert_eq!(cpu.config().cores, 56,);
        assert_eq!(spade.mem.dram.bandwidth_gbps, 304.0);
    }

    #[test]
    fn search_space_matches_table3_structure() {
        let s = search_space(32);
        assert_eq!(s.row_panels.len(), 3);
        assert_eq!(s.col_panels.len(), 3);
        assert_eq!(s.r_policies.len(), 2);
        let s128 = search_space(128);
        assert!(s128.col_panels[1] < s.col_panels[1]);
    }

    #[test]
    fn base_plan_spans_all_columns() {
        let a = Coo::from_triplets(100, 100, &[(0, 0, 1.0)]).unwrap();
        let p = base_plan(&a);
        assert_eq!(p.tiling.col_panel_size, 100);
        assert_eq!(p.tiling.row_panel_size, 8);
    }
}
