//! Run helpers: execute SPADE variants (Base / Opt / scaled-up) on a
//! workload, with functional validation against the memoized gold kernels.
//!
//! All sweeps route through the [`crate::parallel::ParallelRunner`]; the
//! helpers here build job lists and fold their reports. `find_opt` fans the
//! whole candidate space out across host cores and picks the winner with
//! the same tie-breaking the historical serial loop used (first
//! strictly-better candidate in enumeration order wins), so the selected
//! plan and its report are identical to a serial search.

use std::sync::Arc;

use spade_core::advisor::PlanRanker;
use spade_core::{ExecutionPlan, Primitive, RunReport, SystemConfig};
use spade_matrix::analysis::MatrixFeatures;

use crate::machines;
use crate::parallel::{Job, JobOutput, ParallelRunner};
use crate::suite::Workload;

/// How many model-ranked candidates [`find_opt_pruned`] simulates before
/// falling back on the Base plan comparison. Covers the true optimum on
/// the quick space (6–8 searched plans) with room to spare on Table 3.
pub const PRUNE_TOP_N: usize = 5;

/// Runs one SPADE execution of `primitive` on `w` under `plan`, validating
/// the functional result against the workload's cached gold output.
pub fn run_spade(
    config: &SystemConfig,
    w: &Workload,
    primitive: Primitive,
    plan: &ExecutionPlan,
) -> RunReport {
    Job::new(
        &Arc::new(w.clone()),
        &Arc::new(config.clone()),
        primitive,
        *plan,
    )
    .execute()
}

/// Runs one SPADE execution with observability on: windowed telemetry
/// (when `telemetry_window` is set) and event tracing (when `trace` is
/// set), validated against the gold kernel like [`run_spade`].
///
/// # Panics
///
/// Panics if the simulation fails or its output diverges from the gold
/// kernel.
pub fn run_spade_observed(
    config: &SystemConfig,
    w: &Workload,
    primitive: Primitive,
    plan: &ExecutionPlan,
    telemetry_window: Option<spade_sim::Cycle>,
    trace: bool,
) -> JobOutput {
    Job::new(
        &Arc::new(w.clone()),
        &Arc::new(config.clone()),
        primitive,
        *plan,
    )
    .with_telemetry(telemetry_window)
    .with_trace(trace)
    .try_execute_full()
    .unwrap_or_else(|e| panic!("{e}"))
}

/// The SPADE Base report for a workload.
pub fn run_base(config: &SystemConfig, w: &Workload, primitive: Primitive) -> RunReport {
    run_spade(config, w, primitive, &machines::base_plan(&w.a))
}

/// The Opt candidate set for a workload: the (quick) Table 3-shaped space,
/// with the tiny row panel MYC-like matrices also try (§7.A), followed by
/// the Base plan (SPADE Opt can never be worse than Base). The ordering is
/// the contract [`select_opt`] relies on.
pub fn opt_candidates(w: &Workload, quick: bool) -> Vec<ExecutionPlan> {
    let mut space = if quick {
        machines::quick_search_space(w.k)
    } else {
        machines::search_space(w.k)
    };
    if w.a.num_rows() < 4_096 {
        space = space.with_row_panel(2);
    }
    let mut plans = space.enumerate(&w.a);
    plans.push(machines::base_plan(&w.a));
    plans
}

/// Folds the reports of [`opt_candidates`] back into the best (plan,
/// report) pair: the first strictly-fastest searched candidate, unless the
/// Base plan (last entry) ties or beats it.
///
/// # Panics
///
/// Panics if `plans`/`reports` are empty or their lengths differ.
pub fn select_opt(plans: &[ExecutionPlan], reports: &[RunReport]) -> (ExecutionPlan, RunReport) {
    assert_eq!(plans.len(), reports.len(), "one report per candidate");
    assert!(!plans.is_empty(), "empty candidate set");
    let (searched, base) = (&reports[..reports.len() - 1], &reports[reports.len() - 1]);
    let mut best: Option<usize> = None;
    for (i, r) in searched.iter().enumerate() {
        if best.is_none_or(|b| r.cycles < searched[b].cycles) {
            best = Some(i);
        }
    }
    match best {
        Some(i) if searched[i].cycles <= base.cycles => (plans[i], searched[i].clone()),
        _ => (plans[plans.len() - 1], base.clone()),
    }
}

/// Searches the (quick) Table 3-shaped space in parallel and returns the
/// best plan and its report — the SPADE Opt methodology (§7.A).
pub fn find_opt(
    config: &SystemConfig,
    w: &Workload,
    primitive: Primitive,
    quick: bool,
) -> (ExecutionPlan, RunReport) {
    let workload = Arc::new(w.clone());
    let config = Arc::new(config.clone());
    let plans = opt_candidates(w, quick);
    let jobs: Vec<Job> = plans
        .iter()
        .map(|&plan| Job::new(&workload, &config, primitive, plan))
        .collect();
    let reports = ParallelRunner::from_env().run(&jobs);
    select_opt(&plans, &reports)
}

/// Model-guided `find_opt`: simulate only the ranker's `top_n` searched
/// candidates (plus Base) instead of the whole space.
///
/// The pruned candidate list keeps the surviving plans in their original
/// enumeration order and Base last, so [`select_opt`]'s tie-breaking is
/// unchanged: whenever the true optimum (the first minimal-cycle searched
/// candidate) survives the pruning, the returned `(plan, report)` pair is
/// byte-identical to the exhaustive search. When `ranker` is `None`, not
/// confident, or declines to rank, this *is* the exhaustive search.
pub fn find_opt_pruned(
    config: &SystemConfig,
    w: &Workload,
    primitive: Primitive,
    quick: bool,
    ranker: Option<&dyn PlanRanker>,
    top_n: usize,
) -> (ExecutionPlan, RunReport) {
    let plans = opt_candidates(w, quick);
    let pruned = prune_candidates(&plans, w, config, ranker, top_n);
    let workload = Arc::new(w.clone());
    let config = Arc::new(config.clone());
    let jobs: Vec<Job> = pruned
        .iter()
        .map(|&plan| Job::new(&workload, &config, primitive, plan))
        .collect();
    let reports = ParallelRunner::from_env().run(&jobs);
    select_opt(&pruned, &reports)
}

/// Reduces an [`opt_candidates`] list to the ranker's `top_n` searched
/// plans (in original enumeration order) followed by the Base plan.
/// Returns the input unchanged when the ranker is absent, unconfident,
/// declines to rank, or `top_n` already covers the space.
pub fn prune_candidates(
    plans: &[ExecutionPlan],
    w: &Workload,
    config: &SystemConfig,
    ranker: Option<&dyn PlanRanker>,
    top_n: usize,
) -> Vec<ExecutionPlan> {
    let searched = plans.len().saturating_sub(1);
    let Some(model) = ranker else {
        return plans.to_vec();
    };
    if !model.confident() || top_n == 0 || searched <= top_n {
        return plans.to_vec();
    }
    let features = MatrixFeatures::compute(&w.a);
    let Some(ranked) = model.rank(&features, w.k, config.num_pes, &plans[..searched]) else {
        return plans.to_vec();
    };
    let mut keep: Vec<usize> = ranked.iter().take(top_n).map(|&(i, _)| i).collect();
    keep.sort_unstable();
    let mut pruned: Vec<ExecutionPlan> = keep.into_iter().map(|i| plans[i]).collect();
    pruned.push(plans[searched]);
    pruned
}

/// Geometric mean of a non-empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_matrix::generators::{Benchmark, Scale};

    #[test]
    fn geomean_of_identity() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn opt_is_never_slower_than_base() {
        let w = Workload::prepare(Benchmark::Kro, Scale::Tiny, 32);
        let cfg = machines::spade_system(8);
        let base = run_base(&cfg, &w, Primitive::Spmm);
        let (_, opt) = find_opt(&cfg, &w, Primitive::Spmm, true);
        assert!(opt.cycles <= base.cycles);
    }

    #[test]
    fn sddmm_runs_validate() {
        let w = Workload::prepare(Benchmark::Myc, Scale::Tiny, 32);
        let cfg = machines::spade_system(8);
        let r = run_base(&cfg, &w, Primitive::Sddmm);
        assert!(r.cycles > 0);
    }

    #[test]
    fn candidates_end_with_the_base_plan() {
        let w = Workload::prepare(Benchmark::Kro, Scale::Tiny, 32);
        let plans = opt_candidates(&w, true);
        assert_eq!(*plans.last().unwrap(), machines::base_plan(&w.a));
        // MYC-sized matrices add the tiny row panel.
        assert!(plans.iter().any(|p| p.tiling.row_panel_size == 2));
    }

    /// A ranker that scores each plan by a fixed lookup — used as an
    /// oracle (scores = true cycles) and as an adversary (inverted).
    struct TableRanker {
        table: Vec<(ExecutionPlan, f64)>,
        confident: bool,
    }

    impl PlanRanker for TableRanker {
        fn confident(&self) -> bool {
            self.confident
        }
        fn rank(
            &self,
            _features: &MatrixFeatures,
            _k: usize,
            _pes: usize,
            plans: &[ExecutionPlan],
        ) -> Option<Vec<(usize, f64)>> {
            let mut scored: Vec<(usize, f64)> = plans
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let score = self
                        .table
                        .iter()
                        .find(|(q, _)| q == p)
                        .map(|&(_, s)| s)
                        .unwrap_or(f64::MAX);
                    (i, score)
                })
                .collect();
            scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            Some(scored)
        }
    }

    /// True cycles for every candidate, for oracle/adversary rankers.
    fn candidate_cycles(
        cfg: &SystemConfig,
        w: &Workload,
        quick: bool,
    ) -> Vec<(ExecutionPlan, f64)> {
        let plans = opt_candidates(w, quick);
        let workload = Arc::new(w.clone());
        let config = Arc::new(cfg.clone());
        let jobs: Vec<Job> = plans
            .iter()
            .map(|&p| Job::new(&workload, &config, Primitive::Spmm, p))
            .collect();
        let reports = ParallelRunner::from_env().run(&jobs);
        plans
            .iter()
            .zip(&reports)
            .map(|(&p, r)| (p, r.cycles as f64))
            .collect()
    }

    #[test]
    fn pruned_find_opt_is_byte_identical_when_optimum_survives() {
        let w = Workload::prepare(Benchmark::Kro, Scale::Tiny, 32);
        let cfg = machines::spade_system(8);
        let exhaustive = find_opt(&cfg, &w, Primitive::Spmm, true);
        // An oracle ranker always keeps the true optimum in its top-1.
        let oracle = TableRanker {
            table: candidate_cycles(&cfg, &w, true),
            confident: true,
        };
        for top_n in [1, 2, PRUNE_TOP_N] {
            let pruned = find_opt_pruned(&cfg, &w, Primitive::Spmm, true, Some(&oracle), top_n);
            assert_eq!(pruned.0, exhaustive.0, "plan diverged at top_n={top_n}");
            assert_eq!(pruned.1, exhaustive.1, "report diverged at top_n={top_n}");
        }
    }

    #[test]
    fn pruned_find_opt_without_ranker_is_the_exhaustive_search() {
        let w = Workload::prepare(Benchmark::Myc, Scale::Tiny, 32);
        let cfg = machines::spade_system(8);
        let exhaustive = find_opt(&cfg, &w, Primitive::Spmm, true);
        let pruned = find_opt_pruned(&cfg, &w, Primitive::Spmm, true, None, PRUNE_TOP_N);
        assert_eq!(pruned.0, exhaustive.0);
        assert_eq!(pruned.1, exhaustive.1);
        // An unconfident ranker is ignored the same way.
        let shy = TableRanker {
            table: Vec::new(),
            confident: false,
        };
        let plans = opt_candidates(&w, true);
        assert_eq!(
            prune_candidates(&plans, &w, &cfg, Some(&shy), 1),
            plans.to_vec()
        );
    }

    #[test]
    fn pruning_keeps_enumeration_order_and_base_last() {
        let w = Workload::prepare(Benchmark::Kro, Scale::Tiny, 32);
        let cfg = machines::spade_system(8);
        let plans = opt_candidates(&w, true);
        // An adversarial ranker that prefers the *slowest* plans still
        // yields a list in enumeration order with Base last, and
        // select_opt still caps the damage at Base.
        let mut inverted = candidate_cycles(&cfg, &w, true);
        for (_, s) in &mut inverted {
            *s = -*s;
        }
        let adversary = TableRanker {
            table: inverted,
            confident: true,
        };
        let pruned = prune_candidates(&plans, &w, &cfg, Some(&adversary), 2);
        assert_eq!(pruned.len(), 3);
        assert_eq!(*pruned.last().unwrap(), machines::base_plan(&w.a));
        let pos = |p: &ExecutionPlan| plans.iter().position(|q| q == p).unwrap();
        assert!(pos(&pruned[0]) < pos(&pruned[1]));
        let (plan, report) = find_opt_pruned(&cfg, &w, Primitive::Spmm, true, Some(&adversary), 2);
        let base = run_base(&cfg, &w, Primitive::Spmm);
        assert!(report.cycles <= base.cycles);
        let _ = plan;
    }

    #[test]
    fn reports_carry_host_wall_clock_and_throughput() {
        let w = Workload::prepare(Benchmark::Myc, Scale::Tiny, 32);
        let cfg = machines::spade_system(4);
        let r = run_base(&cfg, &w, Primitive::Spmm);
        assert!(r.host_wall_ns > 0.0);
        assert!(r.sim_cycles_per_host_sec() > 0.0);
    }
}
