//! Run helpers: execute SPADE variants (Base / Opt / scaled-up) on a
//! workload, with functional validation against the memoized gold kernels.
//!
//! All sweeps route through the [`crate::parallel::ParallelRunner`]; the
//! helpers here build job lists and fold their reports. `find_opt` fans the
//! whole candidate space out across host cores and picks the winner with
//! the same tie-breaking the historical serial loop used (first
//! strictly-better candidate in enumeration order wins), so the selected
//! plan and its report are identical to a serial search.

use std::sync::Arc;

use spade_core::{ExecutionPlan, Primitive, RunReport, SystemConfig};

use crate::machines;
use crate::parallel::{Job, JobOutput, ParallelRunner};
use crate::suite::Workload;

/// Runs one SPADE execution of `primitive` on `w` under `plan`, validating
/// the functional result against the workload's cached gold output.
pub fn run_spade(
    config: &SystemConfig,
    w: &Workload,
    primitive: Primitive,
    plan: &ExecutionPlan,
) -> RunReport {
    Job::new(
        &Arc::new(w.clone()),
        &Arc::new(config.clone()),
        primitive,
        *plan,
    )
    .execute()
}

/// Runs one SPADE execution with observability on: windowed telemetry
/// (when `telemetry_window` is set) and event tracing (when `trace` is
/// set), validated against the gold kernel like [`run_spade`].
///
/// # Panics
///
/// Panics if the simulation fails or its output diverges from the gold
/// kernel.
pub fn run_spade_observed(
    config: &SystemConfig,
    w: &Workload,
    primitive: Primitive,
    plan: &ExecutionPlan,
    telemetry_window: Option<spade_sim::Cycle>,
    trace: bool,
) -> JobOutput {
    Job::new(
        &Arc::new(w.clone()),
        &Arc::new(config.clone()),
        primitive,
        *plan,
    )
    .with_telemetry(telemetry_window)
    .with_trace(trace)
    .try_execute_full()
    .unwrap_or_else(|e| panic!("{e}"))
}

/// The SPADE Base report for a workload.
pub fn run_base(config: &SystemConfig, w: &Workload, primitive: Primitive) -> RunReport {
    run_spade(config, w, primitive, &machines::base_plan(&w.a))
}

/// The Opt candidate set for a workload: the (quick) Table 3-shaped space,
/// with the tiny row panel MYC-like matrices also try (§7.A), followed by
/// the Base plan (SPADE Opt can never be worse than Base). The ordering is
/// the contract [`select_opt`] relies on.
pub fn opt_candidates(w: &Workload, quick: bool) -> Vec<ExecutionPlan> {
    let mut space = if quick {
        machines::quick_search_space(w.k)
    } else {
        machines::search_space(w.k)
    };
    if w.a.num_rows() < 4_096 {
        space = space.with_row_panel(2);
    }
    let mut plans = space.enumerate(&w.a);
    plans.push(machines::base_plan(&w.a));
    plans
}

/// Folds the reports of [`opt_candidates`] back into the best (plan,
/// report) pair: the first strictly-fastest searched candidate, unless the
/// Base plan (last entry) ties or beats it.
///
/// # Panics
///
/// Panics if `plans`/`reports` are empty or their lengths differ.
pub fn select_opt(plans: &[ExecutionPlan], reports: &[RunReport]) -> (ExecutionPlan, RunReport) {
    assert_eq!(plans.len(), reports.len(), "one report per candidate");
    assert!(!plans.is_empty(), "empty candidate set");
    let (searched, base) = (&reports[..reports.len() - 1], &reports[reports.len() - 1]);
    let mut best: Option<usize> = None;
    for (i, r) in searched.iter().enumerate() {
        if best.is_none_or(|b| r.cycles < searched[b].cycles) {
            best = Some(i);
        }
    }
    match best {
        Some(i) if searched[i].cycles <= base.cycles => (plans[i], searched[i].clone()),
        _ => (plans[plans.len() - 1], base.clone()),
    }
}

/// Searches the (quick) Table 3-shaped space in parallel and returns the
/// best plan and its report — the SPADE Opt methodology (§7.A).
pub fn find_opt(
    config: &SystemConfig,
    w: &Workload,
    primitive: Primitive,
    quick: bool,
) -> (ExecutionPlan, RunReport) {
    let workload = Arc::new(w.clone());
    let config = Arc::new(config.clone());
    let plans = opt_candidates(w, quick);
    let jobs: Vec<Job> = plans
        .iter()
        .map(|&plan| Job::new(&workload, &config, primitive, plan))
        .collect();
    let reports = ParallelRunner::from_env().run(&jobs);
    select_opt(&plans, &reports)
}

/// Geometric mean of a non-empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_matrix::generators::{Benchmark, Scale};

    #[test]
    fn geomean_of_identity() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn opt_is_never_slower_than_base() {
        let w = Workload::prepare(Benchmark::Kro, Scale::Tiny, 32);
        let cfg = machines::spade_system(8);
        let base = run_base(&cfg, &w, Primitive::Spmm);
        let (_, opt) = find_opt(&cfg, &w, Primitive::Spmm, true);
        assert!(opt.cycles <= base.cycles);
    }

    #[test]
    fn sddmm_runs_validate() {
        let w = Workload::prepare(Benchmark::Myc, Scale::Tiny, 32);
        let cfg = machines::spade_system(8);
        let r = run_base(&cfg, &w, Primitive::Sddmm);
        assert!(r.cycles > 0);
    }

    #[test]
    fn candidates_end_with_the_base_plan() {
        let w = Workload::prepare(Benchmark::Kro, Scale::Tiny, 32);
        let plans = opt_candidates(&w, true);
        assert_eq!(*plans.last().unwrap(), machines::base_plan(&w.a));
        // MYC-sized matrices add the tiny row panel.
        assert!(plans.iter().any(|p| p.tiling.row_panel_size == 2));
    }

    #[test]
    fn reports_carry_host_wall_clock_and_throughput() {
        let w = Workload::prepare(Benchmark::Myc, Scale::Tiny, 32);
        let cfg = machines::spade_system(4);
        let r = run_base(&cfg, &w, Primitive::Spmm);
        assert!(r.host_wall_ns > 0.0);
        assert!(r.sim_cycles_per_host_sec() > 0.0);
    }
}
