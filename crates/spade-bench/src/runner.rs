//! Run helpers: execute SPADE variants (Base / Opt / scaled-up) on a
//! workload, with functional validation against the gold kernels.

use spade_core::{
    run_sddmm_checked, run_spmm_checked, ExecutionPlan, Primitive, RunReport, SpadeSystem,
    SystemConfig,
};

use crate::machines;
use crate::suite::Workload;

/// Runs one SPADE execution of `primitive` on `w` under `plan`, validating
/// the functional result.
pub fn run_spade(config: &SystemConfig, w: &Workload, primitive: Primitive, plan: &ExecutionPlan) -> RunReport {
    let mut sys = SpadeSystem::new(config.clone());
    match primitive {
        Primitive::Spmm => run_spmm_checked(&mut sys, &w.a, w.b_for_spmm(), plan).report,
        Primitive::Sddmm => run_sddmm_checked(&mut sys, &w.a, &w.b, &w.c_t, plan).report,
    }
}

/// The SPADE Base report for a workload.
pub fn run_base(config: &SystemConfig, w: &Workload, primitive: Primitive) -> RunReport {
    run_spade(config, w, primitive, &machines::base_plan(&w.a))
}

/// Searches the (quick) Table 3-shaped space and returns the best plan and
/// its report — the SPADE Opt methodology (§7.A). MYC-like matrices with
/// very few rows also try a tiny row panel, per the paper.
pub fn find_opt(
    config: &SystemConfig,
    w: &Workload,
    primitive: Primitive,
    quick: bool,
) -> (ExecutionPlan, RunReport) {
    let mut space = if quick {
        machines::quick_search_space(w.k)
    } else {
        machines::search_space(w.k)
    };
    if w.a.num_rows() < 4_096 {
        space = space.with_row_panel(2);
    }
    let mut best: Option<(ExecutionPlan, RunReport)> = None;
    for plan in space.enumerate(&w.a) {
        let report = run_spade(config, w, primitive, &plan);
        let better = best
            .as_ref()
            .map_or(true, |(_, b)| report.cycles < b.cycles);
        if better {
            best = Some((plan, report));
        }
    }
    // The Base plan is also part of the candidate set (SPADE Opt can never
    // be worse than Base).
    let base_plan = machines::base_plan(&w.a);
    let base = run_spade(config, w, primitive, &base_plan);
    match best {
        Some((_, ref b)) if b.cycles <= base.cycles => best.expect("just matched"),
        _ => (base_plan, base),
    }
}

/// Geometric mean of a non-empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_matrix::generators::{Benchmark, Scale};

    #[test]
    fn geomean_of_identity() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn opt_is_never_slower_than_base() {
        let w = Workload::prepare(Benchmark::Kro, Scale::Tiny, 32);
        let cfg = machines::spade_system(8);
        let base = run_base(&cfg, &w, Primitive::Spmm);
        let (_, opt) = find_opt(&cfg, &w, Primitive::Spmm, true);
        assert!(opt.cycles <= base.cycles);
    }

    #[test]
    fn sddmm_runs_validate() {
        let w = Workload::prepare(Benchmark::Myc, Scale::Tiny, 32);
        let cfg = machines::spade_system(8);
        let r = run_base(&cfg, &w, Primitive::Sddmm);
        assert!(r.cycles > 0);
    }
}
