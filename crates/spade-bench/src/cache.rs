//! Crash-safe, content-addressed on-disk result cache.
//!
//! The experiment daemon answers heavy repeated traffic — re-running a
//! fig9 sweep is the common case — so finished results are persisted and
//! served back in microseconds instead of re-simulated. The cache must
//! survive exactly the things a long-lived service sees: a SIGKILL in the
//! middle of a write, a disk that filled up, an old daemon's stale format,
//! a corrupted byte. The design makes every failure mode either invisible
//! or a recompute, never a wrong answer:
//!
//! * **Atomic commits.** An entry is written to a temp file in the cache
//!   directory and published with [`std::fs::rename`] — on POSIX a rename
//!   within one filesystem is atomic, so a reader only ever observes
//!   either no entry or a complete one. A crash mid-write leaves a
//!   `*.partial` temp file that no reader ever opens; leftovers are swept
//!   on the next [`ResultCache::open`].
//! * **Self-verifying entries.** Every file carries a magic + format
//!   version header and a length + FNV-1a checksum footer. A reader
//!   validates all four before trusting a byte; any mismatch — truncation,
//!   bit rot, a half-written file that somehow got the right name —
//!   quarantines the entry and reports a miss, forcing a recompute.
//! * **Versioned format.** [`CACHE_FORMAT_VERSION`] is part of the header;
//!   entries from an older (or newer) daemon are invalidated, not
//!   misparsed.
//!
//! Keys are content hashes of the full job identity (see
//! [`crate::parallel::Job::cache_key`]): same simulation in, same key out,
//! across processes and hosts.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use spade_core::JsonValue;

/// On-disk entry format version. Bump on any layout or payload-schema
/// change: old entries then quarantine cleanly instead of being misread.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Entry-file magic. The trailing byte doubles as a format epoch guard:
/// a file that is not even ours never reaches version checking.
const MAGIC: &[u8; 8] = b"SPADERC\0";

/// magic (8) + version (4) + payload length (8).
const HEADER_LEN: usize = 20;

/// payload length again (8) + FNV-1a checksum of the payload (8).
const FOOTER_LEN: usize = 16;

/// Streaming FNV-1a 64-bit hash — the workspace's dependency-free content
/// hash for cache keys and entry checksums. Stable across platforms,
/// processes and builds (unlike `DefaultHasher`, which is randomly
/// seeded per process).
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// The hash of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Counters a [`ResultCache`] keeps about its own behavior, surfaced by
/// the daemon's `status` response and flushed into `index.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Lookups that found nothing (or nothing trustworthy).
    pub misses: u64,
    /// Entries committed.
    pub stores: u64,
    /// Entries rejected on read — truncated, corrupted, or stale-format —
    /// and moved aside for recompute.
    pub quarantined: u64,
}

impl CacheStats {
    /// These counters as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("hits", self.hits.into()),
            ("misses", self.misses.into()),
            ("stores", self.stores.into()),
            ("quarantined", self.quarantined.into()),
        ])
    }
}

/// A content-addressed result cache rooted at one directory. Safe to share
/// across threads (`&self` everywhere, counters atomic); safe to share
/// across *processes* because commits are atomic renames and readers
/// verify every entry.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    /// Distinguishes temp files written concurrently by this process.
    seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) the cache at `dir` and sweeps temp files
    /// left behind by crashed writers — a `*.partial` file is by
    /// construction an entry that was never committed.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be created
    /// or listed.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if name.to_string_lossy().ends_with(".partial") {
                // Best-effort: a sweep race with another starting daemon
                // is fine, someone removes it.
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(ResultCache {
            dir,
            seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        })
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A snapshot of the hit/miss/store/quarantine counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Number of committed entries currently on disk.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.flatten()
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".entry"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether no committed entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The keys of every committed entry on disk, sorted. A key is just
    /// the entry's file stem — content-addressed, so enumeration needs no
    /// index.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = fs::read_dir(&self.dir)
            .map(|rd| {
                rd.flatten()
                    .filter_map(|e| {
                        let name = e.file_name().to_string_lossy().into_owned();
                        name.strip_suffix(".entry").map(str::to_string)
                    })
                    .collect()
            })
            .unwrap_or_default();
        keys.sort();
        keys
    }

    /// Reads `key` without touching the hit/miss counters — for index
    /// (re)builds that walk the cache, which are bookkeeping, not
    /// request traffic. A damaged entry is still quarantined (that
    /// counter records real events, not traffic).
    pub fn peek(&self, key: &str) -> Option<Vec<u8>> {
        let path = self.entry_path(key);
        let bytes = fs::read(&path).ok()?;
        match decode_entry(&bytes) {
            Ok(payload) => Some(payload.to_vec()),
            Err(reason) => {
                self.quarantine(&path, reason);
                None
            }
        }
    }

    /// Parses `index.json` if present and valid. Advisory only: callers
    /// must cross-check anything they take from it against the entries
    /// actually on disk.
    pub fn read_index(&self) -> Option<JsonValue> {
        let text = fs::read_to_string(self.dir.join("index.json")).ok()?;
        JsonValue::parse(&text).ok()
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.entry"))
    }

    /// Looks up `key`. Returns the payload only if the entry passes every
    /// check — magic, format version, both length records, checksum. An
    /// entry that fails any check is quarantined (moved into
    /// `quarantine/`, or deleted if even that fails) and reported as a
    /// miss, so the caller recomputes instead of trusting a corrupt file.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry(&bytes) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload.to_vec())
            }
            Err(reason) => {
                self.quarantine(&path, reason);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Commits `payload` under `key`: temp file, fsync, atomic rename.
    /// Readers never observe a partial entry; a crash at any instant
    /// leaves either the old state or the new one.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (disk full, permissions); the
    /// cache directory is left without a (new) entry but never with a
    /// half-written one under `key`.
    pub fn put(&self, key: &str, payload: &[u8]) -> io::Result<()> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!("{key}.{}.{seq}.partial", std::process::id()));
        let result = (|| {
            let mut f = File::create(&tmp)?;
            f.write_all(&encode_entry(payload))?;
            // Make the entry durable before it becomes visible; without
            // this a crash after rename could still lose the *contents*.
            f.sync_all()?;
            drop(f);
            fs::rename(&tmp, self.entry_path(key))?;
            // Best-effort directory sync so the rename itself is durable.
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
            Ok(())
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        } else {
            self.stores.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Moves a failed entry aside so the next writer can recompute and
    /// commit cleanly, keeping the bad bytes around for diagnosis.
    fn quarantine(&self, path: &Path, reason: &str) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let qdir = self.dir.join("quarantine");
        let moved = fs::create_dir_all(&qdir).is_ok() && {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "entry".into());
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            fs::rename(path, qdir.join(format!("{name}.{seq}.bad"))).is_ok()
        };
        if !moved {
            let _ = fs::remove_file(path);
        }
        eprintln!("spade-cache: quarantined {} ({reason})", path.display());
    }

    /// Writes `index.json` next to the entries: format version, entry
    /// count, and the behavior counters. Written atomically like an entry;
    /// called by the daemon on graceful shutdown. The index is advisory —
    /// correctness never depends on it (every entry is self-verifying).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the write fails.
    pub fn flush_index(&self) -> io::Result<PathBuf> {
        self.flush_index_with(None)
    }

    /// Like [`ResultCache::flush_index`], with an optional `dataset`
    /// array — per-entry metadata the daemon's `query` surface catalogs —
    /// persisted alongside the counters so the next daemon can warm its
    /// catalog without decoding every entry.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the write fails.
    pub fn flush_index_with(&self, dataset: Option<JsonValue>) -> io::Result<PathBuf> {
        let stats = self.stats();
        let mut fields = vec![
            ("format_version", JsonValue::from(CACHE_FORMAT_VERSION)),
            ("entries", self.len().into()),
            ("stats", stats.to_json()),
        ];
        if let Some(dataset) = dataset {
            fields.push(("dataset", dataset));
        }
        let doc = JsonValue::object(fields);
        let path = self.dir.join("index.json");
        let tmp = self.dir.join(format!(
            "index.{}.{}.partial",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let mut f = File::create(&tmp)?;
        f.write_all(doc.render().as_bytes())?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// Frames `payload` as one self-verifying entry:
/// `MAGIC | version | len | payload | len | fnv1a(payload)`.
fn encode_entry(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + FOOTER_LEN);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&CACHE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out
}

/// Validates one entry file image and returns its payload slice.
fn decode_entry(bytes: &[u8]) -> Result<&[u8], &'static str> {
    if bytes.len() < HEADER_LEN + FOOTER_LEN {
        return Err("truncated before the header/footer");
    }
    if &bytes[..8] != MAGIC {
        return Err("bad magic");
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != CACHE_FORMAT_VERSION {
        return Err("stale format version");
    }
    let header_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let expected = (bytes.len() - HEADER_LEN - FOOTER_LEN) as u64;
    if header_len != expected {
        return Err("header length disagrees with the file size");
    }
    let payload = &bytes[HEADER_LEN..bytes.len() - FOOTER_LEN];
    let footer = &bytes[bytes.len() - FOOTER_LEN..];
    let footer_len = u64::from_le_bytes(footer[..8].try_into().expect("8 bytes"));
    if footer_len != header_len {
        return Err("footer length disagrees with the header");
    }
    let checksum = u64::from_le_bytes(footer[8..].try_into().expect("8 bytes"));
    if checksum != fnv1a(payload) {
        return Err("checksum mismatch");
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cache(tag: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("spade_cache_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::open(dir).unwrap()
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write_u64(7);
        h.write_u32(9);
        let a = h.finish();
        let mut h = Fnv64::new();
        h.write(&7u64.to_le_bytes());
        h.write(&9u32.to_le_bytes());
        assert_eq!(a, h.finish());
    }

    #[test]
    fn roundtrip_hits_after_store() {
        let c = tmp_cache("roundtrip");
        let key = "00112233445566778899aabbccddeeff";
        assert_eq!(c.get(key), None);
        c.put(key, b"{\"cycles\":42}").unwrap();
        assert_eq!(c.get(key).as_deref(), Some(&b"{\"cycles\":42}"[..]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.stores, s.quarantined), (1, 1, 1, 0));
        assert_eq!(c.len(), 1);
        let _ = fs::remove_dir_all(c.dir());
    }

    #[test]
    fn every_truncation_of_an_entry_is_rejected() {
        // The crash-safety core: whatever prefix of the final bytes a
        // dying writer could have left under the entry name (it cannot,
        // thanks to rename — but belt and braces), the reader must refuse
        // it. This is the same property a SIGKILL mid-write exercises.
        let c = tmp_cache("truncation");
        let key = "aaaabbbbccccddddeeeeffff00001111";
        c.put(key, b"payload bytes that matter").unwrap();
        let full = fs::read(c.entry_path(key)).unwrap();
        for cut in 0..full.len() {
            fs::write(c.entry_path(key), &full[..cut]).unwrap();
            assert_eq!(c.get(key), None, "accepted a {cut}-byte truncation");
            // The bad file was quarantined; the slot is clean again.
            assert!(!c.entry_path(key).exists());
        }
        // The intact image still reads back fine.
        fs::write(c.entry_path(key), &full).unwrap();
        assert_eq!(
            c.get(key).as_deref(),
            Some(&b"payload bytes that matter"[..])
        );
        assert_eq!(c.stats().quarantined, full.len() as u64);
        let _ = fs::remove_dir_all(c.dir());
    }

    #[test]
    fn corrupted_bytes_are_quarantined_not_trusted() {
        let c = tmp_cache("corrupt");
        let key = "11112222333344445555666677778888";
        c.put(key, b"all these bytes are load-bearing").unwrap();
        let mut bytes = fs::read(c.entry_path(key)).unwrap();
        let mid = HEADER_LEN + 4;
        bytes[mid] ^= 0x40;
        fs::write(c.entry_path(key), &bytes).unwrap();
        assert_eq!(c.get(key), None);
        assert!(c.dir().join("quarantine").exists());
        // Recompute-and-store works after quarantine.
        c.put(key, b"all these bytes are load-bearing").unwrap();
        assert!(c.get(key).is_some());
        let _ = fs::remove_dir_all(c.dir());
    }

    #[test]
    fn stale_format_version_is_invalidated() {
        let c = tmp_cache("version");
        let key = "deadbeefdeadbeefdeadbeefdeadbeef";
        c.put(key, b"old world").unwrap();
        let mut bytes = fs::read(c.entry_path(key)).unwrap();
        bytes[8] = bytes[8].wrapping_add(1); // bump the stored version
        fs::write(c.entry_path(key), &bytes).unwrap();
        assert_eq!(c.get(key), None, "a stale-format entry must not parse");
        let _ = fs::remove_dir_all(c.dir());
    }

    #[test]
    fn partial_temp_files_are_invisible_and_swept() {
        let c = tmp_cache("sweep");
        let key = "0123456789abcdef0123456789abcdef";
        // Simulate a writer killed mid-write: a temp file exists, the
        // entry does not.
        fs::write(
            c.dir().join(format!("{key}.999.0.partial")),
            b"half-written garbage",
        )
        .unwrap();
        assert_eq!(c.get(key), None, "temp files must never satisfy a read");
        // A fresh open (daemon restart) sweeps the leftover.
        let dir = c.dir().to_path_buf();
        drop(c);
        let c = ResultCache::open(&dir).unwrap();
        assert!(
            !fs::read_dir(&dir)
                .unwrap()
                .flatten()
                .any(|e| e.file_name().to_string_lossy().ends_with(".partial")),
            "restart must sweep crashed writers' temp files"
        );
        let _ = c;
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_flush_is_valid_json() {
        let c = tmp_cache("index");
        c.put("ffffeeeeddddccccbbbbaaaa99998888", b"x").unwrap();
        let path = c.flush_index().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let doc = spade_sim::json::JsonValue::parse(&text).unwrap();
        assert_eq!(
            doc.get("format_version").and_then(|v| v.as_u64()),
            Some(u64::from(CACHE_FORMAT_VERSION))
        );
        assert_eq!(doc.get("entries").and_then(|v| v.as_u64()), Some(1));
        let _ = fs::remove_dir_all(c.dir());
    }

    #[test]
    fn empty_payloads_are_fine() {
        let c = tmp_cache("empty");
        let key = "e0e0e0e0e0e0e0e0e0e0e0e0e0e0e0e0";
        c.put(key, b"").unwrap();
        assert_eq!(c.get(key).as_deref(), Some(&b""[..]));
        assert!(!c.is_empty());
        let _ = fs::remove_dir_all(c.dir());
    }
}
