//! The parallel experiment engine: fan independent cycle-level simulations
//! out across host cores.
//!
//! Every paper result is a sweep of independent simulations — the Opt
//! search walks ~a dozen plans per graph, and each figure walks 10 graphs
//! × {SpMM, SDDMM} × K ∈ {32, 128}. Simulations share no mutable state, so
//! the sweep is embarrassingly parallel; the [`ParallelRunner`] executes a
//! job list across a bounded worker pool and returns reports **in job
//! order**, bit-identical to a serial walk of the same list.
//!
//! # Determinism
//!
//! Each simulation is single-threaded and deterministic, workers never
//! share simulator state, and results are stored by job index — so the
//! returned `Vec<RunReport>` does not depend on thread count or scheduling
//! order. `ParallelRunner::new(1)` is the reference serial path; the
//! `parallel_determinism` test pins the equivalence.
//!
//! # De-duplication
//!
//! Sweeps repeat work: the Opt search re-runs the Base plan that `run_base`
//! already measured, and clamped search spaces can collapse distinct knob
//! settings into the same effective plan. Jobs that are exactly equal —
//! same workload (by `Arc` identity), same config (by `Arc` identity), same
//! plan and primitive — are simulated once and the report is fanned out to
//! every duplicate slot.
//!
//! # Thread count
//!
//! `SPADE_THREADS` overrides the worker count; the default is the host's
//! available parallelism. `SPADE_THREADS=1` forces the serial path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use spade_core::{Primitive, RunReport, SpadeSystem, SystemConfig};
use spade_matrix::reference;

use crate::suite::Workload;

/// One independent simulation: a (workload, config, plan, primitive)
/// tuple. Construction is cheap — workload and config are shared.
#[derive(Debug, Clone)]
pub struct Job {
    /// The prepared workload (shared, with memoized gold outputs).
    pub workload: Arc<Workload>,
    /// The machine to simulate on (shared across jobs).
    pub config: Arc<SystemConfig>,
    /// Which kernel to run.
    pub primitive: Primitive,
    /// The execution plan under test.
    pub plan: spade_core::ExecutionPlan,
}

impl Job {
    /// Creates a job.
    pub fn new(
        workload: &Arc<Workload>,
        config: &Arc<SystemConfig>,
        primitive: Primitive,
        plan: spade_core::ExecutionPlan,
    ) -> Self {
        Job {
            workload: Arc::clone(workload),
            config: Arc::clone(config),
            primitive,
            plan,
        }
    }

    /// Identity key for de-duplication: workload and config by pointer
    /// (prepared objects are shared, so pointer identity is object
    /// identity), plan and primitive by value.
    fn dedup_key(&self) -> (usize, usize, Primitive, spade_core::ExecutionPlan) {
        (
            Arc::as_ptr(&self.workload) as usize,
            Arc::as_ptr(&self.config) as usize,
            self.primitive,
            self.plan,
        )
    }

    /// Runs this job on the calling thread, validating the simulated
    /// output against the workload's memoized gold result.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails or its output diverges from the gold
    /// kernel — the same contract as `run_spmm_checked`, but against the
    /// shared cached gold instead of a fresh recomputation per run.
    pub fn execute(&self) -> RunReport {
        let w = &self.workload;
        let mut sys = SpadeSystem::new((*self.config).clone());
        match self.primitive {
            Primitive::Spmm => {
                let run = sys
                    .run_spmm(&w.a, w.b_for_spmm(), &self.plan)
                    .expect("SpMM run failed");
                assert!(
                    reference::dense_close(&run.output, w.gold_spmm(), 1e-3),
                    "simulated SpMM diverged from the gold kernel ({})",
                    w.name
                );
                run.report
            }
            Primitive::Sddmm => {
                let run = sys
                    .run_sddmm(&w.a, &w.b, &w.c_t, &self.plan)
                    .expect("SDDMM run failed");
                assert!(
                    reference::first_mismatch(run.output.vals(), w.gold_sddmm(), 1e-3).is_none(),
                    "simulated SDDMM diverged from the gold kernel ({})",
                    w.name
                );
                run.report
            }
        }
    }
}

/// Executes job lists across a bounded worker pool.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    threads: usize,
}

impl ParallelRunner {
    /// A runner with an explicit worker count (`threads >= 1`).
    pub fn new(threads: usize) -> Self {
        ParallelRunner {
            threads: threads.max(1),
        }
    }

    /// The default runner: `SPADE_THREADS` if set and parseable, otherwise
    /// the host's available parallelism.
    pub fn from_env() -> Self {
        Self::new(num_threads())
    }

    /// The worker count this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job and returns the reports in job order.
    ///
    /// Duplicate jobs (see module docs) are simulated once. With one
    /// worker this is exactly the serial loop; with more, workers pull
    /// unique jobs from a shared queue but the output order — and every
    /// simulated metric — is independent of the interleaving.
    pub fn run(&self, jobs: &[Job]) -> Vec<RunReport> {
        // Map every job slot to a unique-work index.
        let mut unique: Vec<&Job> = Vec::new();
        let mut keys: Vec<(usize, usize, Primitive, spade_core::ExecutionPlan)> = Vec::new();
        let mut slot_to_unique = Vec::with_capacity(jobs.len());
        for job in jobs {
            let key = job.dedup_key();
            match keys.iter().position(|k| *k == key) {
                Some(i) => slot_to_unique.push(i),
                None => {
                    keys.push(key);
                    unique.push(job);
                    slot_to_unique.push(unique.len() - 1);
                }
            }
        }

        let results: Vec<Option<RunReport>> = if self.threads == 1 || unique.len() <= 1 {
            unique.iter().map(|j| Some(j.execute())).collect()
        } else {
            let next = AtomicUsize::new(0);
            let results = Mutex::new(vec![None; unique.len()]);
            let workers = self.threads.min(unique.len());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= unique.len() {
                            break;
                        }
                        let report = unique[i].execute();
                        results.lock().expect("results poisoned")[i] = Some(report);
                    });
                }
            });
            results.into_inner().expect("results poisoned")
        };

        slot_to_unique
            .into_iter()
            .map(|i| results[i].clone().expect("every unique job ran"))
            .collect()
    }
}

impl Default for ParallelRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The worker count: `SPADE_THREADS` if set and parseable to a positive
/// number, otherwise the host's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("SPADE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One-line throughput summary for bench output: how much simulated time
/// the sweep covered and how fast the host produced it.
pub fn throughput_summary(reports: &[RunReport], host_wall: std::time::Duration) -> String {
    let total_cycles: u64 = reports.iter().map(|r| r.cycles).sum();
    let secs = host_wall.as_secs_f64();
    let rate = if secs > 0.0 {
        total_cycles as f64 / secs / 1e6
    } else {
        0.0
    };
    format!(
        "[{} sims | {} threads] {total_cycles} simulated cycles in {secs:.2} s host time ({rate:.1} Mcycle/s)",
        reports.len(),
        num_threads(),
    )
}

/// Runs `jobs` with the environment-default runner and prints the
/// throughput summary line — the standard entry point for the bench
/// binaries.
pub fn run_and_summarize(jobs: &[Job]) -> Vec<RunReport> {
    let start = Instant::now();
    let reports = ParallelRunner::from_env().run(jobs);
    println!("{}", throughput_summary(&reports, start.elapsed()));
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;
    use spade_matrix::generators::{Benchmark, Scale};

    fn setup() -> (Arc<Workload>, Arc<SystemConfig>) {
        (
            Arc::new(Workload::prepare(Benchmark::Myc, Scale::Tiny, 32)),
            Arc::new(machines::spade_system(4)),
        )
    }

    #[test]
    fn reports_come_back_in_job_order() {
        let (w, cfg) = setup();
        let plans = machines::quick_search_space(32).enumerate(&w.a);
        let jobs: Vec<Job> = plans
            .iter()
            .map(|&p| Job::new(&w, &cfg, Primitive::Spmm, p))
            .collect();
        let parallel = ParallelRunner::new(4).run(&jobs);
        let serial: Vec<RunReport> = jobs.iter().map(|j| j.execute()).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn duplicate_jobs_get_identical_reports() {
        let (w, cfg) = setup();
        let plan = machines::base_plan(&w.a);
        let job = Job::new(&w, &cfg, Primitive::Spmm, plan);
        let reports = ParallelRunner::new(2).run(&[job.clone(), job]);
        assert_eq!(reports[0], reports[1]);
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(ParallelRunner::new(4).run(&[]).is_empty());
    }

    #[test]
    fn spade_threads_env_is_just_a_count() {
        // Can't set the env var here (tests run threaded); exercise the
        // constructor clamp instead.
        assert_eq!(ParallelRunner::new(0).threads(), 1);
        assert_eq!(ParallelRunner::new(7).threads(), 7);
    }
}
