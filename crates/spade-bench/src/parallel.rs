//! The parallel experiment engine: fan independent cycle-level simulations
//! out across host cores.
//!
//! Every paper result is a sweep of independent simulations — the Opt
//! search walks ~a dozen plans per graph, and each figure walks 10 graphs
//! × {SpMM, SDDMM} × K ∈ {32, 128}. Simulations share no mutable state, so
//! the sweep is embarrassingly parallel; the [`ParallelRunner`] executes a
//! job list across a bounded worker pool and returns reports **in job
//! order**, bit-identical to a serial walk of the same list.
//!
//! # Determinism
//!
//! Each simulation is single-threaded and deterministic, workers never
//! share simulator state, and results are stored by job index — so the
//! returned `Vec<RunReport>` does not depend on thread count or scheduling
//! order. `ParallelRunner::new(1)` is the reference serial path; the
//! `parallel_determinism` test pins the equivalence.
//!
//! # De-duplication
//!
//! Sweeps repeat work: the Opt search re-runs the Base plan that `run_base`
//! already measured, and clamped search spaces can collapse distinct knob
//! settings into the same effective plan. Jobs that are exactly equal —
//! same workload (by `Arc` identity), same config (by `Arc` identity), same
//! plan and primitive — are simulated once and the report is fanned out to
//! every duplicate slot.
//!
//! # Thread count
//!
//! `SPADE_THREADS` overrides the worker count; the default is the host's
//! available parallelism. `SPADE_THREADS=1` forces the serial path.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once, PoisonError};
use std::time::Instant;

use spade_core::{Primitive, RunReport, SpadeSystem, SystemConfig};
use spade_matrix::reference;
use spade_sim::{Cycle, TelemetrySeries, TraceLog};

use crate::suite::Workload;

/// Why one job of a sweep failed. Failures are per-job: the rest of the
/// sweep still completes and returns its reports (see
/// [`ParallelRunner::run_results`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// The workload the failing job was running.
    pub workload: String,
    /// The primitive the failing job was running.
    pub primitive: Primitive,
    /// The simulation error, gold-divergence report, or panic message.
    pub message: String,
    /// How many times the job was attempted (2 means one panic retry).
    pub attempts: u32,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {}/{:?} failed after {} attempt(s): {}",
            self.workload, self.primitive, self.attempts, self.message
        )
    }
}

impl std::error::Error for JobError {}

/// Why one task of a [`ParallelRunner::run_tasks`] batch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// The task's own error message, or the panic payload.
    pub message: String,
    /// How many times the task was attempted (2 means one panic retry).
    pub attempts: u32,
    /// Whether the final failure was a panic (caught and contained) rather
    /// than a returned error.
    pub panicked: bool,
}

/// Worst-case attempts per task: the first run plus one retry, granted
/// only after a panic. A task that returns `Err` fails immediately — a
/// deterministic error would just fail again.
const MAX_ATTEMPTS: u32 = 2;

thread_local! {
    /// Set while this thread runs a task under `catch_retry`: the process
    /// panic hook stays quiet, because the panic is caught and surfaced as
    /// a `TaskError` instead of an aborting stack trace.
    static PANIC_QUIET: Cell<bool> = const { Cell::new(false) };
}

static PANIC_HOOK: Once = Once::new();

/// Runs `f`, catching panics and granting one retry after a panic. The
/// process panic hook is silenced for this thread while `f` runs (the
/// panic is reported through the returned [`TaskError`] instead).
fn catch_retry<T>(f: impl Fn() -> Result<T, String>) -> Result<T, TaskError> {
    PANIC_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !PANIC_QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
    PANIC_QUIET.with(|q| q.set(true));
    let mut outcome = None;
    for attempt in 1..=MAX_ATTEMPTS {
        match panic::catch_unwind(AssertUnwindSafe(&f)) {
            Ok(Ok(v)) => {
                outcome = Some(Ok(v));
                break;
            }
            Ok(Err(message)) => {
                outcome = Some(Err(TaskError {
                    message,
                    attempts: attempt,
                    panicked: false,
                }));
                break;
            }
            Err(payload) => {
                let failure = Err(TaskError {
                    message: panic_message(payload.as_ref()),
                    attempts: attempt,
                    panicked: true,
                });
                outcome = Some(failure);
                // Panics get one retry; a second one is final.
            }
        }
    }
    PANIC_QUIET.with(|q| q.set(false));
    outcome.expect("at least one attempt ran")
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

fn lock_results<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A worker can no longer panic while holding the lock (assignment only),
    // but stay robust to poisoning: the stored data is index-assigned and
    // valid regardless.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One independent simulation: a (workload, config, plan, primitive)
/// tuple. Construction is cheap — workload and config are shared.
#[derive(Debug, Clone)]
pub struct Job {
    /// The prepared workload (shared, with memoized gold outputs).
    pub workload: Arc<Workload>,
    /// The machine to simulate on (shared across jobs).
    pub config: Arc<SystemConfig>,
    /// Which kernel to run.
    pub primitive: Primitive,
    /// The execution plan under test.
    pub plan: spade_core::ExecutionPlan,
    /// Telemetry window in cycles; `None` (the default) disables sampling.
    pub telemetry_window: Option<Cycle>,
    /// Whether to record an event trace (off by default).
    pub trace: bool,
    /// Drive the simulation with the naive cycle-by-cycle loop instead of
    /// the event-driven scheduler (off by default). Both produce
    /// bit-identical results; the naive loop exists as the oracle for the
    /// scheduler-equivalence tests and the `bench-perf` comparison.
    pub naive_loop: bool,
    /// Force the memory hierarchy onto its slow path — no line/page
    /// filters, no monomorphized no-fault arms (off by default). Both
    /// paths produce bit-identical results; the slow path exists as the
    /// oracle for the memory-fastpath-equivalence tests and the memory
    /// microbenchmark.
    pub slow_mem_path: bool,
    /// Host shard count for the event-driven driver (see
    /// [`SpadeSystem::set_shards`]): `None` (the default) inherits the
    /// `SPADE_SIM_SHARDS` environment default, `Some(n)` pins it. Sharding
    /// never changes a job's outputs — but it does consume host threads,
    /// so the runner divides its worker budget by the sweep's largest
    /// shard count (one `SPADE_THREADS` budget across both axes).
    pub shards: Option<usize>,
    /// Hard ceiling on simulated cycles, riding the watchdog's
    /// [`spade_core::WatchdogConfig::max_cycles`]: a job that exceeds it
    /// fails with a structured deadlock/deadline error instead of running
    /// forever. `None` (the default) leaves the run unbounded. This is the
    /// per-request deadline story for both the CLI (`--deadline-cycles`)
    /// and the experiment daemon.
    pub deadline_cycles: Option<Cycle>,
}

/// Everything one job produced: the report plus whatever observability
/// artifacts the job requested. Per-job simulations are single-threaded,
/// so the artifacts are deterministic and independent of the runner's
/// worker count, exactly like the report.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// Timing and traffic metrics.
    pub report: RunReport,
    /// Telemetry series, when the job set [`Job::telemetry_window`].
    pub telemetry: Option<TelemetrySeries>,
    /// Event trace, when the job set [`Job::trace`].
    pub trace: Option<TraceLog>,
}

impl Job {
    /// Creates a job.
    pub fn new(
        workload: &Arc<Workload>,
        config: &Arc<SystemConfig>,
        primitive: Primitive,
        plan: spade_core::ExecutionPlan,
    ) -> Self {
        Job {
            workload: Arc::clone(workload),
            config: Arc::clone(config),
            primitive,
            plan,
            telemetry_window: None,
            trace: false,
            naive_loop: false,
            slow_mem_path: false,
            shards: None,
            deadline_cycles: None,
        }
    }

    /// Enables windowed telemetry for this job (builder style).
    pub fn with_telemetry(mut self, window: Option<Cycle>) -> Self {
        self.telemetry_window = window;
        self
    }

    /// Enables event tracing for this job (builder style).
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Selects the naive cycle-by-cycle loop for this job (builder style).
    pub fn with_naive_loop(mut self, naive: bool) -> Self {
        self.naive_loop = naive;
        self
    }

    /// Forces the memory hierarchy's slow path for this job (builder
    /// style).
    pub fn with_slow_mem_path(mut self, slow: bool) -> Self {
        self.slow_mem_path = slow;
        self
    }

    /// Pins the intra-run shard count for this job (builder style);
    /// `None` inherits the `SPADE_SIM_SHARDS` environment default.
    pub fn with_shards(mut self, shards: Option<usize>) -> Self {
        self.shards = shards;
        self
    }

    /// Bounds this job to `cycles` simulated cycles (builder style): the
    /// watchdog cycle ceiling fires a structured error past the deadline.
    pub fn with_deadline_cycles(mut self, cycles: Option<Cycle>) -> Self {
        self.deadline_cycles = cycles;
        self
    }

    /// Identity key for de-duplication: workload and config by pointer
    /// (prepared objects are shared, so pointer identity is object
    /// identity), plan, primitive, and observability options by value —
    /// a traced job never shares an execution with an untraced one, so
    /// each gets the artifacts it asked for.
    #[allow(clippy::type_complexity)]
    fn dedup_key(
        &self,
    ) -> (
        usize,
        usize,
        Primitive,
        spade_core::ExecutionPlan,
        Option<Cycle>,
        bool,
        bool,
        bool,
        Option<usize>,
        Option<Cycle>,
    ) {
        (
            Arc::as_ptr(&self.workload) as usize,
            Arc::as_ptr(&self.config) as usize,
            self.primitive,
            self.plan,
            self.telemetry_window,
            self.trace,
            self.naive_loop,
            self.slow_mem_path,
            // Sharding never changes outputs, but equivalence sweeps rely
            // on each shard count actually executing — keep them distinct.
            self.shards,
            self.deadline_cycles,
        )
    }

    /// Content-addressed identity of this job, usable as a persistent
    /// cache key: a 32-hex-digit digest over the workload *contents*
    /// (matrix shape and triplets, dense row size), the machine
    /// configuration, the plan, the primitive, the deadline, and a key
    /// schema version. Where [`Job::dedup_key`] compares `Arc` pointers —
    /// identity within one process — this hashes what the pointers point
    /// at, so the same simulation maps to the same key across processes,
    /// restarts and hosts.
    ///
    /// Observability options (telemetry, trace) and host-execution knobs
    /// (naive loop, slow memory path, shards) are deliberately excluded:
    /// none of them change a report's simulated bytes (pinned by the
    /// scheduler/memory/shard equivalence suites), and the cache stores
    /// reports only.
    pub fn cache_key(&self) -> String {
        // Bump when the key composition itself changes, so a new daemon
        // never collides with entries keyed by an older scheme.
        const KEY_SCHEMA: u32 = 1;
        let absorb = |h: &mut crate::cache::Fnv64| {
            h.write_u32(KEY_SCHEMA);
            let a = &self.workload.a;
            h.write_u64(a.num_rows() as u64);
            h.write_u64(a.num_cols() as u64);
            h.write_u64(a.nnz() as u64);
            for (r, c, v) in a.iter() {
                h.write_u32(r);
                h.write_u32(c);
                h.write_u32(v.to_bits());
            }
            h.write_u64(self.workload.k as u64);
            // SystemConfig and ExecutionPlan are plain-data structs; their
            // Debug form is a complete, deterministic rendering of every
            // field. The KEY_SCHEMA bump covers any future layout change.
            h.write(format!("{:?}", self.config).as_bytes());
            h.write(format!("{:?}|{:?}", self.primitive, self.plan).as_bytes());
            match self.deadline_cycles {
                // A deadline changes the *outcome space* (a run may fail
                // at the ceiling), so bounded and unbounded runs get
                // distinct keys.
                Some(d) => h.write_u64(d),
                None => h.write(b"-"),
            }
        };
        // Two independently seeded streams over the same content widen
        // the key to 128 bits, pushing collisions out of practical reach.
        let mut lo = crate::cache::Fnv64::new();
        absorb(&mut lo);
        let mut hi = crate::cache::Fnv64::new();
        hi.write_u64(0x5eed_5eed_5eed_5eed);
        absorb(&mut hi);
        format!("{:016x}{:016x}", lo.finish(), hi.finish())
    }

    /// Content-addressed identity of this job *as a traced run*: the
    /// plain [`Job::cache_key`] plus the telemetry window, prefixed `t`
    /// so trace entries live in their own key space (run keys are pure
    /// hex, so the prefix is unambiguous). Unlike run keys, a trace key
    /// must absorb the telemetry window — the telemetry lane is part of
    /// the served trace bytes.
    pub fn trace_cache_key(&self) -> String {
        // Bump when the trace payload composition changes, so a new
        // daemon never serves a stale trace layout.
        const TRACE_KEY_SCHEMA: u32 = 1;
        let base = self.cache_key();
        let absorb = |h: &mut crate::cache::Fnv64| {
            h.write_u32(TRACE_KEY_SCHEMA);
            h.write(base.as_bytes());
            match self.telemetry_window {
                Some(w) => h.write_u64(w),
                None => h.write(b"-"),
            }
        };
        let mut lo = crate::cache::Fnv64::new();
        absorb(&mut lo);
        let mut hi = crate::cache::Fnv64::new();
        hi.write_u64(0x5eed_5eed_5eed_5eed);
        absorb(&mut hi);
        format!("t{:016x}{:016x}", lo.finish(), hi.finish())
    }

    /// Runs this job on the calling thread, validating the simulated
    /// output against the workload's memoized gold result. Simulation
    /// errors and gold divergence come back as a typed [`JobError`]; this
    /// method does not panic on them.
    ///
    /// # Errors
    ///
    /// Returns a [`JobError`] when the simulation fails (invalid config,
    /// deadlock, invariant violation) or the simulated output diverges
    /// from the gold kernel.
    pub fn try_execute(&self) -> Result<RunReport, JobError> {
        self.try_execute_full().map(|o| o.report)
    }

    /// Runs this job on the calling thread and returns the report *and*
    /// the requested observability artifacts (see [`Job::try_execute`]
    /// for the validation and error contract).
    ///
    /// # Errors
    ///
    /// Returns a [`JobError`] when the simulation fails or the simulated
    /// output diverges from the gold kernel.
    pub fn try_execute_full(&self) -> Result<JobOutput, JobError> {
        let w = &self.workload;
        let mut sys = SpadeSystem::new((*self.config).clone());
        sys.set_telemetry(self.telemetry_window)
            .set_trace(self.trace)
            .set_fast_forward(!self.naive_loop);
        if self.slow_mem_path {
            // Only force the slow path; leaving the default in place keeps
            // the SPADE_MEM_SLOW_PATH environment veto effective.
            sys.set_mem_fast_path(false);
        }
        if let Some(shards) = self.shards {
            // Only pin an explicit request; the default already honors
            // the SPADE_SIM_SHARDS environment variable.
            sys.set_shards(shards);
        }
        if let Some(deadline) = self.deadline_cycles {
            sys.set_watchdog(spade_core::WatchdogConfig {
                max_cycles: Some(deadline),
                ..sys.watchdog()
            });
        }
        let report = match self.primitive {
            Primitive::Spmm => {
                let run = sys
                    .run_spmm(&w.a, w.b_for_spmm(), &self.plan)
                    .map_err(|e| self.error(format!("SpMM run failed: {e}")))?;
                if !reference::dense_close(&run.output, w.gold_spmm(), 1e-3) {
                    return Err(self.error("simulated SpMM diverged from the gold kernel".into()));
                }
                run.report
            }
            Primitive::Sddmm => {
                let run = sys
                    .run_sddmm(&w.a, &w.b, &w.c_t, &self.plan)
                    .map_err(|e| self.error(format!("SDDMM run failed: {e}")))?;
                if reference::first_mismatch(run.output.vals(), w.gold_sddmm(), 1e-3).is_some() {
                    return Err(self.error("simulated SDDMM diverged from the gold kernel".into()));
                }
                run.report
            }
        };
        Ok(JobOutput {
            report,
            telemetry: sys.take_telemetry(),
            trace: sys.take_trace(),
        })
    }

    /// Runs this job on the calling thread (see [`Job::try_execute`]).
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails or its output diverges from the gold
    /// kernel — the same contract as `run_spmm_checked`, but against the
    /// shared cached gold instead of a fresh recomputation per run.
    pub fn execute(&self) -> RunReport {
        self.try_execute().unwrap_or_else(|e| panic!("{e}"))
    }

    fn error(&self, message: String) -> JobError {
        JobError {
            workload: self.workload.name.clone(),
            primitive: self.primitive,
            message,
            attempts: 1,
        }
    }
}

/// Executes job lists across a bounded worker pool.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    threads: usize,
}

impl ParallelRunner {
    /// A runner with an explicit worker count (`threads >= 1`).
    pub fn new(threads: usize) -> Self {
        ParallelRunner {
            threads: threads.max(1),
        }
    }

    /// The default runner: `SPADE_THREADS` if set and parseable, otherwise
    /// the host's available parallelism.
    pub fn from_env() -> Self {
        Self::new(num_threads())
    }

    /// The worker count this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job and returns the reports in job order.
    ///
    /// Duplicate jobs (see module docs) are simulated once. With one
    /// worker this is exactly the serial loop; with more, workers pull
    /// unique jobs from a shared queue but the output order — and every
    /// simulated metric — is independent of the interleaving.
    ///
    /// # Panics
    ///
    /// Panics on the first failing job. Sweeps that should survive
    /// individual failures use [`ParallelRunner::run_results`].
    pub fn run(&self, jobs: &[Job]) -> Vec<RunReport> {
        self.run_results(jobs)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect()
    }

    /// Runs every job and returns a per-job `Result` in job order: one
    /// failing job — a typed simulation error, a gold divergence, or even
    /// a panic inside the simulator — costs only its own slot, never the
    /// sweep. A panicking job is retried once (a crashed worker thread
    /// would otherwise lose its queue slot); deterministic errors are not
    /// retried. Duplicate jobs share one execution, including its error.
    ///
    /// Results are stored by job index, so the outcome is independent of
    /// the worker count and scheduling order.
    pub fn run_results(&self, jobs: &[Job]) -> Vec<Result<RunReport, JobError>> {
        self.run_outputs(jobs)
            .into_iter()
            .map(|r| r.map(|o| o.report))
            .collect()
    }

    /// Like [`ParallelRunner::run_results`], but returns each job's full
    /// [`JobOutput`] — report plus any telemetry series / event trace the
    /// job requested. Artifacts come from the per-job single-threaded
    /// simulation, so they are bit-identical for every worker count.
    pub fn run_outputs(&self, jobs: &[Job]) -> Vec<Result<JobOutput, JobError>> {
        // Map every job slot to a unique-work index.
        let mut unique: Vec<&Job> = Vec::new();
        let mut keys = Vec::new();
        let mut slot_to_unique = Vec::with_capacity(jobs.len());
        for job in jobs {
            let key = job.dedup_key();
            match keys.iter().position(|k| *k == key) {
                Some(i) => slot_to_unique.push(i),
                None => {
                    keys.push(key);
                    unique.push(job);
                    slot_to_unique.push(unique.len() - 1);
                }
            }
        }

        // One host-thread budget across both parallelism axes: a sweep of
        // n-shard jobs gets `threads / n` workers, so inter-job workers ×
        // intra-run shards never oversubscribes `SPADE_THREADS`.
        let workers = self.budgeted_workers(jobs);
        let results = ParallelRunner::new(workers).run_tasks(unique.len(), |i| {
            unique[i].try_execute_full().map_err(|e| e.message)
        });
        let results: Vec<Result<JobOutput, JobError>> = results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.map_err(|te| JobError {
                    workload: unique[i].workload.name.clone(),
                    primitive: unique[i].primitive,
                    message: te.message,
                    attempts: te.attempts,
                })
            })
            .collect();

        slot_to_unique
            .into_iter()
            .map(|i| results[i].clone())
            .collect()
    }

    /// The inter-job worker count for `jobs` under the shared thread
    /// budget: the runner's thread count divided by the largest intra-run
    /// shard count any job requests (explicitly or through the
    /// `SPADE_SIM_SHARDS` default), floored at one worker.
    fn budgeted_workers(&self, jobs: &[Job]) -> usize {
        let env_shards = spade_core::sim_shards_from_env();
        let max_shards = jobs
            .iter()
            .map(|j| j.shards.unwrap_or(env_shards).max(1))
            .max()
            .unwrap_or(1);
        (self.threads / max_shards).max(1)
    }

    /// Runs `count` independent tasks across the worker pool and returns
    /// their results by task index. This is the engine under
    /// [`ParallelRunner::run_results`], exposed for any embarrassingly
    /// parallel batch: each task is wrapped in a panic guard with one
    /// bounded retry (panics only), so a crashing task costs its own slot
    /// and nothing else.
    ///
    /// `f` must be deterministic per index for the batch result to be
    /// independent of the worker count; the runner guarantees the rest
    /// (index-ordered results, no shared mutable state between tasks).
    pub fn run_tasks<T, F>(&self, count: usize, f: F) -> Vec<Result<T, TaskError>>
    where
        T: Send,
        F: Fn(usize) -> Result<T, String> + Sync,
    {
        if self.threads == 1 || count <= 1 {
            return (0..count).map(|i| catch_retry(|| f(i))).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<Result<T, TaskError>>>> =
            Mutex::new((0..count).map(|_| None).collect());
        let workers = self.threads.min(count);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let res = catch_retry(|| f(i));
                    lock_results(&results)[i] = Some(res);
                });
            }
        });
        results
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            .map(|r| r.expect("every task ran"))
            .collect()
    }
}

impl Default for ParallelRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The worker count: `SPADE_THREADS` if set and parseable to a positive
/// number, otherwise the host's available parallelism. A set-but-invalid
/// value (a typo like `SPADE_THREADS=fou` or `=0`) is *not* silently
/// swallowed: it warns to stderr once per process and falls back to the
/// default, so a mistyped override never silently serializes a sweep.
pub fn num_threads() -> usize {
    static WARN_ONCE: Once = Once::new();
    if let Ok(v) = std::env::var("SPADE_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: SPADE_THREADS={v:?} is not a positive thread \
                     count; using the default (host parallelism)"
                );
            }),
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One-line throughput summary for bench output: how much simulated time
/// the sweep covered and how fast the host produced it.
pub fn throughput_summary(reports: &[RunReport], host_wall: std::time::Duration) -> String {
    let total_cycles: u64 = reports.iter().map(|r| r.cycles).sum();
    let secs = host_wall.as_secs_f64();
    let rate = if secs > 0.0 {
        total_cycles as f64 / secs / 1e6
    } else {
        0.0
    };
    format!(
        "[{} sims | {} threads] {total_cycles} simulated cycles in {secs:.2} s host time ({rate:.1} Mcycle/s)",
        reports.len(),
        num_threads(),
    )
}

/// Runs `jobs` with the environment-default runner and prints the
/// throughput summary line — the standard entry point for the bench
/// binaries.
pub fn run_and_summarize(jobs: &[Job]) -> Vec<RunReport> {
    let start = Instant::now();
    let reports = ParallelRunner::from_env().run(jobs);
    println!("{}", throughput_summary(&reports, start.elapsed()));
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;
    use spade_matrix::generators::{Benchmark, Scale};

    fn setup() -> (Arc<Workload>, Arc<SystemConfig>) {
        (
            Arc::new(Workload::prepare(Benchmark::Myc, Scale::Tiny, 32)),
            Arc::new(machines::spade_system(4)),
        )
    }

    #[test]
    fn reports_come_back_in_job_order() {
        let (w, cfg) = setup();
        let plans = machines::quick_search_space(32).enumerate(&w.a);
        let jobs: Vec<Job> = plans
            .iter()
            .map(|&p| Job::new(&w, &cfg, Primitive::Spmm, p))
            .collect();
        let parallel = ParallelRunner::new(4).run(&jobs);
        let serial: Vec<RunReport> = jobs.iter().map(|j| j.execute()).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn duplicate_jobs_get_identical_reports() {
        let (w, cfg) = setup();
        let plan = machines::base_plan(&w.a);
        let job = Job::new(&w, &cfg, Primitive::Spmm, plan);
        let reports = ParallelRunner::new(2).run(&[job.clone(), job]);
        assert_eq!(reports[0], reports[1]);
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(ParallelRunner::new(4).run(&[]).is_empty());
    }

    #[test]
    fn spade_threads_env_is_just_a_count() {
        // Can't set the env var here (tests run threaded); exercise the
        // constructor clamp instead.
        assert_eq!(ParallelRunner::new(0).threads(), 1);
        assert_eq!(ParallelRunner::new(7).threads(), 7);
    }

    #[test]
    fn shards_and_workers_share_one_thread_budget() {
        let (w, cfg) = setup();
        let plan = machines::base_plan(&w.a);
        let job = |shards| Job::new(&w, &cfg, Primitive::Spmm, plan).with_shards(Some(shards));
        let runner = ParallelRunner::new(8);
        // workers × shards stays within the budget.
        assert_eq!(runner.budgeted_workers(&[job(1)]), 8);
        assert_eq!(runner.budgeted_workers(&[job(4)]), 2);
        assert_eq!(runner.budgeted_workers(&[job(1), job(4)]), 2);
        // Shards beyond the budget still get one worker, never zero.
        assert_eq!(runner.budgeted_workers(&[job(16)]), 1);
        assert_eq!(ParallelRunner::new(1).budgeted_workers(&[job(4)]), 1);
    }

    #[test]
    fn sharded_jobs_match_sequential_jobs() {
        let w = Arc::new(Workload::prepare(Benchmark::Myc, Scale::Tiny, 32));
        let cfg = Arc::new(machines::spade_system(8)); // two clusters
        let base = Job::new(&w, &cfg, Primitive::Spmm, machines::base_plan(&w.a))
            .with_telemetry(Some(128))
            .with_trace(true);
        let jobs = [base.clone().with_shards(Some(1)), base.with_shards(Some(2))];
        let outs = ParallelRunner::new(2).run_outputs(&jobs);
        let seq = outs[0].as_ref().unwrap();
        let sh = outs[1].as_ref().unwrap();
        assert_eq!(seq.report, sh.report);
        assert_eq!(
            seq.telemetry.as_ref().unwrap().to_json().render(),
            sh.telemetry.as_ref().unwrap().to_json().render()
        );
        assert_eq!(
            seq.trace.as_ref().unwrap().to_chrome_json(),
            sh.trace.as_ref().unwrap().to_chrome_json()
        );
        assert_eq!(sh.report.shards, 2);
    }

    #[test]
    fn a_panicking_task_loses_only_its_own_slot() {
        let run = |threads| {
            ParallelRunner::new(threads).run_tasks(6, |i| {
                if i == 2 {
                    panic!("task {i} exploded");
                }
                Ok(i * 10)
            })
        };
        let serial = run(1);
        for (i, r) in serial.iter().enumerate() {
            if i == 2 {
                let e = r.as_ref().unwrap_err();
                assert!(e.panicked);
                assert_eq!(e.attempts, MAX_ATTEMPTS, "panics get one retry");
                assert!(e.message.contains("task 2 exploded"));
            } else {
                assert_eq!(*r, Ok(i * 10));
            }
        }
        // The outcome is independent of the worker count.
        assert_eq!(run(4), serial);
    }

    #[test]
    fn deterministic_task_errors_are_not_retried() {
        let results = ParallelRunner::new(2).run_tasks(3, |i| {
            if i == 1 {
                Err("bad input".to_string())
            } else {
                Ok(i)
            }
        });
        let e = results[1].as_ref().unwrap_err();
        assert!(!e.panicked);
        assert_eq!(e.attempts, 1);
        assert_eq!(e.message, "bad input");
    }

    #[test]
    fn a_failing_job_errors_without_sinking_the_sweep() {
        let (w, cfg) = setup();
        let plan = machines::base_plan(&w.a);
        // dense_lq_entries = 1 fails PipelineConfig::validate, so this
        // job's simulation returns InvalidConfig.
        let mut broken = (*cfg).clone();
        broken.pipeline.dense_lq_entries = 1;
        let broken = Arc::new(broken);
        let jobs = [
            Job::new(&w, &cfg, Primitive::Spmm, plan),
            Job::new(&w, &broken, Primitive::Spmm, plan),
            Job::new(&w, &cfg, Primitive::Sddmm, plan),
        ];
        let results = ParallelRunner::new(2).run_results(&jobs);
        assert!(results[0].is_ok());
        assert!(results[2].is_ok());
        let e = results[1].as_ref().unwrap_err();
        assert_eq!(e.attempts, 1, "config errors are deterministic: no retry");
        assert!(e.message.contains("invalid configuration"), "{e}");
        // The healthy jobs' reports match a clean sweep of just them.
        let clean = ParallelRunner::new(1).run(&[jobs[0].clone(), jobs[2].clone()]);
        assert_eq!(results[0].as_ref().unwrap(), &clean[0]);
        assert_eq!(results[2].as_ref().unwrap(), &clean[1]);
    }

    #[test]
    fn job_errors_render_their_context() {
        let e = JobError {
            workload: "myc-tiny".into(),
            primitive: Primitive::Spmm,
            message: "boom".into(),
            attempts: 2,
        };
        let s = e.to_string();
        assert!(s.contains("myc-tiny") && s.contains("Spmm") && s.contains("boom"));
        assert!(s.contains("2 attempt"));
    }
}
