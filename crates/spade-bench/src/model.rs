//! A fitted cost model for millisecond plan selection (`advise --fast`).
//!
//! `find_opt` answers "which plan is best?" by simulating the whole
//! Table-3 space — seconds to minutes per matrix. This module learns the
//! answer instead: a std-only least-squares fit from cache-dataset rows
//! (matrix structure features × plan knobs × system config → cycles),
//! with optional per-RU-class segment weights (a segmented-linear model).
//! Predictions are O(features); ranking a candidate list is microseconds.
//!
//! The model predicts `ln(cycles)` from a transformed regressor vector:
//! log-scaled matrix counts, plan knobs (log₂ panel sizes, policy
//! dummies, barriers), log₂ K and log₂ PEs, plus plan×structure
//! interaction terms so the *ordering* of plans can differ between
//! matrices (a purely additive model would rank plans identically for
//! every matrix).
//!
//! On disk a model is framed exactly like a cache entry — magic, format
//! version, length-prefixed JSON payload, trailing length + FNV-1a
//! checksum — so a truncated or bit-flipped file is detected at load
//! time and the daemon falls back to the heuristic tier instead of
//! serving garbage predictions.

use std::path::Path;

use spade_core::advisor::PlanRanker;
use spade_core::{ExecutionPlan, JsonValue, RMatrixPolicy};
use spade_matrix::analysis::{MatrixFeatures, FEATURE_NAMES, FEATURE_VECTOR_VERSION};

use crate::cache::fnv1a;

/// Magic bytes opening a model file.
pub const MODEL_MAGIC: &[u8; 8] = b"SPADEML\0";

/// On-disk model format version; bump on any layout change.
pub const MODEL_FORMAT_VERSION: u32 = 1;

/// Ridge regularization strength for the normal equations. Small enough
/// not to bias well-determined fits, large enough to keep the solve
/// stable when regressors are collinear (e.g. a suite where every matrix
/// is square, making the row/col features identical).
const RIDGE_LAMBDA: f64 = 1e-3;

/// A segment needs at least this many training rows per regressor
/// dimension before it gets its own weights; otherwise it shares the
/// global fit.
const SEGMENT_ROWS_PER_DIM: usize = 2;

/// Confidence gate: minimum holdout rows.
const MIN_HOLDOUT_ROWS: usize = 8;

/// Confidence gate: maximum holdout mean absolute relative error.
const MAX_HOLDOUT_MARE: f64 = 0.5;

/// One `(matrix, plan, system) → cycles` observation, as exported from
/// the daemon's cache dataset or produced by a local sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingRow {
    /// Benchmark short name (used for per-benchmark accuracy and the
    /// train/holdout split).
    pub benchmark: String,
    /// Structural features in [`FEATURE_NAMES`] order.
    pub features: Vec<f64>,
    /// Plan row panel size.
    pub row_panel: usize,
    /// Plan column panel size (already clamped to the matrix width).
    pub col_panel: usize,
    /// Plan rMatrix policy.
    pub r_policy: RMatrixPolicy,
    /// Whether the plan inserts scheduling barriers.
    pub barriers: bool,
    /// Dense row size K.
    pub k: usize,
    /// Number of PEs.
    pub pes: usize,
    /// Observed cycle count.
    pub cycles: u64,
}

impl TrainingRow {
    /// A stable identity for the observation, used for the deterministic
    /// train/holdout split (same row → same side, across processes).
    fn split_key(&self) -> u64 {
        let s = format!(
            "{}/{}/{}/{:?}/{}/{}/{}",
            self.benchmark,
            self.row_panel,
            self.col_panel,
            self.r_policy,
            self.barriers,
            self.k,
            self.pes
        );
        fnv1a(s.as_bytes())
    }

    /// `true` when the row lands in the holdout fifth.
    fn is_holdout(&self) -> bool {
        self.split_key().is_multiple_of(5)
    }
}

/// Per-benchmark and overall accuracy of a fitted model, measured as
/// mean absolute relative error (MARE) in cycle space:
/// `|predicted − observed| / observed`.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// Rows the weights were fitted on.
    pub train_rows: usize,
    /// Rows held out of the fit.
    pub holdout_rows: usize,
    /// MARE over the holdout rows (the confidence-gate metric).
    pub holdout_mare: f64,
    /// `(benchmark, rows, mare)` over all rows, per benchmark.
    pub per_benchmark: Vec<(String, usize, f64)>,
}

impl AccuracyReport {
    /// The report as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("train_rows", (self.train_rows as u64).into()),
            ("holdout_rows", (self.holdout_rows as u64).into()),
            ("holdout_mare", self.holdout_mare.into()),
            (
                "per_benchmark",
                JsonValue::Array(
                    self.per_benchmark
                        .iter()
                        .map(|(b, n, mare)| {
                            JsonValue::object([
                                ("benchmark", b.as_str().into()),
                                ("rows", (*n as u64).into()),
                                ("mare", (*mare).into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let field = |k: &str| doc.get(k).ok_or_else(|| format!("missing {k:?}"));
        let mut per_benchmark = Vec::new();
        for row in field("per_benchmark")?
            .as_array()
            .ok_or("per_benchmark must be an array")?
        {
            per_benchmark.push((
                row.get("benchmark")
                    .and_then(JsonValue::as_str)
                    .ok_or("per_benchmark entry missing benchmark")?
                    .to_string(),
                row.get("rows")
                    .and_then(JsonValue::as_u64)
                    .ok_or("per_benchmark entry missing rows")? as usize,
                row.get("mare")
                    .and_then(JsonValue::as_f64)
                    .ok_or("per_benchmark entry missing mare")?,
            ));
        }
        Ok(AccuracyReport {
            train_rows: field("train_rows")?.as_u64().ok_or("bad train_rows")? as usize,
            holdout_rows: field("holdout_rows")?.as_u64().ok_or("bad holdout_rows")? as usize,
            holdout_mare: field("holdout_mare")?.as_f64().ok_or("bad holdout_mare")?,
            per_benchmark,
        })
    }
}

/// A fitted, versioned cost model: global least-squares weights plus
/// optional per-RU-class segment weights.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// [`FEATURE_VECTOR_VERSION`] the model was fitted against.
    pub feature_version: u32,
    /// Global regression weights over [`regressor_names`] terms.
    pub weights: Vec<f64>,
    /// `(ru_class, weights)` for segments with enough rows to stand alone.
    pub segments: Vec<(u32, Vec<f64>)>,
    /// Accuracy measured at fit time.
    pub accuracy: AccuracyReport,
}

/// Names of the regressor terms, in weight order. Length defines the
/// regression dimension.
pub fn regressor_names() -> Vec<String> {
    let mut names = vec!["bias".to_string()];
    names.extend(FEATURE_NAMES.iter().map(|n| format!("m_{n}")));
    for p in PLAN_TERMS {
        names.push(format!("p_{p}"));
    }
    names.push("log2_k".to_string());
    names.push("log2_pes".to_string());
    for p in PLAN_TERMS {
        for m in INTERACTION_FEATURES {
            names.push(format!("x_{p}*{m}"));
        }
    }
    names
}

const PLAN_TERMS: [&str; 6] = [
    "log2_row_panel",
    "log2_col_panel",
    "col_coverage",
    "bypass",
    "bypass_victim",
    "barriers",
];

const INTERACTION_FEATURES: [&str; 3] = ["ru_class", "log1p_avg_degree", "local_column_reuse"];

/// The regression dimension (length of one regressor vector).
pub fn regressor_dim() -> usize {
    1 + FEATURE_NAMES.len() + PLAN_TERMS.len() + 2 + PLAN_TERMS.len() * INTERACTION_FEATURES.len()
}

/// Builds the transformed regressor vector for one observation.
fn regressors(
    features: &[f64],
    row_panel: usize,
    col_panel: usize,
    r_policy: RMatrixPolicy,
    barriers: bool,
    k: usize,
    pes: usize,
) -> Vec<f64> {
    let mut x = Vec::with_capacity(regressor_dim());
    x.push(1.0);
    // Matrix features: log1p the unbounded counts, keep ratios raw.
    // Indices follow FEATURE_NAMES: 0 nnz, 1 rows, 2 cols, 3 density,
    // 4 avg_degree, 5 skew, 6 cov, 7 max_degree, 8 ru, 9 bandwidth,
    // 10 reuse, 11 panel_mean, 12 panel_cov, 13 panel_max_ratio.
    const LOG_SCALED: [bool; 14] = [
        true, true, true, false, true, true, false, true, false, false, false, true, false, true,
    ];
    for (i, &f) in features.iter().enumerate() {
        let scaled = if LOG_SCALED.get(i).copied().unwrap_or(false) {
            f.max(0.0).ln_1p()
        } else {
            f
        };
        x.push(if scaled.is_finite() { scaled } else { 0.0 });
    }
    let num_cols = features[2].max(1.0);
    let plan_terms = [
        (row_panel.max(1) as f64).log2(),
        (col_panel.max(1) as f64).log2(),
        (col_panel as f64 / num_cols).min(1.0),
        f64::from(r_policy == RMatrixPolicy::Bypass),
        f64::from(r_policy == RMatrixPolicy::BypassVictim),
        f64::from(barriers),
    ];
    x.extend(plan_terms);
    x.push((k.max(1) as f64).log2());
    x.push((pes.max(1) as f64).log2());
    // Interactions: plan knobs × structure, so plan ordering can differ
    // between matrices.
    let inter = [features[8], features[4].max(0.0).ln_1p(), features[10]];
    for p in plan_terms {
        for m in inter {
            x.push(p * m);
        }
    }
    x
}

fn ru_class_of(features: &[f64]) -> u32 {
    features.get(8).map(|&r| r as u32).unwrap_or(0)
}

/// Solves `(XᵀX + λI) w = Xᵀy` by Gaussian elimination with partial
/// pivoting. `rows` are regressor vectors, `ys` the targets.
// Index-based loops: the elimination reads and writes different rows of
// `ata` in the same step, which iterator adapters cannot express.
#[allow(clippy::needless_range_loop)]
fn ridge_solve(rows: &[Vec<f64>], ys: &[f64], lambda: f64) -> Result<Vec<f64>, String> {
    let dim = rows.first().map(Vec::len).ok_or("no training rows")?;
    let mut ata = vec![vec![0.0; dim]; dim];
    let mut aty = vec![0.0; dim];
    for (x, &y) in rows.iter().zip(ys) {
        for i in 0..dim {
            aty[i] += x[i] * y;
            for j in i..dim {
                ata[i][j] += x[i] * x[j];
            }
        }
    }
    for i in 0..dim {
        for j in 0..i {
            ata[i][j] = ata[j][i];
        }
        ata[i][i] += lambda;
    }
    // Gaussian elimination with partial pivoting on [ata | aty].
    for col in 0..dim {
        let pivot = (col..dim)
            .max_by(|&a, &b| {
                ata[a][col]
                    .abs()
                    .partial_cmp(&ata[b][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap();
        if ata[pivot][col].abs() < 1e-12 {
            return Err(format!("singular normal matrix at column {col}"));
        }
        ata.swap(col, pivot);
        aty.swap(col, pivot);
        for row in col + 1..dim {
            let factor = ata[row][col] / ata[col][col];
            if factor == 0.0 {
                continue;
            }
            for j in col..dim {
                ata[row][j] -= factor * ata[col][j];
            }
            aty[row] -= factor * aty[col];
        }
    }
    let mut w = vec![0.0; dim];
    for row in (0..dim).rev() {
        let mut sum = aty[row];
        for j in row + 1..dim {
            sum -= ata[row][j] * w[j];
        }
        w[row] = sum / ata[row][row];
    }
    Ok(w)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl CostModel {
    /// Fits a model from `rows` with a deterministic 80/20 train/holdout
    /// split and a per-benchmark accuracy report.
    ///
    /// # Errors
    ///
    /// Returns an error when there are no usable rows (zero-cycle
    /// observations are skipped) or the normal equations are singular
    /// even after ridge regularization.
    pub fn fit(rows: &[TrainingRow]) -> Result<Self, String> {
        let usable: Vec<&TrainingRow> = rows
            .iter()
            .filter(|r| r.cycles > 0 && r.features.len() == FEATURE_NAMES.len())
            .collect();
        if usable.is_empty() {
            return Err("no usable training rows (need cycles > 0 and a \
                 current-version feature vector)"
                .to_string());
        }
        let (train, holdout): (Vec<&&TrainingRow>, Vec<&&TrainingRow>) =
            usable.iter().partition(|r| !r.is_holdout());
        // A degenerate split (everything held out) falls back to fitting
        // on all rows; confidence gating handles the rest.
        let fit_rows: Vec<&&TrainingRow> = if train.is_empty() {
            usable.iter().collect()
        } else {
            train
        };
        let design: Vec<Vec<f64>> = fit_rows.iter().map(|r| row_regressors(r)).collect();
        let targets: Vec<f64> = fit_rows.iter().map(|r| (r.cycles as f64).ln()).collect();
        let weights = ridge_solve(&design, &targets, RIDGE_LAMBDA)?;

        // Per-RU-class segments, when a class has enough rows to carry
        // its own fit.
        let dim = weights.len();
        let mut segments = Vec::new();
        for class in 0u32..3 {
            let idx: Vec<usize> = fit_rows
                .iter()
                .enumerate()
                .filter(|(_, r)| ru_class_of(&r.features) == class)
                .map(|(i, _)| i)
                .collect();
            if idx.len() >= SEGMENT_ROWS_PER_DIM * dim {
                let seg_design: Vec<Vec<f64>> = idx.iter().map(|&i| design[i].clone()).collect();
                let seg_targets: Vec<f64> = idx.iter().map(|&i| targets[i]).collect();
                if let Ok(w) = ridge_solve(&seg_design, &seg_targets, RIDGE_LAMBDA) {
                    segments.push((class, w));
                }
            }
        }

        let mut model = CostModel {
            feature_version: FEATURE_VECTOR_VERSION,
            weights,
            segments,
            accuracy: AccuracyReport {
                train_rows: fit_rows.len(),
                holdout_rows: holdout.len(),
                holdout_mare: 0.0,
                per_benchmark: Vec::new(),
            },
        };

        fn mare(model: &CostModel, set: &[&&TrainingRow]) -> f64 {
            if set.is_empty() {
                return 0.0;
            }
            set.iter()
                .map(|r| {
                    let predicted = model.predict_row(r);
                    (predicted - r.cycles as f64).abs() / r.cycles as f64
                })
                .sum::<f64>()
                / set.len() as f64
        }
        model.accuracy.holdout_mare = mare(&model, &holdout);
        let mut benchmarks: Vec<&str> = usable.iter().map(|r| r.benchmark.as_str()).collect();
        benchmarks.sort_unstable();
        benchmarks.dedup();
        for b in benchmarks {
            let set: Vec<&&TrainingRow> = usable.iter().filter(|r| r.benchmark == b).collect();
            let err = mare(&model, &set);
            model
                .accuracy
                .per_benchmark
                .push((b.to_string(), set.len(), err));
        }
        Ok(model)
    }

    fn weights_for(&self, ru_class: u32) -> &[f64] {
        self.segments
            .iter()
            .find(|(c, _)| *c == ru_class)
            .map(|(_, w)| w.as_slice())
            .unwrap_or(&self.weights)
    }

    /// Predicted cycles for one plan on a matrix with `features`.
    pub fn predict(
        &self,
        features: &MatrixFeatures,
        plan: &ExecutionPlan,
        k: usize,
        pes: usize,
    ) -> f64 {
        let f = features.as_vec();
        let x = regressors(
            &f,
            plan.tiling.row_panel_size,
            plan.tiling.col_panel_size,
            plan.r_policy,
            plan.barriers.is_enabled(),
            k,
            pes,
        );
        dot(&x, self.weights_for(ru_class_of(&f))).exp()
    }

    fn predict_row(&self, r: &TrainingRow) -> f64 {
        dot(
            &row_regressors(r),
            self.weights_for(ru_class_of(&r.features)),
        )
        .exp()
    }

    /// Serializes the model payload as JSON (without the file framing).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("format_version", u64::from(MODEL_FORMAT_VERSION).into()),
            ("feature_version", u64::from(self.feature_version).into()),
            (
                "regressors",
                JsonValue::Array(regressor_names().into_iter().map(JsonValue::from).collect()),
            ),
            (
                "weights",
                JsonValue::Array(self.weights.iter().map(|&w| w.into()).collect()),
            ),
            (
                "segments",
                JsonValue::Array(
                    self.segments
                        .iter()
                        .map(|(class, w)| {
                            JsonValue::object([
                                ("ru_class", u64::from(*class).into()),
                                (
                                    "weights",
                                    JsonValue::Array(w.iter().map(|&x| x.into()).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("accuracy", self.accuracy.to_json()),
        ])
    }

    /// Rebuilds a model from its JSON payload.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let format = doc
            .get("format_version")
            .and_then(JsonValue::as_u64)
            .ok_or("missing format_version")?;
        if format != u64::from(MODEL_FORMAT_VERSION) {
            return Err(format!(
                "model format v{format} is not the supported v{MODEL_FORMAT_VERSION}"
            ));
        }
        let feature_version = doc
            .get("feature_version")
            .and_then(JsonValue::as_u64)
            .ok_or("missing feature_version")? as u32;
        let floats = |key: &str| -> Result<Vec<f64>, String> {
            doc.get(key)
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("missing {key:?} array"))?
                .iter()
                .map(|v| v.as_f64().ok_or_else(|| format!("non-numeric {key:?}")))
                .collect()
        };
        let weights = floats("weights")?;
        if weights.len() != regressor_dim() {
            return Err(format!(
                "weight vector has {} terms, expected {}",
                weights.len(),
                regressor_dim()
            ));
        }
        let mut segments = Vec::new();
        for seg in doc
            .get("segments")
            .and_then(JsonValue::as_array)
            .ok_or("missing segments array")?
        {
            let class = seg
                .get("ru_class")
                .and_then(JsonValue::as_u64)
                .ok_or("segment missing ru_class")? as u32;
            let w: Vec<f64> = seg
                .get("weights")
                .and_then(JsonValue::as_array)
                .ok_or("segment missing weights")?
                .iter()
                .map(|v| v.as_f64().ok_or("non-numeric segment weight"))
                .collect::<Result<_, _>>()?;
            if w.len() != weights.len() {
                return Err("segment weight length mismatch".to_string());
            }
            segments.push((class, w));
        }
        let accuracy = AccuracyReport::from_json(doc.get("accuracy").ok_or("missing accuracy")?)?;
        Ok(CostModel {
            feature_version,
            weights,
            segments,
            accuracy,
        })
    }

    /// Writes the model to `path` atomically (temp file + rename) in the
    /// checksummed `SPADEML` framing.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error, tagged with the path.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let payload = self.to_json().render();
        let mut bytes = Vec::with_capacity(payload.len() + 36);
        bytes.extend_from_slice(MODEL_MAGIC);
        bytes.extend_from_slice(&MODEL_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload.as_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(payload.as_bytes()).to_le_bytes());
        let tmp = path.with_extension("tmp");
        let err = |e: std::io::Error| format!("{}: {e}", path.display());
        std::fs::write(&tmp, &bytes).map_err(err)?;
        std::fs::rename(&tmp, path).map_err(err)
    }

    /// Loads a model from `path`, verifying magic, version, framing and
    /// checksum.
    ///
    /// # Errors
    ///
    /// Returns a description of the corruption or version mismatch; the
    /// caller decides whether that is fatal (the daemon treats it as
    /// "no model" and falls back to the heuristic tier).
    pub fn load(path: &Path) -> Result<Self, String> {
        let err = |m: &str| format!("{}: {m}", path.display());
        let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        if bytes.len() < MODEL_MAGIC.len() + 4 + 8 + 8 + 8 {
            return Err(err("truncated model file"));
        }
        if &bytes[..MODEL_MAGIC.len()] != MODEL_MAGIC {
            return Err(err("bad magic (not a SPADEML model file)"));
        }
        let mut off = MODEL_MAGIC.len();
        let version = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        if version != MODEL_FORMAT_VERSION {
            return Err(err(&format!(
                "model format v{version} is not the supported v{MODEL_FORMAT_VERSION}"
            )));
        }
        off += 4;
        let len = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) as usize;
        off += 8;
        if bytes.len() != off + len + 16 {
            return Err(err("length header does not match file size"));
        }
        let payload = &bytes[off..off + len];
        let tail_len = u64::from_le_bytes(bytes[off + len..off + len + 8].try_into().unwrap());
        let checksum = u64::from_le_bytes(bytes[off + len + 8..off + len + 16].try_into().unwrap());
        if tail_len as usize != len {
            return Err(err("trailing length does not match header"));
        }
        if fnv1a(payload) != checksum {
            return Err(err("checksum mismatch"));
        }
        let text = std::str::from_utf8(payload).map_err(|_| err("payload is not UTF-8"))?;
        let doc = JsonValue::parse(text).map_err(|e| err(&e))?;
        Self::from_json(&doc).map_err(|e| err(&e))
    }
}

fn row_regressors(r: &TrainingRow) -> Vec<f64> {
    regressors(
        &r.features,
        r.row_panel,
        r.col_panel,
        r.r_policy,
        r.barriers,
        r.k,
        r.pes,
    )
}

impl PlanRanker for CostModel {
    fn confident(&self) -> bool {
        self.feature_version == FEATURE_VECTOR_VERSION
            && self.accuracy.holdout_rows >= MIN_HOLDOUT_ROWS
            && self.accuracy.holdout_mare.is_finite()
            && self.accuracy.holdout_mare <= MAX_HOLDOUT_MARE
    }

    fn rank(
        &self,
        features: &MatrixFeatures,
        k: usize,
        pes: usize,
        plans: &[ExecutionPlan],
    ) -> Option<Vec<(usize, f64)>> {
        if self.feature_version != FEATURE_VECTOR_VERSION {
            return None;
        }
        let mut scored: Vec<(usize, f64)> = plans
            .iter()
            .enumerate()
            .map(|(i, p)| (i, self.predict(features, p, k, pes)))
            .collect();
        if scored.iter().any(|(_, s)| !s.is_finite()) {
            return None;
        }
        scored.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        Some(scored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_core::advisor::advise_candidates;
    use spade_core::SystemConfig;
    use spade_matrix::generators::{Benchmark, Scale};

    /// Synthetic rows from a known log-linear law, over enough distinct
    /// matrices and plans that the fit is well determined.
    fn synthetic_rows() -> Vec<TrainingRow> {
        let mut rows = Vec::new();
        for b in Benchmark::ALL {
            let a = b.generate(Scale::Tiny);
            let f = MatrixFeatures::compute(&a).as_vec();
            for rp in [64usize, 256, 1024] {
                for (cp, barriers) in [(a.num_cols().max(1), false), (512, true), (512, false)] {
                    for r_policy in [RMatrixPolicy::Cache, RMatrixPolicy::BypassVictim] {
                        let x = super::regressors(&f, rp, cp, r_policy, barriers, 32, 8);
                        // ln(cycles) = 10 + 0.3·log2(rp) − 0.2·barriers
                        //            + 0.05·nnz-term
                        let ln = 10.0 + 0.3 * x[15] + -0.2 * x[20] + 0.05 * x[1];
                        rows.push(TrainingRow {
                            benchmark: b.short_name().to_string(),
                            features: f.clone(),
                            row_panel: rp,
                            col_panel: cp,
                            r_policy,
                            barriers,
                            k: 32,
                            pes: 8,
                            cycles: ln.exp() as u64,
                        });
                    }
                }
            }
        }
        rows
    }

    #[test]
    fn fit_recovers_a_log_linear_law() {
        let rows = synthetic_rows();
        let model = CostModel::fit(&rows).unwrap();
        assert!(model.accuracy.holdout_rows > 0);
        assert!(
            model.accuracy.holdout_mare < 0.05,
            "holdout mare {}",
            model.accuracy.holdout_mare
        );
        assert!(model.confident());
        assert_eq!(model.accuracy.per_benchmark.len(), Benchmark::ALL.len());
    }

    #[test]
    fn fit_rejects_empty_and_degenerate_input() {
        assert!(CostModel::fit(&[]).is_err());
        let mut row = synthetic_rows().remove(0);
        row.cycles = 0;
        assert!(CostModel::fit(std::slice::from_ref(&row)).is_err());
    }

    #[test]
    fn save_load_roundtrips_bit_exact() {
        let model = CostModel::fit(&synthetic_rows()).unwrap();
        let path = std::env::temp_dir().join("spade_model_roundtrip.spademl");
        model.save(&path).unwrap();
        let loaded = CostModel::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(model, loaded);
    }

    #[test]
    fn load_rejects_corruption() {
        let model = CostModel::fit(&synthetic_rows()).unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join("spade_model_corrupt.spademl");
        model.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload bit: the checksum must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let e = CostModel::load(&path).unwrap_err();
        assert!(
            e.contains("checksum") || e.contains("byte") || e.contains("missing"),
            "{e}"
        );
        // Truncation is caught by the framing.
        bytes[mid] ^= 0x40;
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();
        let e = CostModel::load(&path).unwrap_err();
        assert!(e.contains("length"), "{e}");
        // Not a model file at all.
        std::fs::write(&path, b"hello world, definitely not a model").unwrap();
        let e = CostModel::load(&path).unwrap_err();
        assert!(e.contains("magic") || e.contains("truncated"), "{e}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ranking_is_deterministic_and_complete() {
        let model = CostModel::fit(&synthetic_rows()).unwrap();
        let a = Benchmark::Kro.generate(Scale::Tiny);
        let features = MatrixFeatures::compute(&a);
        let candidates = advise_candidates(&a, 32, &SystemConfig::scaled(8)).unwrap();
        let ranked = model.rank(&features, 32, 8, &candidates).unwrap();
        assert_eq!(ranked.len(), candidates.len());
        let mut seen: Vec<usize> = ranked.iter().map(|(i, _)| *i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..candidates.len()).collect::<Vec<_>>());
        for pair in ranked.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        assert_eq!(model.rank(&features, 32, 8, &candidates), Some(ranked));
    }

    #[test]
    fn version_mismatch_disables_the_ranker() {
        let mut model = CostModel::fit(&synthetic_rows()).unwrap();
        model.feature_version += 1;
        assert!(!model.confident());
        let a = Benchmark::Kro.generate(Scale::Tiny);
        let features = MatrixFeatures::compute(&a);
        let candidates = advise_candidates(&a, 32, &SystemConfig::scaled(8)).unwrap();
        assert_eq!(model.rank(&features, 32, 8, &candidates), None);
    }

    #[test]
    fn segments_activate_with_enough_rows() {
        // Inflate the row count so at least one RU class crosses the
        // segment threshold.
        let base = synthetic_rows();
        let mut rows = Vec::new();
        for _ in 0..(SEGMENT_ROWS_PER_DIM * regressor_dim()) {
            rows.extend(base.iter().cloned());
        }
        let model = CostModel::fit(&rows).unwrap();
        assert!(
            !model.segments.is_empty(),
            "no segment crossed the threshold with {} rows",
            rows.len()
        );
        // Segmented models still roundtrip.
        let path = std::env::temp_dir().join("spade_model_segments.spademl");
        model.save(&path).unwrap();
        assert_eq!(CostModel::load(&path).unwrap(), model);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn regressor_names_match_dim() {
        assert_eq!(regressor_names().len(), regressor_dim());
        let f = MatrixFeatures::compute(&Benchmark::Myc.generate(Scale::Tiny)).as_vec();
        assert_eq!(
            super::regressors(&f, 64, 512, RMatrixPolicy::Cache, false, 32, 8).len(),
            regressor_dim()
        );
    }
}
