//! The `bench-perf` harness: simulator-throughput measurement.
//!
//! Runs the Figure 9 suite under both cycle-loop drivers — the event-driven
//! ready-queue scheduler and the naive cycle-by-cycle oracle — and records
//! each run's `sim_cycles_per_host_sec`. Both drivers produce bit-identical
//! simulated results (checked here report-for-report on every invocation),
//! so the only difference worth recording is how fast the host produced
//! them.
//!
//! The harness also carries the **memory microbenchmark**: synthetic
//! access streams driven straight into a bench-scale [`MemorySystem`],
//! once with the filtered fast path and once with it forced off, recording
//! hierarchy accesses per host second and the filter hit rates. The two
//! runs are asserted identical (per-access completion-cycle checksum plus
//! full `MemStats` equality) on every invocation, so the numbers can never
//! drift away from the equivalence guarantee they advertise.
//!
//! The JSON document this module emits is committed as `BENCH_sim.json`,
//! the repository's simulator-performance trajectory: re-run it after
//! scheduler or hot-path changes and compare.

use std::sync::Arc;
use std::time::Instant;

use spade_core::{JsonValue, Primitive, SystemConfig};
use spade_matrix::generators::{Benchmark, Scale};
use spade_matrix::rng::Rng64;
use spade_sim::{AccessPath, Cycle, DataClass, Line, MemorySystem, LINE_BYTES};

use crate::machines;
use crate::parallel::{Job, ParallelRunner};
use crate::runner::geomean;
use crate::suite::Workload;

/// One (workload, primitive) measurement: identical simulations under both
/// drivers, with the host throughput each achieved.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Workload short name.
    pub workload: String,
    /// Kernel measured.
    pub primitive: Primitive,
    /// Simulated cycles (identical under both drivers by construction).
    pub cycles: u64,
    /// Simulated cycles per host second under the event-driven scheduler.
    pub event_cps: f64,
    /// Simulated cycles per host second under the naive tick loop.
    pub naive_cps: f64,
}

impl PerfRow {
    /// Event-driven over naive host throughput; zero if the naive rate is
    /// unmeasurable (degenerate sub-nanosecond run).
    pub fn speedup(&self) -> f64 {
        if self.naive_cps > 0.0 {
            self.event_cps / self.naive_cps
        } else {
            0.0
        }
    }
}

/// One memory-microbenchmark measurement: the same synthetic access
/// stream driven through a bench-scale hierarchy with the filtered fast
/// path enabled and then forced off. The two runs are checked identical
/// before the row is produced.
#[derive(Debug, Clone)]
pub struct MemBenchRow {
    /// Stream shape (one of [`MEM_PATTERNS`]).
    pub pattern: &'static str,
    /// Accesses issued per run.
    pub accesses: u64,
    /// Hierarchy accesses per host second with the fast path on.
    pub fast_aps: f64,
    /// Hierarchy accesses per host second with the fast path forced off.
    pub slow_aps: f64,
    /// Fraction of accesses answered by the per-requester line filter.
    pub line_filter_rate: f64,
    /// Fraction of accesses that reused the latched STLB translation.
    pub page_reuse_rate: f64,
}

impl MemBenchRow {
    /// Fast-path over slow-path host throughput; zero if the slow rate is
    /// unmeasurable.
    pub fn speedup(&self) -> f64 {
        if self.slow_aps > 0.0 {
            self.fast_aps / self.slow_aps
        } else {
            0.0
        }
    }
}

/// The synthetic access-stream shapes the memory microbenchmark drives:
/// `stream` (per-agent sequential bursts — translation-reuse friendly),
/// `repeat` (short same-line bursts — line-filter friendly), `stride`
/// (page-crossing jumps — every filter misses, measuring pure overhead)
/// and `mixed` (seeded random agents/lines/paths/writes).
pub const MEM_PATTERNS: [&str; 4] = ["stream", "repeat", "stride", "mixed"];

/// One synthetic access: (agent, line, path, class, is_write).
type MemOp = (usize, Line, AccessPath, DataClass, bool);

/// Builds the deterministic op stream for `pattern` (see [`MEM_PATTERNS`]).
fn mem_ops_for(pattern: &str, agents: usize, page_lines: u64, ops: u64) -> Vec<MemOp> {
    let mut out = Vec::with_capacity(ops as usize);
    // Keep agents' working sets far apart so streams never alias.
    let region = |agent: usize| agent as u64 * (1 << 32);
    match pattern {
        // 64-line sequential bursts per agent: consecutive lines share a
        // page, so the translation latch answers nearly every access.
        "stream" => {
            for i in 0..ops {
                let agent = ((i / 64) % agents as u64) as usize;
                let seq = i / (64 * agents as u64) * 64 + i % 64;
                out.push((
                    agent,
                    region(agent) + seq,
                    AccessPath::Cached,
                    DataClass::CMatrix,
                    false,
                ));
            }
        }
        // 16 back-to-back touches of the same line per agent before
        // advancing: the line filter answers the 15 repeats.
        "repeat" => {
            for i in 0..ops {
                let agent = ((i / 16) % agents as u64) as usize;
                let seq = i / (16 * agents as u64);
                let write = i % 16 == 7;
                out.push((
                    agent,
                    region(agent) + seq,
                    AccessPath::Cached,
                    DataClass::RMatrix,
                    write,
                ));
            }
        }
        // Every access jumps a full page on one agent: both filters miss
        // every time, so this measures the fast path's added overhead.
        "stride" => {
            for i in 0..ops {
                out.push((
                    0,
                    i * page_lines,
                    AccessPath::Cached,
                    DataClass::SparseIn,
                    false,
                ));
            }
        }
        // Seeded random agents, lines, paths and writes.
        "mixed" => {
            let mut rng = Rng64::seed_from_u64(0x5bad_cafe);
            for _ in 0..ops {
                let agent = rng.bounded(agents as u64) as usize;
                let line = region(agent) + rng.bounded(4 * page_lines);
                let path = match rng.bounded(5) {
                    0 => AccessPath::Bypass,
                    1 => AccessPath::BypassVictim,
                    _ => AccessPath::Cached,
                };
                let class = match rng.bounded(4) {
                    0 => DataClass::SparseIn,
                    1 => DataClass::SparseOut,
                    2 => DataClass::RMatrix,
                    _ => DataClass::CMatrix,
                };
                out.push((agent, line, path, class, rng.gen_bool(0.25)));
            }
        }
        other => panic!("unknown memory pattern {other:?}"),
    }
    out
}

/// Issues `ops` into `mem` one cycle apart and returns an FNV-1a checksum
/// over every completion cycle — any behavioral divergence between two
/// runs of the same stream changes the checksum.
fn drive_mem(mem: &mut MemorySystem, ops: &[MemOp]) -> u64 {
    let mut checksum: u64 = 0xcbf2_9ce4_8422_2325;
    for (now, &(agent, line, path, class, is_write)) in (0 as Cycle..).zip(ops) {
        let done = if is_write {
            mem.write(agent, line, path, class, now)
        } else {
            mem.read(agent, line, path, class, now)
        };
        checksum = (checksum ^ done).wrapping_mul(0x0000_0100_0000_01b3);
    }
    checksum
}

/// Runs the memory microbenchmark at the bench SPADE machine's hierarchy
/// geometry: each pattern in [`MEM_PATTERNS`] is driven twice — fast path
/// on, then forced off — over `ops_per_pattern` accesses, and the runs
/// must agree on every completion cycle and the full statistics block.
///
/// Returns no rows when `ops_per_pattern` is zero (microbench disabled).
///
/// # Errors
///
/// Returns a message if the fast and slow runs diverge on the
/// completion-cycle checksum or on `MemStats` — the bit-identity
/// guarantee the fast path is built on.
pub fn mem_microbench(pes: usize, ops_per_pattern: u64) -> Result<Vec<MemBenchRow>, String> {
    if ops_per_pattern == 0 {
        return Ok(Vec::new());
    }
    let cfg = machines::spade_system(pes);
    let page_lines = (cfg.mem.stlb.page_bytes / LINE_BYTES).max(1);
    let mut rows = Vec::new();
    for pattern in MEM_PATTERNS {
        let stream = mem_ops_for(pattern, cfg.mem.num_agents, page_lines, ops_per_pattern);

        let mut fast = MemorySystem::new(cfg.mem.clone());
        fast.set_fast_path(true);
        let start = Instant::now();
        let fast_sum = drive_mem(&mut fast, &stream);
        let fast_secs = start.elapsed().as_secs_f64().max(1e-9);

        let mut slow = MemorySystem::new(cfg.mem.clone());
        slow.set_fast_path(false);
        let start = Instant::now();
        let slow_sum = drive_mem(&mut slow, &stream);
        let slow_secs = start.elapsed().as_secs_f64().max(1e-9);

        if fast_sum != slow_sum {
            return Err(format!(
                "memory fast path diverged on {pattern}: completion checksum \
                 {fast_sum:#x} (fast) vs {slow_sum:#x} (slow)"
            ));
        }
        if fast.stats() != slow.stats() {
            return Err(format!(
                "memory fast path diverged on {pattern}: MemStats differ \
                 between fast and slow runs"
            ));
        }
        let n = stream.len() as u64;
        rows.push(MemBenchRow {
            pattern,
            accesses: n,
            fast_aps: n as f64 / fast_secs,
            slow_aps: n as f64 / slow_secs,
            line_filter_rate: fast.filter_line_hits() as f64 / n as f64,
            page_reuse_rate: fast.filter_page_hits() as f64 / n as f64,
        });
    }
    Ok(rows)
}

/// One sharded-driver measurement: the same simulation at a given host
/// shard count, with the throughput it achieved. The report is checked
/// bit-identical to the 1-shard run before the row is produced.
#[derive(Debug, Clone)]
pub struct ShardRow {
    /// Host shards the run was partitioned into (after cluster clamping).
    pub shards: u32,
    /// Simulated cycles (identical across shard counts by construction).
    pub cycles: u64,
    /// Simulated cycles per host second at this shard count.
    pub cps: f64,
    /// Per-shard busy wall nanoseconds, for attributing imbalance.
    pub shard_wall_ns: Vec<f64>,
}

impl ShardRow {
    /// This row's throughput over the given 1-shard baseline; zero if the
    /// baseline is unmeasurable.
    pub fn speedup_over(&self, baseline_cps: f64) -> f64 {
        if baseline_cps > 0.0 {
            self.cps / baseline_cps
        } else {
            0.0
        }
    }
}

/// The shard counts the shard-scaling bench sweeps by default.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Runs the shard-scaling bench: one fig12-style high-reuse workload
/// (`kron_g500`, the suite's most parallel-friendly graph) simulated once
/// per entry of `shard_counts` under the sharded driver, on the calling
/// thread so wall times are uncontended. The PE count is raised to at
/// least four clusters so a 4-shard split actually exists. Every run's
/// report must be bit-identical to the 1-shard run — the bench doubles as
/// an equivalence check on each invocation, like [`measure`] and
/// [`mem_microbench`].
///
/// Returns no rows when `shard_counts` is empty (shard bench disabled).
///
/// # Errors
///
/// Returns a message if any simulation fails or any shard count's report
/// diverges from the 1-shard baseline.
pub fn shard_bench(
    pes: usize,
    scale: Scale,
    k: usize,
    shard_counts: &[usize],
) -> Result<Vec<ShardRow>, String> {
    if shard_counts.is_empty() {
        return Ok(Vec::new());
    }
    let probe = machines::spade_system(pes);
    let min_pes = 4 * probe.mem.agents_per_cluster;
    let cfg = Arc::new(if pes >= min_pes {
        probe
    } else {
        machines::spade_system(min_pes)
    });
    let w = Arc::new(Workload::prepare(Benchmark::Kro, scale, k));
    let mut rows: Vec<ShardRow> = Vec::new();
    let mut baseline: Option<spade_core::RunReport> = None;
    for &s in shard_counts {
        let job = Job::new(&w, &cfg, Primitive::Spmm, machines::base_plan(&w.a))
            .with_shards(Some(s.max(1)));
        let report = job.try_execute().map_err(|e| e.to_string())?;
        if let Some(base) = &baseline {
            if &report != base {
                return Err(format!(
                    "sharded driver diverged at {s} shards: {} cycles vs {} at 1 shard",
                    report.cycles, base.cycles
                ));
            }
        } else if s == 1 {
            baseline = Some(report.clone());
        }
        rows.push(ShardRow {
            shards: report.shards,
            cycles: report.cycles,
            cps: report.sim_cycles_per_host_sec(),
            shard_wall_ns: report.shard_wall_ns.clone(),
        });
        if baseline.is_none() {
            return Err(format!(
                "shard bench must start with 1 shard to establish the \
                 equivalence baseline, got {s}"
            ));
        }
    }
    Ok(rows)
}

/// A complete `bench-perf` result: the per-row measurements plus the
/// context needed to reproduce them.
#[derive(Debug, Clone)]
pub struct PerfSummary {
    /// Suite scale the rows were measured at.
    pub scale: Scale,
    /// Dense row size.
    pub k: usize,
    /// SPADE PE count.
    pub pes: usize,
    /// Worker threads the sweep ran on.
    pub threads: usize,
    /// One row per (workload, primitive).
    pub rows: Vec<PerfRow>,
    /// Accesses per pattern in the memory microbenchmark (zero disables it).
    pub mem_ops: u64,
    /// One row per memory-microbenchmark pattern.
    pub mem_rows: Vec<MemBenchRow>,
    /// Host cores available to this process when the shard bench ran —
    /// the context a shard-speedup gate needs to decide whether a missed
    /// target means a regression or just a small machine.
    pub host_cores: usize,
    /// One row per shard count in the shard-scaling bench (empty when it
    /// was disabled).
    pub shard_rows: Vec<ShardRow>,
}

impl PerfSummary {
    /// Geometric-mean speedup of the event-driven driver over the naive
    /// loop across all rows.
    pub fn geomean_speedup(&self) -> f64 {
        geomean(&self.rows.iter().map(PerfRow::speedup).collect::<Vec<_>>())
    }

    /// Geometric-mean event-driven throughput (simulated cycles per host
    /// second).
    pub fn geomean_event_cps(&self) -> f64 {
        geomean(&self.rows.iter().map(|r| r.event_cps).collect::<Vec<_>>())
    }

    /// Geometric-mean naive-loop throughput.
    pub fn geomean_naive_cps(&self) -> f64 {
        geomean(&self.rows.iter().map(|r| r.naive_cps).collect::<Vec<_>>())
    }

    /// Geometric-mean fast-path over slow-path speedup across the memory
    /// microbenchmark patterns (zero when the microbench was disabled).
    pub fn geomean_mem_speedup(&self) -> f64 {
        geomean(
            &self
                .mem_rows
                .iter()
                .map(MemBenchRow::speedup)
                .collect::<Vec<_>>(),
        )
    }

    /// Geometric-mean fast-path hierarchy throughput (accesses per host
    /// second) across the microbenchmark patterns.
    pub fn geomean_mem_fast_aps(&self) -> f64 {
        geomean(&self.mem_rows.iter().map(|r| r.fast_aps).collect::<Vec<_>>())
    }

    /// Geometric-mean slow-path hierarchy throughput.
    pub fn geomean_mem_slow_aps(&self) -> f64 {
        geomean(&self.mem_rows.iter().map(|r| r.slow_aps).collect::<Vec<_>>())
    }

    /// Host throughput of the 1-shard row of the shard bench (zero when
    /// the bench was disabled or has no 1-shard row).
    pub fn shard_baseline_cps(&self) -> f64 {
        self.shard_rows
            .iter()
            .find(|r| r.shards == 1)
            .map_or(0.0, |r| r.cps)
    }

    /// Speedup of the highest-shard-count row over the 1-shard baseline —
    /// the number the `--gate-shard-speedup` CI gate checks. Zero when the
    /// shard bench was disabled or never scaled past one shard.
    ///
    /// Rows with more shards than the host has cores are *undersubscribed*
    /// — their threads time-slice instead of running in parallel, so their
    /// "speedup" measures the host, not the sharded driver — and are
    /// excluded here (they still appear in the JSON rows, flagged).
    pub fn max_shard_speedup(&self) -> f64 {
        let base = self.shard_baseline_cps();
        self.shard_rows
            .iter()
            .filter(|r| r.shards > 1 && !self.undersubscribed(r))
            .max_by_key(|r| r.shards)
            .map_or(0.0, |r| r.speedup_over(base))
    }

    /// `true` when `row` ran with more shards than the host has cores.
    fn undersubscribed(&self, row: &ShardRow) -> bool {
        row.shards as usize > self.host_cores
    }

    /// The summary as the `BENCH_sim.json` document.
    pub fn to_json(&self) -> JsonValue {
        let rows: Vec<JsonValue> = self
            .rows
            .iter()
            .map(|r| {
                JsonValue::object([
                    ("workload", JsonValue::from(r.workload.as_str())),
                    ("kernel", r.primitive.to_string().to_lowercase().into()),
                    ("cycles", r.cycles.into()),
                    ("event_sim_cycles_per_host_sec", r.event_cps.into()),
                    ("naive_sim_cycles_per_host_sec", r.naive_cps.into()),
                    ("speedup", r.speedup().into()),
                ])
            })
            .collect();
        JsonValue::object([
            ("bench", JsonValue::from("bench-perf")),
            ("scale", format!("{:?}", self.scale).to_lowercase().into()),
            ("k", self.k.into()),
            ("pes", self.pes.into()),
            ("threads", self.threads.into()),
            ("geomean_speedup", self.geomean_speedup().into()),
            (
                "geomean_event_sim_cycles_per_host_sec",
                self.geomean_event_cps().into(),
            ),
            (
                "geomean_naive_sim_cycles_per_host_sec",
                self.geomean_naive_cps().into(),
            ),
            ("workloads", JsonValue::Array(rows)),
            ("mem_microbench", self.mem_json()),
            ("sim_shard", self.shard_json()),
        ])
    }

    /// The `"sim_shard"` section of the JSON document.
    fn shard_json(&self) -> JsonValue {
        let base = self.shard_baseline_cps();
        let rows: Vec<JsonValue> = self
            .shard_rows
            .iter()
            .map(|r| {
                JsonValue::object([
                    ("shards", r.shards.into()),
                    ("cycles", r.cycles.into()),
                    ("sim_cycles_per_host_sec", r.cps.into()),
                    ("speedup", r.speedup_over(base).into()),
                    ("undersubscribed", self.undersubscribed(r).into()),
                    (
                        "shard_wall_ns",
                        JsonValue::Array(r.shard_wall_ns.iter().map(|&w| w.into()).collect()),
                    ),
                ])
            })
            .collect();
        JsonValue::object([
            ("host_cores", self.host_cores.into()),
            ("max_shard_speedup", self.max_shard_speedup().into()),
            ("rows", JsonValue::Array(rows)),
        ])
    }

    /// The `"mem_microbench"` section of the JSON document.
    fn mem_json(&self) -> JsonValue {
        let patterns: Vec<JsonValue> = self
            .mem_rows
            .iter()
            .map(|r| {
                JsonValue::object([
                    ("pattern", JsonValue::from(r.pattern)),
                    ("accesses", r.accesses.into()),
                    ("fast_accesses_per_host_sec", r.fast_aps.into()),
                    ("slow_accesses_per_host_sec", r.slow_aps.into()),
                    ("speedup", r.speedup().into()),
                    ("line_filter_rate", r.line_filter_rate.into()),
                    ("page_reuse_rate", r.page_reuse_rate.into()),
                ])
            })
            .collect();
        JsonValue::object([
            ("ops_per_pattern", self.mem_ops.into()),
            ("geomean_speedup", self.geomean_mem_speedup().into()),
            (
                "geomean_fast_accesses_per_host_sec",
                self.geomean_mem_fast_aps().into(),
            ),
            (
                "geomean_slow_accesses_per_host_sec",
                self.geomean_mem_slow_aps().into(),
            ),
            ("patterns", JsonValue::Array(patterns)),
        ])
    }
}

/// Measures every (workload, primitive) pair under both drivers and checks
/// that each pair's simulated reports are identical (`RunReport` equality
/// ignores host wall clock — everything simulated must match).
///
/// # Errors
///
/// Returns a message when any simulation fails, diverges from the gold
/// kernel, or — the reason this harness exists — the two drivers disagree
/// on any simulated metric.
pub fn measure(
    workloads: &[Arc<Workload>],
    config: &Arc<SystemConfig>,
    primitives: &[Primitive],
    runner: &ParallelRunner,
) -> Result<Vec<PerfRow>, String> {
    let mut jobs = Vec::new();
    for w in workloads {
        for &p in primitives {
            jobs.push(Job::new(w, config, p, machines::base_plan(&w.a)));
            jobs.push(Job::new(w, config, p, machines::base_plan(&w.a)).with_naive_loop(true));
        }
    }
    let results = runner.run_results(&jobs);
    let mut rows = Vec::new();
    for (pair, job) in results.chunks_exact(2).zip(jobs.chunks_exact(2)) {
        let event = pair[0].as_ref().map_err(|e| e.to_string())?;
        let naive = pair[1].as_ref().map_err(|e| e.to_string())?;
        if event != naive {
            return Err(format!(
                "drivers disagree on {}/{:?}: event {} cycles vs naive {} cycles",
                job[0].workload.name, job[0].primitive, event.cycles, naive.cycles
            ));
        }
        rows.push(PerfRow {
            workload: job[0].workload.name.clone(),
            primitive: job[0].primitive,
            cycles: event.cycles,
            event_cps: event.sim_cycles_per_host_sec(),
            naive_cps: naive.sim_cycles_per_host_sec(),
        });
    }
    Ok(rows)
}

/// Runs the full Figure 9 suite (both kernels) at `scale`, plus the
/// memory microbenchmark at `mem_ops` accesses per pattern and the
/// shard-scaling bench over `shard_counts`, and returns the summary ready
/// to serialize as `BENCH_sim.json`. Passing `mem_ops == 0` skips the
/// microbench; an empty `shard_counts` skips the shard bench.
///
/// # Errors
///
/// See [`measure`], [`mem_microbench`] and [`shard_bench`].
pub fn run_suite_perf(
    scale: Scale,
    k: usize,
    pes: usize,
    mem_ops: u64,
    shard_counts: &[usize],
    runner: &ParallelRunner,
) -> Result<PerfSummary, String> {
    let workloads: Vec<Arc<Workload>> = Workload::suite(scale, k)
        .into_iter()
        .map(Arc::new)
        .collect();
    let config = Arc::new(machines::spade_system(pes));
    let rows = measure(
        &workloads,
        &config,
        &[Primitive::Spmm, Primitive::Sddmm],
        runner,
    )?;
    let mem_rows = mem_microbench(pes, mem_ops)?;
    let shard_rows = shard_bench(pes, scale, k, shard_counts)?;
    Ok(PerfSummary {
        scale,
        k,
        pes,
        threads: runner.threads(),
        rows,
        mem_ops,
        mem_rows,
        host_cores: host_cores(),
        shard_rows,
    })
}

/// Host cores available to this process (1 when undetectable) — recorded
/// in the summary and consulted by the shard-speedup gate.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One benchmark's advise measurement: selection latency of the tiered
/// `advise --fast` path vs the quick `find_opt` sweep, and the quality of
/// the plan it picked (cycles relative to the exhaustive quick Opt).
#[derive(Debug, Clone)]
pub struct AdviseBenchRow {
    /// Workload short name.
    pub workload: String,
    /// Cycles of the exhaustive quick-Opt plan (the quality baseline).
    pub opt_cycles: u64,
    /// Cycles of the plan the tiered advise selected.
    pub advised_cycles: u64,
    /// Which tier answered (`model` or `heuristic`).
    pub source: String,
    /// Wall microseconds the tiered selection took (features + candidate
    /// enumeration + ranking; no simulation).
    pub advise_us: f64,
    /// Wall microseconds the quick `find_opt` sweep took.
    pub find_opt_us: f64,
}

impl AdviseBenchRow {
    /// Selected-plan cycles over exhaustive-Opt cycles (1.0 = perfect).
    pub fn quality(&self) -> f64 {
        if self.opt_cycles > 0 {
            self.advised_cycles as f64 / self.opt_cycles as f64
        } else {
            0.0
        }
    }

    /// `find_opt` wall time over advise wall time.
    pub fn speedup(&self) -> f64 {
        if self.advise_us > 0.0 {
            self.find_opt_us / self.advise_us
        } else {
            0.0
        }
    }
}

/// The `bench-advise` result: per-benchmark rows, suite geomeans, and the
/// model fitted on the full sweep (the shippable artifact).
#[derive(Debug, Clone)]
pub struct AdviseBench {
    /// Suite scale the sweep ran at.
    pub scale: Scale,
    /// Dense row size.
    pub k: usize,
    /// SPADE PE count.
    pub pes: usize,
    /// One row per Figure 9 benchmark.
    pub rows: Vec<AdviseBenchRow>,
    /// The cost model fitted on every sweep row (all benchmarks), for
    /// saving next to the bench JSON. Per-benchmark rows above were scored
    /// with leave-one-benchmark-out models, so the quality numbers are
    /// honest about unseen matrices.
    pub model: crate::model::CostModel,
}

impl AdviseBench {
    /// Geomean of selected-plan cycles over exhaustive-Opt cycles — the
    /// `--gate-advise-quality` number (≤ 1.0 is ideal).
    pub fn geomean_quality(&self) -> f64 {
        geomean(
            &self
                .rows
                .iter()
                .map(AdviseBenchRow::quality)
                .collect::<Vec<_>>(),
        )
    }

    /// Geomean of `find_opt` wall time over advise wall time — the
    /// `--gate-advise-speedup` number.
    pub fn geomean_speedup(&self) -> f64 {
        geomean(
            &self
                .rows
                .iter()
                .map(AdviseBenchRow::speedup)
                .collect::<Vec<_>>(),
        )
    }

    /// The `"bench_advise"` section for `BENCH_sim.json`.
    pub fn to_json(&self) -> JsonValue {
        let rows: Vec<JsonValue> = self
            .rows
            .iter()
            .map(|r| {
                JsonValue::object([
                    ("workload", JsonValue::from(r.workload.as_str())),
                    ("opt_cycles", r.opt_cycles.into()),
                    ("advised_cycles", r.advised_cycles.into()),
                    ("quality", r.quality().into()),
                    ("source", r.source.as_str().into()),
                    ("advise_us", r.advise_us.into()),
                    ("find_opt_us", r.find_opt_us.into()),
                    ("speedup", r.speedup().into()),
                ])
            })
            .collect();
        JsonValue::object([
            ("scale", format!("{:?}", self.scale).to_lowercase().into()),
            ("k", self.k.into()),
            ("pes", self.pes.into()),
            ("geomean_quality", self.geomean_quality().into()),
            ("geomean_speedup", self.geomean_speedup().into()),
            ("holdout_mare", self.model.accuracy.holdout_mare.into()),
            ("rows", JsonValue::Array(rows)),
        ])
    }
}

/// Turns one simulated `(plan, report)` pair into a training row.
fn training_row(
    benchmark: &str,
    features: &[f64],
    plan: &spade_core::ExecutionPlan,
    k: usize,
    pes: usize,
    cycles: u64,
) -> crate::model::TrainingRow {
    crate::model::TrainingRow {
        benchmark: benchmark.to_string(),
        features: features.to_vec(),
        row_panel: plan.tiling.row_panel_size,
        col_panel: plan.tiling.col_panel_size,
        r_policy: plan.r_policy,
        barriers: plan.barriers.is_enabled(),
        k,
        pes,
        cycles,
    }
}

/// Runs the advise benchmark over the Figure 9 suite.
///
/// Per benchmark, the quick `find_opt` sweep is run (timed — that is the
/// latency being replaced) and every simulated candidate becomes a
/// training row. The tiered advise is then timed per benchmark with a
/// model fitted on *the other nine benchmarks' rows* (leave-one-out, so
/// the model never saw the matrix it advises), and the selected plan's
/// cycles are looked up from the sweep. No simulation happens on the
/// advise path.
///
/// # Errors
///
/// Returns a message when a simulation fails or the full-sweep model
/// cannot be fitted.
pub fn run_advise_bench(
    scale: Scale,
    k: usize,
    pes: usize,
    runner: &ParallelRunner,
) -> Result<AdviseBench, String> {
    use crate::model::{CostModel, TrainingRow};
    use crate::runner::{opt_candidates, select_opt};
    use spade_core::advisor::{advise_candidates, advise_tiered};
    use spade_core::ExecutionPlan;
    use spade_matrix::analysis::MatrixFeatures;

    let config = Arc::new(machines::spade_system(pes));
    let workloads: Vec<Arc<Workload>> = Workload::suite(scale, k)
        .into_iter()
        .map(Arc::new)
        .collect();

    struct Sweep {
        plan_cycles: Vec<(ExecutionPlan, u64)>,
        opt_cycles: u64,
        find_opt_us: f64,
    }

    let mut sweeps: Vec<Sweep> = Vec::new();
    let mut all_rows: Vec<TrainingRow> = Vec::new();
    for w in &workloads {
        // The timed quick find_opt sweep (same code path as find_opt).
        let plans = opt_candidates(w, true);
        let start = Instant::now();
        let jobs: Vec<Job> = plans
            .iter()
            .map(|&p| Job::new(w, &config, Primitive::Spmm, p))
            .collect();
        let reports = runner.run(&jobs);
        let (_, opt_report) = select_opt(&plans, &reports);
        let find_opt_us = start.elapsed().as_secs_f64() * 1e6;

        // Simulate the advise candidates the sweep missed (untimed): the
        // lookup table must cover every plan the advisor can select.
        let adv_plans = advise_candidates(&w.a, k, &config).map_err(|e| e.to_string())?;
        let extra: Vec<ExecutionPlan> = adv_plans
            .iter()
            .filter(|p| !plans.contains(p))
            .copied()
            .collect();
        let extra_jobs: Vec<Job> = extra
            .iter()
            .map(|&p| Job::new(w, &config, Primitive::Spmm, p))
            .collect();
        let extra_reports = runner.run(&extra_jobs);

        let features = MatrixFeatures::compute(&w.a).as_vec();
        let mut plan_cycles: Vec<(ExecutionPlan, u64)> = Vec::new();
        for (p, r) in plans.iter().zip(&reports).map(|(p, r)| (*p, r.cycles)) {
            plan_cycles.push((p, r));
        }
        for (p, r) in extra
            .iter()
            .zip(&extra_reports)
            .map(|(p, r)| (*p, r.cycles))
        {
            plan_cycles.push((p, r));
        }
        for &(p, cycles) in &plan_cycles {
            all_rows.push(training_row(&w.name, &features, &p, k, pes, cycles));
        }
        sweeps.push(Sweep {
            plan_cycles,
            opt_cycles: opt_report.cycles,
            find_opt_us,
        });
    }

    let mut rows = Vec::new();
    for (w, sweep) in workloads.iter().zip(&sweeps) {
        // Leave-one-benchmark-out: the model advising `w` never saw it.
        let train: Vec<TrainingRow> = all_rows
            .iter()
            .filter(|r| r.benchmark != w.name)
            .cloned()
            .collect();
        let model = CostModel::fit(&train)?;

        let start = Instant::now();
        let advice = advise_tiered(&w.a, k, &config, Some(&model)).map_err(|e| e.to_string())?;
        let advise_us = (start.elapsed().as_secs_f64() * 1e6).max(0.01);

        let advised_cycles = sweep
            .plan_cycles
            .iter()
            .find(|(p, _)| *p == advice.plan)
            .map(|&(_, c)| c)
            .ok_or_else(|| format!("advised plan for {} missing from the sweep", w.name))?;
        rows.push(AdviseBenchRow {
            workload: w.name.clone(),
            opt_cycles: sweep.opt_cycles,
            advised_cycles,
            source: advice.source.as_str().to_string(),
            advise_us,
            find_opt_us: sweep.find_opt_us,
        });
    }

    let model = CostModel::fit(&all_rows)?;
    Ok(AdviseBench {
        scale,
        k,
        pes,
        rows,
        model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_matrix::generators::Benchmark;

    #[test]
    fn both_drivers_agree_and_produce_throughput() {
        let w = Arc::new(Workload::prepare(Benchmark::Myc, Scale::Tiny, 32));
        let cfg = Arc::new(machines::spade_system(4));
        let rows = measure(&[w], &cfg, &[Primitive::Spmm], &ParallelRunner::new(1)).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].cycles > 0);
        assert!(rows[0].event_cps > 0.0);
        assert!(rows[0].naive_cps > 0.0);
    }

    #[test]
    fn summary_json_is_valid_and_complete() {
        let summary = PerfSummary {
            scale: Scale::Tiny,
            k: 32,
            pes: 4,
            threads: 1,
            rows: vec![PerfRow {
                workload: "myc".into(),
                primitive: Primitive::Spmm,
                cycles: 1000,
                event_cps: 4.0e6,
                naive_cps: 2.0e6,
            }],
            mem_ops: 100,
            mem_rows: vec![MemBenchRow {
                pattern: "repeat",
                accesses: 100,
                fast_aps: 3.0e6,
                slow_aps: 1.0e6,
                line_filter_rate: 0.9,
                page_reuse_rate: 0.95,
            }],
            host_cores: 8,
            shard_rows: vec![
                ShardRow {
                    shards: 1,
                    cycles: 1000,
                    cps: 1.0e6,
                    shard_wall_ns: vec![500.0],
                },
                ShardRow {
                    shards: 4,
                    cycles: 1000,
                    cps: 2.5e6,
                    shard_wall_ns: vec![100.0, 110.0, 120.0, 130.0],
                },
            ],
        };
        assert!((summary.geomean_speedup() - 2.0).abs() < 1e-12);
        assert!((summary.geomean_mem_speedup() - 3.0).abs() < 1e-12);
        assert!((summary.max_shard_speedup() - 2.5).abs() < 1e-12);
        let text = summary.to_json().render();
        assert_eq!(spade_sim::json::validate(&text), Ok(()));
        assert!(text.contains("\"geomean_speedup\""));
        assert!(text.contains("\"event_sim_cycles_per_host_sec\""));
        assert!(text.contains("\"scale\":\"tiny\""));
        assert!(text.contains("\"mem_microbench\""));
        assert!(text.contains("\"line_filter_rate\""));
        assert!(text.contains("\"pattern\":\"repeat\""));
        assert!(text.contains("\"sim_shard\""));
        assert!(text.contains("\"host_cores\":8"));
        assert!(text.contains("\"max_shard_speedup\""));
        assert!(text.contains("\"shards\":4"));
    }

    #[test]
    fn undersubscribed_shard_rows_are_flagged_and_excluded() {
        // A 1-core host "measuring" 4-shard speedup is measuring its own
        // time-slicing; the row must be flagged and must not become
        // max_shard_speedup.
        let summary = PerfSummary {
            scale: Scale::Tiny,
            k: 32,
            pes: 4,
            threads: 1,
            rows: Vec::new(),
            mem_ops: 0,
            mem_rows: Vec::new(),
            host_cores: 1,
            shard_rows: vec![
                ShardRow {
                    shards: 1,
                    cycles: 1000,
                    cps: 1.0e6,
                    shard_wall_ns: Vec::new(),
                },
                ShardRow {
                    shards: 2,
                    cycles: 1000,
                    cps: 0.2e6,
                    shard_wall_ns: vec![100.0, 100.0],
                },
                ShardRow {
                    shards: 4,
                    cycles: 1000,
                    cps: 0.14e6,
                    shard_wall_ns: vec![100.0; 4],
                },
            ],
        };
        // Every >1-shard row is undersubscribed on a 1-core host, so no
        // row qualifies: the headline metric is 0, not a bogus 0.14x.
        assert_eq!(summary.max_shard_speedup(), 0.0);
        let text = summary.to_json().render();
        assert!(text.contains("\"undersubscribed\":true"));
        assert!(text.contains("\"max_shard_speedup\":0"));
        // On an 8-core host the same rows count again.
        let wide = PerfSummary {
            host_cores: 8,
            ..summary
        };
        assert!((wide.max_shard_speedup() - 0.14).abs() < 1e-12);
        assert!(wide
            .to_json()
            .render()
            .contains("\"undersubscribed\":false"));
    }

    #[test]
    fn advise_bench_measures_latency_and_quality() {
        let bench = run_advise_bench(Scale::Tiny, 16, 4, &ParallelRunner::new(2)).unwrap();
        assert_eq!(bench.rows.len(), Benchmark::ALL.len());
        for row in &bench.rows {
            assert!(row.opt_cycles > 0);
            assert!(row.advised_cycles > 0);
            assert!(row.advise_us > 0.0);
            assert!(
                row.find_opt_us > row.advise_us,
                "{}: advise not faster",
                row.workload
            );
            assert!(
                row.source == "model" || row.source == "heuristic",
                "unexpected source {}",
                row.source
            );
        }
        // Quality can dip below 1.0: the advise candidates include the
        // structural heuristic's pick, which is outside the quick search
        // space and sometimes beats quick Opt.
        let quality = bench.geomean_quality();
        assert!(quality > 0.0 && quality < 1.5, "geomean quality {quality}");
        assert!(bench.geomean_speedup() > 1.0);
        let text = bench.to_json().render();
        assert_eq!(spade_sim::json::validate(&text), Ok(()));
        assert!(text.contains("\"geomean_quality\""));
        assert!(text.contains("\"geomean_speedup\""));
        assert!(text.contains("\"source\""));
    }

    #[test]
    fn shard_bench_rows_are_equivalent_and_measured() {
        let rows = shard_bench(8, Scale::Tiny, 16, &[1, 2]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].shards, 1);
        assert_eq!(rows[1].shards, 2);
        // Bit-identity across shard counts is asserted inside shard_bench;
        // the cycles columns agreeing is the visible consequence.
        assert_eq!(rows[0].cycles, rows[1].cycles);
        assert!(rows.iter().all(|r| r.cps > 0.0));
        assert!(rows[0].shard_wall_ns.is_empty());
        assert_eq!(rows[1].shard_wall_ns.len(), 2);
    }

    #[test]
    fn shard_bench_requires_a_one_shard_baseline() {
        let err = shard_bench(8, Scale::Tiny, 16, &[2, 4]).unwrap_err();
        assert!(err.contains("baseline"), "unexpected error: {err}");
    }

    #[test]
    fn empty_shard_counts_disable_the_shard_bench() {
        assert!(shard_bench(8, Scale::Tiny, 16, &[]).unwrap().is_empty());
    }

    #[test]
    fn zero_naive_rate_yields_zero_speedup() {
        let row = PerfRow {
            workload: "x".into(),
            primitive: Primitive::Spmm,
            cycles: 1,
            event_cps: 1.0,
            naive_cps: 0.0,
        };
        assert_eq!(row.speedup(), 0.0);
    }

    #[test]
    fn mem_microbench_patterns_engage_their_filters() {
        let rows = mem_microbench(4, 2_000).unwrap();
        assert_eq!(rows.len(), MEM_PATTERNS.len());
        for row in &rows {
            assert_eq!(row.accesses, 2_000);
            assert!(row.fast_aps > 0.0 && row.slow_aps > 0.0);
            assert!((0.0..=1.0).contains(&row.line_filter_rate));
            assert!((0.0..=1.0).contains(&row.page_reuse_rate));
        }
        let by_name = |n: &str| rows.iter().find(|r| r.pattern == n).unwrap();
        // Sequential bursts reuse the latched translation almost always.
        assert!(by_name("stream").page_reuse_rate > 0.5);
        // Same-line bursts hit the line filter on 15 of every 16 accesses.
        assert!(by_name("repeat").line_filter_rate > 0.5);
        // Page-per-access strides defeat both filters entirely.
        assert_eq!(by_name("stride").line_filter_rate, 0.0);
        assert_eq!(by_name("stride").page_reuse_rate, 0.0);
    }

    #[test]
    fn mem_microbench_zero_ops_disables_it() {
        assert!(mem_microbench(4, 0).unwrap().is_empty());
    }

    #[test]
    fn mem_streams_are_deterministic() {
        for pattern in MEM_PATTERNS {
            let a = mem_ops_for(pattern, 4, 64, 500);
            let b = mem_ops_for(pattern, 4, 64, 500);
            assert_eq!(a, b, "{pattern} stream not reproducible");
        }
    }
}
