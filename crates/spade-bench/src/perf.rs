//! The `bench-perf` harness: simulator-throughput measurement.
//!
//! Runs the Figure 9 suite under both cycle-loop drivers — the event-driven
//! ready-queue scheduler and the naive cycle-by-cycle oracle — and records
//! each run's `sim_cycles_per_host_sec`. Both drivers produce bit-identical
//! simulated results (checked here report-for-report on every invocation),
//! so the only difference worth recording is how fast the host produced
//! them. The JSON document this module emits is committed as
//! `BENCH_sim.json`, the repository's simulator-performance trajectory:
//! re-run it after scheduler or hot-path changes and compare.

use std::sync::Arc;

use spade_core::{JsonValue, Primitive, SystemConfig};
use spade_matrix::generators::Scale;

use crate::machines;
use crate::parallel::{Job, ParallelRunner};
use crate::runner::geomean;
use crate::suite::Workload;

/// One (workload, primitive) measurement: identical simulations under both
/// drivers, with the host throughput each achieved.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Workload short name.
    pub workload: String,
    /// Kernel measured.
    pub primitive: Primitive,
    /// Simulated cycles (identical under both drivers by construction).
    pub cycles: u64,
    /// Simulated cycles per host second under the event-driven scheduler.
    pub event_cps: f64,
    /// Simulated cycles per host second under the naive tick loop.
    pub naive_cps: f64,
}

impl PerfRow {
    /// Event-driven over naive host throughput; zero if the naive rate is
    /// unmeasurable (degenerate sub-nanosecond run).
    pub fn speedup(&self) -> f64 {
        if self.naive_cps > 0.0 {
            self.event_cps / self.naive_cps
        } else {
            0.0
        }
    }
}

/// A complete `bench-perf` result: the per-row measurements plus the
/// context needed to reproduce them.
#[derive(Debug, Clone)]
pub struct PerfSummary {
    /// Suite scale the rows were measured at.
    pub scale: Scale,
    /// Dense row size.
    pub k: usize,
    /// SPADE PE count.
    pub pes: usize,
    /// Worker threads the sweep ran on.
    pub threads: usize,
    /// One row per (workload, primitive).
    pub rows: Vec<PerfRow>,
}

impl PerfSummary {
    /// Geometric-mean speedup of the event-driven driver over the naive
    /// loop across all rows.
    pub fn geomean_speedup(&self) -> f64 {
        geomean(&self.rows.iter().map(PerfRow::speedup).collect::<Vec<_>>())
    }

    /// Geometric-mean event-driven throughput (simulated cycles per host
    /// second).
    pub fn geomean_event_cps(&self) -> f64 {
        geomean(&self.rows.iter().map(|r| r.event_cps).collect::<Vec<_>>())
    }

    /// Geometric-mean naive-loop throughput.
    pub fn geomean_naive_cps(&self) -> f64 {
        geomean(&self.rows.iter().map(|r| r.naive_cps).collect::<Vec<_>>())
    }

    /// The summary as the `BENCH_sim.json` document.
    pub fn to_json(&self) -> JsonValue {
        let rows: Vec<JsonValue> = self
            .rows
            .iter()
            .map(|r| {
                JsonValue::object([
                    ("workload", JsonValue::from(r.workload.as_str())),
                    ("kernel", r.primitive.to_string().to_lowercase().into()),
                    ("cycles", r.cycles.into()),
                    ("event_sim_cycles_per_host_sec", r.event_cps.into()),
                    ("naive_sim_cycles_per_host_sec", r.naive_cps.into()),
                    ("speedup", r.speedup().into()),
                ])
            })
            .collect();
        JsonValue::object([
            ("bench", JsonValue::from("bench-perf")),
            ("scale", format!("{:?}", self.scale).to_lowercase().into()),
            ("k", self.k.into()),
            ("pes", self.pes.into()),
            ("threads", self.threads.into()),
            ("geomean_speedup", self.geomean_speedup().into()),
            (
                "geomean_event_sim_cycles_per_host_sec",
                self.geomean_event_cps().into(),
            ),
            (
                "geomean_naive_sim_cycles_per_host_sec",
                self.geomean_naive_cps().into(),
            ),
            ("workloads", JsonValue::Array(rows)),
        ])
    }
}

/// Measures every (workload, primitive) pair under both drivers and checks
/// that each pair's simulated reports are identical (`RunReport` equality
/// ignores host wall clock — everything simulated must match).
///
/// # Errors
///
/// Returns a message when any simulation fails, diverges from the gold
/// kernel, or — the reason this harness exists — the two drivers disagree
/// on any simulated metric.
pub fn measure(
    workloads: &[Arc<Workload>],
    config: &Arc<SystemConfig>,
    primitives: &[Primitive],
    runner: &ParallelRunner,
) -> Result<Vec<PerfRow>, String> {
    let mut jobs = Vec::new();
    for w in workloads {
        for &p in primitives {
            jobs.push(Job::new(w, config, p, machines::base_plan(&w.a)));
            jobs.push(Job::new(w, config, p, machines::base_plan(&w.a)).with_naive_loop(true));
        }
    }
    let results = runner.run_results(&jobs);
    let mut rows = Vec::new();
    for (pair, job) in results.chunks_exact(2).zip(jobs.chunks_exact(2)) {
        let event = pair[0].as_ref().map_err(|e| e.to_string())?;
        let naive = pair[1].as_ref().map_err(|e| e.to_string())?;
        if event != naive {
            return Err(format!(
                "drivers disagree on {}/{:?}: event {} cycles vs naive {} cycles",
                job[0].workload.name, job[0].primitive, event.cycles, naive.cycles
            ));
        }
        rows.push(PerfRow {
            workload: job[0].workload.name.clone(),
            primitive: job[0].primitive,
            cycles: event.cycles,
            event_cps: event.sim_cycles_per_host_sec(),
            naive_cps: naive.sim_cycles_per_host_sec(),
        });
    }
    Ok(rows)
}

/// Runs the full Figure 9 suite (both kernels) at `scale` and returns the
/// summary ready to serialize as `BENCH_sim.json`.
///
/// # Errors
///
/// See [`measure`].
pub fn run_suite_perf(
    scale: Scale,
    k: usize,
    pes: usize,
    runner: &ParallelRunner,
) -> Result<PerfSummary, String> {
    let workloads: Vec<Arc<Workload>> = Workload::suite(scale, k)
        .into_iter()
        .map(Arc::new)
        .collect();
    let config = Arc::new(machines::spade_system(pes));
    let rows = measure(
        &workloads,
        &config,
        &[Primitive::Spmm, Primitive::Sddmm],
        runner,
    )?;
    Ok(PerfSummary {
        scale,
        k,
        pes,
        threads: runner.threads(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_matrix::generators::Benchmark;

    #[test]
    fn both_drivers_agree_and_produce_throughput() {
        let w = Arc::new(Workload::prepare(Benchmark::Myc, Scale::Tiny, 32));
        let cfg = Arc::new(machines::spade_system(4));
        let rows = measure(&[w], &cfg, &[Primitive::Spmm], &ParallelRunner::new(1)).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].cycles > 0);
        assert!(rows[0].event_cps > 0.0);
        assert!(rows[0].naive_cps > 0.0);
    }

    #[test]
    fn summary_json_is_valid_and_complete() {
        let summary = PerfSummary {
            scale: Scale::Tiny,
            k: 32,
            pes: 4,
            threads: 1,
            rows: vec![PerfRow {
                workload: "myc".into(),
                primitive: Primitive::Spmm,
                cycles: 1000,
                event_cps: 4.0e6,
                naive_cps: 2.0e6,
            }],
        };
        assert!((summary.geomean_speedup() - 2.0).abs() < 1e-12);
        let text = summary.to_json().render();
        assert_eq!(spade_sim::json::validate(&text), Ok(()));
        assert!(text.contains("\"geomean_speedup\""));
        assert!(text.contains("\"event_sim_cycles_per_host_sec\""));
        assert!(text.contains("\"scale\":\"tiny\""));
    }

    #[test]
    fn zero_naive_rate_yields_zero_speedup() {
        let row = PerfRow {
            workload: "x".into(),
            primitive: Primitive::Spmm,
            cycles: 1,
            event_cps: 1.0,
            naive_cps: 0.0,
        };
        assert_eq!(row.speedup(), 0.0);
    }
}
