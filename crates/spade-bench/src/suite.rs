//! Benchmark-suite preparation: the ten Table 2 graphs with their dense
//! operands.

use spade_matrix::generators::{Benchmark, Scale};
use spade_matrix::{Coo, DenseMatrix};

/// One prepared workload: the sparse matrix plus deterministic dense
/// operands for a given `K`.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which Table 2 graph this is.
    pub benchmark: Benchmark,
    /// The sparse input matrix `A`.
    pub a: Coo,
    /// Dense row size.
    pub k: usize,
    /// The SpMM dense input `B` (also the SDDMM rMatrix).
    pub b: DenseMatrix,
    /// The SDDMM cMatrix `Cᵀ`.
    pub c_t: DenseMatrix,
}

impl Workload {
    /// Prepares one workload deterministically.
    pub fn prepare(benchmark: Benchmark, scale: Scale, k: usize) -> Self {
        let a = benchmark.generate(scale);
        let b = DenseMatrix::from_fn(a.num_rows().max(a.num_cols()), k, |r, c| {
            ((r * 31 + c * 7) % 23) as f32 * 0.0625 - 0.5
        });
        let c_t = DenseMatrix::from_fn(a.num_cols(), k, |r, c| {
            ((r * 13 + c * 11) % 19) as f32 * 0.0625 - 0.4
        });
        Workload {
            benchmark,
            a,
            k,
            b,
            c_t,
        }
    }

    /// Prepares the full ten-graph suite.
    pub fn suite(scale: Scale, k: usize) -> Vec<Workload> {
        Benchmark::ALL
            .iter()
            .map(|&b| Workload::prepare(b, scale, k))
            .collect()
    }

    /// The `B` operand sized for SpMM (needs a row per column of `A`).
    pub fn b_for_spmm(&self) -> &DenseMatrix {
        &self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes_are_consistent() {
        let w = Workload::prepare(Benchmark::Kro, Scale::Tiny, 32);
        assert_eq!(w.b.num_cols(), 32);
        assert!(w.b.num_rows() >= w.a.num_cols());
        assert!(w.b.num_rows() >= w.a.num_rows());
        assert_eq!(w.c_t.num_rows(), w.a.num_cols());
    }

    #[test]
    fn preparation_is_deterministic() {
        let w1 = Workload::prepare(Benchmark::Del, Scale::Tiny, 32);
        let w2 = Workload::prepare(Benchmark::Del, Scale::Tiny, 32);
        assert_eq!(w1.a, w2.a);
        assert_eq!(w1.b, w2.b);
    }

    #[test]
    fn suite_covers_all_ten() {
        let s = Workload::suite(Scale::Tiny, 32);
        assert_eq!(s.len(), 10);
    }
}
