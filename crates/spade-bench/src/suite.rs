//! Benchmark-suite preparation: the ten Table 2 graphs with their dense
//! operands.
//!
//! A [`Workload`] is cheaply clonable and sharable across threads: the
//! sparse matrix, the dense operands and the lazily computed gold outputs
//! all live behind `Arc`s. The Opt search runs a dozen plans against the
//! same workload — sharing means the operands are prepared once and the
//! functional gold result is computed once per (workload, primitive)
//! instead of once per simulated run.

use std::sync::{Arc, OnceLock};

use spade_matrix::generators::{Benchmark, Scale};
use spade_matrix::{reference, Coo, DenseMatrix};

/// One prepared workload: the sparse matrix plus deterministic dense
/// operands for a given `K`, with memoized gold (reference) outputs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// A short display name (the Table 2 short name, or a file path for
    /// external matrices).
    pub name: String,
    /// Which Table 2 graph this is, when generated from the suite.
    pub benchmark: Option<Benchmark>,
    /// The sparse input matrix `A`.
    pub a: Arc<Coo>,
    /// Dense row size.
    pub k: usize,
    /// The SpMM dense input `B` (also the SDDMM rMatrix).
    pub b: Arc<DenseMatrix>,
    /// The SDDMM cMatrix `Cᵀ`.
    pub c_t: Arc<DenseMatrix>,
    /// Gold SpMM output, computed on first use and shared by every
    /// subsequent validation of this workload.
    gold_spmm: Arc<OnceLock<DenseMatrix>>,
    /// Gold SDDMM output values (in `a`'s non-zero order), memoized the
    /// same way.
    gold_sddmm: Arc<OnceLock<Vec<f32>>>,
}

impl Workload {
    /// Prepares one workload deterministically.
    pub fn prepare(benchmark: Benchmark, scale: Scale, k: usize) -> Self {
        let a = benchmark.generate(scale);
        let mut w = Self::from_matrix(benchmark.short_name(), a, k);
        w.benchmark = Some(benchmark);
        w
    }

    /// Wraps an arbitrary sparse matrix (e.g. loaded from a MatrixMarket
    /// file) with the same deterministic dense operands the suite uses.
    pub fn from_matrix(name: impl Into<String>, a: Coo, k: usize) -> Self {
        let b = DenseMatrix::from_fn(a.num_rows().max(a.num_cols()), k, |r, c| {
            ((r * 31 + c * 7) % 23) as f32 * 0.0625 - 0.5
        });
        let c_t = DenseMatrix::from_fn(a.num_cols(), k, |r, c| {
            ((r * 13 + c * 11) % 19) as f32 * 0.0625 - 0.4
        });
        Workload {
            name: name.into(),
            benchmark: None,
            a: Arc::new(a),
            k,
            b: Arc::new(b),
            c_t: Arc::new(c_t),
            gold_spmm: Arc::new(OnceLock::new()),
            gold_sddmm: Arc::new(OnceLock::new()),
        }
    }

    /// Prepares the full ten-graph suite.
    pub fn suite(scale: Scale, k: usize) -> Vec<Workload> {
        Benchmark::ALL
            .iter()
            .map(|&b| Workload::prepare(b, scale, k))
            .collect()
    }

    /// The `B` operand sized for SpMM (needs a row per column of `A`).
    pub fn b_for_spmm(&self) -> &DenseMatrix {
        &self.b
    }

    /// The gold SpMM output `A × B`, computed once per workload no matter
    /// how many plans are validated against it (clones share the cache).
    pub fn gold_spmm(&self) -> &DenseMatrix {
        self.gold_spmm
            .get_or_init(|| reference::spmm(&self.a, &self.b))
    }

    /// The gold SDDMM output values in `a`'s non-zero order, memoized like
    /// [`Workload::gold_spmm`].
    pub fn gold_sddmm(&self) -> &[f32] {
        self.gold_sddmm
            .get_or_init(|| reference::sddmm(&self.a, &self.b, &self.c_t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes_are_consistent() {
        let w = Workload::prepare(Benchmark::Kro, Scale::Tiny, 32);
        assert_eq!(w.b.num_cols(), 32);
        assert!(w.b.num_rows() >= w.a.num_cols());
        assert!(w.b.num_rows() >= w.a.num_rows());
        assert_eq!(w.c_t.num_rows(), w.a.num_cols());
    }

    #[test]
    fn preparation_is_deterministic() {
        let w1 = Workload::prepare(Benchmark::Del, Scale::Tiny, 32);
        let w2 = Workload::prepare(Benchmark::Del, Scale::Tiny, 32);
        assert_eq!(w1.a, w2.a);
        assert_eq!(w1.b, w2.b);
    }

    #[test]
    fn suite_covers_all_ten() {
        let s = Workload::suite(Scale::Tiny, 32);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn gold_outputs_are_memoized_and_shared_by_clones() {
        let w = Workload::prepare(Benchmark::Myc, Scale::Tiny, 32);
        let clone = w.clone();
        let first = w.gold_spmm() as *const DenseMatrix;
        // The clone sees the same cached allocation, not a recompute.
        let second = clone.gold_spmm() as *const DenseMatrix;
        assert_eq!(first, second);
        assert_eq!(w.gold_sddmm().len(), w.a.nnz());
    }

    #[test]
    fn gold_matches_reference_kernels() {
        let w = Workload::prepare(Benchmark::Kro, Scale::Tiny, 32);
        let direct = reference::spmm(&w.a, &w.b);
        assert!(reference::dense_close(w.gold_spmm(), &direct, 1e-6));
    }
}
