//! Minimal aligned-table printing for the bench reports.

/// Prints a header banner for one experiment.
pub fn banner(title: &str, note: &str) {
    println!();
    println!("=== {title} ===");
    if !note.is_empty() {
        println!("{note}");
    }
    println!();
}

/// Prints an aligned table: `header` then `rows`, each as columns of
/// strings. Column widths adapt to contents.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:<w$}", cell, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("--")
    );
    for row in rows {
        line(row);
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.125), "12.5%");
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            &["a", "b"],
            &[
                vec!["1".into()],
                vec!["22".into(), "333".into(), "x".into()],
            ],
        );
    }
}
