//! `spade-serve`: the always-on experiment daemon.
//!
//! A std-only TCP service speaking newline-delimited JSON (one request
//! per line, one response per line — the [`spade_sim::json`] codec on
//! both sides). Clients submit the same experiments the CLI runs
//! (`run`, `search`), plus `status`, `ping` and an in-band `shutdown`;
//! results come back as the exact JSON documents the CLI's
//! `--format json` prints, minus host-wall-clock fields (see below).
//!
//! # Architecture
//!
//! ```text
//! accept loop ─┬─ connection handler ──┐ try_send   ┌─ worker ─ ParallelRunner
//!              ├─ connection handler ──┤──────────▶ │  (panic guard, deadline
//!              └─ connection handler ──┘  bounded   └─  watchdog)   │
//!                     ▲      │ cache probe (hit → reply now)        │
//!                     │      └────────────── ResultCache ◀── put ───┘
//! ```
//!
//! * **Bounded admission.** Requests funnel through a
//!   [`std::sync::mpsc::sync_channel`] of [`ServiceConfig::queue_capacity`]
//!   slots. When the queue is full the daemon replies immediately with a
//!   structured `overloaded` error carrying `retry_after_ms` — explicit
//!   back-pressure, never an unbounded buffer. Memory is bounded by
//!   construction: ≤ `max_connections` handler threads, each with at most
//!   one in-flight request, plus ≤ `queue_capacity` queued jobs.
//! * **Graceful degradation.** A malformed frame fails that one request
//!   (the connection and daemon keep serving); a panicking simulation is
//!   contained by the [`ParallelRunner`] panic guard and fails only its
//!   own request; a request that exceeds its cycle deadline gets a
//!   structured `deadline_exceeded` error from the watchdog ceiling.
//! * **Crash-safe result cache.** Completed results are stored in a
//!   [`ResultCache`] keyed by [`Job::cache_key`] — content-addressed, so
//!   the same experiment hits across restarts and processes. Cache hits
//!   are byte-identical to a fresh simulation because response payloads
//!   are *canonical*: `host_wall_ns`, `shards` and `shard_wall_ns` — host
//!   properties, excluded from [`RunReport`] equality — are normalized
//!   before rendering.
//! * **Graceful shutdown.** SIGTERM/SIGINT (see
//!   [`install_termination_handler`]) or an in-band `shutdown` request
//!   stops the accept loop, drains in-flight jobs, flushes the cache
//!   index and returns a [`ServiceSummary`].
//!
//! # Protocol
//!
//! Requests are JSON objects with a `cmd` field; an optional `id`
//! (string or number) is echoed in the response envelope. Success:
//! `{"ok":true,"cmd":...,"cached":...,"key":...,"result":{...}}`.
//! Failure: `{"ok":false,"error":{"kind":...,"message":...}}` with
//! `retry_after_ms` on `overloaded`. Error kinds: `bad_request`,
//! `overloaded`, `shutting_down`, `deadline_exceeded`, `sim_failed`,
//! `internal`. DESIGN.md documents the full matrix.
//!
//! Protocol v2 adds the observability and dataset surface:
//!
//! * `metrics` — a [`MetricsSnapshot`] of the daemon's registry
//!   (requests by kind/outcome, queue/worker gauges, cache counters,
//!   latency histograms), answered on the connection thread.
//! * `query` — enumerate/filter the cached entries as a dataset
//!   (benchmark, kernel, kind, k, pes, cycle bounds). Served from an
//!   in-memory catalog that is loaded from `index.json` and rebuilt
//!   from the entries themselves when the index is stale or missing.
//! * `trace` — run (or cache-serve) one job with event tracing on and
//!   stream the Chrome-trace JSON back in the result, byte-identical
//!   to what `spade-cli trace` writes locally.
//!
//! Protocol v3 adds sweep fan-out and server-side aggregation:
//!
//! * `batch` — one request carrying many `run`-shaped jobs (an explicit
//!   `jobs` array, or a `sweep` cross-product template over benchmarks ×
//!   kernels × k × pes × plans). Jobs fan out through the same bounded
//!   admission queue; each job probes the cache individually, fails
//!   individually, and — when the queue fills mid-batch — is rejected
//!   individually with `overloaded` + `retry_after_ms` while the jobs
//!   that fit keep running. The reply lists per-job payloads in job
//!   order, each byte-identical to the equivalent standalone `run`.
//! * `query` grows `group_by` (`benchmark`/`kernel`/`pes`): the daemon
//!   folds the filtered catalog into per-group min/max/mean cycles and
//!   a best-plan projection, so "best plan per matrix" is one request.
//! * `retry_after_ms` is no longer a constant: the hint scales with
//!   queue occupancy and the observed queue-wait histogram (see
//!   [`scaled_retry_after_ms`]), so a saturated daemon tells clients to
//!   back off longer.
//!
//! # Observability is pure
//!
//! Metrics are relaxed atomics, log spans (`SPADE_LOG=json`) go to
//! stderr, and neither feeds back into a simulation: every `RunReport`,
//! telemetry series and trace byte is identical with observability on
//! or off. The robustness suite pins this.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use spade_core::advisor::advise_tiered;
use spade_core::{
    BarrierPolicy, CMatrixPolicy, ExecutionPlan, PlanSearchSpace, Primitive, RMatrixPolicy,
    RunReport, SystemConfig,
};
use spade_matrix::generators::{Benchmark, Scale};
use spade_sim::json::MAX_FRAME_BYTES;
use spade_sim::{Cycle, FrameError, FrameReader, JsonValue};

use crate::cache::{CacheStats, Fnv64, ResultCache};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::model::CostModel;
use crate::parallel::{self, Job, JobOutput, ParallelRunner};
use crate::suite::Workload;

/// Wire-protocol version, reported by `ping` and `status`. Version 2
/// added the `metrics`, `query` and `trace` requests; version 3 added
/// `batch` and the `query` `group_by` aggregations; version 4 adds the
/// `advise` request (plan selection, answered on the connection thread
/// like `metrics` — it never occupies a simulation worker). Earlier
/// requests are a strict subset, so v1–v3 clients keep working
/// unchanged.
pub const PROTOCOL_VERSION: u32 = 4;

/// Default cap on entries a single `query` response returns. Keeps a
/// response line comfortably under the default client frame limit even
/// for a cache holding thousands of sweep results; `limit` in the
/// request overrides it.
pub const DEFAULT_QUERY_LIMIT: usize = 500;

/// Upper bound on `pes` accepted from the wire — requests are untrusted,
/// and the config allocates per-PE state before the simulation starts.
const MAX_REQUEST_PES: usize = 1024;

/// Upper bound on `k` accepted from the wire (dense operand columns).
const MAX_REQUEST_K: usize = 4096;

/// Upper bound on jobs one `batch` request may carry (explicit list or
/// expanded sweep template). Bounds the per-connection reply buffer the
/// way `queue_capacity` bounds admitted work.
pub const MAX_BATCH_JOBS: usize = 256;

/// Stores between debounced `index.json` flushes. Under sustained load
/// the catalog is persisted every this-many stores; when the admission
/// queue drains the pending stores are flushed immediately, so
/// sequential traffic is persisted as it lands and a SIGKILL loses at
/// most the last `INDEX_FLUSH_EVERY - 1` rows of the *advisory* index
/// (the entries themselves are already durable).
const INDEX_FLUSH_EVERY: u64 = 8;

/// Ceiling on the load-scaled `retry_after_ms` hint.
pub const MAX_RETRY_AFTER_MS: u64 = 60_000;

/// The back-pressure hint, scaled from load: `base` (the configured
/// [`ServiceConfig::retry_after_ms`]) when the queue is empty, growing
/// linearly to `5 * base` at full occupancy, plus the mean observed
/// queue wait — a saturated daemon whose jobs wait seconds tells
/// clients to come back in seconds, not in the idle-tuned constant.
/// Monotone in both `queue_depth` and `mean_queue_wait_us`; capped at
/// [`MAX_RETRY_AFTER_MS`].
#[must_use]
pub fn scaled_retry_after_ms(
    base: u64,
    queue_depth: usize,
    queue_capacity: usize,
    mean_queue_wait_us: u64,
) -> u64 {
    let cap = queue_capacity.max(1) as u64;
    let depth = (queue_depth as u64).min(cap);
    let occupancy_scaled = base.saturating_add(base.saturating_mul(4).saturating_mul(depth) / cap);
    occupancy_scaled
        .saturating_add(mean_queue_wait_us / 1_000)
        .min(MAX_RETRY_AFTER_MS)
}

/// How the daemon is shaped: queue depth, worker count, deadlines,
/// cache location. `Default` is sized for an interactive host.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Simulation worker threads (defaults to [`parallel::num_threads`]).
    pub workers: usize,
    /// Admission-queue slots; a full queue rejects with `overloaded`.
    pub queue_capacity: usize,
    /// Maximum concurrent client connections; excess connections get one
    /// `overloaded` reply and are closed.
    pub max_connections: usize,
    /// Deadline applied to requests that don't carry their own
    /// `deadline_cycles`, riding the watchdog cycle ceiling. `None`
    /// leaves such requests unbounded.
    pub default_deadline_cycles: Option<Cycle>,
    /// How long a connection read blocks before re-checking for
    /// shutdown; bounds drain latency, not connection lifetime.
    pub read_timeout: Duration,
    /// Per-frame byte cap (a line longer than this fails the request).
    pub max_frame_bytes: usize,
    /// Base `retry_after_ms` hint carried by `overloaded` rejections —
    /// the wire value scales up with queue occupancy and observed queue
    /// wait (see [`scaled_retry_after_ms`]); this is the idle floor.
    pub retry_after_ms: u64,
    /// Result-cache directory; `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Fault injection: hold each admitted job for this long before
    /// executing it. Lets the robustness suite create deterministic
    /// back-pressure with fast jobs; `None` (the default) in production.
    pub worker_delay: Option<Duration>,
    /// Emit one JSON log line per request-lifecycle event to stderr
    /// (admission → queue → worker → cache → reply), each carrying the
    /// request id. Defaults to the `SPADE_LOG=json` environment setting;
    /// off otherwise. Logging is pure observation — response bytes are
    /// identical either way.
    pub log_json: bool,
    /// Trained cost-model file ([`crate::model::CostModel::save`]
    /// format) backing the `advise` request's model tier. `None` — and
    /// any file that fails to load or validate — falls back to the
    /// structural heuristic: a missing or corrupt model degrades advice
    /// quality, never availability.
    pub model_path: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: parallel::num_threads(),
            queue_capacity: 32,
            max_connections: 32,
            // Orders of magnitude above any suite run (the full-scale
            // sweeps finish in millions of cycles): a safety ceiling, not
            // a tuning knob.
            default_deadline_cycles: Some(4_000_000_000),
            read_timeout: Duration::from_millis(500),
            max_frame_bytes: MAX_FRAME_BYTES,
            retry_after_ms: 100,
            cache_dir: None,
            worker_delay: None,
            log_json: std::env::var("SPADE_LOG").is_ok_and(|v| v == "json"),
            model_path: None,
        }
    }
}

/// What the daemon did over its lifetime, returned by [`Service::run`]
/// after a graceful shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Requests answered successfully (cached or fresh).
    pub served_ok: u64,
    /// Requests that failed (bad input, deadline, simulation error).
    pub served_err: u64,
    /// Requests rejected with back-pressure because the queue was full.
    pub rejected_overload: u64,
    /// Frames that could not be parsed as a request.
    pub bad_frames: u64,
    /// Connections accepted over the lifetime.
    pub connections: u64,
    /// Result-cache statistics, when a cache was configured.
    pub cache: Option<CacheStats>,
    /// The full metrics registry at shutdown — lifetime request counts
    /// per kind/outcome and the latency histograms (queue wait,
    /// execution wall time, simulated cycles), so a drained daemon
    /// reports its per-phase latency breakdown, not just totals.
    pub metrics: MetricsSnapshot,
}

impl ServiceSummary {
    /// The summary as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("served_ok", self.served_ok.into()),
            ("served_err", self.served_err.into()),
            ("rejected_overload", self.rejected_overload.into()),
            ("bad_frames", self.bad_frames.into()),
            ("connections", self.connections.into()),
            (
                "cache",
                match &self.cache {
                    Some(stats) => stats.to_json(),
                    None => JsonValue::Null,
                },
            ),
            ("metrics", self.metrics.to_json()),
        ])
    }
}

/// Shared daemon state: configuration, cache, counters, shutdown flag.
struct Inner {
    config: ServiceConfig,
    cache: Option<ResultCache>,
    /// Queryable catalog of what the cache holds (`Some` iff `cache`).
    dataset: Option<DatasetIndex>,
    /// Trained cost model for the `advise` request's model tier;
    /// `None` (cold or corrupt model file) falls back to the heuristic.
    model: Option<CostModel>,
    metrics: ServiceMetrics,
    shutdown: AtomicBool,
    queue_depth: AtomicUsize,
    in_flight: AtomicUsize,
    served_ok: AtomicU64,
    served_err: AtomicU64,
    rejected_overload: AtomicU64,
    bad_frames: AtomicU64,
    connections: AtomicU64,
    /// Monotonic request-id source: every parsed frame gets the next id,
    /// threading one identity through its log span from admission to
    /// reply.
    next_rid: AtomicU64,
    /// Stores committed since the last `index.json` flush — the
    /// debounce counter behind [`maybe_flush_index`].
    index_dirty: AtomicU64,
    started: Instant,
}

impl Inner {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || termination_signal_received()
    }

    /// The current `retry_after_ms` hint: the configured base scaled by
    /// queue occupancy and the mean observed queue wait.
    fn retry_after_hint(&self) -> u64 {
        let wait = &self.metrics.queue_wait_us;
        let mean_wait_us = wait.sum().checked_div(wait.count()).unwrap_or(0);
        scaled_retry_after_ms(
            self.config.retry_after_ms,
            self.queue_depth.load(Ordering::Relaxed),
            self.config.queue_capacity,
            mean_wait_us,
        )
    }
}

/// A clonable handle for requesting shutdown from another thread (tests,
/// signal bridges). The daemon also honors SIGTERM/SIGINT directly once
/// [`install_termination_handler`] has run.
#[derive(Clone)]
pub struct ServiceHandle(Arc<Inner>);

impl ServiceHandle {
    /// Asks the daemon to stop accepting, drain, and return.
    pub fn request_shutdown(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether the daemon is draining.
    pub fn is_shutting_down(&self) -> bool {
        self.0.shutting_down()
    }
}

/// One admitted request, queued for a worker.
struct WorkItem {
    /// Request id, threading the log span from admission to reply.
    rid: u64,
    /// Command name, for the worker's span events.
    cmd: &'static str,
    kind: WorkKind,
    /// Cache key to store the result under (`None`: don't persist).
    store_key: Option<String>,
    /// When the item entered the queue — the queue-wait histogram
    /// measures from here to worker pickup.
    enqueued: Instant,
    reply: SyncSender<Result<String, (String, String)>>,
}

enum WorkKind {
    Run {
        job: Box<Job>,
        benchmark: String,
        kernel: Primitive,
        k: usize,
        pes: usize,
    },
    Search {
        benchmark: String,
        jobs: Vec<Job>,
        plans: Vec<ExecutionPlan>,
        k: usize,
        pes: usize,
    },
    /// Filter the cache catalog. Query rides the same admission queue
    /// as simulations — it holds the catalog lock and renders up to
    /// `limit` entries, so it gets the same back-pressure contract.
    Query { filter: QueryFilter },
    /// Run (or cache-serve) one traced job and return the Chrome-trace
    /// document inline in the result.
    Trace {
        job: Box<Job>,
        benchmark: String,
        kernel: Primitive,
        k: usize,
        pes: usize,
        window: u64,
    },
}

/// The daemon: bind, then [`Service::run`] until shutdown.
pub struct Service {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Service {
    /// Binds the service (use port `0` to let the OS pick) and opens the
    /// result cache when one is configured.
    ///
    /// # Errors
    ///
    /// Fails if the address can't be bound or the cache directory can't
    /// be created.
    pub fn bind(addr: &str, config: ServiceConfig) -> io::Result<Service> {
        let listener = TcpListener::bind(addr)?;
        let cache = match &config.cache_dir {
            Some(dir) => Some(ResultCache::open(dir)?),
            None => None,
        };
        let dataset = cache.as_ref().map(DatasetIndex::load);
        // A model that fails to load is a warning, not a bind failure:
        // the advise tiers below the model keep the request available.
        let model = config
            .model_path
            .as_ref()
            .and_then(|path| match CostModel::load(path) {
                Ok(m) => Some(m),
                Err(e) => {
                    eprintln!(
                        "spade-serve: cost model {} unusable ({e}); \
                         advise falls back to the heuristic",
                        path.display()
                    );
                    None
                }
            });
        Ok(Service {
            listener,
            inner: Arc::new(Inner {
                config,
                cache,
                dataset,
                model,
                metrics: ServiceMetrics::new(),
                shutdown: AtomicBool::new(false),
                queue_depth: AtomicUsize::new(0),
                in_flight: AtomicUsize::new(0),
                served_ok: AtomicU64::new(0),
                served_err: AtomicU64::new(0),
                rejected_overload: AtomicU64::new(0),
                bad_frames: AtomicU64::new(0),
                connections: AtomicU64::new(0),
                next_rid: AtomicU64::new(0),
                index_dirty: AtomicU64::new(0),
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (useful with port `0`).
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has no local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle usable from other threads.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle(Arc::clone(&self.inner))
    }

    /// Serves until shutdown is requested (in-band `shutdown`, a
    /// [`ServiceHandle`], or SIGTERM/SIGINT after
    /// [`install_termination_handler`]), then drains in-flight work,
    /// flushes the cache index and returns the lifetime summary.
    ///
    /// # Errors
    ///
    /// Fails only on listener/worker setup; per-request failures are
    /// answered in-protocol and never abort the daemon.
    pub fn run(self) -> io::Result<ServiceSummary> {
        let inner = self.inner;
        self.listener.set_nonblocking(true)?;
        let (work_tx, work_rx) = mpsc::sync_channel::<WorkItem>(inner.config.queue_capacity);
        let work_rx = Arc::new(Mutex::new(work_rx));
        let mut workers = Vec::new();
        for i in 0..inner.config.workers.max(1) {
            let inner = Arc::clone(&inner);
            let rx = Arc::clone(&work_rx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("spade-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner, &rx))?,
            );
        }
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !inner.shutting_down() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    handlers.retain(|h| !h.is_finished());
                    inner.connections.fetch_add(1, Ordering::Relaxed);
                    if handlers.len() >= inner.config.max_connections {
                        refuse_connection(&inner, stream);
                        continue;
                    }
                    let inner = Arc::clone(&inner);
                    let tx = work_tx.clone();
                    let h = std::thread::Builder::new()
                        .name("spade-serve-conn".into())
                        .spawn(move || handle_connection(&inner, &tx, stream))?;
                    handlers.push(h);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        // Drain: handlers notice the shutdown flag within one read
        // timeout and close their connections (after answering anything
        // already in flight); then the queue sender drops and the workers
        // finish whatever was admitted and exit.
        for h in handlers {
            let _ = h.join();
        }
        drop(work_tx);
        for w in workers {
            let _ = w.join();
        }
        if let Some(cache) = &inner.cache {
            let dataset = inner.dataset.as_ref().map(DatasetIndex::to_json);
            if let Err(e) = cache.flush_index_with(dataset) {
                eprintln!("spade-serve: cache index flush failed: {e}");
            }
        }
        Ok(ServiceSummary {
            served_ok: inner.served_ok.load(Ordering::Relaxed),
            served_err: inner.served_err.load(Ordering::Relaxed),
            rejected_overload: inner.rejected_overload.load(Ordering::Relaxed),
            bad_frames: inner.bad_frames.load(Ordering::Relaxed),
            connections: inner.connections.load(Ordering::Relaxed),
            cache: inner.cache.as_ref().map(ResultCache::stats),
            metrics: metrics_snapshot(&inner),
        })
    }
}

/// Over-capacity connections get one structured rejection, then close —
/// the same back-pressure contract as a full queue.
fn refuse_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    inner.rejected_overload.fetch_add(1, Ordering::Relaxed);
    let resp = error_response(
        None,
        None,
        "overloaded",
        "connection limit reached",
        Some(inner.retry_after_hint()),
    );
    let _ = stream.write_all(resp.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// One connection: read frames, answer each, until EOF / fatal frame
/// error / shutdown. Per-request failures answer in-protocol and keep
/// the connection; only sync-destroying conditions (oversized frame,
/// mid-frame EOF, socket errors) close it.
fn handle_connection(inner: &Arc<Inner>, work_tx: &SyncSender<WorkItem>, stream: TcpStream) {
    // Accepted sockets can inherit the listener's non-blocking mode on
    // some platforms; force blocking-with-timeout explicitly.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut frames = FrameReader::with_max_frame(stream, inner.config.max_frame_bytes);
    loop {
        if inner.shutting_down() {
            let _ = respond(
                &mut writer,
                &error_response(None, None, "shutting_down", "daemon is draining", None),
            );
            return;
        }
        match frames.next_frame() {
            Ok(Some(frame)) => {
                if frame.iter().all(u8::is_ascii_whitespace) {
                    continue;
                }
                if !process_frame(inner, work_tx, &mut writer, &frame) {
                    return;
                }
            }
            Ok(None) => return, // clean EOF
            Err(FrameError::TooLong { limit }) => {
                // The rest of the oversized line is unread: framing is
                // lost, so answer once and drop the connection.
                inner.bad_frames.fetch_add(1, Ordering::Relaxed);
                let _ = respond(
                    &mut writer,
                    &error_response(
                        None,
                        None,
                        "bad_request",
                        &format!("frame exceeds {limit} bytes"),
                        None,
                    ),
                );
                return;
            }
            Err(FrameError::Truncated { .. }) => {
                // Client died mid-line; nobody is listening for a reply.
                inner.bad_frames.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle tick: loop to re-check the shutdown flag.
                continue;
            }
            Err(FrameError::Io(_)) => return,
        }
    }
}

/// Handles one well-framed request line. Returns `false` when the
/// connection should close (write failure).
fn process_frame(
    inner: &Arc<Inner>,
    work_tx: &SyncSender<WorkItem>,
    writer: &mut TcpStream,
    frame: &[u8],
) -> bool {
    let rid = inner.next_rid.fetch_add(1, Ordering::Relaxed) + 1;
    let received = Instant::now();
    let (id, parsed) = match parse_request(frame, inner.config.default_deadline_cycles) {
        Ok(p) => p,
        Err(message) => {
            inner.bad_frames.fetch_add(1, Ordering::Relaxed);
            log_event(
                inner,
                rid,
                "bad_frame",
                &[("message", message.as_str().into())],
            );
            return respond(
                writer,
                &error_response(None, None, "bad_request", &message, None),
            );
        }
    };
    let cmd_name = match &parsed {
        Request::Ping => "ping",
        Request::Status => "status",
        Request::Metrics => "metrics",
        Request::Shutdown => "shutdown",
        Request::Work { cmd, .. } => cmd,
        Request::Batch { .. } => "batch",
        Request::Advise { .. } => "advise",
    };
    log_event(inner, rid, "request", &[("cmd", cmd_name.into())]);
    let (response, ok) = match parsed {
        Request::Ping => (
            JsonValue::object([
                ("ok", true.into()),
                ("cmd", "ping".into()),
                ("protocol", PROTOCOL_VERSION.into()),
            ])
            .render(),
            true,
        ),
        Request::Status => (status_response(inner).render(), true),
        Request::Metrics => {
            // Answered on the connection thread, like status: a scrape
            // must work even when every worker is busy.
            let mut fields = vec![
                ("ok", JsonValue::from(true)),
                ("cmd", "metrics".into()),
                ("protocol", PROTOCOL_VERSION.into()),
            ];
            if let Some(id) = &id {
                fields.push(("id", id.clone()));
            }
            fields.push(("result", metrics_snapshot(inner).to_json()));
            (JsonValue::object(fields).render(), true)
        }
        Request::Shutdown => {
            inner.shutdown.store(true, Ordering::SeqCst);
            (
                JsonValue::object([
                    ("ok", true.into()),
                    ("cmd", "shutdown".into()),
                    ("draining", true.into()),
                ])
                .render(),
                true,
            )
        }
        Request::Work {
            cmd,
            kind,
            cache_key,
        } => work_response(inner, work_tx, rid, id.as_ref(), cmd, kind, cache_key),
        Request::Batch { jobs } => batch_response(inner, work_tx, rid, id.as_ref(), jobs),
        Request::Advise {
            benchmark,
            scale,
            k,
            pes,
        } => advise_response(inner, id.as_ref(), benchmark, scale, k, pes),
    };
    inner.metrics.count_request(cmd_name, ok);
    log_event(
        inner,
        rid,
        "reply",
        &[
            ("cmd", cmd_name.into()),
            ("ok", ok.into()),
            ("total_us", (received.elapsed().as_micros() as u64).into()),
        ],
    );
    respond(writer, &response)
}

/// Answers one `run`/`search`/`query`/`trace` request: cache probe on
/// the connection thread, then the bounded admission queue. Returns the
/// response line and whether it reports success.
fn work_response(
    inner: &Arc<Inner>,
    work_tx: &SyncSender<WorkItem>,
    rid: u64,
    id: Option<&JsonValue>,
    cmd: &'static str,
    kind: WorkKind,
    cache_key: Option<String>,
) -> (String, bool) {
    // Cache probe happens on the connection thread: a hit never
    // takes a queue slot and replies in microseconds.
    if let (Some(cache), Some(key)) = (inner.cache.as_ref(), cache_key.as_deref()) {
        if let Some(payload) = cache.get(key) {
            if let Ok(result) = String::from_utf8(payload) {
                inner.served_ok.fetch_add(1, Ordering::Relaxed);
                log_event(inner, rid, "cache_hit", &[("key", key.into())]);
                return (ok_envelope(cmd, id, true, Some(key), &result), true);
            }
        }
    }
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let item = WorkItem {
        rid,
        cmd,
        kind,
        store_key: cache_key.clone(),
        enqueued: Instant::now(),
        reply: reply_tx,
    };
    // The queue slot is counted *before* try_send: the worker may pull
    // the item (and decrement) the instant the send lands, so counting
    // afterwards could transiently wrap the depth below zero.
    let depth = inner.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
    match work_tx.try_send(item) {
        Err(TrySendError::Full(_)) => {
            inner.queue_depth.fetch_sub(1, Ordering::Relaxed);
            inner.rejected_overload.fetch_add(1, Ordering::Relaxed);
            (
                error_response(
                    id,
                    Some(cmd),
                    "overloaded",
                    &format!(
                        "admission queue is full ({} slots)",
                        inner.config.queue_capacity
                    ),
                    Some(inner.retry_after_hint()),
                ),
                false,
            )
        }
        Err(TrySendError::Disconnected(_)) => {
            inner.queue_depth.fetch_sub(1, Ordering::Relaxed);
            (
                error_response(id, Some(cmd), "shutting_down", "daemon is draining", None),
                false,
            )
        }
        Ok(()) => {
            log_event(inner, rid, "enqueue", &[("depth", depth.into())]);
            match reply_rx.recv() {
                Ok(Ok(result)) => {
                    inner.served_ok.fetch_add(1, Ordering::Relaxed);
                    (
                        ok_envelope(cmd, id, false, cache_key.as_deref(), &result),
                        true,
                    )
                }
                Ok(Err((kind, message))) => {
                    inner.served_err.fetch_add(1, Ordering::Relaxed);
                    if kind == "deadline_exceeded" {
                        inner.metrics.deadline_kills.inc();
                    }
                    (error_response(id, Some(cmd), &kind, &message, None), false)
                }
                Err(_) => {
                    inner.served_err.fetch_add(1, Ordering::Relaxed);
                    (
                        error_response(
                            id,
                            Some(cmd),
                            "internal",
                            "worker dropped the request",
                            None,
                        ),
                        false,
                    )
                }
            }
        }
    }
}

/// Answers one `advise` request on the connection thread: generate the
/// matrix, run the three-tier advisor with whatever model the daemon
/// loaded at bind time, and report the selected plan with its tier and
/// selection latency. Never touches the admission queue — plan advice
/// stays available even when every simulation worker is busy.
fn advise_response(
    inner: &Arc<Inner>,
    id: Option<&JsonValue>,
    benchmark: Benchmark,
    scale: Scale,
    k: usize,
    pes: usize,
) -> (String, bool) {
    let a = benchmark.generate(scale);
    let config = SystemConfig::scaled(pes);
    let ranker = inner
        .model
        .as_ref()
        .map(|m| m as &dyn spade_core::advisor::PlanRanker);
    // The timer starts after matrix generation: the histogram measures
    // plan *selection*, the thing the cost model accelerates.
    let started = Instant::now();
    match advise_tiered(&a, k, &config, ranker) {
        Ok(advice) => {
            let latency_us = started.elapsed().as_micros() as u64;
            inner
                .metrics
                .count_advise(advice.source.as_str(), latency_us);
            inner.served_ok.fetch_add(1, Ordering::Relaxed);
            let mut fields = vec![
                ("ok", JsonValue::from(true)),
                ("cmd", "advise".into()),
                ("protocol", PROTOCOL_VERSION.into()),
            ];
            if let Some(id) = id {
                fields.push(("id", id.clone()));
            }
            fields.push((
                "result",
                JsonValue::object([
                    ("benchmark", benchmark.short_name().into()),
                    ("k", k.into()),
                    ("pes", pes.into()),
                    ("source", advice.source.as_str().into()),
                    ("plan", plan_json(&advice.plan)),
                    (
                        "predicted_cycles",
                        advice
                            .predicted_cycles
                            .map_or(JsonValue::Null, JsonValue::from),
                    ),
                    ("latency_us", latency_us.into()),
                ]),
            ));
            (JsonValue::object(fields).render(), true)
        }
        Err(e) => {
            inner.served_err.fetch_add(1, Ordering::Relaxed);
            let message = e.to_string();
            (
                error_response(id, Some("advise"), error_kind(&message), &message, None),
                false,
            )
        }
    }
}

/// One rendered per-job object inside a batch reply: success, with the
/// result bytes spliced verbatim like [`ok_envelope`] — a batch job's
/// payload is byte-identical to the standalone request's.
fn batch_job_ok(index: usize, cached: bool, key: Option<&str>, result: &str) -> String {
    let mut s = String::with_capacity(result.len() + 96);
    s.push_str("{\"index\":");
    s.push_str(&index.to_string());
    s.push_str(",\"ok\":true,\"cached\":");
    s.push_str(if cached { "true" } else { "false" });
    if let Some(key) = key {
        s.push_str(",\"key\":\"");
        s.push_str(key);
        s.push('"');
    }
    s.push_str(",\"result\":");
    s.push_str(result);
    s.push('}');
    s
}

/// One rendered per-job failure inside a batch reply, mirroring the
/// standalone error envelope's `error` object.
fn batch_job_error(index: usize, kind: &str, message: &str, retry_after_ms: Option<u64>) -> String {
    let mut fields = vec![
        ("index", JsonValue::from(index)),
        ("ok", false.into()),
        (
            "error",
            JsonValue::object([("kind", kind.into()), ("message", message.into())]),
        ),
    ];
    if let Some(ms) = retry_after_ms {
        fields.push(("retry_after_ms", ms.into()));
    }
    JsonValue::object(fields).render()
}

/// A batch slot between admission and collection.
enum BatchSlot {
    /// Answered on the connection thread (cache hit, rejection, or a
    /// malformed job spec).
    Done {
        rendered: String,
        outcome: &'static str,
    },
    /// Admitted; the worker's reply arrives on `rx`.
    Pending {
        rx: Receiver<Result<String, (String, String)>>,
        cache_key: Option<String>,
    },
}

/// Answers one `batch` request: every job probes the cache on the
/// connection thread, misses are enqueued one by one through the same
/// bounded admission queue as standalone requests, and replies are
/// collected in job order. Admission is per job — when the queue fills
/// mid-batch the jobs that fit keep running and the rest are rejected
/// with `overloaded` + the load-scaled retry hint; a failing job
/// (deadline, simulation error, malformed spec) fails only its slot.
/// The batch envelope itself is `ok:true` whenever the request parsed;
/// per-job outcomes and the summary counts tell the rest.
fn batch_response(
    inner: &Arc<Inner>,
    work_tx: &SyncSender<WorkItem>,
    rid: u64,
    id: Option<&JsonValue>,
    jobs: Vec<Result<RunSpec, String>>,
) -> (String, bool) {
    let total = jobs.len();
    log_event(inner, rid, "batch", &[("jobs", total.into())]);
    let mut slots = Vec::with_capacity(total);
    for (index, spec) in jobs.into_iter().enumerate() {
        let spec = match spec {
            Ok(spec) => spec,
            Err(message) => {
                slots.push(BatchSlot::Done {
                    rendered: batch_job_error(index, "bad_request", &message, None),
                    outcome: "error",
                });
                continue;
            }
        };
        if let (Some(cache), Some(key)) = (inner.cache.as_ref(), spec.cache_key.as_deref()) {
            if let Some(payload) = cache.get(key) {
                if let Ok(result) = String::from_utf8(payload) {
                    inner.served_ok.fetch_add(1, Ordering::Relaxed);
                    log_event(
                        inner,
                        rid,
                        "batch_cache_hit",
                        &[("index", index.into()), ("key", key.into())],
                    );
                    slots.push(BatchSlot::Done {
                        rendered: batch_job_ok(index, true, Some(key), &result),
                        outcome: "cached",
                    });
                    continue;
                }
            }
        }
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let (kind, cache_key) = spec.into_work();
        let item = WorkItem {
            rid,
            cmd: "batch",
            kind,
            store_key: cache_key.clone(),
            enqueued: Instant::now(),
            reply: reply_tx,
        };
        // Same ordering rule as `work_response`: count the slot before
        // try_send so a racing worker can't underflow the depth.
        let depth = inner.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        match work_tx.try_send(item) {
            Err(TrySendError::Full(_)) => {
                inner.queue_depth.fetch_sub(1, Ordering::Relaxed);
                inner.rejected_overload.fetch_add(1, Ordering::Relaxed);
                slots.push(BatchSlot::Done {
                    rendered: batch_job_error(
                        index,
                        "overloaded",
                        &format!(
                            "admission queue is full ({} slots)",
                            inner.config.queue_capacity
                        ),
                        Some(inner.retry_after_hint()),
                    ),
                    outcome: "rejected",
                });
            }
            Err(TrySendError::Disconnected(_)) => {
                inner.queue_depth.fetch_sub(1, Ordering::Relaxed);
                slots.push(BatchSlot::Done {
                    rendered: batch_job_error(index, "shutting_down", "daemon is draining", None),
                    outcome: "error",
                });
            }
            Ok(()) => {
                log_event(
                    inner,
                    rid,
                    "batch_enqueue",
                    &[("index", index.into()), ("depth", depth.into())],
                );
                slots.push(BatchSlot::Pending {
                    rx: reply_rx,
                    cache_key,
                });
            }
        }
    }
    let (mut succeeded, mut cached, mut failed, mut rejected) = (0u64, 0u64, 0u64, 0u64);
    let mut rendered_jobs = Vec::with_capacity(total);
    for (index, slot) in slots.into_iter().enumerate() {
        let (rendered, outcome) = match slot {
            BatchSlot::Done { rendered, outcome } => (rendered, outcome),
            BatchSlot::Pending { rx, cache_key } => match rx.recv() {
                Ok(Ok(result)) => {
                    inner.served_ok.fetch_add(1, Ordering::Relaxed);
                    (
                        batch_job_ok(index, false, cache_key.as_deref(), &result),
                        "ok",
                    )
                }
                Ok(Err((kind, message))) => {
                    inner.served_err.fetch_add(1, Ordering::Relaxed);
                    if kind == "deadline_exceeded" {
                        inner.metrics.deadline_kills.inc();
                    }
                    (batch_job_error(index, &kind, &message, None), "error")
                }
                Err(_) => {
                    inner.served_err.fetch_add(1, Ordering::Relaxed);
                    (
                        batch_job_error(index, "internal", "worker dropped the job", None),
                        "error",
                    )
                }
            },
        };
        inner.metrics.count_batch_job(outcome);
        match outcome {
            "ok" => succeeded += 1,
            "cached" => {
                succeeded += 1;
                cached += 1;
            }
            "rejected" => rejected += 1,
            _ => failed += 1,
        }
        rendered_jobs.push(rendered);
    }
    let mut s = String::with_capacity(rendered_jobs.iter().map(String::len).sum::<usize>() + 192);
    s.push_str("{\"ok\":true,\"cmd\":\"batch\"");
    if let Some(id) = id {
        s.push_str(",\"id\":");
        s.push_str(&id.render());
    }
    s.push_str(&format!(
        ",\"result\":{{\"total\":{total},\"succeeded\":{succeeded},\"cached\":{cached},\
         \"failed\":{failed},\"rejected\":{rejected},\"jobs\":["
    ));
    s.push_str(&rendered_jobs.join(","));
    s.push_str("]}}");
    (s, true)
}

fn respond(writer: &mut TcpStream, line: &str) -> bool {
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .is_ok()
}

fn status_response(inner: &Arc<Inner>) -> JsonValue {
    JsonValue::object([
        ("ok", true.into()),
        ("cmd", "status".into()),
        ("protocol", PROTOCOL_VERSION.into()),
        (
            "uptime_ms",
            (inner.started.elapsed().as_millis() as u64).into(),
        ),
        (
            "queue_depth",
            inner.queue_depth.load(Ordering::Relaxed).into(),
        ),
        ("queue_capacity", inner.config.queue_capacity.into()),
        ("in_flight", inner.in_flight.load(Ordering::Relaxed).into()),
        ("workers", inner.config.workers.into()),
        ("served_ok", inner.served_ok.load(Ordering::Relaxed).into()),
        (
            "served_err",
            inner.served_err.load(Ordering::Relaxed).into(),
        ),
        (
            "rejected_overload",
            inner.rejected_overload.load(Ordering::Relaxed).into(),
        ),
        (
            "bad_frames",
            inner.bad_frames.load(Ordering::Relaxed).into(),
        ),
        (
            "connections",
            inner.connections.load(Ordering::Relaxed).into(),
        ),
        (
            "cache",
            match &inner.cache {
                Some(cache) => {
                    let mut stats = cache.stats().to_json();
                    if let JsonValue::Object(fields) = &mut stats {
                        fields.push(("entries".into(), cache.len().into()));
                    }
                    stats
                }
                None => JsonValue::Null,
            },
        ),
        ("shutting_down", inner.shutting_down().into()),
    ])
}

/// `{"ok":true,...,"result":<result>}` with the cached/fresh result
/// bytes embedded verbatim — the envelope is built by splicing, so a
/// cache hit serves exactly the bytes a fresh run produced.
fn ok_envelope(
    cmd: &str,
    id: Option<&JsonValue>,
    cached: bool,
    key: Option<&str>,
    result: &str,
) -> String {
    let mut s = String::with_capacity(result.len() + 96);
    s.push_str("{\"ok\":true,\"cmd\":\"");
    s.push_str(cmd);
    s.push('"');
    if let Some(id) = id {
        s.push_str(",\"id\":");
        s.push_str(&id.render());
    }
    s.push_str(",\"cached\":");
    s.push_str(if cached { "true" } else { "false" });
    if let Some(key) = key {
        s.push_str(",\"key\":\"");
        s.push_str(key);
        s.push('"');
    }
    s.push_str(",\"result\":");
    s.push_str(result);
    s.push('}');
    s
}

fn error_response(
    id: Option<&JsonValue>,
    cmd: Option<&str>,
    kind: &str,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut fields = vec![("ok", JsonValue::from(false))];
    if let Some(cmd) = cmd {
        fields.push(("cmd", cmd.into()));
    }
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    fields.push((
        "error",
        JsonValue::object([("kind", kind.into()), ("message", message.into())]),
    ));
    if let Some(ms) = retry_after_ms {
        fields.push(("retry_after_ms", ms.into()));
    }
    JsonValue::object(fields).render()
}

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

enum Request {
    Ping,
    Status,
    Metrics,
    Shutdown,
    Work {
        cmd: &'static str,
        kind: WorkKind,
        cache_key: Option<String>,
    },
    /// A sweep: many `run`-shaped jobs answered in one reply. Each slot
    /// is either a parsed job or the `bad_request` message that job spec
    /// earned — a malformed job fails only its own slot, in keeping with
    /// the per-job containment contract.
    Batch {
        jobs: Vec<Result<RunSpec, String>>,
    },
    /// Millisecond plan selection for one (benchmark, scale, k, pes):
    /// the three-tier advisor, answered on the connection thread — never
    /// a simulation worker, so advice stays available under full load.
    Advise {
        benchmark: Benchmark,
        scale: Scale,
        k: usize,
        pes: usize,
    },
}

/// Parses one frame into a request, applying the same validation the CLI
/// flags get — every reject happens before any simulation work starts.
fn parse_request(
    frame: &[u8],
    default_deadline: Option<Cycle>,
) -> Result<(Option<JsonValue>, Request), String> {
    let text = std::str::from_utf8(frame).map_err(|_| "frame is not UTF-8".to_string())?;
    let doc = JsonValue::parse(text).map_err(|e| format!("frame is not valid JSON: {e}"))?;
    if doc.get("cmd").is_none() {
        return Err("request must be an object with a \"cmd\" field".into());
    }
    let cmd = doc
        .get("cmd")
        .and_then(JsonValue::as_str)
        .ok_or("\"cmd\" must be a string")?;
    let id = doc.get("id").and_then(|v| match v {
        JsonValue::Str(_) | JsonValue::UInt(_) | JsonValue::Int(_) => Some(v.clone()),
        _ => None,
    });
    let req = match cmd {
        "ping" => Request::Ping,
        "status" => Request::Status,
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        "run" => parse_run(&doc, default_deadline)?,
        "search" => parse_search(&doc, default_deadline)?,
        "query" => parse_query(&doc)?,
        "trace" => parse_trace(&doc, default_deadline)?,
        "batch" => parse_batch(&doc, default_deadline)?,
        "advise" => Request::Advise {
            benchmark: parse_wire_benchmark(&doc)?,
            scale: parse_wire_scale(&doc)?,
            k: parse_wire_k(&doc)?,
            pes: parse_wire_pes(&doc)?,
        },
        other => return Err(format!("unknown cmd {other:?}")),
    };
    Ok((id, req))
}

fn field_str<'a>(doc: &'a JsonValue, key: &str, default: &'a str) -> Result<&'a str, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v.as_str().ok_or(format!("\"{key}\" must be a string")),
    }
}

fn field_u64(doc: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or(format!("\"{key}\" must be a non-negative integer")),
    }
}

fn field_bool(doc: &JsonValue, key: &str, default: bool) -> Result<bool, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v.as_bool().ok_or(format!("\"{key}\" must be a boolean")),
    }
}

fn parse_wire_scale(doc: &JsonValue) -> Result<Scale, String> {
    match field_str(doc, "scale", "tiny")? {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "default" => Ok(Scale::Default),
        "large" => Ok(Scale::Large),
        other => Err(format!("unknown scale {other:?}")),
    }
}

fn parse_wire_benchmark(doc: &JsonValue) -> Result<Benchmark, String> {
    let name = doc
        .get("benchmark")
        .and_then(JsonValue::as_str)
        .ok_or("\"benchmark\" is required")?;
    Benchmark::ALL
        .into_iter()
        .find(|b| b.short_name().eq_ignore_ascii_case(name))
        .ok_or(format!("unknown benchmark {name:?}"))
}

fn parse_wire_k(doc: &JsonValue) -> Result<usize, String> {
    let k = field_u64(doc, "k")?.unwrap_or(32) as usize;
    let line = spade_matrix::FLOATS_PER_LINE;
    if k == 0 || !k.is_multiple_of(line) {
        return Err(format!(
            "\"k\": {k} is not a multiple of the cache line ({line} floats)"
        ));
    }
    if k > MAX_REQUEST_K {
        return Err(format!(
            "\"k\": {k} exceeds the service limit {MAX_REQUEST_K}"
        ));
    }
    Ok(k)
}

fn parse_wire_pes(doc: &JsonValue) -> Result<usize, String> {
    let pes = field_u64(doc, "pes")?.unwrap_or(56) as usize;
    if pes == 0 || !pes.is_multiple_of(4) {
        return Err("\"pes\" must be a positive multiple of 4".into());
    }
    if pes > MAX_REQUEST_PES {
        return Err(format!(
            "\"pes\": {pes} exceeds the service limit {MAX_REQUEST_PES}"
        ));
    }
    Ok(pes)
}

fn parse_wire_kernel(doc: &JsonValue) -> Result<Primitive, String> {
    match field_str(doc, "kernel", "spmm")? {
        "spmm" => Ok(Primitive::Spmm),
        "sddmm" => Ok(Primitive::Sddmm),
        other => Err(format!("unknown kernel {other:?}")),
    }
}

/// The request deadline: explicit `deadline_cycles` wins, otherwise the
/// service default; an explicit `0` means "no deadline".
fn parse_wire_deadline(
    doc: &JsonValue,
    config_default: Option<Cycle>,
) -> Result<Option<Cycle>, String> {
    match field_u64(doc, "deadline_cycles")? {
        Some(0) => Ok(None),
        Some(d) => Ok(Some(d)),
        None => Ok(config_default),
    }
}

fn parse_wire_plan(doc: &JsonValue, a: &spade_matrix::Coo) -> Result<ExecutionPlan, String> {
    let mut plan = ExecutionPlan::spmm_base(a).map_err(|e| e.to_string())?;
    let mut rp = plan.tiling.row_panel_size;
    let mut cp = plan.tiling.col_panel_size;
    if let Some(v) = field_u64(doc, "rp")? {
        rp = v as usize;
    }
    match doc.get("cp") {
        None => {}
        Some(v) if v.as_str() == Some("all") => cp = a.num_cols().max(1),
        Some(v) => {
            cp = v.as_u64().ok_or("\"cp\" must be an integer or \"all\"")? as usize;
        }
    }
    plan.tiling = spade_matrix::TilingConfig::new(rp, cp).map_err(|e| e.to_string())?;
    plan.r_policy = match field_str(doc, "rmatrix", "cache")? {
        "cache" => RMatrixPolicy::Cache,
        "bypass" => RMatrixPolicy::Bypass,
        "victim" => RMatrixPolicy::BypassVictim,
        other => return Err(format!("unknown rmatrix policy {other:?}")),
    };
    plan.c_policy = CMatrixPolicy::Cache;
    if field_bool(doc, "barriers", false)? {
        plan.barriers = BarrierPolicy::per_column_panel();
    }
    Ok(plan)
}

/// One parsed `run`-shaped job: the standalone `run` request and every
/// `batch` slot go through exactly this, so a batch job's cache key,
/// deadline resolution and rendered payload are byte-for-byte those of
/// the equivalent individual request.
struct RunSpec {
    job: Box<Job>,
    benchmark: String,
    kernel: Primitive,
    k: usize,
    pes: usize,
    cache_key: Option<String>,
}

impl RunSpec {
    fn into_work(self) -> (WorkKind, Option<String>) {
        (
            WorkKind::Run {
                job: self.job,
                benchmark: self.benchmark,
                kernel: self.kernel,
                k: self.k,
                pes: self.pes,
            },
            self.cache_key,
        )
    }
}

/// Parses one `run`-shaped document. `workloads` memoizes prepared
/// workloads across the jobs of a batch — a sweep over pes × plans
/// re-uses one matrix preparation per (benchmark, scale, k) instead of
/// preparing it per job; a standalone `run` passes an empty map.
fn parse_run_spec(
    doc: &JsonValue,
    default_deadline: Option<Cycle>,
    workloads: &mut BTreeMap<String, Arc<Workload>>,
) -> Result<RunSpec, String> {
    let bench = parse_wire_benchmark(doc)?;
    let scale = parse_wire_scale(doc)?;
    let k = parse_wire_k(doc)?;
    let pes = parse_wire_pes(doc)?;
    let kernel = parse_wire_kernel(doc)?;
    let deadline = parse_wire_deadline(doc, default_deadline)?;
    let no_cache = field_bool(doc, "no_cache", false)?;
    let workload = Arc::clone(
        workloads
            .entry(format!("{}/{:?}/{k}", bench.short_name(), scale))
            .or_insert_with(|| Arc::new(Workload::prepare(bench, scale, k))),
    );
    let plan = parse_wire_plan(doc, &workload.a)?;
    let config = Arc::new(SystemConfig::scaled(pes));
    // The deadline is resolved at admission (per-request field or the
    // service default), so it lands in the job — and therefore in the
    // cache key — before the cache probe.
    let job = Job::new(&workload, &config, kernel, plan).with_deadline_cycles(deadline);
    let cache_key = (!no_cache).then(|| job.cache_key());
    Ok(RunSpec {
        job: Box::new(job),
        benchmark: bench.short_name().to_string(),
        kernel,
        k,
        pes,
        cache_key,
    })
}

fn parse_run(doc: &JsonValue, default_deadline: Option<Cycle>) -> Result<Request, String> {
    let spec = parse_run_spec(doc, default_deadline, &mut BTreeMap::new())?;
    let cache_key = spec.cache_key.clone();
    let (kind, _) = spec.into_work();
    Ok(Request::Work {
        cmd: "run",
        cache_key,
        kind,
    })
}

/// Fields a batch request may set once for every job (anything but the
/// envelope and the job list itself): per-job fields win, batch-level
/// fields fill the gaps.
fn merged_job_doc(job: &JsonValue, batch: &JsonValue) -> Result<JsonValue, String> {
    let JsonValue::Object(job_fields) = job else {
        return Err("each batch job must be an object".into());
    };
    let mut fields = job_fields.clone();
    if let JsonValue::Object(batch_fields) = batch {
        for (key, value) in batch_fields {
            if matches!(key.as_str(), "cmd" | "id" | "jobs" | "sweep") {
                continue;
            }
            if job.get(key).is_none() {
                fields.push((key.clone(), value.clone()));
            }
        }
    }
    Ok(JsonValue::Object(fields))
}

fn sweep_list<'a>(sweep: &'a JsonValue, key: &str) -> Result<Option<&'a [JsonValue]>, String> {
    match sweep.get(key) {
        None => Ok(None),
        Some(v) => {
            let items = v
                .as_array()
                .ok_or(format!("sweep \"{key}\" must be an array"))?;
            if items.is_empty() {
                return Err(format!("sweep \"{key}\" must not be empty"));
            }
            Ok(Some(items))
        }
    }
}

/// Expands a `sweep` template into per-job documents: the cross product
/// benchmarks × kernels × k × pes × plans, in exactly that nesting
/// order — the job order of the reply is a deterministic function of
/// the request.
fn expand_sweep(sweep: &JsonValue) -> Result<Vec<JsonValue>, String> {
    let benchmarks =
        sweep_list(sweep, "benchmarks")?.ok_or("sweep requires a \"benchmarks\" array")?;
    let default_kernels = [JsonValue::from("spmm")];
    let kernels = sweep_list(sweep, "kernels")?.unwrap_or(&default_kernels);
    let default_ks = [JsonValue::from(32u64)];
    let ks = sweep_list(sweep, "k")?.unwrap_or(&default_ks);
    let default_pes = [JsonValue::from(56u64)];
    let pes_list = sweep_list(sweep, "pes")?.unwrap_or(&default_pes);
    let default_plans = [JsonValue::object::<&str>([])];
    let plans = sweep_list(sweep, "plans")?.unwrap_or(&default_plans);
    let mut docs = Vec::new();
    for bench in benchmarks {
        for kernel in kernels {
            for k in ks {
                for pes in pes_list {
                    for plan in plans {
                        let JsonValue::Object(plan_fields) = plan else {
                            return Err("each sweep plan must be an object".into());
                        };
                        let mut fields: Vec<(String, JsonValue)> = vec![
                            ("benchmark".into(), bench.clone()),
                            ("kernel".into(), kernel.clone()),
                            ("k".into(), k.clone()),
                            ("pes".into(), pes.clone()),
                        ];
                        fields.extend(plan_fields.iter().cloned());
                        docs.push(JsonValue::Object(fields));
                    }
                }
            }
        }
    }
    Ok(docs)
}

/// Parses a `batch` request: an explicit `jobs` array or a `sweep`
/// template (exactly one of the two), every other top-level field acting
/// as a per-job default. Structural problems (no jobs, both forms, over
/// the cap) reject the request; a single malformed job spec only poisons
/// its own slot.
fn parse_batch(doc: &JsonValue, default_deadline: Option<Cycle>) -> Result<Request, String> {
    let job_docs = match (doc.get("jobs"), doc.get("sweep")) {
        (Some(_), Some(_)) => {
            return Err("\"jobs\" and \"sweep\" are mutually exclusive".into());
        }
        (None, None) => {
            return Err("batch requires a \"jobs\" array or a \"sweep\" template".into());
        }
        (Some(jobs), None) => {
            let items = jobs.as_array().ok_or("\"jobs\" must be an array")?;
            if items.is_empty() {
                return Err("\"jobs\" must not be empty".into());
            }
            items.to_vec()
        }
        (None, Some(sweep)) => expand_sweep(sweep)?,
    };
    if job_docs.len() > MAX_BATCH_JOBS {
        return Err(format!(
            "batch of {} jobs exceeds the service limit {MAX_BATCH_JOBS}",
            job_docs.len()
        ));
    }
    let mut workloads = BTreeMap::new();
    let jobs = job_docs
        .iter()
        .map(|job| {
            merged_job_doc(job, doc)
                .and_then(|merged| parse_run_spec(&merged, default_deadline, &mut workloads))
        })
        .collect();
    Ok(Request::Batch { jobs })
}

fn parse_search(doc: &JsonValue, default_deadline: Option<Cycle>) -> Result<Request, String> {
    let bench = parse_wire_benchmark(doc)?;
    let scale = parse_wire_scale(doc)?;
    let k = parse_wire_k(doc)?;
    let pes = parse_wire_pes(doc)?;
    let full = field_bool(doc, "full", false)?;
    let deadline = parse_wire_deadline(doc, default_deadline)?;
    let no_cache = field_bool(doc, "no_cache", false)?;
    let workload = Arc::new(Workload::prepare(bench, scale, k));
    let space = if full {
        PlanSearchSpace::table3(k)
    } else {
        PlanSearchSpace::quick(k)
    };
    let plans = space.enumerate(&workload.a);
    let config = Arc::new(SystemConfig::scaled(pes));
    let jobs: Vec<Job> = plans
        .iter()
        .map(|&plan| {
            Job::new(&workload, &config, Primitive::Spmm, plan).with_deadline_cycles(deadline)
        })
        .collect();
    let cache_key = (!no_cache).then(|| search_cache_key(&jobs));
    Ok(Request::Work {
        cmd: "search",
        cache_key,
        kind: WorkKind::Search {
            benchmark: bench.short_name().to_string(),
            jobs,
            plans,
            k,
            pes,
        },
    })
}

/// A search result is a pure function of its candidate set, so its key
/// is a digest over every candidate's content-addressed key (prefixed
/// `s` to keep run and search entries in distinct key spaces).
fn search_cache_key(jobs: &[Job]) -> String {
    let absorb = |h: &mut Fnv64| {
        h.write(b"search:v1");
        for job in jobs {
            h.write(job.cache_key().as_bytes());
        }
    };
    let mut lo = Fnv64::new();
    absorb(&mut lo);
    let mut hi = Fnv64::new();
    hi.write_u64(0x5eed_5eed_5eed_5eed);
    absorb(&mut hi);
    format!("s{:016x}{:016x}", lo.finish(), hi.finish())
}

/// A `trace` request is a `run` request with trace capture forced on
/// plus an optional telemetry `window` (cycles; default 256, `0`
/// disables the telemetry lane). Keyed by [`Job::trace_cache_key`], so
/// a repeated trace is a cache hit with byte-identical trace JSON.
fn parse_trace(doc: &JsonValue, default_deadline: Option<Cycle>) -> Result<Request, String> {
    let bench = parse_wire_benchmark(doc)?;
    let scale = parse_wire_scale(doc)?;
    let k = parse_wire_k(doc)?;
    let pes = parse_wire_pes(doc)?;
    let kernel = parse_wire_kernel(doc)?;
    let deadline = parse_wire_deadline(doc, default_deadline)?;
    let no_cache = field_bool(doc, "no_cache", false)?;
    let window = field_u64(doc, "window")?.unwrap_or(256);
    let workload = Arc::new(Workload::prepare(bench, scale, k));
    let plan = parse_wire_plan(doc, &workload.a)?;
    let config = Arc::new(SystemConfig::scaled(pes));
    let job = Job::new(&workload, &config, kernel, plan)
        .with_deadline_cycles(deadline)
        .with_telemetry((window > 0).then_some(window))
        .with_trace(true);
    let cache_key = (!no_cache).then(|| job.trace_cache_key());
    Ok(Request::Work {
        cmd: "trace",
        cache_key,
        kind: WorkKind::Trace {
            job: Box::new(job),
            benchmark: bench.short_name().to_string(),
            kernel,
            k,
            pes,
            window,
        },
    })
}

/// The catalog dimension a `query` aggregation groups on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupKey {
    /// Per matrix (the wire accepts `"benchmark"` or `"matrix"`).
    Benchmark,
    Kernel,
    Pes,
}

impl GroupKey {
    /// The group label for one catalog row.
    fn of(self, m: &EntryMeta) -> String {
        match self {
            GroupKey::Benchmark => m.benchmark.clone(),
            GroupKey::Kernel => m.kernel.clone(),
            GroupKey::Pes => m.pes.to_string(),
        }
    }

    fn name(self) -> &'static str {
        match self {
            GroupKey::Benchmark => "benchmark",
            GroupKey::Kernel => "kernel",
            GroupKey::Pes => "pes",
        }
    }
}

/// Filters a `query` request applies to the dataset catalog. Every
/// field is optional; an empty filter matches everything.
#[derive(Debug, Clone)]
struct QueryFilter {
    benchmark: Option<String>,
    kernel: Option<String>,
    kind: Option<String>,
    k: Option<u64>,
    pes: Option<u64>,
    min_cycles: Option<u64>,
    max_cycles: Option<u64>,
    limit: usize,
    /// `Some`: aggregate the matches into per-group projections instead
    /// of listing them (`limit` then caps the group list).
    group_by: Option<GroupKey>,
}

impl QueryFilter {
    fn matches(&self, m: &EntryMeta) -> bool {
        self.benchmark.as_deref().is_none_or(|b| b == m.benchmark)
            && self.kernel.as_deref().is_none_or(|kn| kn == m.kernel)
            && self.kind.as_deref().is_none_or(|kd| kd == m.kind)
            && self.k.is_none_or(|k| k == m.k)
            && self.pes.is_none_or(|p| p == m.pes)
            && self.min_cycles.is_none_or(|lo| m.cycles >= lo)
            && self.max_cycles.is_none_or(|hi| m.cycles <= hi)
    }
}

/// Validates a `query` request's filter fields — unknown benchmarks,
/// kernels and kinds are rejected here as `bad_request`, like every
/// other wire field.
fn parse_query(doc: &JsonValue) -> Result<Request, String> {
    let benchmark = match doc.get("benchmark") {
        None => None,
        Some(_) => Some(parse_wire_benchmark(doc)?.short_name().to_string()),
    };
    let kernel = match doc.get("kernel") {
        None => None,
        Some(_) => Some(parse_wire_kernel(doc)?.to_string().to_lowercase()),
    };
    let kind = match field_str(doc, "kind", "")? {
        "" => None,
        k @ ("run" | "search" | "trace") => Some(k.to_string()),
        other => return Err(format!("unknown entry kind {other:?}")),
    };
    // An explicit zero used to silently return no rows — ambiguous
    // enough (is it "no limit"?) that it is now rejected outright.
    // DESIGN.md §7.1 documents the choice.
    let limit = match field_u64(doc, "limit")? {
        Some(0) => {
            return Err(format!(
                "\"limit\": 0 would return no rows; omit the field for the default ({DEFAULT_QUERY_LIMIT}) or give a positive cap"
            ));
        }
        Some(n) => n as usize,
        None => DEFAULT_QUERY_LIMIT,
    };
    let group_by = match field_str(doc, "group_by", "")? {
        "" => None,
        "benchmark" | "matrix" => Some(GroupKey::Benchmark),
        "kernel" => Some(GroupKey::Kernel),
        "pes" => Some(GroupKey::Pes),
        other => {
            return Err(format!("unknown group_by {other:?} (benchmark|kernel|pes)"));
        }
    };
    Ok(Request::Work {
        cmd: "query",
        cache_key: None,
        kind: WorkKind::Query {
            filter: QueryFilter {
                benchmark,
                kernel,
                kind,
                k: field_u64(doc, "k")?,
                pes: field_u64(doc, "pes")?,
                min_cycles: field_u64(doc, "min_cycles")?,
                max_cycles: field_u64(doc, "max_cycles")?,
                limit,
                group_by,
            },
        },
    })
}

// ---------------------------------------------------------------------------
// Workers: simulation, result rendering, cache stores
// ---------------------------------------------------------------------------

/// One worker: pull admitted requests, simulate inside the
/// [`ParallelRunner`] panic guard, persist successes, reply. Exits when
/// the admission queue closes (shutdown drain).
fn worker_loop(inner: &Arc<Inner>, rx: &Arc<Mutex<Receiver<WorkItem>>>) {
    loop {
        let item = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        let Ok(item) = item else { return };
        inner.queue_depth.fetch_sub(1, Ordering::Relaxed);
        inner.in_flight.fetch_add(1, Ordering::Relaxed);
        let queue_wait_us = item.enqueued.elapsed().as_micros() as u64;
        inner.metrics.queue_wait_us.observe(queue_wait_us);
        log_event(
            inner,
            item.rid,
            "execute",
            &[
                ("cmd", item.cmd.into()),
                ("queue_wait_us", queue_wait_us.into()),
            ],
        );
        if let Some(delay) = inner.config.worker_delay {
            std::thread::sleep(delay);
        }
        let exec_start = Instant::now();
        let outcome = execute_work(inner, &item.kind);
        let exec_us = exec_start.elapsed().as_micros() as u64;
        inner.metrics.exec_us.observe(exec_us);
        log_event(
            inner,
            item.rid,
            "executed",
            &[("ok", outcome.is_ok().into()), ("exec_us", exec_us.into())],
        );
        if let (Ok(result), Some(cache), Some(key)) =
            (&outcome, inner.cache.as_ref(), item.store_key.as_deref())
        {
            if let Err(e) = cache.put(key, result.as_bytes()) {
                // A failed store costs persistence, not the request.
                eprintln!("spade-serve: cache store for {key} failed: {e}");
            } else {
                log_event(inner, item.rid, "store", &[("key", key.into())]);
                if let Some(dataset) = &inner.dataset {
                    dataset.insert_payload(key, result);
                }
                inner.index_dirty.fetch_add(1, Ordering::Relaxed);
                maybe_flush_index(inner);
            }
        }
        // The handler may have given up (connection died); a dead
        // receiver just drops the result.
        let _ = item.reply.send(outcome);
        inner.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Debounced `index.json` flush, called by workers after each committed
/// store. The index used to be written only on graceful drain, so a
/// SIGKILL'd daemon restarted with a permanently stale index and every
/// cold `query` re-decoded entry payloads. Now the catalog is persisted
/// during normal operation: immediately when the admission queue is
/// empty (sequential traffic — a result is on disk in the index before
/// its reply is sent), and every [`INDEX_FLUSH_EVERY`] stores under
/// sustained load. The write itself is the cache's atomic
/// temp-file+rename, so a crash mid-flush leaves the previous index.
fn maybe_flush_index(inner: &Arc<Inner>) {
    let (Some(cache), Some(dataset)) = (&inner.cache, &inner.dataset) else {
        return;
    };
    let dirty = inner.index_dirty.load(Ordering::Relaxed);
    if dirty == 0 {
        return;
    }
    if dirty < INDEX_FLUSH_EVERY && inner.queue_depth.load(Ordering::Relaxed) > 0 {
        return; // debounce: more work is queued, batch the stores up
    }
    if inner.index_dirty.swap(0, Ordering::Relaxed) == 0 {
        return; // another worker won the flush race
    }
    if let Err(e) = cache.flush_index_with(Some(dataset.to_json())) {
        // A failed flush costs index freshness, not correctness: the
        // entries are durable and the catalog rebuilds from them.
        eprintln!("spade-serve: cache index flush failed: {e}");
    }
}

/// Classifies a job failure into a protocol error kind: watchdog
/// cycle-ceiling trips are deadline errors, everything else (invalid
/// config, deadlock, gold divergence, contained panic) is `sim_failed`.
fn error_kind(message: &str) -> &'static str {
    if message.contains("cycle budget exceeded") {
        "deadline_exceeded"
    } else {
        "sim_failed"
    }
}

fn execute_work(inner: &Arc<Inner>, kind: &WorkKind) -> Result<String, (String, String)> {
    match kind {
        WorkKind::Run {
            job,
            benchmark,
            kernel,
            k,
            pes,
        } => {
            // A single-worker runner still wraps the job in the panic
            // guard with one retry — a crashing simulation fails this
            // request, never the worker thread.
            let mut outputs = ParallelRunner::new(1).run_outputs(std::slice::from_ref(job));
            match outputs.pop().expect("one job in, one result out") {
                Ok(output) => {
                    inner.metrics.sim_cycles.observe(output.report.cycles);
                    Ok(run_result_json(benchmark, *kernel, *k, *pes, &job.plan, &output).render())
                }
                Err(e) => Err((error_kind(&e.message).to_string(), e.to_string())),
            }
        }
        WorkKind::Trace {
            job,
            benchmark,
            kernel,
            k,
            pes,
            window,
        } => {
            let mut outputs = ParallelRunner::new(1).run_outputs(std::slice::from_ref(job));
            match outputs.pop().expect("one job in, one result out") {
                Ok(output) => {
                    inner.metrics.sim_cycles.observe(output.report.cycles);
                    let (chrome, events) = trace_document(&output, job.config.num_pes)
                        .map_err(|e| ("sim_failed".to_string(), e))?;
                    // Rendered like `ok_envelope`: head object rendered,
                    // then the Chrome JSON spliced in verbatim so the
                    // wire bytes equal the local `spade-cli trace` file.
                    let head = JsonValue::object([
                        ("benchmark", benchmark.as_str().into()),
                        ("kernel", kernel.to_string().into()),
                        ("k", (*k).into()),
                        ("pes", (*pes).into()),
                        ("window", (*window).into()),
                        ("events", events.into()),
                        ("plan", plan_json(&job.plan)),
                        ("report", canonical_report(&output.report).to_json()),
                    ]);
                    let mut s = head.render();
                    s.pop();
                    s.push_str(",\"trace\":");
                    s.push_str(&chrome);
                    s.push('}');
                    Ok(s)
                }
                Err(e) => Err((error_kind(&e.message).to_string(), e.to_string())),
            }
        }
        WorkKind::Query { filter } => match &inner.dataset {
            Some(dataset) => Ok(dataset.query(filter).render()),
            None => Err((
                "bad_request".to_string(),
                "daemon has no cache configured; nothing to query".to_string(),
            )),
        },
        WorkKind::Search {
            benchmark,
            jobs,
            plans,
            k,
            pes,
        } => {
            let outcomes = ParallelRunner::new(1).run_outputs(jobs);
            let mut failures = 0usize;
            let mut results: Vec<(&ExecutionPlan, JobOutput)> = Vec::with_capacity(plans.len());
            let mut last_error = String::new();
            for (plan, outcome) in plans.iter().zip(outcomes) {
                match outcome {
                    Ok(o) => {
                        inner.metrics.sim_cycles.observe(o.report.cycles);
                        results.push((plan, o));
                    }
                    Err(e) => {
                        failures += 1;
                        last_error = e.to_string();
                    }
                }
            }
            if results.is_empty() {
                return Err((
                    error_kind(&last_error).to_string(),
                    format!("all {failures} candidate plans failed (last: {last_error})"),
                ));
            }
            results.sort_by_key(|(_, o)| o.report.cycles);
            let candidates: Vec<JsonValue> = results
                .iter()
                .map(|(plan, o)| {
                    JsonValue::object([
                        ("plan", plan_json(plan)),
                        ("cycles", o.report.cycles.into()),
                        ("dram_accesses", o.report.dram_accesses.into()),
                        ("requests_per_cycle", o.report.requests_per_cycle.into()),
                    ])
                })
                .collect();
            Ok(JsonValue::object([
                ("benchmark", benchmark.as_str().into()),
                ("k", (*k).into()),
                ("pes", (*pes).into()),
                ("failures", failures.into()),
                ("candidates", JsonValue::Array(candidates)),
            ])
            .render())
        }
    }
}

/// An execution plan as a JSON object (same shape as the CLI's).
pub fn plan_json(p: &ExecutionPlan) -> JsonValue {
    JsonValue::object([
        ("row_panel_size", p.tiling.row_panel_size.into()),
        ("col_panel_size", p.tiling.col_panel_size.into()),
        ("r_policy", format!("{:?}", p.r_policy).into()),
        ("c_policy", format!("{:?}", p.c_policy).into()),
        ("barriers", p.barriers.is_enabled().into()),
    ])
}

/// A report with its host-execution fields normalized: wall-clock times
/// and shard layout describe the serving host, not the simulated
/// machine (they are already excluded from [`RunReport`] equality), so
/// the daemon zeroes them. This is what makes a cache hit byte-identical
/// to a fresh simulation of the same request.
pub fn canonical_report(report: &RunReport) -> RunReport {
    let mut canon = report.clone();
    canon.host_wall_ns = 0.0;
    canon.shards = 1;
    canon.shard_wall_ns = Vec::new();
    canon
}

fn run_result_json(
    benchmark: &str,
    kernel: Primitive,
    k: usize,
    pes: usize,
    plan: &ExecutionPlan,
    output: &JobOutput,
) -> JsonValue {
    JsonValue::object([
        ("benchmark", benchmark.into()),
        ("kernel", kernel.to_string().into()),
        ("k", k.into()),
        ("pes", pes.into()),
        ("plan", plan_json(plan)),
        ("report", canonical_report(&output.report).to_json()),
    ])
}

/// Builds the Chrome-trace JSON for a traced job output — the telemetry
/// series (when captured) merged in as its own lane above the PE lanes,
/// events sorted by time — and returns it with the event count. Both
/// `spade-cli trace` and the daemon's `trace` request go through here,
/// so a wire-served trace is byte-identical to the locally written file
/// by construction.
///
/// # Errors
///
/// Fails when the job did not actually capture a trace.
pub fn trace_document(output: &JobOutput, num_pes: usize) -> Result<(String, usize), String> {
    let mut trace = output
        .trace
        .clone()
        .ok_or_else(|| "tracing produced no event log".to_string())?;
    if let Some(series) = &output.telemetry {
        let lane = num_pes as u64 + 1;
        trace.set_lane(lane, "telemetry");
        trace.add_telemetry(series, lane);
        trace.sort_by_time();
    }
    let events = trace.len();
    Ok((trace.to_chrome_json(), events))
}

// ---------------------------------------------------------------------------
// Dataset catalog: the cache as a queryable surface
// ---------------------------------------------------------------------------

/// What the `query` surface knows about one cached entry: enough to
/// filter and rank (benchmark, kernel, shape, plan, headline numbers)
/// without decoding the full payload per query.
#[derive(Debug, Clone)]
struct EntryMeta {
    key: String,
    /// `"run"`, `"search"` or `"trace"` — recovered from the key prefix
    /// (run keys are pure hex, so `s`/`t` prefixes are unambiguous).
    kind: &'static str,
    benchmark: String,
    /// Lower-case kernel name (`"spmm"` / `"sddmm"`).
    kernel: String,
    k: u64,
    pes: u64,
    /// The plan (for `search` entries: the best candidate's plan).
    plan: Option<JsonValue>,
    /// Simulated cycles (for `search` entries: the best candidate's).
    cycles: u64,
    dram_accesses: u64,
}

impl EntryMeta {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("key", self.key.as_str().into()),
            ("kind", self.kind.into()),
            ("benchmark", self.benchmark.as_str().into()),
            ("kernel", self.kernel.as_str().into()),
            ("k", self.k.into()),
            ("pes", self.pes.into()),
            ("plan", self.plan.clone().unwrap_or(JsonValue::Null)),
            ("cycles", self.cycles.into()),
            ("dram_accesses", self.dram_accesses.into()),
        ])
    }

    fn from_json(doc: &JsonValue) -> Option<EntryMeta> {
        let kind = match doc.get("kind")?.as_str()? {
            "run" => "run",
            "search" => "search",
            "trace" => "trace",
            _ => return None,
        };
        Some(EntryMeta {
            key: doc.get("key")?.as_str()?.to_string(),
            kind,
            benchmark: doc.get("benchmark")?.as_str()?.to_string(),
            kernel: doc.get("kernel")?.as_str()?.to_string(),
            k: doc.get("k")?.as_u64()?,
            pes: doc.get("pes")?.as_u64()?,
            plan: match doc.get("plan") {
                None | Some(JsonValue::Null) => None,
                Some(p) => Some(p.clone()),
            },
            cycles: doc.get("cycles")?.as_u64()?,
            dram_accesses: doc.get("dram_accesses")?.as_u64()?,
        })
    }
}

/// Decodes one cached payload into its catalog row. Returns `None` for
/// payloads that don't carry the expected fields (a foreign or
/// hand-edited entry) — such entries still serve cache hits, they are
/// just invisible to `query`.
fn entry_meta_from_payload(key: &str, payload: &[u8]) -> Option<EntryMeta> {
    let text = std::str::from_utf8(payload).ok()?;
    let doc = JsonValue::parse(text).ok()?;
    let kind = if key.starts_with('s') {
        "search"
    } else if key.starts_with('t') {
        "trace"
    } else {
        "run"
    };
    let benchmark = doc.get("benchmark")?.as_str()?.to_string();
    let k = doc.get("k")?.as_u64()?;
    let pes = doc.get("pes")?.as_u64()?;
    if kind == "search" {
        // Candidates are sorted by cycles; the catalog carries the best.
        let best = doc.get("candidates")?.as_array()?.first()?;
        Some(EntryMeta {
            key: key.to_string(),
            kind,
            benchmark,
            kernel: "spmm".to_string(),
            k,
            pes,
            plan: best.get("plan").cloned(),
            cycles: best.get("cycles")?.as_u64()?,
            dram_accesses: best.get("dram_accesses")?.as_u64()?,
        })
    } else {
        let report = doc.get("report")?;
        Some(EntryMeta {
            key: key.to_string(),
            kind,
            benchmark,
            kernel: doc.get("kernel")?.as_str()?.to_lowercase(),
            k,
            pes,
            plan: doc.get("plan").cloned(),
            cycles: report.get("cycles")?.as_u64()?,
            dram_accesses: report.get("dram_accesses")?.as_u64()?,
        })
    }
}

/// In-memory catalog of the cache contents, backing the `query`
/// request. Built once at bind time and kept current by the workers as
/// they store; flushed into `index.json` on drain so the next daemon
/// warms its catalog without decoding every entry. Advisory like the
/// index itself: the entries on disk are the source of truth, and any
/// key the stale index doesn't cover is rebuilt from the entry header.
struct DatasetIndex {
    entries: Mutex<BTreeMap<String, EntryMeta>>,
}

impl DatasetIndex {
    /// Catalogs `cache`: rows from `index.json` where the entry is
    /// still on disk, decoded from the entry payload otherwise (stale
    /// or missing index); index rows whose entry vanished are dropped.
    fn load(cache: &ResultCache) -> DatasetIndex {
        let mut from_index: BTreeMap<String, EntryMeta> = BTreeMap::new();
        if let Some(doc) = cache.read_index() {
            if let Some(items) = doc.get("dataset").and_then(JsonValue::as_array) {
                for item in items {
                    if let Some(meta) = EntryMeta::from_json(item) {
                        from_index.insert(meta.key.clone(), meta);
                    }
                }
            }
        }
        let mut entries = BTreeMap::new();
        for key in cache.keys() {
            if let Some(meta) = from_index.remove(&key) {
                entries.insert(key, meta);
            } else if let Some(payload) = cache.peek(&key) {
                if let Some(meta) = entry_meta_from_payload(&key, &payload) {
                    entries.insert(key, meta);
                }
            }
        }
        DatasetIndex {
            entries: Mutex::new(entries),
        }
    }

    /// Adds (or refreshes) the row for a just-stored payload.
    fn insert_payload(&self, key: &str, payload: &str) {
        if let Some(meta) = entry_meta_from_payload(key, payload.as_bytes()) {
            self.entries
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(key.to_string(), meta);
        }
    }

    /// Answers one query: `{"total","matched","returned","entries"}`
    /// with matches sorted by (benchmark, kernel, cycles, key) — a
    /// deterministic order, so "best plan per matrix" is the first
    /// entry per benchmark group. With `group_by`, the matches are
    /// folded server-side instead (see [`DatasetIndex::aggregate`]).
    fn query(&self, filter: &QueryFilter) -> JsonValue {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let mut matched: Vec<&EntryMeta> = entries.values().filter(|m| filter.matches(m)).collect();
        matched.sort_by(|a, b| {
            (&a.benchmark, &a.kernel, a.cycles, &a.key).cmp(&(
                &b.benchmark,
                &b.kernel,
                b.cycles,
                &b.key,
            ))
        });
        if let Some(group_by) = filter.group_by {
            return Self::aggregate(entries.len(), &matched, group_by, filter.limit);
        }
        let shown: Vec<JsonValue> = matched
            .iter()
            .take(filter.limit)
            .map(|m| m.to_json())
            .collect();
        JsonValue::object([
            ("total", entries.len().into()),
            ("matched", matched.len().into()),
            ("returned", shown.len().into()),
            ("entries", JsonValue::Array(shown)),
        ])
    }

    /// Folds the (already filtered and sorted) matches into per-group
    /// projections: count, min/max/mean cycles, and the best entry —
    /// fewest cycles, key as the deterministic tie-break — whose plan is
    /// the group's best-plan answer. Groups come back sorted by label;
    /// `limit` caps how many are rendered.
    fn aggregate(
        total: usize,
        matched: &[&EntryMeta],
        group_by: GroupKey,
        limit: usize,
    ) -> JsonValue {
        let mut groups: BTreeMap<String, Vec<&EntryMeta>> = BTreeMap::new();
        for m in matched {
            groups.entry(group_by.of(m)).or_default().push(m);
        }
        let group_count = groups.len();
        let shown: Vec<JsonValue> = groups
            .into_iter()
            .take(limit)
            .map(|(label, members)| {
                let count = members.len() as u64;
                let min = members.iter().map(|m| m.cycles).min().unwrap_or(0);
                let max = members.iter().map(|m| m.cycles).max().unwrap_or(0);
                let sum: u64 = members.iter().map(|m| m.cycles).sum();
                let best = members
                    .iter()
                    .min_by(|a, b| (a.cycles, &a.key).cmp(&(b.cycles, &b.key)))
                    .expect("groups are never empty");
                JsonValue::object([
                    ("group", label.as_str().into()),
                    ("count", count.into()),
                    ("min_cycles", min.into()),
                    ("max_cycles", max.into()),
                    ("mean_cycles", (sum as f64 / count as f64).into()),
                    ("best", best.to_json()),
                ])
            })
            .collect();
        JsonValue::object([
            ("total", total.into()),
            ("matched", matched.len().into()),
            ("group_by", group_by.name().into()),
            ("groups_matched", group_count.into()),
            ("returned", shown.len().into()),
            ("groups", JsonValue::Array(shown)),
        ])
    }

    /// The catalog as the `dataset` array persisted in `index.json`.
    fn to_json(&self) -> JsonValue {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        JsonValue::Array(entries.values().map(EntryMeta::to_json).collect())
    }
}

/// Exports the cache catalog as one JSON document — the dataset a cost
/// model is trained from (`spade-cli dataset export` / `model train`).
/// Loads the catalog exactly the way the daemon does at bind time
/// ([`DatasetIndex::load`]): rows from a current `index.json` are
/// trusted, anything the index is stale or missing for is rebuilt from
/// the entry payloads on disk, and entries that fail their checksum are
/// quarantined and *skipped* — the export reports how many in
/// `skipped_quarantined` (with a stderr warning) instead of failing.
///
/// # Errors
///
/// Fails only when the cache directory cannot be opened or created.
pub fn export_dataset(cache_dir: &Path) -> io::Result<JsonValue> {
    let cache = ResultCache::open(cache_dir)?;
    let dataset = DatasetIndex::load(&cache);
    let entries = dataset.to_json();
    let skipped = cache.stats().quarantined;
    if skipped > 0 {
        eprintln!(
            "spade-dataset: skipped {skipped} quarantined entr{} during export",
            if skipped == 1 { "y" } else { "ies" }
        );
    }
    let count = entries.as_array().map_or(0, <[JsonValue]>::len);
    Ok(JsonValue::object([
        ("dataset_version", 1u64.into()),
        ("total", count.into()),
        ("skipped_quarantined", skipped.into()),
        ("entries", entries),
    ]))
}

// ---------------------------------------------------------------------------
// Observability: the registry snapshot and log spans
// ---------------------------------------------------------------------------

/// The registry with its mirrored instruments brought current: gauges
/// from the live atomics, connection/back-pressure/framing counters and
/// cache behavior from their sources of truth. The live-updated
/// instruments (request counts, latency histograms, deadline kills) are
/// already current.
fn metrics_snapshot(inner: &Inner) -> MetricsSnapshot {
    let m = &inner.metrics;
    m.queue_depth
        .set(inner.queue_depth.load(Ordering::Relaxed) as i64);
    m.in_flight
        .set(inner.in_flight.load(Ordering::Relaxed) as i64);
    m.connections
        .store(inner.connections.load(Ordering::Relaxed));
    m.rejected_overload
        .store(inner.rejected_overload.load(Ordering::Relaxed));
    m.bad_frames.store(inner.bad_frames.load(Ordering::Relaxed));
    if let Some(cache) = &inner.cache {
        m.observe_cache(&cache.stats());
    }
    m.snapshot()
}

/// One structured span event as a single JSON line on stderr, gated on
/// [`ServiceConfig::log_json`]. Fields: `log:"spade-serve"`, `t_us`
/// (microseconds since daemon start), `rid`, `event`, plus the
/// event-specific extras. stderr only — never the protocol stream,
/// never simulation state — so logging on or off cannot change a
/// response byte.
fn log_event(inner: &Inner, rid: u64, event: &str, extra: &[(&str, JsonValue)]) {
    if !inner.config.log_json {
        return;
    }
    let mut fields: Vec<(&str, JsonValue)> = vec![
        ("log", "spade-serve".into()),
        ("t_us", (inner.started.elapsed().as_micros() as u64).into()),
        ("rid", rid.into()),
        ("event", event.into()),
    ];
    fields.extend_from_slice(extra);
    eprintln!("{}", JsonValue::object(fields).render());
}

// ---------------------------------------------------------------------------
// Termination signals
// ---------------------------------------------------------------------------

static TERMINATION_SIGNAL: AtomicBool = AtomicBool::new(false);

/// Whether SIGTERM/SIGINT has been received since
/// [`install_termination_handler`] ran.
pub fn termination_signal_received() -> bool {
    TERMINATION_SIGNAL.load(Ordering::SeqCst)
}

/// Routes SIGTERM and SIGINT into a flag the accept loop polls, turning
/// `kill <pid>` / ctrl-c into the same graceful drain as an in-band
/// `shutdown` request. The handler only stores an atomic — the minimum
/// an async-signal context allows. std already links libc on Unix, so
/// the declaration introduces no new dependency.
#[cfg(unix)]
pub fn install_termination_handler() {
    extern "C" fn on_signal(_signum: i32) {
        TERMINATION_SIGNAL.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// No-op off Unix: the in-band `shutdown` command still works.
#[cfg(not(unix))]
pub fn install_termination_handler() {}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A minimal blocking client for the daemon protocol: one JSON line out,
/// one JSON line back. Used by `spade-cli client` and the robustness
/// tests; independent deployments only need a TCP socket and a JSON
/// library.
pub struct ServiceClient {
    writer: TcpStream,
    frames: FrameReader<TcpStream>,
}

impl ServiceClient {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &SocketAddr) -> io::Result<ServiceClient> {
        Self::connect_with_max_frame(addr, MAX_FRAME_BYTES)
    }

    /// Connects with a custom response-frame byte limit. `client trace`
    /// uses this: a Chrome-trace response is one line and can exceed the
    /// default limit that protects ordinary request/response traffic.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_with_max_frame(
        addr: &SocketAddr,
        max_frame: usize,
    ) -> io::Result<ServiceClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(ServiceClient {
            writer,
            frames: FrameReader::with_max_frame(stream, max_frame),
        })
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or when the daemon closes the connection
    /// without answering.
    pub fn request_line(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends a JSON request document and reads one response line.
    ///
    /// # Errors
    ///
    /// See [`ServiceClient::request_line`].
    pub fn request(&mut self, doc: &JsonValue) -> io::Result<String> {
        self.request_line(&doc.render())
    }

    /// Reads the next response line without sending anything (for tests
    /// that write raw bytes through a separate socket handle).
    ///
    /// # Errors
    ///
    /// Fails on socket errors or EOF before a full line arrived.
    pub fn read_response(&mut self) -> io::Result<String> {
        match self.frames.next_frame() {
            Ok(Some(frame)) => String::from_utf8(frame)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response")),
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            )),
            Err(FrameError::Io(e)) => Err(e),
            Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
    }

    /// Write access to the raw socket, for byzantine-client tests that
    /// need to send partial or garbage frames.
    pub fn raw_writer(&mut self) -> &mut TcpStream {
        &mut self.writer
    }
}
