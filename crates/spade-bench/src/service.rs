//! `spade-serve`: the always-on experiment daemon.
//!
//! A std-only TCP service speaking newline-delimited JSON (one request
//! per line, one response per line — the [`spade_sim::json`] codec on
//! both sides). Clients submit the same experiments the CLI runs
//! (`run`, `search`), plus `status`, `ping` and an in-band `shutdown`;
//! results come back as the exact JSON documents the CLI's
//! `--format json` prints, minus host-wall-clock fields (see below).
//!
//! # Architecture
//!
//! ```text
//! accept loop ─┬─ connection handler ──┐ try_send   ┌─ worker ─ ParallelRunner
//!              ├─ connection handler ──┤──────────▶ │  (panic guard, deadline
//!              └─ connection handler ──┘  bounded   └─  watchdog)   │
//!                     ▲      │ cache probe (hit → reply now)        │
//!                     │      └────────────── ResultCache ◀── put ───┘
//! ```
//!
//! * **Bounded admission.** Requests funnel through a
//!   [`std::sync::mpsc::sync_channel`] of [`ServiceConfig::queue_capacity`]
//!   slots. When the queue is full the daemon replies immediately with a
//!   structured `overloaded` error carrying `retry_after_ms` — explicit
//!   back-pressure, never an unbounded buffer. Memory is bounded by
//!   construction: ≤ `max_connections` handler threads, each with at most
//!   one in-flight request, plus ≤ `queue_capacity` queued jobs.
//! * **Graceful degradation.** A malformed frame fails that one request
//!   (the connection and daemon keep serving); a panicking simulation is
//!   contained by the [`ParallelRunner`] panic guard and fails only its
//!   own request; a request that exceeds its cycle deadline gets a
//!   structured `deadline_exceeded` error from the watchdog ceiling.
//! * **Crash-safe result cache.** Completed results are stored in a
//!   [`ResultCache`] keyed by [`Job::cache_key`] — content-addressed, so
//!   the same experiment hits across restarts and processes. Cache hits
//!   are byte-identical to a fresh simulation because response payloads
//!   are *canonical*: `host_wall_ns`, `shards` and `shard_wall_ns` — host
//!   properties, excluded from [`RunReport`] equality — are normalized
//!   before rendering.
//! * **Graceful shutdown.** SIGTERM/SIGINT (see
//!   [`install_termination_handler`]) or an in-band `shutdown` request
//!   stops the accept loop, drains in-flight jobs, flushes the cache
//!   index and returns a [`ServiceSummary`].
//!
//! # Protocol
//!
//! Requests are JSON objects with a `cmd` field; an optional `id`
//! (string or number) is echoed in the response envelope. Success:
//! `{"ok":true,"cmd":...,"cached":...,"key":...,"result":{...}}`.
//! Failure: `{"ok":false,"error":{"kind":...,"message":...}}` with
//! `retry_after_ms` on `overloaded`. Error kinds: `bad_request`,
//! `overloaded`, `shutting_down`, `deadline_exceeded`, `sim_failed`,
//! `internal`. DESIGN.md documents the full matrix.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use spade_core::{
    BarrierPolicy, CMatrixPolicy, ExecutionPlan, PlanSearchSpace, Primitive, RMatrixPolicy,
    RunReport, SystemConfig,
};
use spade_matrix::generators::{Benchmark, Scale};
use spade_sim::json::MAX_FRAME_BYTES;
use spade_sim::{Cycle, FrameError, FrameReader, JsonValue};

use crate::cache::{CacheStats, Fnv64, ResultCache};
use crate::parallel::{self, Job, JobOutput, ParallelRunner};
use crate::suite::Workload;

/// Wire-protocol version, reported by `ping` and `status`.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on `pes` accepted from the wire — requests are untrusted,
/// and the config allocates per-PE state before the simulation starts.
const MAX_REQUEST_PES: usize = 1024;

/// Upper bound on `k` accepted from the wire (dense operand columns).
const MAX_REQUEST_K: usize = 4096;

/// How the daemon is shaped: queue depth, worker count, deadlines,
/// cache location. `Default` is sized for an interactive host.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Simulation worker threads (defaults to [`parallel::num_threads`]).
    pub workers: usize,
    /// Admission-queue slots; a full queue rejects with `overloaded`.
    pub queue_capacity: usize,
    /// Maximum concurrent client connections; excess connections get one
    /// `overloaded` reply and are closed.
    pub max_connections: usize,
    /// Deadline applied to requests that don't carry their own
    /// `deadline_cycles`, riding the watchdog cycle ceiling. `None`
    /// leaves such requests unbounded.
    pub default_deadline_cycles: Option<Cycle>,
    /// How long a connection read blocks before re-checking for
    /// shutdown; bounds drain latency, not connection lifetime.
    pub read_timeout: Duration,
    /// Per-frame byte cap (a line longer than this fails the request).
    pub max_frame_bytes: usize,
    /// `retry_after_ms` hint carried by `overloaded` rejections.
    pub retry_after_ms: u64,
    /// Result-cache directory; `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Fault injection: hold each admitted job for this long before
    /// executing it. Lets the robustness suite create deterministic
    /// back-pressure with fast jobs; `None` (the default) in production.
    pub worker_delay: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: parallel::num_threads(),
            queue_capacity: 32,
            max_connections: 32,
            // Orders of magnitude above any suite run (the full-scale
            // sweeps finish in millions of cycles): a safety ceiling, not
            // a tuning knob.
            default_deadline_cycles: Some(4_000_000_000),
            read_timeout: Duration::from_millis(500),
            max_frame_bytes: MAX_FRAME_BYTES,
            retry_after_ms: 100,
            cache_dir: None,
            worker_delay: None,
        }
    }
}

/// What the daemon did over its lifetime, returned by [`Service::run`]
/// after a graceful shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Requests answered successfully (cached or fresh).
    pub served_ok: u64,
    /// Requests that failed (bad input, deadline, simulation error).
    pub served_err: u64,
    /// Requests rejected with back-pressure because the queue was full.
    pub rejected_overload: u64,
    /// Frames that could not be parsed as a request.
    pub bad_frames: u64,
    /// Connections accepted over the lifetime.
    pub connections: u64,
    /// Result-cache statistics, when a cache was configured.
    pub cache: Option<CacheStats>,
}

impl ServiceSummary {
    /// The summary as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("served_ok", self.served_ok.into()),
            ("served_err", self.served_err.into()),
            ("rejected_overload", self.rejected_overload.into()),
            ("bad_frames", self.bad_frames.into()),
            ("connections", self.connections.into()),
            (
                "cache",
                match &self.cache {
                    Some(stats) => stats.to_json(),
                    None => JsonValue::Null,
                },
            ),
        ])
    }
}

/// Shared daemon state: configuration, cache, counters, shutdown flag.
struct Inner {
    config: ServiceConfig,
    cache: Option<ResultCache>,
    shutdown: AtomicBool,
    queue_depth: AtomicUsize,
    in_flight: AtomicUsize,
    served_ok: AtomicU64,
    served_err: AtomicU64,
    rejected_overload: AtomicU64,
    bad_frames: AtomicU64,
    connections: AtomicU64,
    started: Instant,
}

impl Inner {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || termination_signal_received()
    }
}

/// A clonable handle for requesting shutdown from another thread (tests,
/// signal bridges). The daemon also honors SIGTERM/SIGINT directly once
/// [`install_termination_handler`] has run.
#[derive(Clone)]
pub struct ServiceHandle(Arc<Inner>);

impl ServiceHandle {
    /// Asks the daemon to stop accepting, drain, and return.
    pub fn request_shutdown(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether the daemon is draining.
    pub fn is_shutting_down(&self) -> bool {
        self.0.shutting_down()
    }
}

/// One admitted request, queued for a worker.
struct WorkItem {
    kind: WorkKind,
    /// Cache key to store the result under (`None`: don't persist).
    store_key: Option<String>,
    reply: SyncSender<Result<String, (String, String)>>,
}

enum WorkKind {
    Run {
        job: Box<Job>,
        benchmark: String,
        kernel: Primitive,
        k: usize,
        pes: usize,
    },
    Search {
        benchmark: String,
        jobs: Vec<Job>,
        plans: Vec<ExecutionPlan>,
        k: usize,
        pes: usize,
    },
}

/// The daemon: bind, then [`Service::run`] until shutdown.
pub struct Service {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Service {
    /// Binds the service (use port `0` to let the OS pick) and opens the
    /// result cache when one is configured.
    ///
    /// # Errors
    ///
    /// Fails if the address can't be bound or the cache directory can't
    /// be created.
    pub fn bind(addr: &str, config: ServiceConfig) -> io::Result<Service> {
        let listener = TcpListener::bind(addr)?;
        let cache = match &config.cache_dir {
            Some(dir) => Some(ResultCache::open(dir)?),
            None => None,
        };
        Ok(Service {
            listener,
            inner: Arc::new(Inner {
                config,
                cache,
                shutdown: AtomicBool::new(false),
                queue_depth: AtomicUsize::new(0),
                in_flight: AtomicUsize::new(0),
                served_ok: AtomicU64::new(0),
                served_err: AtomicU64::new(0),
                rejected_overload: AtomicU64::new(0),
                bad_frames: AtomicU64::new(0),
                connections: AtomicU64::new(0),
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (useful with port `0`).
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has no local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle usable from other threads.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle(Arc::clone(&self.inner))
    }

    /// Serves until shutdown is requested (in-band `shutdown`, a
    /// [`ServiceHandle`], or SIGTERM/SIGINT after
    /// [`install_termination_handler`]), then drains in-flight work,
    /// flushes the cache index and returns the lifetime summary.
    ///
    /// # Errors
    ///
    /// Fails only on listener/worker setup; per-request failures are
    /// answered in-protocol and never abort the daemon.
    pub fn run(self) -> io::Result<ServiceSummary> {
        let inner = self.inner;
        self.listener.set_nonblocking(true)?;
        let (work_tx, work_rx) = mpsc::sync_channel::<WorkItem>(inner.config.queue_capacity);
        let work_rx = Arc::new(Mutex::new(work_rx));
        let mut workers = Vec::new();
        for i in 0..inner.config.workers.max(1) {
            let inner = Arc::clone(&inner);
            let rx = Arc::clone(&work_rx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("spade-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner, &rx))?,
            );
        }
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !inner.shutting_down() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    handlers.retain(|h| !h.is_finished());
                    inner.connections.fetch_add(1, Ordering::Relaxed);
                    if handlers.len() >= inner.config.max_connections {
                        refuse_connection(&inner, stream);
                        continue;
                    }
                    let inner = Arc::clone(&inner);
                    let tx = work_tx.clone();
                    let h = std::thread::Builder::new()
                        .name("spade-serve-conn".into())
                        .spawn(move || handle_connection(&inner, &tx, stream))?;
                    handlers.push(h);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        // Drain: handlers notice the shutdown flag within one read
        // timeout and close their connections (after answering anything
        // already in flight); then the queue sender drops and the workers
        // finish whatever was admitted and exit.
        for h in handlers {
            let _ = h.join();
        }
        drop(work_tx);
        for w in workers {
            let _ = w.join();
        }
        if let Some(cache) = &inner.cache {
            if let Err(e) = cache.flush_index() {
                eprintln!("spade-serve: cache index flush failed: {e}");
            }
        }
        Ok(ServiceSummary {
            served_ok: inner.served_ok.load(Ordering::Relaxed),
            served_err: inner.served_err.load(Ordering::Relaxed),
            rejected_overload: inner.rejected_overload.load(Ordering::Relaxed),
            bad_frames: inner.bad_frames.load(Ordering::Relaxed),
            connections: inner.connections.load(Ordering::Relaxed),
            cache: inner.cache.as_ref().map(ResultCache::stats),
        })
    }
}

/// Over-capacity connections get one structured rejection, then close —
/// the same back-pressure contract as a full queue.
fn refuse_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    inner.rejected_overload.fetch_add(1, Ordering::Relaxed);
    let resp = error_response(
        None,
        None,
        "overloaded",
        "connection limit reached",
        Some(inner.config.retry_after_ms),
    );
    let _ = stream.write_all(resp.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// One connection: read frames, answer each, until EOF / fatal frame
/// error / shutdown. Per-request failures answer in-protocol and keep
/// the connection; only sync-destroying conditions (oversized frame,
/// mid-frame EOF, socket errors) close it.
fn handle_connection(inner: &Arc<Inner>, work_tx: &SyncSender<WorkItem>, stream: TcpStream) {
    // Accepted sockets can inherit the listener's non-blocking mode on
    // some platforms; force blocking-with-timeout explicitly.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut frames = FrameReader::with_max_frame(stream, inner.config.max_frame_bytes);
    loop {
        if inner.shutting_down() {
            let _ = respond(
                &mut writer,
                &error_response(None, None, "shutting_down", "daemon is draining", None),
            );
            return;
        }
        match frames.next_frame() {
            Ok(Some(frame)) => {
                if frame.iter().all(u8::is_ascii_whitespace) {
                    continue;
                }
                if !process_frame(inner, work_tx, &mut writer, &frame) {
                    return;
                }
            }
            Ok(None) => return, // clean EOF
            Err(FrameError::TooLong { limit }) => {
                // The rest of the oversized line is unread: framing is
                // lost, so answer once and drop the connection.
                inner.bad_frames.fetch_add(1, Ordering::Relaxed);
                let _ = respond(
                    &mut writer,
                    &error_response(
                        None,
                        None,
                        "bad_request",
                        &format!("frame exceeds {limit} bytes"),
                        None,
                    ),
                );
                return;
            }
            Err(FrameError::Truncated { .. }) => {
                // Client died mid-line; nobody is listening for a reply.
                inner.bad_frames.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle tick: loop to re-check the shutdown flag.
                continue;
            }
            Err(FrameError::Io(_)) => return,
        }
    }
}

/// Handles one well-framed request line. Returns `false` when the
/// connection should close (write failure).
fn process_frame(
    inner: &Arc<Inner>,
    work_tx: &SyncSender<WorkItem>,
    writer: &mut TcpStream,
    frame: &[u8],
) -> bool {
    let (id, parsed) = match parse_request(frame, inner.config.default_deadline_cycles) {
        Ok(p) => p,
        Err(message) => {
            inner.bad_frames.fetch_add(1, Ordering::Relaxed);
            return respond(
                writer,
                &error_response(None, None, "bad_request", &message, None),
            );
        }
    };
    match parsed {
        Request::Ping => respond(
            writer,
            &JsonValue::object([
                ("ok", true.into()),
                ("cmd", "ping".into()),
                ("protocol", PROTOCOL_VERSION.into()),
            ])
            .render(),
        ),
        Request::Status => respond(writer, &status_response(inner).render()),
        Request::Shutdown => {
            inner.shutdown.store(true, Ordering::SeqCst);
            respond(
                writer,
                &JsonValue::object([
                    ("ok", true.into()),
                    ("cmd", "shutdown".into()),
                    ("draining", true.into()),
                ])
                .render(),
            )
        }
        Request::Work {
            cmd,
            kind,
            cache_key,
        } => {
            // Cache probe happens on the connection thread: a hit never
            // takes a queue slot and replies in microseconds.
            if let (Some(cache), Some(key)) = (inner.cache.as_ref(), cache_key.as_deref()) {
                if let Some(payload) = cache.get(key) {
                    if let Ok(result) = String::from_utf8(payload) {
                        inner.served_ok.fetch_add(1, Ordering::Relaxed);
                        let env = ok_envelope(cmd, id.as_ref(), true, Some(key), &result);
                        return respond(writer, &env);
                    }
                }
            }
            let (reply_tx, reply_rx) = mpsc::sync_channel(1);
            let item = WorkItem {
                kind,
                store_key: cache_key.clone(),
                reply: reply_tx,
            };
            match work_tx.try_send(item) {
                Err(TrySendError::Full(_)) => {
                    inner.rejected_overload.fetch_add(1, Ordering::Relaxed);
                    respond(
                        writer,
                        &error_response(
                            id.as_ref(),
                            Some(cmd),
                            "overloaded",
                            &format!(
                                "admission queue is full ({} slots)",
                                inner.config.queue_capacity
                            ),
                            Some(inner.config.retry_after_ms),
                        ),
                    )
                }
                Err(TrySendError::Disconnected(_)) => respond(
                    writer,
                    &error_response(
                        id.as_ref(),
                        Some(cmd),
                        "shutting_down",
                        "daemon is draining",
                        None,
                    ),
                ),
                Ok(()) => {
                    inner.queue_depth.fetch_add(1, Ordering::Relaxed);
                    match reply_rx.recv() {
                        Ok(Ok(result)) => {
                            inner.served_ok.fetch_add(1, Ordering::Relaxed);
                            let env =
                                ok_envelope(cmd, id.as_ref(), false, cache_key.as_deref(), &result);
                            respond(writer, &env)
                        }
                        Ok(Err((kind, message))) => {
                            inner.served_err.fetch_add(1, Ordering::Relaxed);
                            respond(
                                writer,
                                &error_response(id.as_ref(), Some(cmd), &kind, &message, None),
                            )
                        }
                        Err(_) => {
                            inner.served_err.fetch_add(1, Ordering::Relaxed);
                            respond(
                                writer,
                                &error_response(
                                    id.as_ref(),
                                    Some(cmd),
                                    "internal",
                                    "worker dropped the request",
                                    None,
                                ),
                            )
                        }
                    }
                }
            }
        }
    }
}

fn respond(writer: &mut TcpStream, line: &str) -> bool {
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .is_ok()
}

fn status_response(inner: &Arc<Inner>) -> JsonValue {
    JsonValue::object([
        ("ok", true.into()),
        ("cmd", "status".into()),
        ("protocol", PROTOCOL_VERSION.into()),
        (
            "uptime_ms",
            (inner.started.elapsed().as_millis() as u64).into(),
        ),
        (
            "queue_depth",
            inner.queue_depth.load(Ordering::Relaxed).into(),
        ),
        ("queue_capacity", inner.config.queue_capacity.into()),
        ("in_flight", inner.in_flight.load(Ordering::Relaxed).into()),
        ("workers", inner.config.workers.into()),
        ("served_ok", inner.served_ok.load(Ordering::Relaxed).into()),
        (
            "served_err",
            inner.served_err.load(Ordering::Relaxed).into(),
        ),
        (
            "rejected_overload",
            inner.rejected_overload.load(Ordering::Relaxed).into(),
        ),
        (
            "bad_frames",
            inner.bad_frames.load(Ordering::Relaxed).into(),
        ),
        (
            "connections",
            inner.connections.load(Ordering::Relaxed).into(),
        ),
        (
            "cache",
            match &inner.cache {
                Some(cache) => {
                    let mut stats = cache.stats().to_json();
                    if let JsonValue::Object(fields) = &mut stats {
                        fields.push(("entries".into(), cache.len().into()));
                    }
                    stats
                }
                None => JsonValue::Null,
            },
        ),
        ("shutting_down", inner.shutting_down().into()),
    ])
}

/// `{"ok":true,...,"result":<result>}` with the cached/fresh result
/// bytes embedded verbatim — the envelope is built by splicing, so a
/// cache hit serves exactly the bytes a fresh run produced.
fn ok_envelope(
    cmd: &str,
    id: Option<&JsonValue>,
    cached: bool,
    key: Option<&str>,
    result: &str,
) -> String {
    let mut s = String::with_capacity(result.len() + 96);
    s.push_str("{\"ok\":true,\"cmd\":\"");
    s.push_str(cmd);
    s.push('"');
    if let Some(id) = id {
        s.push_str(",\"id\":");
        s.push_str(&id.render());
    }
    s.push_str(",\"cached\":");
    s.push_str(if cached { "true" } else { "false" });
    if let Some(key) = key {
        s.push_str(",\"key\":\"");
        s.push_str(key);
        s.push('"');
    }
    s.push_str(",\"result\":");
    s.push_str(result);
    s.push('}');
    s
}

fn error_response(
    id: Option<&JsonValue>,
    cmd: Option<&str>,
    kind: &str,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut fields = vec![("ok", JsonValue::from(false))];
    if let Some(cmd) = cmd {
        fields.push(("cmd", cmd.into()));
    }
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    fields.push((
        "error",
        JsonValue::object([("kind", kind.into()), ("message", message.into())]),
    ));
    if let Some(ms) = retry_after_ms {
        fields.push(("retry_after_ms", ms.into()));
    }
    JsonValue::object(fields).render()
}

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

enum Request {
    Ping,
    Status,
    Shutdown,
    Work {
        cmd: &'static str,
        kind: WorkKind,
        cache_key: Option<String>,
    },
}

/// Parses one frame into a request, applying the same validation the CLI
/// flags get — every reject happens before any simulation work starts.
fn parse_request(
    frame: &[u8],
    default_deadline: Option<Cycle>,
) -> Result<(Option<JsonValue>, Request), String> {
    let text = std::str::from_utf8(frame).map_err(|_| "frame is not UTF-8".to_string())?;
    let doc = JsonValue::parse(text).map_err(|e| format!("frame is not valid JSON: {e}"))?;
    if doc.get("cmd").is_none() {
        return Err("request must be an object with a \"cmd\" field".into());
    }
    let cmd = doc
        .get("cmd")
        .and_then(JsonValue::as_str)
        .ok_or("\"cmd\" must be a string")?;
    let id = doc.get("id").and_then(|v| match v {
        JsonValue::Str(_) | JsonValue::UInt(_) | JsonValue::Int(_) => Some(v.clone()),
        _ => None,
    });
    let req = match cmd {
        "ping" => Request::Ping,
        "status" => Request::Status,
        "shutdown" => Request::Shutdown,
        "run" => parse_run(&doc, default_deadline)?,
        "search" => parse_search(&doc, default_deadline)?,
        other => return Err(format!("unknown cmd {other:?}")),
    };
    Ok((id, req))
}

fn field_str<'a>(doc: &'a JsonValue, key: &str, default: &'a str) -> Result<&'a str, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v.as_str().ok_or(format!("\"{key}\" must be a string")),
    }
}

fn field_u64(doc: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or(format!("\"{key}\" must be a non-negative integer")),
    }
}

fn field_bool(doc: &JsonValue, key: &str, default: bool) -> Result<bool, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v.as_bool().ok_or(format!("\"{key}\" must be a boolean")),
    }
}

fn parse_wire_scale(doc: &JsonValue) -> Result<Scale, String> {
    match field_str(doc, "scale", "tiny")? {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "default" => Ok(Scale::Default),
        "large" => Ok(Scale::Large),
        other => Err(format!("unknown scale {other:?}")),
    }
}

fn parse_wire_benchmark(doc: &JsonValue) -> Result<Benchmark, String> {
    let name = doc
        .get("benchmark")
        .and_then(JsonValue::as_str)
        .ok_or("\"benchmark\" is required")?;
    Benchmark::ALL
        .into_iter()
        .find(|b| b.short_name().eq_ignore_ascii_case(name))
        .ok_or(format!("unknown benchmark {name:?}"))
}

fn parse_wire_k(doc: &JsonValue) -> Result<usize, String> {
    let k = field_u64(doc, "k")?.unwrap_or(32) as usize;
    let line = spade_matrix::FLOATS_PER_LINE;
    if k == 0 || !k.is_multiple_of(line) {
        return Err(format!(
            "\"k\": {k} is not a multiple of the cache line ({line} floats)"
        ));
    }
    if k > MAX_REQUEST_K {
        return Err(format!(
            "\"k\": {k} exceeds the service limit {MAX_REQUEST_K}"
        ));
    }
    Ok(k)
}

fn parse_wire_pes(doc: &JsonValue) -> Result<usize, String> {
    let pes = field_u64(doc, "pes")?.unwrap_or(56) as usize;
    if pes == 0 || !pes.is_multiple_of(4) {
        return Err("\"pes\" must be a positive multiple of 4".into());
    }
    if pes > MAX_REQUEST_PES {
        return Err(format!(
            "\"pes\": {pes} exceeds the service limit {MAX_REQUEST_PES}"
        ));
    }
    Ok(pes)
}

fn parse_wire_kernel(doc: &JsonValue) -> Result<Primitive, String> {
    match field_str(doc, "kernel", "spmm")? {
        "spmm" => Ok(Primitive::Spmm),
        "sddmm" => Ok(Primitive::Sddmm),
        other => Err(format!("unknown kernel {other:?}")),
    }
}

/// The request deadline: explicit `deadline_cycles` wins, otherwise the
/// service default; an explicit `0` means "no deadline".
fn parse_wire_deadline(
    doc: &JsonValue,
    config_default: Option<Cycle>,
) -> Result<Option<Cycle>, String> {
    match field_u64(doc, "deadline_cycles")? {
        Some(0) => Ok(None),
        Some(d) => Ok(Some(d)),
        None => Ok(config_default),
    }
}

fn parse_wire_plan(doc: &JsonValue, a: &spade_matrix::Coo) -> Result<ExecutionPlan, String> {
    let mut plan = ExecutionPlan::spmm_base(a).map_err(|e| e.to_string())?;
    let mut rp = plan.tiling.row_panel_size;
    let mut cp = plan.tiling.col_panel_size;
    if let Some(v) = field_u64(doc, "rp")? {
        rp = v as usize;
    }
    match doc.get("cp") {
        None => {}
        Some(v) if v.as_str() == Some("all") => cp = a.num_cols().max(1),
        Some(v) => {
            cp = v.as_u64().ok_or("\"cp\" must be an integer or \"all\"")? as usize;
        }
    }
    plan.tiling = spade_matrix::TilingConfig::new(rp, cp).map_err(|e| e.to_string())?;
    plan.r_policy = match field_str(doc, "rmatrix", "cache")? {
        "cache" => RMatrixPolicy::Cache,
        "bypass" => RMatrixPolicy::Bypass,
        "victim" => RMatrixPolicy::BypassVictim,
        other => return Err(format!("unknown rmatrix policy {other:?}")),
    };
    plan.c_policy = CMatrixPolicy::Cache;
    if field_bool(doc, "barriers", false)? {
        plan.barriers = BarrierPolicy::per_column_panel();
    }
    Ok(plan)
}

fn parse_run(doc: &JsonValue, default_deadline: Option<Cycle>) -> Result<Request, String> {
    let bench = parse_wire_benchmark(doc)?;
    let scale = parse_wire_scale(doc)?;
    let k = parse_wire_k(doc)?;
    let pes = parse_wire_pes(doc)?;
    let kernel = parse_wire_kernel(doc)?;
    let deadline = parse_wire_deadline(doc, default_deadline)?;
    let no_cache = field_bool(doc, "no_cache", false)?;
    let workload = Arc::new(Workload::prepare(bench, scale, k));
    let plan = parse_wire_plan(doc, &workload.a)?;
    let config = Arc::new(SystemConfig::scaled(pes));
    // The deadline is resolved at admission (per-request field or the
    // service default), so it lands in the job — and therefore in the
    // cache key — before the cache probe.
    let job = Job::new(&workload, &config, kernel, plan).with_deadline_cycles(deadline);
    let cache_key = (!no_cache).then(|| job.cache_key());
    Ok(Request::Work {
        cmd: "run",
        cache_key,
        kind: WorkKind::Run {
            job: Box::new(job),
            benchmark: bench.short_name().to_string(),
            kernel,
            k,
            pes,
        },
    })
}

fn parse_search(doc: &JsonValue, default_deadline: Option<Cycle>) -> Result<Request, String> {
    let bench = parse_wire_benchmark(doc)?;
    let scale = parse_wire_scale(doc)?;
    let k = parse_wire_k(doc)?;
    let pes = parse_wire_pes(doc)?;
    let full = field_bool(doc, "full", false)?;
    let deadline = parse_wire_deadline(doc, default_deadline)?;
    let no_cache = field_bool(doc, "no_cache", false)?;
    let workload = Arc::new(Workload::prepare(bench, scale, k));
    let space = if full {
        PlanSearchSpace::table3(k)
    } else {
        PlanSearchSpace::quick(k)
    };
    let plans = space.enumerate(&workload.a);
    let config = Arc::new(SystemConfig::scaled(pes));
    let jobs: Vec<Job> = plans
        .iter()
        .map(|&plan| {
            Job::new(&workload, &config, Primitive::Spmm, plan).with_deadline_cycles(deadline)
        })
        .collect();
    let cache_key = (!no_cache).then(|| search_cache_key(&jobs));
    Ok(Request::Work {
        cmd: "search",
        cache_key,
        kind: WorkKind::Search {
            benchmark: bench.short_name().to_string(),
            jobs,
            plans,
            k,
            pes,
        },
    })
}

/// A search result is a pure function of its candidate set, so its key
/// is a digest over every candidate's content-addressed key (prefixed
/// `s` to keep run and search entries in distinct key spaces).
fn search_cache_key(jobs: &[Job]) -> String {
    let absorb = |h: &mut Fnv64| {
        h.write(b"search:v1");
        for job in jobs {
            h.write(job.cache_key().as_bytes());
        }
    };
    let mut lo = Fnv64::new();
    absorb(&mut lo);
    let mut hi = Fnv64::new();
    hi.write_u64(0x5eed_5eed_5eed_5eed);
    absorb(&mut hi);
    format!("s{:016x}{:016x}", lo.finish(), hi.finish())
}

// ---------------------------------------------------------------------------
// Workers: simulation, result rendering, cache stores
// ---------------------------------------------------------------------------

/// One worker: pull admitted requests, simulate inside the
/// [`ParallelRunner`] panic guard, persist successes, reply. Exits when
/// the admission queue closes (shutdown drain).
fn worker_loop(inner: &Arc<Inner>, rx: &Arc<Mutex<Receiver<WorkItem>>>) {
    loop {
        let item = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        let Ok(item) = item else { return };
        inner.queue_depth.fetch_sub(1, Ordering::Relaxed);
        inner.in_flight.fetch_add(1, Ordering::Relaxed);
        if let Some(delay) = inner.config.worker_delay {
            std::thread::sleep(delay);
        }
        let outcome = execute_work(&item.kind);
        if let (Ok(result), Some(cache), Some(key)) =
            (&outcome, inner.cache.as_ref(), item.store_key.as_deref())
        {
            if let Err(e) = cache.put(key, result.as_bytes()) {
                // A failed store costs persistence, not the request.
                eprintln!("spade-serve: cache store for {key} failed: {e}");
            }
        }
        // The handler may have given up (connection died); a dead
        // receiver just drops the result.
        let _ = item.reply.send(outcome);
        inner.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Classifies a job failure into a protocol error kind: watchdog
/// cycle-ceiling trips are deadline errors, everything else (invalid
/// config, deadlock, gold divergence, contained panic) is `sim_failed`.
fn error_kind(message: &str) -> &'static str {
    if message.contains("cycle budget exceeded") {
        "deadline_exceeded"
    } else {
        "sim_failed"
    }
}

fn execute_work(kind: &WorkKind) -> Result<String, (String, String)> {
    match kind {
        WorkKind::Run {
            job,
            benchmark,
            kernel,
            k,
            pes,
        } => {
            // A single-worker runner still wraps the job in the panic
            // guard with one retry — a crashing simulation fails this
            // request, never the worker thread.
            let mut outputs = ParallelRunner::new(1).run_outputs(std::slice::from_ref(job));
            match outputs.pop().expect("one job in, one result out") {
                Ok(output) => {
                    Ok(run_result_json(benchmark, *kernel, *k, *pes, &job.plan, &output).render())
                }
                Err(e) => Err((error_kind(&e.message).to_string(), e.to_string())),
            }
        }
        WorkKind::Search {
            benchmark,
            jobs,
            plans,
            k,
            pes,
        } => {
            let outcomes = ParallelRunner::new(1).run_outputs(jobs);
            let mut failures = 0usize;
            let mut results: Vec<(&ExecutionPlan, JobOutput)> = Vec::with_capacity(plans.len());
            let mut last_error = String::new();
            for (plan, outcome) in plans.iter().zip(outcomes) {
                match outcome {
                    Ok(o) => results.push((plan, o)),
                    Err(e) => {
                        failures += 1;
                        last_error = e.to_string();
                    }
                }
            }
            if results.is_empty() {
                return Err((
                    error_kind(&last_error).to_string(),
                    format!("all {failures} candidate plans failed (last: {last_error})"),
                ));
            }
            results.sort_by_key(|(_, o)| o.report.cycles);
            let candidates: Vec<JsonValue> = results
                .iter()
                .map(|(plan, o)| {
                    JsonValue::object([
                        ("plan", plan_json(plan)),
                        ("cycles", o.report.cycles.into()),
                        ("dram_accesses", o.report.dram_accesses.into()),
                        ("requests_per_cycle", o.report.requests_per_cycle.into()),
                    ])
                })
                .collect();
            Ok(JsonValue::object([
                ("benchmark", benchmark.as_str().into()),
                ("k", (*k).into()),
                ("pes", (*pes).into()),
                ("failures", failures.into()),
                ("candidates", JsonValue::Array(candidates)),
            ])
            .render())
        }
    }
}

/// An execution plan as a JSON object (same shape as the CLI's).
pub fn plan_json(p: &ExecutionPlan) -> JsonValue {
    JsonValue::object([
        ("row_panel_size", p.tiling.row_panel_size.into()),
        ("col_panel_size", p.tiling.col_panel_size.into()),
        ("r_policy", format!("{:?}", p.r_policy).into()),
        ("c_policy", format!("{:?}", p.c_policy).into()),
        ("barriers", p.barriers.is_enabled().into()),
    ])
}

/// A report with its host-execution fields normalized: wall-clock times
/// and shard layout describe the serving host, not the simulated
/// machine (they are already excluded from [`RunReport`] equality), so
/// the daemon zeroes them. This is what makes a cache hit byte-identical
/// to a fresh simulation of the same request.
pub fn canonical_report(report: &RunReport) -> RunReport {
    let mut canon = report.clone();
    canon.host_wall_ns = 0.0;
    canon.shards = 1;
    canon.shard_wall_ns = Vec::new();
    canon
}

fn run_result_json(
    benchmark: &str,
    kernel: Primitive,
    k: usize,
    pes: usize,
    plan: &ExecutionPlan,
    output: &JobOutput,
) -> JsonValue {
    JsonValue::object([
        ("benchmark", benchmark.into()),
        ("kernel", kernel.to_string().into()),
        ("k", k.into()),
        ("pes", pes.into()),
        ("plan", plan_json(plan)),
        ("report", canonical_report(&output.report).to_json()),
    ])
}

// ---------------------------------------------------------------------------
// Termination signals
// ---------------------------------------------------------------------------

static TERMINATION_SIGNAL: AtomicBool = AtomicBool::new(false);

/// Whether SIGTERM/SIGINT has been received since
/// [`install_termination_handler`] ran.
pub fn termination_signal_received() -> bool {
    TERMINATION_SIGNAL.load(Ordering::SeqCst)
}

/// Routes SIGTERM and SIGINT into a flag the accept loop polls, turning
/// `kill <pid>` / ctrl-c into the same graceful drain as an in-band
/// `shutdown` request. The handler only stores an atomic — the minimum
/// an async-signal context allows. std already links libc on Unix, so
/// the declaration introduces no new dependency.
#[cfg(unix)]
pub fn install_termination_handler() {
    extern "C" fn on_signal(_signum: i32) {
        TERMINATION_SIGNAL.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// No-op off Unix: the in-band `shutdown` command still works.
#[cfg(not(unix))]
pub fn install_termination_handler() {}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A minimal blocking client for the daemon protocol: one JSON line out,
/// one JSON line back. Used by `spade-cli client` and the robustness
/// tests; independent deployments only need a TCP socket and a JSON
/// library.
pub struct ServiceClient {
    writer: TcpStream,
    frames: FrameReader<TcpStream>,
}

impl ServiceClient {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &SocketAddr) -> io::Result<ServiceClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(ServiceClient {
            writer,
            frames: FrameReader::new(stream),
        })
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or when the daemon closes the connection
    /// without answering.
    pub fn request_line(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends a JSON request document and reads one response line.
    ///
    /// # Errors
    ///
    /// See [`ServiceClient::request_line`].
    pub fn request(&mut self, doc: &JsonValue) -> io::Result<String> {
        self.request_line(&doc.render())
    }

    /// Reads the next response line without sending anything (for tests
    /// that write raw bytes through a separate socket handle).
    ///
    /// # Errors
    ///
    /// Fails on socket errors or EOF before a full line arrived.
    pub fn read_response(&mut self) -> io::Result<String> {
        match self.frames.next_frame() {
            Ok(Some(frame)) => String::from_utf8(frame)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response")),
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            )),
            Err(FrameError::Io(e)) => Err(e),
            Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
    }

    /// Write access to the raw socket, for byzantine-client tests that
    /// need to send partial or garbage frames.
    pub fn raw_writer(&mut self) -> &mut TcpStream {
        &mut self.writer
    }
}
