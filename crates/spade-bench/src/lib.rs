//! Experiment harness reproducing every table and figure of the SPADE
//! (ISCA 2023) evaluation.
//!
//! Each `[[bench]]` target regenerates one paper artifact (Figure 2,
//! Figure 9–14, Tables 2, 5, 6, the §7.G area/power numbers and the §7.D
//! mode-transition overheads), printing the same rows/series the paper
//! reports. EXPERIMENTS.md records paper-vs-measured for all of them.
//!
//! ## Scaling
//!
//! The benchmark suite is generated at ~1/64 of the SuiteSparse node
//! counts (see `spade_matrix::generators`), so the machine models used by
//! the benches scale their *capacity* parameters — L1/L2/LLC sizes, GPU
//! L2 and device memory, Sextans scratchpad — by the same factor, keeping
//! every working-set:cache ratio, and therefore the shape of every result,
//! intact. Bandwidths and latencies are NOT scaled: they are properties of
//! the machines, not of the problem size. Tile-size knobs are scaled the
//! same way (the bench search space preserves the structure of Table 3:
//! three row panels × three column panels, barriers on the medium column
//! panel).
//!
//! ## Environment knobs
//!
//! * `SPADE_BENCH_FAST=1` — quarter-size suite and fewer PEs, for smoke
//!   runs.
//! * `SPADE_BENCH_PES=n` — override the SPADE PE count (default 224).
//! * `SPADE_THREADS=n` — worker threads for the [`parallel`] experiment
//!   engine (default: the host's available parallelism; `1` forces the
//!   serial path). Results are bit-identical for every thread count.

#![warn(missing_docs)]

pub mod cache;
pub mod machines;
pub mod metrics;
pub mod model;
pub mod parallel;
pub mod perf;
pub mod runner;
pub mod service;
pub mod suite;
pub mod table;

/// Nominal factor by which the generated suite is smaller than the
/// SuiteSparse originals (node counts; see DESIGN.md).
pub const SUITE_SCALE: f64 = 64.0;

/// Factor applied to *capacity* parameters (L2, LLC, GPU L2/memory,
/// Sextans scratchpad). The per-graph node scales actually range from 61×
/// (KRO) to 388× (ORK) around the 64× nominal; capacities use a factor in
/// the upper part of that range so that the reuse-critical high-RU
/// matrices keep cMatrix working sets larger than the LLC, preserving the
/// paper's working-set:cache ratios (ORK 4.7×, KRO 1.5×, LIV 6×, DEL 25×
/// at K=32).
pub const CAPACITY_SCALE: f64 = 160.0;

/// Whether fast (smoke-test) mode is enabled via `SPADE_BENCH_FAST`.
pub fn fast_mode() -> bool {
    std::env::var("SPADE_BENCH_FAST").is_ok_and(|v| v == "1")
}

/// Whether the full Table 3 plan search is enabled via
/// `SPADE_BENCH_FULL` (default: the reduced quick search).
pub fn full_search() -> bool {
    std::env::var("SPADE_BENCH_FULL").is_ok_and(|v| v == "1")
}

/// The SPADE PE count used by the benches (default 224, the paper's
/// system; `SPADE_BENCH_PES` overrides; fast mode defaults to 56).
pub fn bench_pes() -> usize {
    if let Ok(v) = std::env::var("SPADE_BENCH_PES") {
        if let Ok(n) = v.parse() {
            return n;
        }
    }
    if fast_mode() {
        56
    } else {
        224
    }
}

/// The matrix scale used by the benches.
pub fn bench_scale() -> spade_matrix::generators::Scale {
    if fast_mode() {
        spade_matrix::generators::Scale::Small
    } else {
        spade_matrix::generators::Scale::Default
    }
}
